// Group-by counting and averaging over views.
//
// These are the only relational aggregations HypDB needs: the paper's
// Listing-1 query is group-by-average, its rewriting (Listing 2) is two
// group-bys plus a join, and every entropy / mutual-information estimate
// is a count(*) GROUP BY in disguise (paper Sec. 6).

#ifndef HYPDB_DATAFRAME_GROUP_BY_H_
#define HYPDB_DATAFRAME_GROUP_BY_H_

#include <cstdint>
#include <vector>

#include "dataframe/tuple_codec.h"
#include "dataframe/view.h"
#include "util/statusor.h"

namespace hypdb {

/// count(*) GROUP BY result: parallel arrays of (key, count), keys sorted
/// ascending. `total` is the number of rows aggregated.
struct GroupCounts {
  TupleCodec codec;
  std::vector<uint64_t> keys;
  std::vector<int64_t> counts;
  int64_t total = 0;

  int NumGroups() const { return static_cast<int>(keys.size()); }
};

/// GROUP BY result that keeps, per group, the physical row ids.
struct GroupedRows {
  TupleCodec codec;
  std::vector<uint64_t> keys;
  std::vector<std::vector<int64_t>> rows;

  int NumGroups() const { return static_cast<int>(keys.size()); }
};

/// avg() GROUP BY result: per group, the count and the mean of each
/// outcome column; `means[g][o]` is the mean of outcome o in group g.
struct GroupedAverages {
  TupleCodec codec;
  std::vector<uint64_t> keys;
  std::vector<int64_t> counts;
  std::vector<std::vector<double>> means;
  int64_t total = 0;

  int NumGroups() const { return static_cast<int>(keys.size()); }
};

/// SELECT count(*) ... GROUP BY cols.
StatusOr<GroupCounts> CountBy(const TableView& view,
                              const std::vector<int>& cols);

/// GROUP BY cols, collecting the member row ids of each group.
StatusOr<GroupedRows> CollectGroups(const TableView& view,
                                    const std::vector<int>& cols);

/// SELECT avg(outcomes...) ... GROUP BY group_cols. Outcome labels must be
/// numeric (e.g. "0"/"1").
StatusOr<GroupedAverages> AverageBy(const TableView& view,
                                    const std::vector<int>& group_cols,
                                    const std::vector<int>& outcome_cols);

/// Marginalizes `counts` onto the codec-column subset `keep` (positions
/// into counts.codec.cols()). Equivalent to re-grouping on fewer columns
/// but runs on the summary, not the data — this is how cube cells and
/// cached contingency tables answer coarser queries (paper Sec. 6).
GroupCounts MarginalizeOnto(const GroupCounts& counts,
                            const std::vector<int>& keep);

/// Projects `counts` onto table columns `cols` (each present in
/// counts.codec.cols()), in exactly the requested order — a plain copy
/// when the codec already matches. This is how caches and cube cells
/// stored in one column order answer queries phrased in another.
GroupCounts ProjectOnto(const GroupCounts& counts,
                        const std::vector<int>& cols);

/// Sorts parallel (key, count) arrays by key ascending (the GroupCounts
/// invariant shared by every producer).
void SortCountsByKey(std::vector<uint64_t>* keys,
                     std::vector<int64_t>* counts);

/// Adds two summaries of disjoint row populations grouped on the same
/// column list, re-keyed onto `target` (same cols, cardinalities >=
/// either input's). Inputs may carry older codecs: append-only
/// dictionaries keep codes stable, so decoding a key under its own codec
/// and re-encoding under `target` is exact. This is the delta-maintenance
/// primitive — merging a chunk-suffix summary into a cached one yields
/// exactly the summary a cold scan of the grown table produces.
GroupCounts MergeGroupCounts(const GroupCounts& a, const GroupCounts& b,
                             const TupleCodec& target);

}  // namespace hypdb

#endif  // HYPDB_DATAFRAME_GROUP_BY_H_
