// Dictionary-encoded categorical column.
//
// HypDB operates on discrete domains (paper Sec. 2): every attribute is
// categorical. A column stores one int32 code per row plus a dictionary of
// string labels; label order defines the code space [0, Cardinality()).

#ifndef HYPDB_DATAFRAME_COLUMN_H_
#define HYPDB_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace hypdb {

/// Bidirectional string <-> code mapping for one column.
class Dictionary {
 public:
  /// Returns the code for `label`, inserting it if new.
  int32_t GetOrAdd(const std::string& label);

  /// Returns the code for `label` or -1 if absent.
  int32_t Find(const std::string& label) const;

  const std::string& Label(int32_t code) const { return labels_[code]; }
  int32_t size() const { return static_cast<int32_t>(labels_.size()); }
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, int32_t> index_;
};

/// A named categorical column: codes + dictionary. Immutable once built,
/// so concurrent readers (the parallel scan kernel) need no locking — the
/// numeric label cache is built eagerly in the constructor for exactly
/// that reason.
class Column {
 public:
  Column() = default;
  Column(std::string name, Dictionary dict, std::vector<int32_t> codes);

  const std::string& name() const { return name_; }
  const Dictionary& dict() const { return dict_; }
  const std::vector<int32_t>& codes() const { return codes_; }

  int64_t NumRows() const { return static_cast<int64_t>(codes_.size()); }
  int32_t Cardinality() const { return dict_.size(); }

  /// Bits needed to address the code space [0, Cardinality()): the
  /// bit-packed width scan kernels fuse multi-column keys with. 0 for a
  /// constant (cardinality-1) column.
  int CodeBits() const {
    int bits = 0;
    for (uint32_t span = dict_.size() > 0
                             ? static_cast<uint32_t>(dict_.size()) - 1
                             : 0;
         span != 0; span >>= 1) {
      ++bits;
    }
    return bits;
  }


  int32_t CodeAt(int64_t row) const { return codes_[row]; }
  const std::string& LabelAt(int64_t row) const {
    return dict_.Label(codes_[row]);
  }

  /// Numeric interpretation of code `code`: the label parsed as a double.
  /// Used by avg() aggregation (outcomes are 0/1 per the paper). Labels
  /// that do not parse yield an error. Values are parsed once and cached.
  StatusOr<double> NumericValue(int32_t code) const;

  /// True if every label parses as a double.
  bool IsNumericLike() const;

 private:
  std::string name_;
  Dictionary dict_;
  std::vector<int32_t> codes_;

  // Parsed labels, built once at construction; NaN marks unparseable.
  std::vector<double> numeric_cache_;
};

/// Incrementally builds a column from string values or raw codes.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(std::string name) : name_(std::move(name)) {}

  void Append(const std::string& label) {
    codes_.push_back(dict_.GetOrAdd(label));
  }

  /// Appends a code for a label previously registered via RegisterLabel.
  void AppendCode(int32_t code) { codes_.push_back(code); }

  /// Pre-registers a label (useful to pin code order, e.g. "0" -> 0).
  int32_t RegisterLabel(const std::string& label) {
    return dict_.GetOrAdd(label);
  }

  Column Finish() {
    return Column(std::move(name_), std::move(dict_), std::move(codes_));
  }

 private:
  std::string name_;
  Dictionary dict_;
  std::vector<int32_t> codes_;
};

}  // namespace hypdb

#endif  // HYPDB_DATAFRAME_COLUMN_H_
