#include "dataframe/csv.h"

#include <fstream>
#include <sstream>

namespace hypdb {
namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the record's
// trailing newline. Handles quoted fields (RFC-4180 style "" escapes).
std::vector<std::string> ParseRecord(const std::string& text, size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  const size_t n = text.size();
  for (; i < n; ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(const std::string& s, std::string* out) {
  if (!NeedsQuoting(s)) {
    *out += s;
    return;
  }
  *out += '"';
  for (char c : s) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

StatusOr<Table> ParseCsv(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty CSV input");
  size_t pos = 0;
  std::vector<std::string> header = ParseRecord(text, &pos);
  std::vector<ColumnBuilder> builders;
  builders.reserve(header.size());
  for (const auto& name : header) builders.emplace_back(name);

  int64_t line = 1;
  while (pos < text.size()) {
    ++line;
    std::vector<std::string> fields = ParseRecord(text, &pos);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(line) + " has " +
          std::to_string(fields.size()) + " fields, header has " +
          std::to_string(header.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) builders[c].Append(fields[c]);
  }

  Table table;
  for (auto& b : builders) {
    HYPDB_RETURN_IF_ERROR(table.AddColumn(b.Finish()));
  }
  return table;
}

StatusOr<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string ToCsv(const Table& table) {
  std::string out;
  for (int c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += ',';
    AppendField(table.column(c).name(), &out);
  }
  out += '\n';
  for (int64_t r = 0; r < table.NumRows(); ++r) {
    for (int c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out += ',';
      AppendField(table.column(c).LabelAt(r), &out);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToCsv(table);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace hypdb
