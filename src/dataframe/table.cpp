#include "dataframe/table.h"

namespace hypdb {

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.NumRows() != NumRows()) {
    return Status::InvalidArgument(
        "column " + column.name() + " has " +
        std::to_string(column.NumRows()) + " rows, table has " +
        std::to_string(NumRows()));
  }
  if (index_.count(column.name()) > 0) {
    return Status::InvalidArgument("duplicate column name " + column.name());
  }
  index_.emplace(column.name(), static_cast<int>(columns_.size()));
  columns_.push_back(std::move(column));
  return Status::Ok();
}

StatusOr<int> Table::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name());
  return names;
}

}  // namespace hypdb
