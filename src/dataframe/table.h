// In-memory columnar table of categorical columns.

#ifndef HYPDB_DATAFRAME_TABLE_H_
#define HYPDB_DATAFRAME_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataframe/column.h"
#include "util/status.h"
#include "util/statusor.h"

namespace hypdb {

/// Immutable-after-build columnar table. All columns have the same number
/// of rows. Shared via shared_ptr so views stay valid cheaply.
class Table {
 public:
  Table() = default;

  /// Appends a column; all columns must agree on row count.
  Status AddColumn(Column column);

  int NumColumns() const { return static_cast<int>(columns_.size()); }
  int64_t NumRows() const {
    return columns_.empty() ? 0 : columns_[0].NumRows();
  }

  const Column& column(int idx) const { return columns_[idx]; }

  /// Index of the column named `name`, or error.
  StatusOr<int> ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// All column names in order.
  std::vector<std::string> ColumnNames() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> index_;
};

using TablePtr = std::shared_ptr<const Table>;

/// Convenience: wraps a built table into a shared pointer.
inline TablePtr MakeTable(Table t) {
  return std::make_shared<const Table>(std::move(t));
}

}  // namespace hypdb

#endif  // HYPDB_DATAFRAME_TABLE_H_
