#include "dataframe/group_by.h"

#include <algorithm>
#include <unordered_map>

#include "engine/groupby_kernel.h"

namespace hypdb {
namespace {

// Sorts parallel (key, payload) arrays by key.
template <typename Payload>
void SortByKey(std::vector<uint64_t>* keys, std::vector<Payload>* payloads) {
  std::vector<size_t> order(keys->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return (*keys)[a] < (*keys)[b]; });
  std::vector<uint64_t> sorted_keys(keys->size());
  std::vector<Payload> sorted_payloads(payloads->size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_keys[i] = (*keys)[order[i]];
    sorted_payloads[i] = std::move((*payloads)[order[i]]);
  }
  *keys = std::move(sorted_keys);
  *payloads = std::move(sorted_payloads);
}

}  // namespace

StatusOr<GroupCounts> CountBy(const TableView& view,
                              const std::vector<int>& cols) {
  // One implementation for all count(*) GROUP BYs: the packed-tuple
  // kernel (dense radix / open-addressing hash) in src/engine.
  return ScanCounts(view, cols);
}

StatusOr<GroupedRows> CollectGroups(const TableView& view,
                                    const std::vector<int>& cols) {
  GroupedRows out;
  HYPDB_ASSIGN_OR_RETURN(out.codec, TupleCodec::Create(view.table(), cols));
  std::unordered_map<uint64_t, size_t> slot;
  const int64_t n = view.NumRows();
  for (int64_t i = 0; i < n; ++i) {
    uint64_t key = out.codec.Encode(view, i);
    auto [it, inserted] = slot.emplace(key, out.keys.size());
    if (inserted) {
      out.keys.push_back(key);
      out.rows.emplace_back();
    }
    out.rows[it->second].push_back(view.RowId(i));
  }
  SortByKey(&out.keys, &out.rows);
  return out;
}

StatusOr<GroupedAverages> AverageBy(const TableView& view,
                                    const std::vector<int>& group_cols,
                                    const std::vector<int>& outcome_cols) {
  GroupedAverages out;
  HYPDB_ASSIGN_OR_RETURN(out.codec,
                         TupleCodec::Create(view.table(), group_cols));
  const int num_outcomes = static_cast<int>(outcome_cols.size());

  // Pre-resolve numeric values per outcome column code to fail fast on
  // non-numeric labels and avoid per-row parsing.
  std::vector<std::vector<double>> outcome_values(num_outcomes);
  for (int o = 0; o < num_outcomes; ++o) {
    const Column& col = view.table().column(outcome_cols[o]);
    outcome_values[o].resize(col.Cardinality());
    for (int32_t c = 0; c < col.Cardinality(); ++c) {
      HYPDB_ASSIGN_OR_RETURN(outcome_values[o][c], col.NumericValue(c));
    }
  }

  struct Acc {
    int64_t count = 0;
    std::vector<double> sums;
  };
  std::unordered_map<uint64_t, Acc> agg;
  const int64_t n = view.NumRows();
  out.total = n;
  for (int64_t i = 0; i < n; ++i) {
    uint64_t key = out.codec.Encode(view, i);
    Acc& acc = agg[key];
    if (acc.sums.empty()) acc.sums.assign(num_outcomes, 0.0);
    ++acc.count;
    for (int o = 0; o < num_outcomes; ++o) {
      acc.sums[o] += outcome_values[o][view.CodeAt(i, outcome_cols[o])];
    }
  }

  std::vector<Acc> payload;
  payload.reserve(agg.size());
  out.keys.reserve(agg.size());
  for (auto& [k, acc] : agg) {
    out.keys.push_back(k);
    payload.push_back(std::move(acc));
  }
  SortByKey(&out.keys, &payload);
  out.counts.reserve(payload.size());
  out.means.reserve(payload.size());
  for (auto& acc : payload) {
    out.counts.push_back(acc.count);
    std::vector<double> mean(num_outcomes);
    for (int o = 0; o < num_outcomes; ++o) {
      mean[o] = acc.count > 0 ? acc.sums[o] / acc.count : 0.0;
    }
    out.means.push_back(std::move(mean));
  }
  return out;
}

void SortCountsByKey(std::vector<uint64_t>* keys,
                     std::vector<int64_t>* counts) {
  SortByKey(keys, counts);
}

namespace {

// Re-encodes `in`'s keys under `target` (same column list; cardinalities
// possibly larger, never smaller). Sortedness survives: mixed-radix key
// comparison is lexicographic on the digit tuple (most-significant digit
// last), and the digits themselves are unchanged.
std::vector<uint64_t> ReKeyOnto(const GroupCounts& in,
                                const TupleCodec& target) {
  if (in.codec.cardinalities() == target.cardinalities()) return in.keys;
  std::vector<uint64_t> out(in.keys.size());
  std::vector<int32_t> codes(in.codec.cols().size());
  for (size_t g = 0; g < in.keys.size(); ++g) {
    for (size_t j = 0; j < codes.size(); ++j) {
      codes[j] = in.codec.DecodeAt(in.keys[g], static_cast<int>(j));
    }
    out[g] = target.EncodeCodes(codes);
  }
  return out;
}

}  // namespace

GroupCounts MergeGroupCounts(const GroupCounts& a, const GroupCounts& b,
                             const TupleCodec& target) {
  GroupCounts out;
  out.codec = target;
  out.total = a.total + b.total;
  const std::vector<uint64_t> ka = ReKeyOnto(a, target);
  const std::vector<uint64_t> kb = ReKeyOnto(b, target);
  out.keys.reserve(ka.size() + kb.size());
  out.counts.reserve(ka.size() + kb.size());
  size_t i = 0, j = 0;
  while (i < ka.size() || j < kb.size()) {
    uint64_t key;
    int64_t count = 0;
    if (j >= kb.size() || (i < ka.size() && ka[i] < kb[j])) {
      key = ka[i];
      count = a.counts[i++];
    } else if (i >= ka.size() || kb[j] < ka[i]) {
      key = kb[j];
      count = b.counts[j++];
    } else {
      key = ka[i];
      count = a.counts[i++] + b.counts[j++];
    }
    out.keys.push_back(key);
    out.counts.push_back(count);
  }
  return out;
}

GroupCounts ProjectOnto(const GroupCounts& counts,
                        const std::vector<int>& cols) {
  if (counts.codec.cols() == cols) return counts;
  const std::vector<int>& have = counts.codec.cols();
  std::vector<int> positions;
  positions.reserve(cols.size());
  for (int c : cols) {
    for (size_t j = 0; j < have.size(); ++j) {
      if (have[j] == c) {
        positions.push_back(static_cast<int>(j));
        break;
      }
    }
  }
  return MarginalizeOnto(counts, positions);
}

GroupCounts MarginalizeOnto(const GroupCounts& counts,
                            const std::vector<int>& keep) {
  GroupCounts out;
  out.codec = counts.codec.Project(keep);
  out.total = counts.total;
  std::unordered_map<uint64_t, int64_t> agg;
  agg.reserve(counts.keys.size());
  std::vector<int32_t> codes(keep.size());
  for (size_t g = 0; g < counts.keys.size(); ++g) {
    for (size_t j = 0; j < keep.size(); ++j) {
      codes[j] = counts.codec.DecodeAt(counts.keys[g], keep[j]);
    }
    agg[out.codec.EncodeCodes(codes)] += counts.counts[g];
  }
  out.keys.reserve(agg.size());
  out.counts.reserve(agg.size());
  for (const auto& [k, c] : agg) {
    out.keys.push_back(k);
    out.counts.push_back(c);
  }
  SortByKey(&out.keys, &out.counts);
  return out;
}

}  // namespace hypdb
