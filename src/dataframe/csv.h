// Minimal CSV reader/writer for categorical tables.
//
// All fields are read as categorical strings (HypDB's data model). Double
// quotes with embedded commas/quotes are supported on read; fields that
// need quoting are quoted on write.

#ifndef HYPDB_DATAFRAME_CSV_H_
#define HYPDB_DATAFRAME_CSV_H_

#include <string>

#include "dataframe/table.h"
#include "util/statusor.h"

namespace hypdb {

/// Reads a headered CSV file into a Table.
StatusOr<Table> ReadCsv(const std::string& path);

/// Parses CSV text (first line = header) into a Table.
StatusOr<Table> ParseCsv(const std::string& text);

/// Writes `table` to `path` with a header row.
Status WriteCsv(const Table& table, const std::string& path);

/// Serializes `table` to CSV text.
std::string ToCsv(const Table& table);

}  // namespace hypdb

#endif  // HYPDB_DATAFRAME_CSV_H_
