#include "dataframe/view.h"

namespace hypdb {

TableView TableView::Filter(const Predicate& pred) const {
  if (pred.empty()) return *this;
  auto rows = std::make_shared<std::vector<int64_t>>();
  int64_t n = NumRows();
  for (int64_t i = 0; i < n; ++i) {
    int64_t r = RowId(i);
    if (pred.Matches(*table_, r)) rows->push_back(r);
  }
  return TableView(table_, std::move(rows));
}

}  // namespace hypdb
