#include "dataframe/tuple_codec.h"

namespace hypdb {
namespace {

// Bits needed to address [0, card) — the packed width of one column.
int BitsFor(int32_t card) {
  int bits = 0;
  for (uint32_t span = card > 0 ? static_cast<uint32_t>(card) - 1 : 0;
       span != 0; span >>= 1) {
    ++bits;
  }
  return bits;
}

}  // namespace

StatusOr<TupleCodec> TupleCodec::Create(const Table& table,
                                        const std::vector<int>& cols) {
  TupleCodec codec;
  codec.cols_ = cols;
  codec.cards_.reserve(cols.size());
  codec.strides_.reserve(cols.size());
  constexpr uint64_t kMaxDomain = 1ull << 62;
  uint64_t stride = 1;
  for (int col : cols) {
    if (col < 0 || col >= table.NumColumns()) {
      return Status::OutOfRange("column index " + std::to_string(col) +
                                " out of range");
    }
    int32_t card = table.column(col).Cardinality();
    if (card <= 0) {
      return Status::InvalidArgument("column " + table.column(col).name() +
                                     " has empty dictionary");
    }
    codec.cards_.push_back(card);
    codec.strides_.push_back(stride);
    codec.bit_widths_.push_back(BitsFor(card));
    codec.shifts_.push_back(codec.packed_bits_);
    codec.packed_bits_ += codec.bit_widths_.back();
    if (stride > kMaxDomain / static_cast<uint64_t>(card)) {
      return Status::OutOfRange(
          "tuple domain overflows: product of cardinalities exceeds 2^62");
    }
    stride *= static_cast<uint64_t>(card);
  }
  codec.domain_ = stride;
  return codec;
}

TupleCodec TupleCodec::Project(const std::vector<int>& positions) const {
  TupleCodec out;
  uint64_t stride = 1;
  for (int p : positions) {
    out.cols_.push_back(cols_[p]);
    out.cards_.push_back(cards_[p]);
    out.strides_.push_back(stride);
    out.bit_widths_.push_back(BitsFor(cards_[p]));
    out.shifts_.push_back(out.packed_bits_);
    out.packed_bits_ += out.bit_widths_.back();
    stride *= static_cast<uint64_t>(cards_[p]);
  }
  out.domain_ = stride;
  return out;
}

}  // namespace hypdb
