// TableView: a zero-copy row subset of a Table.
//
// OLAP contexts (WHERE clauses and group-by cells) are materialized as
// views: the shared table plus a vector of selected row indices. All
// statistics in HypDB run on views, so detecting/explaining/resolving bias
// never copies data (the paper's population-heterogeneity requirement —
// the causal analysis must run on exactly the queried subpopulation).

#ifndef HYPDB_DATAFRAME_VIEW_H_
#define HYPDB_DATAFRAME_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataframe/predicate.h"
#include "dataframe/table.h"

namespace hypdb {

/// A (table, row-subset) pair. When `rows()` is null the view spans all
/// rows. Copying a view is O(1).
class TableView {
 public:
  TableView() = default;
  explicit TableView(TablePtr table) : table_(std::move(table)) {}
  TableView(TablePtr table, std::shared_ptr<const std::vector<int64_t>> rows)
      : table_(std::move(table)), rows_(std::move(rows)) {}

  const Table& table() const { return *table_; }
  const TablePtr& table_ptr() const { return table_; }

  bool valid() const { return table_ != nullptr; }

  int64_t NumRows() const {
    if (!table_) return 0;
    return rows_ ? static_cast<int64_t>(rows_->size()) : table_->NumRows();
  }

  /// Physical row index of the i-th row of this view.
  int64_t RowId(int64_t i) const { return rows_ ? (*rows_)[i] : i; }

  /// The explicit row-id list, or null when the view spans all rows
  /// (lets scan kernels read ids through a raw pointer).
  const std::vector<int64_t>* row_ids() const { return rows_.get(); }

  /// Code of column `col` at view row `i`.
  int32_t CodeAt(int64_t i, int col) const {
    return table_->column(col).CodeAt(RowId(i));
  }

  /// Rows matching `pred` within this view.
  TableView Filter(const Predicate& pred) const;

  /// A view over an explicit list of *physical* row ids.
  TableView WithRows(std::vector<int64_t> rows) const {
    return TableView(table_,
                     std::make_shared<const std::vector<int64_t>>(
                         std::move(rows)));
  }

  /// A stable identity for caching: (table pointer, rows pointer).
  std::pair<const void*, const void*> CacheKey() const {
    return {static_cast<const void*>(table_.get()),
            static_cast<const void*>(rows_.get())};
  }

 private:
  TablePtr table_;
  std::shared_ptr<const std::vector<int64_t>> rows_;  // null = all rows
};

}  // namespace hypdb

#endif  // HYPDB_DATAFRAME_VIEW_H_
