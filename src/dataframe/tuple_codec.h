// Mixed-radix packing of categorical tuples into uint64 keys.
//
// Grouping, contingency tables and OLAP-cube cells all reduce to counting
// occurrences of attribute-value tuples. A TupleCodec maps the tuple of
// codes of a fixed column list to a single uint64 (and back), so group-by
// becomes a hash aggregation over scalar keys.

#ifndef HYPDB_DATAFRAME_TUPLE_CODEC_H_
#define HYPDB_DATAFRAME_TUPLE_CODEC_H_

#include <cstdint>
#include <vector>

#include "dataframe/table.h"
#include "dataframe/view.h"
#include "util/statusor.h"

namespace hypdb {

class TableView;

/// Encodes/decodes tuples over a fixed list of columns. The key space is
/// the mixed-radix number with per-column cardinalities as digits; its size
/// (`Domain()`) is the product of cardinalities and must fit in int64.
class TupleCodec {
 public:
  TupleCodec() = default;

  /// Builds a codec for `cols` (indices into `table`). Fails if the domain
  /// product would overflow 2^62 (keys must remain exact).
  static StatusOr<TupleCodec> Create(const Table& table,
                                     const std::vector<int>& cols);

  /// Key for the tuple at view row `i`.
  uint64_t Encode(const TableView& view, int64_t i) const {
    uint64_t key = 0;
    for (size_t j = 0; j < cols_.size(); ++j) {
      key += static_cast<uint64_t>(view.CodeAt(i, cols_[j])) * strides_[j];
    }
    return key;
  }

  /// Key from raw codes (one per codec column, in codec order).
  uint64_t EncodeCodes(const std::vector<int32_t>& codes) const {
    uint64_t key = 0;
    for (size_t j = 0; j < cols_.size(); ++j) {
      key += static_cast<uint64_t>(codes[j]) * strides_[j];
    }
    return key;
  }

  /// Inverse of EncodeCodes.
  std::vector<int32_t> Decode(uint64_t key) const {
    std::vector<int32_t> codes(cols_.size());
    for (size_t j = 0; j < cols_.size(); ++j) {
      codes[j] = static_cast<int32_t>((key / strides_[j]) % cards_[j]);
    }
    return codes;
  }

  /// Code of the j-th codec column within `key`.
  int32_t DecodeAt(uint64_t key, int j) const {
    return static_cast<int32_t>((key / strides_[j]) % cards_[j]);
  }

  /// A codec over the subset of this codec's columns at `positions`
  /// (indices into cols()). Keys of the projected codec address the
  /// marginal domain.
  TupleCodec Project(const std::vector<int>& positions) const;

  const std::vector<int>& cols() const { return cols_; }
  const std::vector<int32_t>& cardinalities() const { return cards_; }
  /// Per-column mixed-radix strides (for raw-pointer scan kernels).
  const std::vector<uint64_t>& strides() const { return strides_; }

  /// Product of cardinalities (1 for an empty column list).
  uint64_t Domain() const { return domain_; }

 private:
  std::vector<int> cols_;
  std::vector<int32_t> cards_;
  std::vector<uint64_t> strides_;
  uint64_t domain_ = 1;
};

}  // namespace hypdb

#endif  // HYPDB_DATAFRAME_TUPLE_CODEC_H_
