// Mixed-radix packing of categorical tuples into uint64 keys.
//
// Grouping, contingency tables and OLAP-cube cells all reduce to counting
// occurrences of attribute-value tuples. A TupleCodec maps the tuple of
// codes of a fixed column list to a single uint64 (and back), so group-by
// becomes a hash aggregation over scalar keys.

#ifndef HYPDB_DATAFRAME_TUPLE_CODEC_H_
#define HYPDB_DATAFRAME_TUPLE_CODEC_H_

#include <cstdint>
#include <vector>

#include "dataframe/table.h"
#include "dataframe/view.h"
#include "util/statusor.h"

namespace hypdb {

class TableView;

/// Encodes/decodes tuples over a fixed list of columns. The key space is
/// the mixed-radix number with per-column cardinalities as digits; its size
/// (`Domain()`) is the product of cardinalities and must fit in int64.
class TupleCodec {
 public:
  TupleCodec() = default;

  /// Builds a codec for `cols` (indices into `table`). Fails if the domain
  /// product would overflow 2^62 (keys must remain exact).
  static StatusOr<TupleCodec> Create(const Table& table,
                                     const std::vector<int>& cols);

  /// Key for the tuple at view row `i`.
  uint64_t Encode(const TableView& view, int64_t i) const {
    uint64_t key = 0;
    for (size_t j = 0; j < cols_.size(); ++j) {
      key += static_cast<uint64_t>(view.CodeAt(i, cols_[j])) * strides_[j];
    }
    return key;
  }

  /// Key from raw codes (one per codec column, in codec order).
  uint64_t EncodeCodes(const std::vector<int32_t>& codes) const {
    uint64_t key = 0;
    for (size_t j = 0; j < cols_.size(); ++j) {
      key += static_cast<uint64_t>(codes[j]) * strides_[j];
    }
    return key;
  }

  /// Inverse of EncodeCodes.
  std::vector<int32_t> Decode(uint64_t key) const {
    std::vector<int32_t> codes(cols_.size());
    for (size_t j = 0; j < cols_.size(); ++j) {
      codes[j] = static_cast<int32_t>((key / strides_[j]) % cards_[j]);
    }
    return codes;
  }

  /// Code of the j-th codec column within `key`.
  int32_t DecodeAt(uint64_t key, int j) const {
    return static_cast<int32_t>((key / strides_[j]) % cards_[j]);
  }

  /// A codec over the subset of this codec's columns at `positions`
  /// (indices into cols()). Keys of the projected codec address the
  /// marginal domain.
  TupleCodec Project(const std::vector<int>& positions) const;

  const std::vector<int>& cols() const { return cols_; }
  const std::vector<int32_t>& cardinalities() const { return cards_; }
  /// Per-column mixed-radix strides (for raw-pointer scan kernels).
  const std::vector<uint64_t>& strides() const { return strides_; }

  /// Product of cardinalities (1 for an empty column list).
  uint64_t Domain() const { return domain_; }

  // --- bit-packed keys (scan-kernel fast path) -----------------------------
  //
  // Padding each column's radix to a power of two turns the mixed-radix
  // dot product into shifts and ors: packed = Σ code_j << shift_j. Shift
  // order matches stride order (cols()[0] least significant), so packed
  // keys enumerate tuples in the same lexicographic order as mixed-radix
  // keys — a dense accumulator indexed by packed key drains in sorted
  // mixed-radix key order with no extra sort.

  /// Per-column bit widths (Column::CodeBits of each codec column).
  const std::vector<int>& bit_widths() const { return bit_widths_; }
  /// Per-column left-shift amounts for packed keys.
  const std::vector<int>& shifts() const { return shifts_; }
  /// Total packed width in bits (sum of bit_widths).
  int packed_bits() const { return packed_bits_; }

  /// True when packed keys fit the kernel key space (< 2^62, same bound
  /// as mixed-radix keys so the hash sentinel stays free).
  bool CanBitPack() const { return packed_bits_ <= 62; }

  /// Size of the padded (power-of-two-radix) key space, 2^packed_bits.
  /// Only meaningful when CanBitPack(). Slots whose digits fall outside a
  /// column's cardinality are never produced by any row.
  uint64_t PackedDomain() const { return uint64_t{1} << packed_bits_; }

  /// Converts a packed key back to the canonical mixed-radix key.
  uint64_t PackedToKey(uint64_t packed) const {
    uint64_t key = 0;
    for (size_t j = 0; j < cols_.size(); ++j) {
      const uint64_t digit =
          (packed >> shifts_[j]) & ((uint64_t{1} << bit_widths_[j]) - 1);
      key += digit * strides_[j];
    }
    return key;
  }

 private:
  std::vector<int> cols_;
  std::vector<int32_t> cards_;
  std::vector<uint64_t> strides_;
  std::vector<int> bit_widths_;
  std::vector<int> shifts_;
  int packed_bits_ = 0;
  uint64_t domain_ = 1;
};

}  // namespace hypdb

#endif  // HYPDB_DATAFRAME_TUPLE_CODEC_H_
