#include "dataframe/column.h"

#include <cmath>
#include <cstdlib>

namespace hypdb {

int32_t Dictionary::GetOrAdd(const std::string& label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(labels_.size());
  labels_.push_back(label);
  index_.emplace(label, code);
  return code;
}

int32_t Dictionary::Find(const std::string& label) const {
  auto it = index_.find(label);
  return it == index_.end() ? -1 : it->second;
}

Column::Column(std::string name, Dictionary dict, std::vector<int32_t> codes)
    : name_(std::move(name)),
      dict_(std::move(dict)),
      codes_(std::move(codes)) {
  // Eager build keeps the column free of mutable state: readers on any
  // thread (e.g. the parallel scan kernel) only ever see const data.
  numeric_cache_.resize(dict_.size());
  for (int32_t c = 0; c < dict_.size(); ++c) {
    const std::string& label = dict_.Label(c);
    char* end = nullptr;
    double v = std::strtod(label.c_str(), &end);
    bool parsed = end != label.c_str() && *end == '\0' && !label.empty();
    numeric_cache_[c] = parsed ? v : std::nan("");
  }
}

StatusOr<double> Column::NumericValue(int32_t code) const {
  if (code < 0 || code >= dict_.size()) {
    return Status::OutOfRange("code out of range for column " + name_);
  }
  double v = numeric_cache_[code];
  if (std::isnan(v)) {
    return Status::InvalidArgument("label '" + dict_.Label(code) +
                                   "' in column " + name_ +
                                   " is not numeric");
  }
  return v;
}

bool Column::IsNumericLike() const {
  for (double v : numeric_cache_) {
    if (std::isnan(v)) return false;
  }
  return true;
}

}  // namespace hypdb
