#include "dataframe/predicate.h"

namespace hypdb {

StatusOr<Predicate> Predicate::FromInLists(
    const Table& table,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        terms) {
  Predicate pred;
  for (const auto& [name, values] : terms) {
    HYPDB_ASSIGN_OR_RETURN(int col, table.ColumnIndex(name));
    PredicateTerm term;
    term.col = col;
    term.allowed.assign(table.column(col).Cardinality(), false);
    for (const auto& v : values) {
      int32_t code = table.column(col).dict().Find(v);
      if (code >= 0) term.allowed[code] = true;
    }
    pred.AddTerm(std::move(term));
  }
  return pred;
}

}  // namespace hypdb
