// Conjunctive selection predicates: attr IN {v1, ..., vk} AND ...
//
// This is the WHERE-clause language of the paper's Listing-1 queries.

#ifndef HYPDB_DATAFRAME_PREDICATE_H_
#define HYPDB_DATAFRAME_PREDICATE_H_

#include <string>
#include <vector>

#include "dataframe/table.h"
#include "util/statusor.h"

namespace hypdb {

/// One conjunct: column `col` must take a code marked true in `allowed`.
struct PredicateTerm {
  int col = -1;
  std::vector<bool> allowed;  // indexed by code
};

/// A conjunction of IN-list terms. An empty predicate matches everything.
class Predicate {
 public:
  Predicate() = default;

  /// Adds the conjunct `column IN values`. Values absent from the column's
  /// dictionary are ignored (they match no row); if none of the values
  /// exist the term matches nothing.
  static StatusOr<Predicate> FromInLists(
      const Table& table,
      const std::vector<std::pair<std::string, std::vector<std::string>>>&
          terms);

  void AddTerm(PredicateTerm term) { terms_.push_back(std::move(term)); }

  bool Matches(const Table& table, int64_t row) const {
    for (const auto& t : terms_) {
      int32_t code = table.column(t.col).CodeAt(row);
      if (code < 0 || code >= static_cast<int32_t>(t.allowed.size()) ||
          !t.allowed[code]) {
        return false;
      }
    }
    return true;
  }

  bool empty() const { return terms_.empty(); }
  const std::vector<PredicateTerm>& terms() const { return terms_; }

 private:
  std::vector<PredicateTerm> terms_;
};

}  // namespace hypdb

#endif  // HYPDB_DATAFRAME_PREDICATE_H_
