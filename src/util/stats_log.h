// Append-only JSONL request log. The log knows nothing about JSON — it
// appends caller-built lines atomically (one mutex-guarded fwrite +
// flush per line), which keeps util free of the net-layer codecs. The
// CLI wires it to HypDbServiceOptions::on_complete and serializes each
// RequestStats with the net JSON codecs before handing the line over.

#ifndef HYPDB_UTIL_STATS_LOG_H_
#define HYPDB_UTIL_STATS_LOG_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"
#include "util/statusor.h"

namespace hypdb {

class StatsLog {
 public:
  /// Opens `path` for appending (created if absent).
  static StatusOr<std::unique_ptr<StatsLog>> Open(const std::string& path);

  ~StatsLog();
  StatsLog(const StatsLog&) = delete;
  StatsLog& operator=(const StatsLog&) = delete;

  /// Appends `line` plus a trailing newline and flushes, atomically with
  /// respect to other writers. `line` must not contain newlines.
  void WriteLine(const std::string& line);

 private:
  explicit StatsLog(std::FILE* file) : file_(file) {}

  std::mutex mu_;
  std::FILE* file_;
};

}  // namespace hypdb

#endif  // HYPDB_UTIL_STATS_LOG_H_
