// Wall-clock timing for the benchmark harnesses.

#ifndef HYPDB_UTIL_STOPWATCH_H_
#define HYPDB_UTIL_STOPWATCH_H_

#include <chrono>

namespace hypdb {

/// Measures elapsed wall-clock time. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// The start instant as steady-clock nanoseconds since the clock's
  /// epoch — the origin of a request's submit-relative trace axis
  /// (TraceContext::t0_nanos shares this clock).
  uint64_t StartNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start_.time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hypdb

#endif  // HYPDB_UTIL_STOPWATCH_H_
