// Wall-clock timing for the benchmark harnesses.

#ifndef HYPDB_UTIL_STOPWATCH_H_
#define HYPDB_UTIL_STOPWATCH_H_

#include <chrono>

namespace hypdb {

/// Measures elapsed wall-clock time. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hypdb

#endif  // HYPDB_UTIL_STOPWATCH_H_
