// Engine-deep execution tracing: per-thread ring buffers of binary trace
// events, harvested per request.
//
// The PR 7 trace timeline (RequestStats::trace) stops at stage
// granularity; this layer records what happened *inside* a stage — which
// cache decision, kernel scan, CI test, or coalescing wait ate the time.
// Design constraints, in order:
//  * Hot path: no locks, no allocation, ~2 cache-line writes per event.
//    Each thread writes into its own fixed-capacity ring of 64-byte
//    slots; slots are all-atomic words written relaxed and published
//    with a release store of a per-ring sequence number (a seqlock in
//    the single-writer direction), so concurrent harvesters are
//    race-free under TSan and torn reads are detected and skipped.
//  * Attribution: a thread_local TraceContext carries the request ticket
//    and sampling level from the QueryScheduler worker down through
//    AnalysisSession stages into the engines; code that spawns helper
//    threads (the morsel kernel) captures the context by value and
//    re-installs it in the workers.
//  * Digest neutrality by construction: recording observes, it never
//    feeds back into any computed value.
//  * Bounded memory: rings come from a fixed pool, are recycled when
//    threads exit, and wrap silently (oldest events overwritten; the
//    drop counter in TraceRollup records pool exhaustion).
//
// Sampling levels (resolved per request, SubmitOptions::trace_level):
//   0  off — recording compiled in but every call early-returns.
//   1  default — session stage spans, kernel scan spans (per tier),
//      cache decision instants (hit/miss/marginalize/evict/prefetch),
//      predicate-slice outcomes, discovery cache outcomes and
//      coalescing-wait spans.
//   2  deep — everything above plus per-CI-test spans and per-morsel
//      batch instants.

#ifndef HYPDB_UTIL_TRACE_H_
#define HYPDB_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace hypdb {

/// What one trace event describes. Families group the kinds for rollup
/// metrics and Chrome-trace categories.
enum class TraceEventKind : uint8_t {
  kNone = 0,
  // Spans (dur > 0 semantics; a degenerate span may still measure 0).
  kStage,          // one AnalysisSession stage; arg0 = TraceStage
  kKernelScan,     // one group-by kernel scan; arg0 = tier, arg1 = rows
  kCiTest,         // one conditional-independence test; arg1 = rows
  kDiscoveryWait,  // blocked on an in-flight twin discovery (coalesced)
  kIngestAppend,   // one append batch; arg0 = rows, arg1 = new watermark
  kDeltaPatch,     // cached summary patched current; arg0 = stale rows
  kChunkScan,      // one chunk (or suffix) scanned; arg0 = chunk, arg1 = rows
  // Instants (dur == 0 always).
  kCacheHit,          // CachingCountEngine exact-summary hit
  kCacheMiss,         // CachingCountEngine scan (no reusable summary)
  kCacheMarginalize,  // answered by marginalizing a superset summary
  kCacheEvict,        // LRU eviction to budget; arg0 = cells evicted
  kCachePrefetch,     // prefetch pinned a summary; arg0 = cells
  kSliceServe,        // cross-shard predicate slice served the counts
  kSliceFallback,     // slicer fell back to the shard's own scan path
  kDiscoveryHit,      // DiscoveryCache served a cached report
  kDiscoveryCompute,  // this request computed the discovery
  kMorselBatch,       // one morsel dispatched; arg0 = begin, arg1 = rows
};

/// Stage ids carried in kStage events' arg0 (names via TraceStageName).
enum class TraceStage : uint8_t {
  kAnswers = 0,
  kDiscover,
  kDetect,
  kExplain,
  kRewrite,
  /// Query setup: name binding plus the treatment-label enumeration
  /// scan — engine work that runs before any analysis stage opens.
  kBind,
};

inline constexpr int kNumTraceStages = 6;

/// Kernel tiers carried in kKernelScan events' arg0.
enum class TraceKernelTier : uint8_t {
  kReference = 0,
  kScalar,
  kSimd,
};

/// Stable lower-case names for export ("stage", "kernel_scan", ...).
const char* TraceEventKindName(TraceEventKind kind);
const char* TraceStageName(TraceStage stage);
const char* TraceKernelTierName(TraceKernelTier tier);

/// True for kinds recorded only at level >= 2 (per-CI-test, per-morsel).
bool TraceKindIsDeep(TraceEventKind kind);

/// One harvested event, converted to the request's submit-relative
/// seconds axis (the same axis as RequestStats::trace), ready for the
/// JSON codecs. Purely observational — excluded from report digests.
struct TraceEventRecord {
  TraceEventKind kind = TraceEventKind::kNone;
  uint32_t thread_id = 0;  // stable per-thread id (1-based, process-wide)
  double start_seconds = 0.0;
  double dur_seconds = 0.0;  // 0 for instants
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

/// The per-request attribution installed on a worker thread while a
/// request executes. ticket == 0 or level <= 0 disables recording.
struct TraceContext {
  uint64_t ticket = 0;
  int level = 0;
  /// steady_clock nanos at request submission — the origin of the
  /// submit-relative axis events are exported on.
  uint64_t t0_nanos = 0;
};

/// The calling thread's current context (a disabled default when none
/// is installed). Cheap: one thread_local read.
TraceContext CurrentTraceContext();

/// True when an event gated at `min_level` would be recorded right now.
/// Callers use this to skip argument computation, not for correctness.
bool TraceEnabled(int min_level);

/// Installs `ctx` as the calling thread's context for the scope's
/// lifetime, restoring the previous one on exit. Used by the scheduler
/// worker around Execute() and by the morsel kernel's helper threads.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// Records an instant event (dur == 0) if the current context admits
/// `min_level`. Lock-free, allocation-free.
void TraceInstant(TraceEventKind kind, int min_level, uint64_t arg0 = 0,
                  uint64_t arg1 = 0);

/// RAII span: measures construction → destruction and records one
/// complete event at destruction (so a span costs a single slot write).
/// Disabled spans (level too low, no context) cost two branches.
class TraceSpanScope {
 public:
  TraceSpanScope(TraceEventKind kind, int min_level, uint64_t arg0 = 0,
                 uint64_t arg1 = 0);
  ~TraceSpanScope();
  TraceSpanScope(const TraceSpanScope&) = delete;
  TraceSpanScope& operator=(const TraceSpanScope&) = delete;

  /// Updates arg1 after construction (e.g. a result size only known at
  /// the end of the measured region).
  void set_arg1(uint64_t v) { arg1_ = v; }

 private:
  uint64_t start_nanos_ = 0;  // 0 = disabled
  uint64_t arg0_ = 0;
  uint64_t arg1_ = 0;
  TraceEventKind kind_ = TraceEventKind::kNone;
};

/// Collects every live ring event belonging to `ticket`, converts
/// timestamps to seconds relative to `t0_nanos`, and returns them
/// sorted by start time (ties: longer span first, so parents precede
/// children). Rings wrap, so the result holds the *most recent* events
/// of a very long request, not necessarily all of them. Consuming:
/// harvested slots are emptied, so a later scheduler's request that
/// reuses the same ticket number never inherits stale events (tickets
/// are per-scheduler; a process can host several). Thread-safe.
std::vector<TraceEventRecord> HarvestTrace(uint64_t ticket,
                                           uint64_t t0_nanos);

/// Aggregate rollups per event family, bumped as events are recorded
/// (relaxed atomics; negligible next to the ring write). Registered
/// into the service MetricsRegistry so /metrics can answer "how often
/// do slices fall back" without per-request traces.
struct TraceRollup {
  Counter cache_hits;
  Counter cache_misses;
  Counter cache_marginalizations;
  Counter cache_evictions;
  Counter cache_prefetches;
  Counter slice_serves;
  Counter slice_fallbacks;
  Counter discovery_hits;
  Counter discovery_computes;
  Counter ci_tests;
  Counter morsel_batches;
  Counter ingest_appends;
  Counter delta_patches;
  Counter chunk_scans;
  /// Events lost because the ring pool was exhausted (more live threads
  /// than kMaxRings) — the only way recording is ever incomplete.
  Counter dropped_events;
  LatencyHistogram stage_seconds[kNumTraceStages];  // by TraceStage
  LatencyHistogram kernel_scan_seconds[3];  // by TraceKernelTier
  LatencyHistogram ci_test_seconds;
  LatencyHistogram discovery_wait_seconds;
};

/// The process-wide rollup (function-local static: outlives every
/// service, so registries may point into it).
TraceRollup& GlobalTraceRollup();

/// Testing hooks: rings allocated from the pool / per-ring capacity.
int TraceRingsAllocated();
int TraceRingCapacity();

}  // namespace hypdb

#endif  // HYPDB_UTIL_TRACE_H_
