// Small string helpers shared across modules.

#ifndef HYPDB_UTIL_STRING_UTIL_H_
#define HYPDB_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace hypdb {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// Lowercases ASCII letters.
std::string ToLower(const std::string& s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace hypdb

#endif  // HYPDB_UTIL_STRING_UTIL_H_
