// StatusOr<T>: a value or the Status explaining why it is absent.

#ifndef HYPDB_UTIL_STATUSOR_H_
#define HYPDB_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace hypdb {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value — enables `return result;`.
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from error Status — enables `return Status::NotFound(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// OK if a value is present, otherwise the carried error.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present
  std::optional<T> value_;
};

}  // namespace hypdb

/// Evaluates `rexpr` (a StatusOr), propagating errors; otherwise moves the
/// value into `lhs`. `lhs` may declare a new variable.
#define HYPDB_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  HYPDB_ASSIGN_OR_RETURN_IMPL_(                                  \
      HYPDB_STATUS_CONCAT_(_statusor_, __LINE__), lhs, rexpr)

#define HYPDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define HYPDB_STATUS_CONCAT_(a, b) HYPDB_STATUS_CONCAT_IMPL_(a, b)
#define HYPDB_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // HYPDB_UTIL_STATUSOR_H_
