// Deterministic pseudo-random number generation.
//
// Every stochastic component of HypDB (permutation tests, Patefield
// sampling, synthetic data generators, random DAGs) takes an explicit
// Rng& so experiments are reproducible bit-for-bit from a seed. The
// generator is xoshiro256**, hand-rolled to avoid platform differences in
// std::mt19937 distributions.

#ifndef HYPDB_UTIL_RNG_H_
#define HYPDB_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hypdb {

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit output (UniformRandomBitGenerator interface).
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }

  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box-Muller.
  double Normal();

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double Gamma(double shape);

  /// Samples an index in [0, weights.size()) proportionally to
  /// non-negative `weights`. Returns 0 if all weights are zero.
  int WeightedIndex(const std::vector<double>& weights);

  /// Dirichlet(alpha, ..., alpha) vector of length k; sums to 1.
  std::vector<double> Dirichlet(int k, double alpha);

  /// Bernoulli with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Splits off an independently-seeded child generator (for parallel or
  /// per-dataset streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace hypdb

#endif  // HYPDB_UTIL_RNG_H_
