#include "util/trace.h"

#include <algorithm>
#include <chrono>

namespace hypdb {
namespace {

// ---------------------------------------------------------------------
// Slot and ring layout.
//
// One slot is one cache line of atomic words. The writer fills it with
// relaxed stores bracketed by an invalidate + release-fence in front and
// a release publish of `seq` behind; harvesters acquire-read `seq`,
// relaxed-read the payload, and re-check `seq` across an acquire fence,
// skipping slots that changed underneath them. Every access is atomic,
// so the protocol is race-free (TSan-clean); tearing is detected, not
// prevented.

constexpr uint64_t kSeqEmpty = 0;      // never written
constexpr uint64_t kSeqWriting = ~0ull;  // mid-write marker

struct alignas(64) Slot {
  std::atomic<uint64_t> seq{kSeqEmpty};
  std::atomic<uint64_t> ticket{0};
  std::atomic<uint64_t> start_nanos{0};
  std::atomic<uint64_t> dur_nanos{0};
  std::atomic<uint64_t> meta{0};  // kind(8) | thread_id(32)
  std::atomic<uint64_t> arg0{0};
  std::atomic<uint64_t> arg1{0};
  std::atomic<uint64_t> reserved{0};
};
static_assert(sizeof(Slot) == 64, "one slot, one cache line");

constexpr int kRingCapacity = 2048;  // 128 KiB per ring
constexpr int kMaxRings = 64;

struct Ring {
  Slot slots[kRingCapacity];
  /// Next write position (monotone; low bits index the ring). Owner-only
  /// writes; atomic so ownership handoff through the pool needs no
  /// further care.
  std::atomic<uint64_t> pos{0};
  /// Claimed by a live thread. acq_rel exchange on acquire/release
  /// orders the previous owner's writes before the next owner's.
  std::atomic<bool> in_use{false};
};

struct Pool {
  std::atomic<Ring*> rings[kMaxRings] = {};
  std::atomic<int> allocated{0};
};

Pool& GlobalPool() {
  // Leaked intentionally: harvesters may run on any thread until
  // process exit, and rings are a small fixed cost.
  static Pool* pool = new Pool();
  return *pool;
}

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Releases the thread's ring back to the pool at thread exit. The
/// ring's contents stay harvestable; only the writer seat is recycled.
struct RingHandle {
  Ring* ring = nullptr;
  ~RingHandle() {
    if (ring != nullptr) ring->in_use.store(false, std::memory_order_release);
  }
};

thread_local RingHandle t_ring;
thread_local TraceContext t_ctx;

Ring* AcquireRing() {
  if (t_ring.ring != nullptr) return t_ring.ring;
  Pool& pool = GlobalPool();
  for (int i = 0; i < kMaxRings; ++i) {
    Ring* ring = pool.rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) {
      Ring* fresh = new Ring();
      if (pool.rings[i].compare_exchange_strong(ring, fresh,
                                                std::memory_order_acq_rel)) {
        pool.allocated.fetch_add(1, std::memory_order_relaxed);
        ring = fresh;
      } else {
        delete fresh;  // another thread won the slot; try to claim theirs
      }
    }
    bool free = false;
    if (ring->in_use.compare_exchange_strong(free, true,
                                             std::memory_order_acq_rel)) {
      t_ring.ring = ring;
      return ring;
    }
  }
  return nullptr;  // pool exhausted; caller counts the drop
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RollupEvent(TraceEventKind kind, uint64_t arg0, double dur_seconds) {
  TraceRollup& r = GlobalTraceRollup();
  switch (kind) {
    case TraceEventKind::kStage:
      if (arg0 < kNumTraceStages) r.stage_seconds[arg0].Observe(dur_seconds);
      break;
    case TraceEventKind::kKernelScan:
      if (arg0 < 3) r.kernel_scan_seconds[arg0].Observe(dur_seconds);
      break;
    case TraceEventKind::kCiTest:
      r.ci_tests.Add();
      r.ci_test_seconds.Observe(dur_seconds);
      break;
    case TraceEventKind::kDiscoveryWait:
      r.discovery_wait_seconds.Observe(dur_seconds);
      break;
    case TraceEventKind::kCacheHit: r.cache_hits.Add(); break;
    case TraceEventKind::kCacheMiss: r.cache_misses.Add(); break;
    case TraceEventKind::kCacheMarginalize:
      r.cache_marginalizations.Add();
      break;
    case TraceEventKind::kCacheEvict: r.cache_evictions.Add(); break;
    case TraceEventKind::kCachePrefetch: r.cache_prefetches.Add(); break;
    case TraceEventKind::kSliceServe: r.slice_serves.Add(); break;
    case TraceEventKind::kSliceFallback: r.slice_fallbacks.Add(); break;
    case TraceEventKind::kDiscoveryHit: r.discovery_hits.Add(); break;
    case TraceEventKind::kDiscoveryCompute: r.discovery_computes.Add(); break;
    case TraceEventKind::kMorselBatch: r.morsel_batches.Add(); break;
    case TraceEventKind::kIngestAppend: r.ingest_appends.Add(); break;
    case TraceEventKind::kDeltaPatch: r.delta_patches.Add(); break;
    case TraceEventKind::kChunkScan: r.chunk_scans.Add(); break;
    case TraceEventKind::kNone: break;
  }
}

void RecordEvent(TraceEventKind kind, uint64_t start_nanos,
                 uint64_t dur_nanos, uint64_t arg0, uint64_t arg1) {
  const TraceContext& ctx = t_ctx;
  RollupEvent(kind, arg0, static_cast<double>(dur_nanos) * 1e-9);
  Ring* ring = AcquireRing();
  if (ring == nullptr) {
    GlobalTraceRollup().dropped_events.Add();
    return;
  }
  const uint64_t pos = ring->pos.load(std::memory_order_relaxed);
  Slot& s = ring->slots[pos & (kRingCapacity - 1)];
  // Seqlock write: invalidate, fence, relaxed payload, release publish.
  // A harvester that observes any of the new payload cannot re-read the
  // old sequence number, so it skips the slot as torn.
  s.seq.store(kSeqWriting, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.ticket.store(ctx.ticket, std::memory_order_relaxed);
  s.start_nanos.store(start_nanos, std::memory_order_relaxed);
  s.dur_nanos.store(dur_nanos, std::memory_order_relaxed);
  s.meta.store(static_cast<uint64_t>(kind) |
                   (static_cast<uint64_t>(ThisThreadId()) << 8),
               std::memory_order_relaxed);
  s.arg0.store(arg0, std::memory_order_relaxed);
  s.arg1.store(arg1, std::memory_order_relaxed);
  s.seq.store(pos + 1, std::memory_order_release);
  ring->pos.store(pos + 1, std::memory_order_relaxed);
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kNone: return "none";
    case TraceEventKind::kStage: return "stage";
    case TraceEventKind::kKernelScan: return "kernel_scan";
    case TraceEventKind::kCiTest: return "ci_test";
    case TraceEventKind::kDiscoveryWait: return "discovery_wait";
    case TraceEventKind::kCacheHit: return "cache_hit";
    case TraceEventKind::kCacheMiss: return "cache_miss";
    case TraceEventKind::kCacheMarginalize: return "cache_marginalize";
    case TraceEventKind::kCacheEvict: return "cache_evict";
    case TraceEventKind::kCachePrefetch: return "cache_prefetch";
    case TraceEventKind::kSliceServe: return "slice_serve";
    case TraceEventKind::kSliceFallback: return "slice_fallback";
    case TraceEventKind::kDiscoveryHit: return "discovery_hit";
    case TraceEventKind::kDiscoveryCompute: return "discovery_compute";
    case TraceEventKind::kMorselBatch: return "morsel_batch";
    case TraceEventKind::kIngestAppend: return "ingest_append";
    case TraceEventKind::kDeltaPatch: return "delta_patch";
    case TraceEventKind::kChunkScan: return "chunk_scan";
  }
  return "unknown";
}

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kAnswers: return "answers";
    case TraceStage::kDiscover: return "discover";
    case TraceStage::kDetect: return "detect";
    case TraceStage::kExplain: return "explain";
    case TraceStage::kRewrite: return "rewrite";
    case TraceStage::kBind: return "bind";
  }
  return "unknown";
}

const char* TraceKernelTierName(TraceKernelTier tier) {
  switch (tier) {
    case TraceKernelTier::kReference: return "reference";
    case TraceKernelTier::kScalar: return "scalar";
    case TraceKernelTier::kSimd: return "simd";
  }
  return "unknown";
}

bool TraceKindIsDeep(TraceEventKind kind) {
  return kind == TraceEventKind::kCiTest ||
         kind == TraceEventKind::kMorselBatch;
}

TraceContext CurrentTraceContext() { return t_ctx; }

bool TraceEnabled(int min_level) {
  return t_ctx.ticket != 0 && t_ctx.level >= min_level;
}

TraceContextScope::TraceContextScope(const TraceContext& ctx) : prev_(t_ctx) {
  t_ctx = ctx;
}

TraceContextScope::~TraceContextScope() { t_ctx = prev_; }

void TraceInstant(TraceEventKind kind, int min_level, uint64_t arg0,
                  uint64_t arg1) {
  if (!TraceEnabled(min_level)) return;
  RecordEvent(kind, NowNanos(), 0, arg0, arg1);
}

TraceSpanScope::TraceSpanScope(TraceEventKind kind, int min_level,
                               uint64_t arg0, uint64_t arg1)
    : arg0_(arg0), arg1_(arg1), kind_(kind) {
  if (TraceEnabled(min_level)) start_nanos_ = NowNanos();
}

TraceSpanScope::~TraceSpanScope() {
  if (start_nanos_ == 0) return;
  const uint64_t end = NowNanos();
  RecordEvent(kind_, start_nanos_,
              end > start_nanos_ ? end - start_nanos_ : 0, arg0_, arg1_);
}

std::vector<TraceEventRecord> HarvestTrace(uint64_t ticket,
                                           uint64_t t0_nanos) {
  std::vector<TraceEventRecord> out;
  if (ticket == 0) return out;
  Pool& pool = GlobalPool();
  for (int i = 0; i < kMaxRings; ++i) {
    Ring* ring = pool.rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (int j = 0; j < kRingCapacity; ++j) {
      Slot& s = ring->slots[j];
      const uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 == kSeqEmpty || seq1 == kSeqWriting) continue;
      if (s.ticket.load(std::memory_order_relaxed) != ticket) continue;
      TraceEventRecord rec;
      const uint64_t start = s.start_nanos.load(std::memory_order_relaxed);
      const uint64_t dur = s.dur_nanos.load(std::memory_order_relaxed);
      const uint64_t meta = s.meta.load(std::memory_order_relaxed);
      rec.arg0 = s.arg0.load(std::memory_order_relaxed);
      rec.arg1 = s.arg1.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      // Validate-and-consume in one step: the CAS fails exactly when the
      // writer started overwriting the slot (a torn read), and on success
      // it empties the slot so a later request that happens to reuse this
      // ticket number (tickets are per-scheduler, and one process can
      // host several) can never inherit the event.
      uint64_t expected = seq1;
      if (!s.seq.compare_exchange_strong(expected, kSeqEmpty,
                                         std::memory_order_acq_rel)) {
        continue;
      }
      rec.kind = static_cast<TraceEventKind>(meta & 0xff);
      rec.thread_id = static_cast<uint32_t>(meta >> 8);
      rec.start_seconds =
          start > t0_nanos
              ? static_cast<double>(start - t0_nanos) * 1e-9
              : 0.0;
      rec.dur_seconds = static_cast<double>(dur) * 1e-9;
      out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEventRecord& a, const TraceEventRecord& b) {
              if (a.start_seconds != b.start_seconds) {
                return a.start_seconds < b.start_seconds;
              }
              return a.dur_seconds > b.dur_seconds;  // parents first
            });
  return out;
}

TraceRollup& GlobalTraceRollup() {
  static TraceRollup* rollup = new TraceRollup();
  return *rollup;
}

int TraceRingsAllocated() {
  return GlobalPool().allocated.load(std::memory_order_relaxed);
}

int TraceRingCapacity() { return kRingCapacity; }

}  // namespace hypdb
