// Status: lightweight error propagation without exceptions.
//
// HypDB follows the RocksDB/Arrow idiom: library functions that can fail
// return a Status (or StatusOr<T>, see statusor.h) instead of throwing.
// A Status is either OK or carries an error code plus a human-readable
// message describing what went wrong.

#ifndef HYPDB_UTIL_STATUS_H_
#define HYPDB_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace hypdb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named column / attribute / key missing
  kOutOfRange,        // index or value outside the valid domain
  kFailedPrecondition,// operation not valid in the current state
  kUnimplemented,     // feature intentionally not supported
  kInternal,          // invariant violation inside the library
  kIoError,           // file system problem
  kCancelled,         // caller withdrew the request before it ran
  kDeadlineExceeded,  // request expired before (or while) running
  kGone,              // resource existed but expired / was invalidated
};

/// Returns a stable lowercase name for `code` (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// The result of an operation that may fail. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Gone(std::string msg) {
    return Status(StatusCode::kGone, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace hypdb

/// Propagates a non-OK Status to the caller.
#define HYPDB_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::hypdb::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // HYPDB_UTIL_STATUS_H_
