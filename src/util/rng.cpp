#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace hypdb {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro256** must not be seeded all-zero; SplitMix64 never yields four
  // consecutive zeros.
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exactness.
  uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::Gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost shape by 1 and correct with a power of a uniform.
    double u = UniformDouble();
    while (u <= 0.0) u = UniformDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

int Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<double> Rng::Dirichlet(int k, double alpha) {
  std::vector<double> out(k);
  double total = 0.0;
  for (int i = 0; i < k; ++i) {
    out[i] = Gamma(alpha);
    total += out[i];
  }
  if (total <= 0.0) {
    for (int i = 0; i < k; ++i) out[i] = 1.0 / k;
    return out;
  }
  for (int i = 0; i < k; ++i) out[i] /= total;
  return out;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace hypdb
