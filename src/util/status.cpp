#include "util/status.h"

namespace hypdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kGone:
      return "gone";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hypdb
