// Build identity of the running binary, for the hypdb_build_info metric,
// /healthz, and BENCH json — so a scrape or a benchmark artifact says
// which version/compiler/build-type produced it.

#ifndef HYPDB_UTIL_BUILD_INFO_H_
#define HYPDB_UTIL_BUILD_INFO_H_

namespace hypdb {

/// `git describe` at configure time (CMake), or "untagged" outside a
/// git checkout.
const char* BuildVersion();

/// The compiler's own version banner (__VERSION__).
const char* BuildCompiler();

/// CMAKE_BUILD_TYPE at configure time, or "unspecified".
const char* BuildType();

}  // namespace hypdb

#endif  // HYPDB_UTIL_BUILD_INFO_H_
