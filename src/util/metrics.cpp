#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hypdb {
namespace {

// Bucket i covers latencies up to 1us * 2^i; the table is precomputed so
// Observe() only walks it (35 compares worst-case, typically ~15).
struct BucketTable {
  double bounds[LatencyHistogram::kNumBuckets];
  BucketTable() {
    double b = 1e-6;
    for (int i = 0; i < LatencyHistogram::kNumBuckets - 1; ++i) {
      bounds[i] = b;
      b *= 2.0;
    }
    bounds[LatencyHistogram::kNumBuckets - 1] =
        std::numeric_limits<double>::infinity();
  }
};

const BucketTable& Buckets() {
  static const BucketTable table;
  return table;
}

void AppendDouble(std::string* out, double value) {
  if (std::isinf(value)) {
    out->append(value > 0 ? "+Inf" : "-Inf");
    return;
  }
  // %.17g round-trips doubles exactly; integral values render without a
  // trailing ".0" which matches what Prometheus emits for counters.
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out->append(buf);
}

void AppendLabelValue(std::string* out, const std::string& value) {
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

// Renders `{a="x",b="y"}` with `extra` (the le bucket bound, already
// formatted) appended last; empty string when there are no labels at all.
void AppendLabels(std::string* out, const MetricsRegistry::Labels& labels,
                  const char* extra_name, const std::string& extra_value) {
  const bool has_extra = extra_name != nullptr;
  if (labels.empty() && !has_extra) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(name);
    out->append("=\"");
    AppendLabelValue(out, value);
    out->push_back('"');
  }
  if (has_extra) {
    if (!first) out->push_back(',');
    out->append(extra_name);
    out->append("=\"");
    out->append(extra_value);
    out->push_back('"');
  }
  out->push_back('}');
}

std::string FormatBound(double bound) {
  if (std::isinf(bound)) return "+Inf";
  std::string s;
  AppendDouble(&s, bound);
  return s;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0 || counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Target rank in [1, count]; walk buckets until the cumulative count
  // reaches it, then interpolate linearly between the bucket's bounds.
  const double rank = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double upper = upper_bounds[i];
      if (std::isinf(upper)) return lower;  // overflow bucket: lower bound
      const double fraction =
          (rank - static_cast<double>(before)) /
          static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
  }
  const double last = upper_bounds.empty() ? 0.0 : upper_bounds.back();
  return std::isinf(last) ? upper_bounds[upper_bounds.size() - 2] : last;
}

double LatencyHistogram::BucketUpperBound(int i) {
  return Buckets().bounds[i];
}

void LatencyHistogram::Observe(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // also catches NaN
  const double* bounds = Buckets().bounds;
  int i = 0;
  while (i < kNumBuckets - 1 && seconds > bounds[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  // Saturate rather than overflow for absurd inputs (> ~292 years).
  const double nanos = seconds * 1e9;
  const int64_t add =
      nanos >= static_cast<double>(std::numeric_limits<int64_t>::max())
          ? std::numeric_limits<int64_t>::max()
          : static_cast<int64_t>(nanos);
  sum_nanos_.fetch_add(add, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds.resize(kNumBuckets);
  snap.counts.resize(kNumBuckets);
  // `count` is derived from the bucket loads (not a separate atomic) so
  // the snapshot is internally consistent even while writers race.
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.upper_bounds[i] = Buckets().bounds[i];
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

void MetricsRegistry::Register(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::RegisterCounter(std::string name, std::string help,
                                      Labels labels, const Counter* counter) {
  Entry e;
  e.name = std::move(name);
  e.help = std::move(help);
  e.type = MetricType::kCounter;
  e.labels = std::move(labels);
  e.counter = counter;
  Register(std::move(e));
}

void MetricsRegistry::RegisterCounterFn(std::string name, std::string help,
                                        Labels labels, ValueFn fn) {
  Entry e;
  e.name = std::move(name);
  e.help = std::move(help);
  e.type = MetricType::kCounter;
  e.labels = std::move(labels);
  e.fn = std::move(fn);
  Register(std::move(e));
}

void MetricsRegistry::RegisterGauge(std::string name, std::string help,
                                    Labels labels, const Gauge* gauge) {
  Entry e;
  e.name = std::move(name);
  e.help = std::move(help);
  e.type = MetricType::kGauge;
  e.labels = std::move(labels);
  e.gauge = gauge;
  Register(std::move(e));
}

void MetricsRegistry::RegisterGaugeFn(std::string name, std::string help,
                                      Labels labels, ValueFn fn) {
  Entry e;
  e.name = std::move(name);
  e.help = std::move(help);
  e.type = MetricType::kGauge;
  e.labels = std::move(labels);
  e.fn = std::move(fn);
  Register(std::move(e));
}

void MetricsRegistry::RegisterHistogram(std::string name, std::string help,
                                        Labels labels,
                                        const LatencyHistogram* histogram) {
  Entry e;
  e.name = std::move(name);
  e.help = std::move(help);
  e.type = MetricType::kHistogram;
  e.labels = std::move(labels);
  e.histogram = histogram;
  Register(std::move(e));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const Entry& entry : entries_) {
    MetricsSnapshot::Family* family = nullptr;
    for (auto& f : snap.families) {
      if (f.name == entry.name) {
        family = &f;
        break;
      }
    }
    if (family == nullptr) {
      snap.families.emplace_back();
      family = &snap.families.back();
      family->name = entry.name;
      family->help = entry.help;
      family->type = entry.type;
    }
    MetricsSnapshot::Sample sample;
    sample.labels = entry.labels;
    if (entry.histogram != nullptr) {
      sample.histogram = entry.histogram->Snapshot();
    } else if (entry.counter != nullptr) {
      sample.value = static_cast<double>(entry.counter->value());
    } else if (entry.gauge != nullptr) {
      sample.value = static_cast<double>(entry.gauge->value());
    } else if (entry.fn) {
      sample.value = entry.fn();
    }
    family->samples.push_back(std::move(sample));
  }
  return snap;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& family : snapshot.families) {
    out.append("# HELP ");
    out.append(family.name);
    out.push_back(' ');
    out.append(family.help);
    out.push_back('\n');
    out.append("# TYPE ");
    out.append(family.name);
    out.push_back(' ');
    switch (family.type) {
      case MetricType::kCounter:
        out.append("counter");
        break;
      case MetricType::kGauge:
        out.append("gauge");
        break;
      case MetricType::kHistogram:
        out.append("histogram");
        break;
    }
    out.push_back('\n');
    for (const auto& sample : family.samples) {
      if (family.type == MetricType::kHistogram) {
        const HistogramSnapshot& h = sample.histogram;
        int64_t cumulative = 0;
        for (size_t i = 0; i < h.counts.size(); ++i) {
          cumulative += h.counts[i];
          out.append(family.name);
          out.append("_bucket");
          AppendLabels(&out, sample.labels, "le",
                       FormatBound(h.upper_bounds[i]));
          out.push_back(' ');
          AppendDouble(&out, static_cast<double>(cumulative));
          out.push_back('\n');
        }
        out.append(family.name);
        out.append("_sum");
        AppendLabels(&out, sample.labels, nullptr, "");
        out.push_back(' ');
        AppendDouble(&out, h.sum_seconds);
        out.push_back('\n');
        out.append(family.name);
        out.append("_count");
        AppendLabels(&out, sample.labels, nullptr, "");
        out.push_back(' ');
        AppendDouble(&out, static_cast<double>(h.count));
        out.push_back('\n');
      } else {
        out.append(family.name);
        AppendLabels(&out, sample.labels, nullptr, "");
        out.push_back(' ');
        AppendDouble(&out, sample.value);
        out.push_back('\n');
      }
    }
  }
  return out;
}

}  // namespace hypdb
