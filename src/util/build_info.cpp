#include "util/build_info.h"

namespace hypdb {

const char* BuildVersion() {
#ifdef HYPDB_VERSION
  return HYPDB_VERSION;
#else
  return "untagged";
#endif
}

const char* BuildCompiler() {
#ifdef __VERSION__
  return __VERSION__;
#else
  return "unknown";
#endif
}

const char* BuildType() {
#ifdef HYPDB_BUILD_TYPE
  return HYPDB_BUILD_TYPE;
#else
  return "unspecified";
#endif
}

}  // namespace hypdb
