// Lock-cheap service metrics: counters, gauges and fixed-bucket latency
// histograms, collected per subsystem and exposed through one registry.
//
// The collection idiom is one plain struct of Counter/LatencyHistogram
// members per subsystem (SchedulerMetrics, HttpServerMetrics, ...), owned
// by the subsystem itself and incremented inline on the hot path — every
// mutation is a single relaxed atomic add, no lock, no allocation, so
// instrumentation cannot perturb the concurrency the service tests pin
// down. Metrics are strictly observational: nothing in an analysis result
// reads them, which is what keeps reports bit-identical to cold serial
// execution with metrics on (the digest-neutrality invariant, asserted
// under TSan in tests/metrics_test.cpp).
//
// The MetricsRegistry does not own metric storage. Subsystems register
// pointers to their counters/histograms (or value callbacks for derived
// gauges like queue depth) under a Prometheus-style name + help + labels;
// a scrape takes a consistent-enough relaxed snapshot and renders it as
// Prometheus text (here) or JSON (net/json.h MetricsToJson — rendering
// with the JSON library lives in net because util cannot depend on net).
// Registered pointers must outlive every scrape: the service owns its
// registry and registers members of subsystems it also owns, and
// front-end objects (HttpServer, handlers) register post-construction and
// are torn down only after serving stops.

#ifndef HYPDB_UTIL_METRICS_H_
#define HYPDB_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hypdb {

/// Monotone event count. All operations are relaxed atomics — safe to
/// bump from any thread, never a synchronization point.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// An instantaneous level that can go up and down (active connections).
/// Derived levels (queue depth, live sessions) are better registered as
/// value callbacks — see MetricsRegistry::RegisterGaugeFn.
class Gauge {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a LatencyHistogram with quantile extraction.
struct HistogramSnapshot {
  /// Inclusive upper bound (seconds) of each bucket; the last is +inf.
  std::vector<double> upper_bounds;
  /// Per-bucket observation counts (NOT cumulative).
  std::vector<int64_t> counts;
  int64_t count = 0;        // sum of `counts`
  double sum_seconds = 0.0;

  /// The q-quantile (q in [0,1]) estimated by linear interpolation inside
  /// the bucket holding the target rank. Exact to within one bucket
  /// (buckets are spaced 2x apart). 0 when the histogram is empty; the
  /// overflow bucket reports its lower bound.
  double Quantile(double q) const;
};

/// Fixed-bucket latency histogram: 36 log-spaced buckets with upper
/// bounds 1us * 2^i (covering 1us .. ~4.8h; the last bucket is +inf).
/// Observe() is two relaxed atomic adds — cheap enough for per-request
/// and per-morsel call sites. Sums accumulate in integer nanoseconds so
/// concurrent adds need no compare-exchange loop.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 36;

  /// Upper bound (seconds) of bucket `i`; +inf for the last bucket.
  static double BucketUpperBound(int i);

  void Observe(double seconds);
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> sum_nanos_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Everything a scrape saw, grouped into Prometheus-style families
/// (same-name series share one HELP/TYPE header and differ by labels).
struct MetricsSnapshot {
  struct Sample {
    std::vector<std::pair<std::string, std::string>> labels;
    double value = 0.0;           // counters and gauges
    HistogramSnapshot histogram;  // histograms only
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Sample> samples;
  };
  std::vector<Family> families;
};

/// Thread-safe registry of externally-owned metrics. Registration may
/// happen at any time (front-end objects are constructed after the
/// service); every registered pointer/callback must stay valid for as
/// long as Snapshot() can be called, and callbacks must be thread-safe.
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;
  /// Value callback for derived metrics (queue depth, live sessions,
  /// aggregated engine stats). Runs on the scraping thread.
  using ValueFn = std::function<double()>;

  void RegisterCounter(std::string name, std::string help, Labels labels,
                       const Counter* counter);
  /// Counter-typed metric computed at scrape time (values must still be
  /// monotone for the type to be truthful).
  void RegisterCounterFn(std::string name, std::string help, Labels labels,
                         ValueFn fn);
  void RegisterGauge(std::string name, std::string help, Labels labels,
                     const Gauge* gauge);
  void RegisterGaugeFn(std::string name, std::string help, Labels labels,
                       ValueFn fn);
  void RegisterHistogram(std::string name, std::string help, Labels labels,
                         const LatencyHistogram* histogram);

  /// Point-in-time view of every registered metric, families in first-
  /// registration order, same-name registrations merged into one family.
  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    Labels labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* histogram = nullptr;
    ValueFn fn;
  };

  void Register(Entry entry);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

/// Prometheus text exposition (version 0.0.4): HELP/TYPE per family,
/// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`. Deterministic for a given snapshot.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace hypdb

#endif  // HYPDB_UTIL_METRICS_H_
