#include "util/stats_log.h"

#include <cerrno>
#include <cstring>
#include <utility>

namespace hypdb {

StatusOr<std::unique_ptr<StatsLog>> StatsLog::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "cannot open stats log '" + path +
                      "': " + std::strerror(errno));
  }
  return std::unique_ptr<StatsLog>(new StatsLog(file));
}

StatsLog::~StatsLog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fclose(file_);
}

void StatsLog::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

}  // namespace hypdb
