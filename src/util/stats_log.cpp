#include "util/stats_log.h"

#include <cerrno>
#include <cstring>
#include <utility>

namespace hypdb {

StatusOr<std::unique_ptr<StatsLog>> StatsLog::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "cannot open stats log '" + path +
                      "': " + std::strerror(errno));
  }
  return std::unique_ptr<StatsLog>(new StatsLog(file));
}

StatsLog::~StatsLog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fclose(file_);
}

void StatsLog::WriteLine(const std::string& line) {
  // Line + newline in a single buffered write before the flush: the file
  // either gains the whole record or none of it, so a reader tailing the
  // log (or parsing it after an abrupt stop) never sees a record split
  // from its newline.
  std::string record;
  record.reserve(line.size() + 1);
  record.append(line);
  record.push_back('\n');
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(record.data(), 1, record.size(), file_);
  std::fflush(file_);
}

}  // namespace hypdb
