// Conditional-independence testing (paper Sec. 5 & 6).
//
// Tests H0: I(X;Y|Z) = 0 against the data. Methods:
//  * kGTest    — the χ² approximation: G = 2n·Î_plugin(X;Y|Z) is
//                asymptotically χ²((|Π_X|-1)(|Π_Y|-1)|Π_Z|). This is the
//                paper's "χ² test" (bnlearn's mutual-information test).
//  * kPearson  — classic Pearson X² summed over strata (for reference).
//  * kMit      — Alg. 2: Monte-Carlo permutation test whose replicates are
//                drawn per-stratum from fixed-marginals contingency tables
//                via Patefield's algorithm, never by shuffling rows.
//  * kMitSampled — MIT restricted to a weighted sample of strata, weights
//                w_z = Pr(z)·max(Ĥ_z(X), Ĥ_z(Y)) (Sec. 5 "sampling from
//                groups"); sample size ⌈factor·ln(1+|Π_Z|)⌉.
//  * kHybrid   — HyMIT (Sec. 6): the χ² approximation when the sample is
//                large relative to the degrees of freedom (df ≤ n/β,
//                β = 5), MIT otherwise.

#ifndef HYPDB_STATS_CI_TEST_H_
#define HYPDB_STATS_CI_TEST_H_

#include <string>
#include <vector>

#include "stats/contingency.h"
#include "stats/mi_engine.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace hypdb {

enum class CiMethod {
  kGTest,
  kPearson,
  kMit,
  kMitSampled,
  kHybrid,
};

const char* CiMethodName(CiMethod method);

struct CiOptions {
  CiMethod method = CiMethod::kHybrid;
  /// Permutation replicates (m in Alg. 2).
  int permutations = 1000;
  /// HyMIT validity rule: χ² used iff df ≤ n / hybrid_beta.
  double hybrid_beta = 5.0;
  /// Sampled strata count = max(min_sampled_strata,
  /// ⌈strata_sample_factor·ln(1+L)⌉), never more than L.
  double strata_sample_factor = 2.0;
  int min_sampled_strata = 3;
  /// Within kHybrid, the MIT fallback samples strata when L exceeds this.
  int sampled_strata_threshold = 64;
  /// Estimator for the permutation statistic (s0 and replicates alike).
  EntropyEstimator mit_estimator = EntropyEstimator::kMillerMadow;
};

struct CiResult {
  /// The observed statistic the p-value refers to: Î(X;Y|Z) for G/MIT
  /// (nats; G additionally scales by 2n internally), Pearson X² for
  /// kPearson.
  double statistic = 0.0;
  double p_value = 1.0;
  /// 95% binomial confidence bounds on the p-value (permutation methods;
  /// equal to p_value for analytic methods).
  double p_low = 1.0;
  double p_high = 1.0;
  int64_t df = 0;
  CiMethod method_used = CiMethod::kGTest;

  /// True when H0 (independence) is NOT rejected at level `alpha`.
  bool IndependentAt(double alpha) const { return p_value > alpha; }
};

/// Runs conditional-independence tests over one MiEngine (one view).
/// Counts every test issued — the Fig. 6(a) metric.
class CiTester {
 public:
  /// `engine` must outlive the tester.
  CiTester(MiEngine* engine, CiOptions options, uint64_t seed);

  /// Tests X ⊥ Y | Z. X, Y must differ and not appear in Z.
  StatusOr<CiResult> Test(int x, int y, const std::vector<int>& z);

  /// Set version: tests (compound of xs) ⊥ (compound of ys) | Z — e.g.
  /// the paper's balance test T ⊥ V | Γ with a whole covariate set V.
  StatusOr<CiResult> TestSets(const std::vector<int>& xs,
                              const std::vector<int>& ys,
                              const std::vector<int>& z);

  /// Convenience: true iff independent at `alpha`.
  StatusOr<bool> Independent(int x, int y, const std::vector<int>& z,
                             double alpha);

  int64_t num_tests() const { return num_tests_; }
  void ResetStats() { num_tests_ = 0; }

  MiEngine* engine() { return engine_; }
  const CiOptions& options() const { return options_; }

 private:
  /// Stratified (X, Y | Z) summary built from engine-served counts.
  StatusOr<StratifiedTable> Stratify(const std::vector<int>& xs,
                                     const std::vector<int>& ys,
                                     const std::vector<int>& z);
  StatusOr<CiResult> RunGTest(const std::vector<int>& xs,
                              const std::vector<int>& ys,
                              const std::vector<int>& z);
  StatusOr<CiResult> RunPearson(const std::vector<int>& xs,
                                const std::vector<int>& ys,
                                const std::vector<int>& z);
  StatusOr<CiResult> RunMit(const std::vector<int>& xs,
                            const std::vector<int>& ys,
                            const std::vector<int>& z, bool sampled);
  CiResult MitOnStrata(const StratifiedTable& table,
                       const std::vector<int>& strata_idx, bool sampled);

  MiEngine* engine_;
  CiOptions options_;
  Rng rng_;
  int64_t num_tests_ = 0;
};

}  // namespace hypdb

#endif  // HYPDB_STATS_CI_TEST_H_
