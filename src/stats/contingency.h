// Two-way and stratified contingency tables (paper Sec. 5).
//
// The Monte-Carlo permutation test never shuffles rows: it summarizes the
// data into one T×Y contingency table per stratum z ∈ Π_Z(D) and samples
// permutation replicates directly from the fixed-marginals distribution
// (Patefield's algorithm). These structures are that summarization.

#ifndef HYPDB_STATS_CONTINGENCY_H_
#define HYPDB_STATS_CONTINGENCY_H_

#include <cstdint>
#include <vector>

#include "dataframe/view.h"
#include "stats/entropy.h"
#include "util/statusor.h"

namespace hypdb {

/// Dense r×c table of non-negative counts with margins.
class Table2D {
 public:
  Table2D() = default;
  Table2D(int num_rows, int num_cols)
      : num_rows_(num_rows),
        num_cols_(num_cols),
        cells_(static_cast<size_t>(num_rows) * num_cols, 0) {}

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }
  int64_t total() const { return total_; }

  int64_t at(int r, int c) const { return cells_[r * num_cols_ + c]; }
  void Set(int r, int c, int64_t v) { cells_[r * num_cols_ + c] = v; }
  void Add(int r, int c, int64_t v) {
    cells_[r * num_cols_ + c] += v;
  }

  /// Recomputes margins and total from the cells. Call after edits.
  void RebuildMargins();

  const std::vector<int64_t>& row_margins() const { return row_margins_; }
  const std::vector<int64_t>& col_margins() const { return col_margins_; }
  const std::vector<int64_t>& cells() const { return cells_; }
  std::vector<int64_t>* mutable_cells() { return &cells_; }

  /// Î(row variable ; column variable) of this table's empirical
  /// distribution, clamped at 0.
  double MutualInformation(EntropyEstimator estimator) const;

  /// Pearson X² = Σ (O-E)²/E over cells with E > 0.
  double PearsonStatistic() const;

  /// Entropy of the row (resp. column) margin.
  double RowEntropy(EntropyEstimator estimator) const;
  double ColEntropy(EntropyEstimator estimator) const;

 private:
  int num_rows_ = 0;
  int num_cols_ = 0;
  std::vector<int64_t> cells_;
  std::vector<int64_t> row_margins_;
  std::vector<int64_t> col_margins_;
  int64_t total_ = 0;
};

/// One stratum: the T×Y table within Z = z. Row/col indices are compacted
/// to the values observed anywhere in the view (zero rows/cols within a
/// stratum are kept so margins stay aligned across strata).
struct Stratum {
  uint64_t z_key = 0;
  Table2D table;
};

/// The full stratified summary of (T, Y) given Z over a view.
struct StratifiedTable {
  std::vector<Stratum> strata;
  int64_t total = 0;
  int num_t_values = 0;  // distinct T codes observed in the view
  int num_y_values = 0;  // distinct Y codes observed in the view

  int NumStrata() const { return static_cast<int>(strata.size()); }

  /// Î(T;Y|Z) = Σ_z Pr(z)·Î_z(T;Y).
  double CmiStatistic(EntropyEstimator estimator) const;

  /// Σ_z PearsonX²_z — the classic conditional-independence X² statistic.
  double PearsonStatistic() const;

  /// Degrees of freedom per the paper's formula:
  /// (|Π_T|-1)(|Π_Y|-1)·|Π_Z| with view-level distinct counts.
  int64_t DegreesOfFreedom() const;
};

/// Builds the stratified summary of (t_col, y_col) given z_cols over
/// `view`. With empty z_cols the result has a single stratum.
StatusOr<StratifiedTable> BuildStratified(const TableView& view, int t_col,
                                          int y_col,
                                          const std::vector<int>& z_cols);

/// Builds the stratified summary from an existing count(*) GROUP BY whose
/// codec columns are exactly (z..., t..., y...) in that order — the path
/// CI tests use to reuse CountEngine summaries instead of re-scanning.
StratifiedTable BuildStratifiedFromCounts(const GroupCounts& counts,
                                          int z_count, int t_count,
                                          int y_count);

/// Set version: the "row variable" is the compound of t_cols and the
/// "column variable" the compound of y_cols (used by bias detection,
/// where V is a whole covariate set).
StatusOr<StratifiedTable> BuildStratifiedSets(const TableView& view,
                                              const std::vector<int>& t_cols,
                                              const std::vector<int>& y_cols,
                                              const std::vector<int>& z_cols);

}  // namespace hypdb

#endif  // HYPDB_STATS_CONTINGENCY_H_
