#include "stats/special_math.h"

#include <cmath>

namespace hypdb {

double LnGamma(double x) {
#if defined(__unix__) || defined(__APPLE__)
  // lgamma_r keeps the sign in a local instead of the signgam global.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

namespace {

// Series expansion of P(a, x), converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LnGamma(a));
}

// Continued fraction (modified Lentz) of Q(a, x), for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - LnGamma(a)) * h;
}

}  // namespace

double LogFactorial(int64_t n) {
  if (n <= 1) return 0.0;
  return LnGamma(static_cast<double>(n) + 1.0);
}

std::vector<double> LogFactorialTable(int64_t n) {
  std::vector<double> table(n + 1, 0.0);
  for (int64_t i = 2; i <= n; ++i) {
    table[i] = table[i - 1] + std::log(static_cast<double>(i));
  }
  return table;
}

double RegularizedGammaP(double a, double x) {
  if (x <= 0.0) return 0.0;
  if (a <= 0.0) return 1.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (x <= 0.0) return 1.0;
  if (a <= 0.0) return 0.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquaredSurvival(double df, double x) {
  if (x <= 0.0) return 1.0;
  if (df <= 0.0) return 0.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace hypdb
