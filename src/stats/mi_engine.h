// MiEngine: cached entropy / (conditional) mutual-information estimation.
//
// Implements the paper's Sec. 6 optimizations on top of the CountEngine
// subsystem (src/engine):
//  * "Caching entropy"      — per attribute set the engine memoizes the
//    plugin entropy together with the support size (# distinct tuples);
//    the Miller-Madow correction and test degrees-of-freedom derive from
//    the same entry. The many CMI statements issued by the CD algorithm
//    share most of their entropies (e.g. H(T), H(TZ) appear in both
//    I(T;Y|Z) and I(T;W|Z)).
//  * "Materializing contingency tables" — counts flow through a
//    CachingCountEngine: SetFocus() prefetches one count(*) GROUP BY over
//    a focus attribute set, and any subset query marginalizes a cached
//    summary instead of re-scanning the data.
// Both optimizations are individually toggleable for the Fig. 6(c)
// ablation. The base engine is swappable, so a pre-computed OLAP cube can
// replace data scans entirely (Fig. 6(d)).

#ifndef HYPDB_STATS_MI_ENGINE_H_
#define HYPDB_STATS_MI_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "engine/caching_count_engine.h"
#include "engine/count_engine.h"
#include "stats/entropy.h"
#include "util/statusor.h"

namespace hypdb {

struct MiEngineOptions {
  bool cache_entropies = true;
  /// Count caching + superset marginalization (CachingCountEngine layer).
  bool materialize_focus = true;
  EntropyEstimator estimator = EntropyEstimator::kMillerMadow;
  /// Worker threads for data scans (ViewCountProvider kernel). 0 resolves
  /// to std::thread::hardware_concurrency() — the production setting the
  /// service layer and `hypdb_cli --threads=0` use.
  int scan_threads = 1;
  /// Rows per morsel for parallel scans: the contiguous range the
  /// kernel's atomic cursor hands a worker at a time (`hypdb_cli
  /// --morsel=N`). Results are bit-identical for any value.
  int64_t scan_morsel_rows = 1 << 14;
  /// SIMD (AVX2) scan kernels when compiled in and detected at runtime;
  /// off forces the bit-identical scalar fallback (`hypdb_cli
  /// --no-simd`).
  bool scan_simd = true;
  /// Budget for the count cache, in total cached groups.
  int64_t max_cached_cells = int64_t{1} << 22;
  /// Materialization policy for every caching layer this configuration
  /// builds (MiEngine's private cache, the registry's parent and shard
  /// caches, the slicer's admission guard): kStatic is the historical
  /// oldest-first / domain-bound behavior, kAdaptive ranks retention by
  /// benefit-per-cell, admits on observed cells, and (at the service
  /// layer) enables the cube advisor and batch union planning. Wire key
  /// `materialization`, CLI `--materialization=static|adaptive`.
  MaterializationMode materialization = MaterializationMode::kStatic;
};

/// The scan-kernel configuration a MiEngineOptions implies. The single
/// translation every layer uses (MiEngine's private engines, session
/// per-context engines, the dataset registry's shard pools), so the
/// whole stack rides the same kernel path.
inline GroupByKernelOptions ScanKernelOptions(const MiEngineOptions& options) {
  GroupByKernelOptions kernel;
  kernel.num_threads = options.scan_threads;
  kernel.morsel_rows = options.scan_morsel_rows;
  kernel.use_simd = options.scan_simd;
  return kernel;
}

/// Estimates entropies and conditional mutual information over one view.
class MiEngine {
 public:
  /// Engine over `view` with the default scan-based count engine.
  explicit MiEngine(TableView view, MiEngineOptions options = {});

  /// Engine with a custom count source (e.g. CubeCountProvider). `view`
  /// must describe the same population the source aggregates. The source
  /// is wrapped in a CachingCountEngine unless materialization is off or
  /// `wrap_provider` is false — pass false for a provider that already
  /// caches (the service layer's shared per-subpopulation engines), so a
  /// private cache does not shadow the shared one.
  MiEngine(TableView view, std::shared_ptr<CountEngine> provider,
           MiEngineOptions options = {}, bool wrap_provider = true);

  /// Ĥ(cols) with the engine's default estimator.
  StatusOr<double> Entropy(const std::vector<int>& cols);
  StatusOr<double> Entropy(const std::vector<int>& cols,
                           EntropyEstimator estimator);

  /// Number of distinct tuples of `cols` in the view (|Π_cols(D)|).
  StatusOr<int64_t> Support(const std::vector<int>& cols);

  /// Ĥ(of | given) = Ĥ(of ∪ given) - Ĥ(given), clamped at 0.
  StatusOr<double> CondEntropy(const std::vector<int>& of,
                               const std::vector<int>& given);

  /// Î(x ; y | z), clamped at 0.
  StatusOr<double> Mi(int x, int y, const std::vector<int>& z);
  StatusOr<double> Mi(int x, int y, const std::vector<int>& z,
                      EntropyEstimator estimator);

  /// Set version: Î(xs ; ys | z) = H(xs z) + H(ys z) - H(xs ys z) - H(z).
  StatusOr<double> MiSets(const std::vector<int>& xs,
                          const std::vector<int>& ys,
                          const std::vector<int>& z);
  StatusOr<double> MiSets(const std::vector<int>& xs,
                          const std::vector<int>& ys,
                          const std::vector<int>& z,
                          EntropyEstimator estimator);

  /// Raw counts for `cols` (any order) through the count engine — the
  /// path CI tests use to build stratified contingency tables.
  StatusOr<GroupCounts> CountsFor(const std::vector<int>& cols);

  /// Prefetches counts over `cols`; subsequent queries over subsets of
  /// `cols` marginalize the cached summary instead of scanning. No-op
  /// when materialization is disabled.
  Status SetFocus(const std::vector<int>& cols);

  const TableView& view() const { return view_; }
  const MiEngineOptions& options() const { return options_; }
  int64_t NumRows() const { return engine_->NumRows(); }

  /// The count engine answering this estimator's queries.
  CountEngine& count_engine() { return *engine_; }
  const CountEngine& count_engine() const { return *engine_; }

  /// --- instrumentation (Fig. 6a / 6c) ---
  int64_t entropy_evals() const { return entropy_evals_; }
  int64_t cache_hits() const { return cache_hits_; }
  int64_t provider_calls() const { return provider_calls_; }
  void ResetStats() { entropy_evals_ = cache_hits_ = provider_calls_ = 0; }

 private:
  struct Entry {
    double plugin_entropy = 0.0;
    int64_t support = 0;
  };

  StatusOr<Entry> Lookup(std::vector<int> sorted_cols);
  double Derive(const Entry& e, EntropyEstimator estimator) const;

  TableView view_;
  std::shared_ptr<CountEngine> engine_;
  MiEngineOptions options_;
  std::map<std::vector<int>, Entry> cache_;
  int64_t entropy_evals_ = 0;
  int64_t cache_hits_ = 0;
  int64_t provider_calls_ = 0;
};

}  // namespace hypdb

#endif  // HYPDB_STATS_MI_ENGINE_H_
