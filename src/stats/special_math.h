// Special functions needed by the statistical tests, hand-rolled (no
// external math library): log-factorials, the regularized incomplete
// gamma function, and chi-squared tail probabilities.

#ifndef HYPDB_STATS_SPECIAL_MATH_H_
#define HYPDB_STATS_SPECIAL_MATH_H_

#include <cstdint>
#include <vector>

namespace hypdb {

/// ln|Γ(x)|, thread-safe. std::lgamma writes the global `signgam` on
/// glibc — a data race under the service's worker pool — so every
/// concurrent path routes through this wrapper (lgamma_r where
/// available).
double LnGamma(double x);

/// ln(n!). Exact-table backed for small n, lgamma otherwise.
double LogFactorial(int64_t n);

/// A dense table of ln(0!), ..., ln(n!) — Patefield's algorithm consumes
/// log-factorials for every integer up to the table total.
std::vector<double> LogFactorialTable(int64_t n);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x ≥ 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-squared distribution with `df` degrees of
/// freedom: Pr[X >= x]. Returns 1 for x <= 0.
double ChiSquaredSurvival(double df, double x);

/// CDF of the standard normal distribution.
double NormalCdf(double x);

}  // namespace hypdb

#endif  // HYPDB_STATS_SPECIAL_MATH_H_
