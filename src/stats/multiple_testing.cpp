#include "stats/multiple_testing.h"

#include <algorithm>
#include <numeric>

namespace hypdb {

std::vector<double> BenjaminiHochberg(const std::vector<double>& p_values) {
  const size_t m = p_values.size();
  if (m == 0) return {};
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return p_values[a] < p_values[b]; });

  // Walk from the largest p down, keeping the running minimum of
  // p_(i)·m/i — the step-up adjustment.
  std::vector<double> adjusted(m);
  double running_min = 1.0;
  for (size_t i = m; i > 0; --i) {
    size_t idx = order[i - 1];
    double scaled = p_values[idx] * static_cast<double>(m) /
                    static_cast<double>(i);
    running_min = std::min(running_min, scaled);
    adjusted[idx] = std::min(1.0, running_min);
  }
  return adjusted;
}

std::vector<double> HolmBonferroni(const std::vector<double>& p_values) {
  const size_t m = p_values.size();
  if (m == 0) return {};
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return p_values[a] < p_values[b]; });

  std::vector<double> adjusted(m);
  double running_max = 0.0;
  for (size_t i = 0; i < m; ++i) {
    size_t idx = order[i];
    double scaled = p_values[idx] * static_cast<double>(m - i);
    running_max = std::max(running_max, scaled);
    adjusted[idx] = std::min(1.0, running_max);
  }
  return adjusted;
}

}  // namespace hypdb
