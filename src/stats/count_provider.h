// CountProvider: where contingency counts come from.
//
// Every statistic in HypDB reduces to count(*) GROUP BY over some column
// subset (paper Sec. 6). The provider abstraction lets those counts come
// from a data scan (default), or from a pre-computed OLAP data cube
// (src/cube) — the Fig. 6(d)/8(b) experiments swap providers.

#ifndef HYPDB_STATS_COUNT_PROVIDER_H_
#define HYPDB_STATS_COUNT_PROVIDER_H_

#include <vector>

#include "dataframe/group_by.h"
#include "dataframe/view.h"
#include "util/statusor.h"

namespace hypdb {

/// Source of group-by counts over a fixed row population.
class CountProvider {
 public:
  virtual ~CountProvider() = default;

  /// count(*) GROUP BY `cols` over this provider's population.
  virtual StatusOr<GroupCounts> Counts(const std::vector<int>& cols) = 0;

  /// Number of rows in the population.
  virtual int64_t NumRows() const = 0;
};

/// Scans a TableView (the default provider).
class ViewCountProvider : public CountProvider {
 public:
  explicit ViewCountProvider(TableView view) : view_(std::move(view)) {}

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override {
    ++num_scans_;
    return CountBy(view_, cols);
  }

  int64_t NumRows() const override { return view_.NumRows(); }

  /// Number of data scans performed (instrumentation for Fig. 6c).
  int64_t num_scans() const { return num_scans_; }

 private:
  TableView view_;
  int64_t num_scans_ = 0;
};

}  // namespace hypdb

#endif  // HYPDB_STATS_COUNT_PROVIDER_H_
