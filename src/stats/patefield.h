// Patefield's algorithm AS 159 (Patefield 1981): uniform sampling of r×c
// contingency tables with fixed row and column totals.
//
// Randomly shuffling a data column only changes the cells of its
// contingency table, never the margins, and the induced distribution over
// tables is exactly the fixed-margins hypergeometric distribution AS 159
// samples from. This replaces O(n) shuffles with O(r·c) table draws — the
// key optimization behind the MIT permutation test (paper Sec. 5).

#ifndef HYPDB_STATS_PATEFIELD_H_
#define HYPDB_STATS_PATEFIELD_H_

#include <cstdint>
#include <vector>

#include "stats/contingency.h"
#include "util/rng.h"
#include "util/status.h"

namespace hypdb {

/// Draws one random table with the given margins into `*out` (resized and
/// margins rebuilt). `log_fact[k]` must hold ln(k!) for all k up to the
/// grand total (see LogFactorialTable). Margins must be non-negative and
/// agree on their sum.
Status SampleTableWithMargins(const std::vector<int64_t>& row_totals,
                              const std::vector<int64_t>& col_totals,
                              const std::vector<double>& log_fact, Rng& rng,
                              Table2D* out);

/// Convenience wrapper that validates margins once and reuses a shared
/// log-factorial table across many draws.
class PatefieldSampler {
 public:
  /// Validates margins; fails on negative entries or mismatched sums.
  static StatusOr<PatefieldSampler> Create(std::vector<int64_t> row_totals,
                                           std::vector<int64_t> col_totals);

  /// Draws one table.
  Status Sample(Rng& rng, Table2D* out) const;

  int64_t total() const { return total_; }

 private:
  PatefieldSampler() = default;

  std::vector<int64_t> row_totals_;
  std::vector<int64_t> col_totals_;
  int64_t total_ = 0;
  std::vector<double> log_fact_;
};

}  // namespace hypdb

#endif  // HYPDB_STATS_PATEFIELD_H_
