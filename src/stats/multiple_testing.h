// Multiple-testing corrections (paper Sec. 8 "Statistical Errors": the
// authors point to standard false-discovery-rate control as the remedy
// for the many simultaneous independence tests; this implements it).

#ifndef HYPDB_STATS_MULTIPLE_TESTING_H_
#define HYPDB_STATS_MULTIPLE_TESTING_H_

#include <vector>

namespace hypdb {

/// Benjamini-Hochberg adjusted p-values: q_i = min over j with
/// p_(j) >= p_(i) of p_(j)·m/j, clamped to [p_i, 1]. Rejecting q_i ≤ α
/// controls the FDR at α for independent (or positively dependent)
/// tests. Order of the output matches the input.
std::vector<double> BenjaminiHochberg(const std::vector<double>& p_values);

/// Holm-Bonferroni adjusted p-values (family-wise error control; more
/// conservative than BH).
std::vector<double> HolmBonferroni(const std::vector<double>& p_values);

}  // namespace hypdb

#endif  // HYPDB_STATS_MULTIPLE_TESTING_H_
