#include "stats/patefield.h"

#include <cmath>
#include <numeric>

#include "stats/special_math.h"

namespace hypdb {

Status SampleTableWithMargins(const std::vector<int64_t>& row_totals,
                              const std::vector<int64_t>& col_totals,
                              const std::vector<double>& log_fact, Rng& rng,
                              Table2D* out) {
  const int nr = static_cast<int>(row_totals.size());
  const int nc = static_cast<int>(col_totals.size());
  if (nr == 0 || nc == 0) {
    return Status::InvalidArgument("empty margins");
  }
  const int64_t ntotal =
      std::accumulate(row_totals.begin(), row_totals.end(), int64_t{0});

  *out = Table2D(nr, nc);

  // Degenerate shapes are fully determined by their margins.
  if (nr == 1) {
    for (int m = 0; m < nc; ++m) out->Set(0, m, col_totals[m]);
    out->RebuildMargins();
    return Status::Ok();
  }
  if (nc == 1) {
    for (int l = 0; l < nr; ++l) out->Set(l, 0, row_totals[l]);
    out->RebuildMargins();
    return Status::Ok();
  }
  if (ntotal == 0) {
    out->RebuildMargins();
    return Status::Ok();
  }
  if (static_cast<int64_t>(log_fact.size()) <= ntotal) {
    return Status::InvalidArgument(
        "log-factorial table too small for total " + std::to_string(ntotal));
  }
  const double* lf = log_fact.data();

  // Port of AS 159 as implemented in R's rcont2. Cells are filled row by
  // row, left to right; each cell is drawn from its conditional
  // distribution given everything already placed, by inverse-CDF walking
  // outward from the conditional mode. Variable names follow the
  // reference: ia = remaining count of the current row, ie = remaining
  // grand total before this cell's column, ib/ic/id/ii are the 2x2
  // collapse of the not-yet-filled region.
  std::vector<int64_t> jwork(col_totals.begin(), col_totals.end() - 1);
  int64_t jc = ntotal;
  for (int l = 0; l < nr - 1; ++l) {
    int64_t ia = row_totals[l];
    int64_t ic = jc;
    jc -= ia;
    for (int m = 0; m < nc - 1; ++m) {
      const int64_t id = jwork[m];
      const int64_t ie = ic;
      ic -= id;
      const int64_t ib = ie - ia;
      const int64_t ii = ib - id;
      if (ie == 0) {
        for (int j = m; j < nc - 1; ++j) out->Set(l, j, 0);
        ia = 0;
        break;
      }
      double dummy = rng.UniformDouble();
      int64_t nlm;
      for (;;) {
        // Conditional mode of cell (l, m).
        nlm = static_cast<int64_t>(
            static_cast<double>(ia) * static_cast<double>(id) /
                static_cast<double>(ie) +
            0.5);
        double x = std::exp(lf[ia] + lf[ib] + lf[ic] + lf[id] - lf[ie] -
                            lf[nlm] - lf[id - nlm] - lf[ia - nlm] -
                            lf[ii + nlm]);
        if (x >= dummy) break;
        if (x == 0.0) {
          return Status::Internal("patefield: probability underflow");
        }
        double sumprb = x;
        double y = x;
        int64_t nll = nlm;
        bool lsp = false;
        do {
          // Walk upward from the mode.
          double j = static_cast<double>((id - nlm) * (ia - nlm));
          lsp = (j == 0.0);
          if (!lsp) {
            ++nlm;
            x = x * j /
                (static_cast<double>(nlm) * static_cast<double>(ii + nlm));
            sumprb += x;
            if (sumprb >= dummy) goto kFound;
          }
          bool lsm;
          do {
            // Walk downward from the mode.
            double j2 =
                static_cast<double>(nll) * static_cast<double>(ii + nll);
            lsm = (j2 == 0.0);
            if (!lsm) {
              --nll;
              y = y * j2 /
                  (static_cast<double>(id - nll) *
                   static_cast<double>(ia - nll));
              sumprb += y;
              if (sumprb >= dummy) {
                nlm = nll;
                goto kFound;
              }
              if (!lsp) break;  // alternate back to the upward walk
            }
          } while (!lsm);
        } while (!lsp);
        dummy = sumprb * rng.UniformDouble();
      }
    kFound:
      out->Set(l, m, nlm);
      ia -= nlm;
      jwork[m] -= nlm;
    }
    out->Set(l, nc - 1, ia);  // row remainder
  }
  // Last row: column remainders.
  int64_t last = row_totals[nr - 1];
  for (int m = 0; m < nc - 1; ++m) {
    out->Set(nr - 1, m, jwork[m]);
    last -= jwork[m];
  }
  out->Set(nr - 1, nc - 1, last);
  out->RebuildMargins();
  return Status::Ok();
}

StatusOr<PatefieldSampler> PatefieldSampler::Create(
    std::vector<int64_t> row_totals, std::vector<int64_t> col_totals) {
  if (row_totals.empty() || col_totals.empty()) {
    return Status::InvalidArgument("empty margins");
  }
  int64_t row_sum = 0;
  int64_t col_sum = 0;
  for (int64_t r : row_totals) {
    if (r < 0) return Status::InvalidArgument("negative row margin");
    row_sum += r;
  }
  for (int64_t c : col_totals) {
    if (c < 0) return Status::InvalidArgument("negative column margin");
    col_sum += c;
  }
  if (row_sum != col_sum) {
    return Status::InvalidArgument("row and column margins disagree: " +
                                   std::to_string(row_sum) + " vs " +
                                   std::to_string(col_sum));
  }
  PatefieldSampler sampler;
  sampler.row_totals_ = std::move(row_totals);
  sampler.col_totals_ = std::move(col_totals);
  sampler.total_ = row_sum;
  sampler.log_fact_ = LogFactorialTable(row_sum);
  return sampler;
}

Status PatefieldSampler::Sample(Rng& rng, Table2D* out) const {
  return SampleTableWithMargins(row_totals_, col_totals_, log_fact_, rng,
                                out);
}

}  // namespace hypdb
