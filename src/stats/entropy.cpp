#include "stats/entropy.h"

#include <cmath>

namespace hypdb {

double EntropyFromCounts(const std::vector<int64_t>& counts, int64_t total,
                         EntropyEstimator estimator) {
  if (total <= 0) return 0.0;
  const double n = static_cast<double>(total);
  const double log_n = std::log(n);
  double h = 0.0;
  int64_t support = 0;
  for (int64_t c : counts) {
    if (c <= 0) continue;
    ++support;
    const double dc = static_cast<double>(c);
    h -= dc * (std::log(dc) - log_n);
  }
  h /= n;
  if (estimator == EntropyEstimator::kMillerMadow && support > 0) {
    h += static_cast<double>(support - 1) / (2.0 * n);
  }
  return h < 0.0 ? 0.0 : h;
}

double EntropyOf(const GroupCounts& counts, EntropyEstimator estimator) {
  return EntropyFromCounts(counts.counts, counts.total, estimator);
}

}  // namespace hypdb
