#include "stats/mi_engine.h"

#include <algorithm>
#include <cmath>

namespace hypdb {
namespace {

std::vector<int> Normalize(std::vector<int> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

std::vector<int> SortedUnion(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return Normalize(std::move(out));
}

std::shared_ptr<CountEngine> WrapEngine(std::shared_ptr<CountEngine> base,
                                        const MiEngineOptions& options) {
  if (!options.materialize_focus) return base;
  CachingCountEngineOptions caching;
  caching.max_cached_cells = options.max_cached_cells;
  caching.policy = MakeCachePolicy(options.materialization);
  return std::make_shared<CachingCountEngine>(std::move(base), caching);
}

}  // namespace

MiEngine::MiEngine(TableView view, MiEngineOptions options)
    : view_(view),
      engine_(WrapEngine(std::make_shared<ViewCountProvider>(
                             view, ScanKernelOptions(options)),
                         options)),
      options_(options) {}

MiEngine::MiEngine(TableView view, std::shared_ptr<CountEngine> provider,
                   MiEngineOptions options, bool wrap_provider)
    : view_(std::move(view)),
      engine_(wrap_provider ? WrapEngine(std::move(provider), options)
                            : std::move(provider)),
      options_(options) {}

Status MiEngine::SetFocus(const std::vector<int>& cols) {
  if (!options_.materialize_focus) return Status::Ok();
  return engine_->Prefetch(Normalize(cols));
}

StatusOr<GroupCounts> MiEngine::CountsFor(const std::vector<int>& cols) {
  ++provider_calls_;
  return engine_->Counts(cols);
}

StatusOr<MiEngine::Entry> MiEngine::Lookup(std::vector<int> sorted_cols) {
  ++entropy_evals_;
  if (options_.cache_entropies) {
    auto it = cache_.find(sorted_cols);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }

  ++provider_calls_;
  HYPDB_ASSIGN_OR_RETURN(GroupCounts counts, engine_->Counts(sorted_cols));
  Entry entry;
  entry.plugin_entropy = EntropyOf(counts, EntropyEstimator::kPlugin);
  entry.support = counts.NumGroups();

  if (options_.cache_entropies) cache_.emplace(std::move(sorted_cols), entry);
  return entry;
}

double MiEngine::Derive(const Entry& e, EntropyEstimator estimator) const {
  if (estimator == EntropyEstimator::kMillerMadow && e.support > 0 &&
      NumRows() > 0) {
    return e.plugin_entropy +
           static_cast<double>(e.support - 1) /
               (2.0 * static_cast<double>(NumRows()));
  }
  return e.plugin_entropy;
}

StatusOr<double> MiEngine::Entropy(const std::vector<int>& cols) {
  return Entropy(cols, options_.estimator);
}

StatusOr<double> MiEngine::Entropy(const std::vector<int>& cols,
                                   EntropyEstimator estimator) {
  HYPDB_ASSIGN_OR_RETURN(Entry e, Lookup(Normalize(cols)));
  return Derive(e, estimator);
}

StatusOr<int64_t> MiEngine::Support(const std::vector<int>& cols) {
  HYPDB_ASSIGN_OR_RETURN(Entry e, Lookup(Normalize(cols)));
  return e.support;
}

StatusOr<double> MiEngine::CondEntropy(const std::vector<int>& of,
                                       const std::vector<int>& given) {
  HYPDB_ASSIGN_OR_RETURN(double h_joint, Entropy(SortedUnion(of, given)));
  HYPDB_ASSIGN_OR_RETURN(double h_given, Entropy(given));
  double h = h_joint - h_given;
  return h < 0.0 ? 0.0 : h;
}

StatusOr<double> MiEngine::Mi(int x, int y, const std::vector<int>& z) {
  return MiSets({x}, {y}, z, options_.estimator);
}

StatusOr<double> MiEngine::Mi(int x, int y, const std::vector<int>& z,
                              EntropyEstimator estimator) {
  return MiSets({x}, {y}, z, estimator);
}

StatusOr<double> MiEngine::MiSets(const std::vector<int>& xs,
                                  const std::vector<int>& ys,
                                  const std::vector<int>& z) {
  return MiSets(xs, ys, z, options_.estimator);
}

StatusOr<double> MiEngine::MiSets(const std::vector<int>& xs,
                                  const std::vector<int>& ys,
                                  const std::vector<int>& z,
                                  EntropyEstimator estimator) {
  std::vector<int> xz = SortedUnion(xs, z);
  std::vector<int> yz = SortedUnion(ys, z);
  std::vector<int> xyz = SortedUnion(xz, ys);
  // Joint set first: a caching count engine then derives the three
  // subset entropies by marginalizing the xyz summary (no extra scans).
  HYPDB_ASSIGN_OR_RETURN(double h_xyz, Entropy(xyz, estimator));
  HYPDB_ASSIGN_OR_RETURN(double h_xz, Entropy(xz, estimator));
  HYPDB_ASSIGN_OR_RETURN(double h_yz, Entropy(yz, estimator));
  HYPDB_ASSIGN_OR_RETURN(double h_z, Entropy(z, estimator));
  double mi = h_xz + h_yz - h_xyz - h_z;
  // Estimation noise can push the estimate slightly negative.
  return mi < 0.0 ? 0.0 : mi;
}

}  // namespace hypdb
