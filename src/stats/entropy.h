// Entropy estimation from counts (paper Sec. 2 / Appendix 10.1).
//
// All entropies are in nats (natural log). The population distribution Pr
// is unknown; entropies are estimated from the sample, optionally with the
// Miller-Madow bias correction Ĥ_MM = Ĥ_plugin + (m-1)/(2n) where m is the
// number of distinct observed values.

#ifndef HYPDB_STATS_ENTROPY_H_
#define HYPDB_STATS_ENTROPY_H_

#include <cstdint>
#include <vector>

#include "dataframe/group_by.h"

namespace hypdb {

enum class EntropyEstimator {
  kPlugin,       // empirical -Σ p̂ log p̂
  kMillerMadow,  // plugin + (m-1)/(2n)
};

/// Entropy of the empirical distribution given by `counts` over `total`
/// observations. Zero counts are permitted and ignored; `m` counts only
/// strictly-positive cells. Returns 0 for total <= 0.
double EntropyFromCounts(const std::vector<int64_t>& counts, int64_t total,
                         EntropyEstimator estimator);

/// Entropy of a GroupCounts summary (one group = one support point).
double EntropyOf(const GroupCounts& counts, EntropyEstimator estimator);

}  // namespace hypdb

#endif  // HYPDB_STATS_ENTROPY_H_
