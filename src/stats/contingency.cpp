#include "stats/contingency.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dataframe/group_by.h"

namespace hypdb {

void Table2D::RebuildMargins() {
  row_margins_.assign(num_rows_, 0);
  col_margins_.assign(num_cols_, 0);
  total_ = 0;
  for (int r = 0; r < num_rows_; ++r) {
    for (int c = 0; c < num_cols_; ++c) {
      int64_t v = at(r, c);
      row_margins_[r] += v;
      col_margins_[c] += v;
      total_ += v;
    }
  }
}

double Table2D::MutualInformation(EntropyEstimator estimator) const {
  if (total_ <= 0) return 0.0;
  double h_rows = EntropyFromCounts(row_margins_, total_, estimator);
  double h_cols = EntropyFromCounts(col_margins_, total_, estimator);
  double h_joint = EntropyFromCounts(cells_, total_, estimator);
  double mi = h_rows + h_cols - h_joint;
  return mi < 0.0 ? 0.0 : mi;
}

double Table2D::PearsonStatistic() const {
  if (total_ <= 0) return 0.0;
  double stat = 0.0;
  for (int r = 0; r < num_rows_; ++r) {
    if (row_margins_[r] == 0) continue;
    for (int c = 0; c < num_cols_; ++c) {
      if (col_margins_[c] == 0) continue;
      double expected = static_cast<double>(row_margins_[r]) *
                        static_cast<double>(col_margins_[c]) /
                        static_cast<double>(total_);
      double diff = static_cast<double>(at(r, c)) - expected;
      stat += diff * diff / expected;
    }
  }
  return stat;
}

double Table2D::RowEntropy(EntropyEstimator estimator) const {
  return EntropyFromCounts(row_margins_, total_, estimator);
}

double Table2D::ColEntropy(EntropyEstimator estimator) const {
  return EntropyFromCounts(col_margins_, total_, estimator);
}

double StratifiedTable::CmiStatistic(EntropyEstimator estimator) const {
  if (total <= 0) return 0.0;
  double cmi = 0.0;
  for (const auto& s : strata) {
    double pr_z =
        static_cast<double>(s.table.total()) / static_cast<double>(total);
    cmi += pr_z * s.table.MutualInformation(estimator);
  }
  return cmi;
}

double StratifiedTable::PearsonStatistic() const {
  double stat = 0.0;
  for (const auto& s : strata) stat += s.table.PearsonStatistic();
  return stat;
}

int64_t StratifiedTable::DegreesOfFreedom() const {
  int64_t df = static_cast<int64_t>(std::max(num_t_values - 1, 1)) *
               static_cast<int64_t>(std::max(num_y_values - 1, 1)) *
               static_cast<int64_t>(std::max(NumStrata(), 1));
  return df;
}

StatusOr<StratifiedTable> BuildStratifiedSets(
    const TableView& view, const std::vector<int>& t_cols,
    const std::vector<int>& y_cols, const std::vector<int>& z_cols) {
  // One pass: count(*) GROUP BY (Z..., T..., Y...), then split by
  // Z-prefix and compact the compound T / Y values.
  std::vector<int> all_cols = z_cols;
  all_cols.insert(all_cols.end(), t_cols.begin(), t_cols.end());
  all_cols.insert(all_cols.end(), y_cols.begin(), y_cols.end());
  HYPDB_ASSIGN_OR_RETURN(GroupCounts counts, CountBy(view, all_cols));
  return BuildStratifiedFromCounts(counts, static_cast<int>(z_cols.size()),
                                   static_cast<int>(t_cols.size()),
                                   static_cast<int>(y_cols.size()));
}

StratifiedTable BuildStratifiedFromCounts(const GroupCounts& counts,
                                          int z_count, int t_count,
                                          int y_count) {
  std::vector<int> t_positions(t_count);
  for (int i = 0; i < t_count; ++i) t_positions[i] = z_count + i;
  std::vector<int> y_positions(y_count);
  for (int i = 0; i < y_count; ++i) y_positions[i] = z_count + t_count + i;
  std::vector<int> z_positions(z_count);
  for (int i = 0; i < z_count; ++i) z_positions[i] = i;
  TupleCodec t_codec = counts.codec.Project(t_positions);
  TupleCodec y_codec = counts.codec.Project(y_positions);
  TupleCodec z_codec = counts.codec.Project(z_positions);

  // Compact compound T / Y keys to the values observed in this view so
  // stratum tables are small even when the domain is large.
  std::unordered_map<uint64_t, int> t_map;
  std::unordered_map<uint64_t, int> y_map;
  auto extract = [&](uint64_t key, const std::vector<int>& positions,
                     const TupleCodec& codec) {
    std::vector<int32_t> codes(positions.size());
    for (size_t i = 0; i < positions.size(); ++i) {
      codes[i] = counts.codec.DecodeAt(key, positions[i]);
    }
    return codec.EncodeCodes(codes);
  };
  std::vector<int> t_of(counts.keys.size());
  std::vector<int> y_of(counts.keys.size());
  std::vector<uint64_t> z_of(counts.keys.size());
  for (size_t g = 0; g < counts.keys.size(); ++g) {
    uint64_t key = counts.keys[g];
    uint64_t tk = extract(key, t_positions, t_codec);
    uint64_t yk = extract(key, y_positions, y_codec);
    z_of[g] = extract(key, z_positions, z_codec);
    auto [ti, t_new] = t_map.emplace(tk, static_cast<int>(t_map.size()));
    auto [yi, y_new] = y_map.emplace(yk, static_cast<int>(y_map.size()));
    t_of[g] = ti->second;
    y_of[g] = yi->second;
  }
  const int num_t = static_cast<int>(t_map.size());
  const int num_y = static_cast<int>(y_map.size());

  StratifiedTable out;
  out.total = counts.total;
  out.num_t_values = num_t;
  out.num_y_values = num_y;

  std::unordered_map<uint64_t, size_t> stratum_of;
  for (size_t g = 0; g < counts.keys.size(); ++g) {
    auto [it, inserted] = stratum_of.emplace(z_of[g], out.strata.size());
    if (inserted) {
      Stratum s;
      s.z_key = z_of[g];
      s.table = Table2D(num_t, num_y);
      out.strata.push_back(std::move(s));
    }
    out.strata[it->second].table.Add(t_of[g], y_of[g], counts.counts[g]);
  }
  for (auto& s : out.strata) s.table.RebuildMargins();
  std::sort(out.strata.begin(), out.strata.end(),
            [](const Stratum& a, const Stratum& b) {
              return a.z_key < b.z_key;
            });
  return out;
}

StatusOr<StratifiedTable> BuildStratified(const TableView& view, int t_col,
                                          int y_col,
                                          const std::vector<int>& z_cols) {
  return BuildStratifiedSets(view, {t_col}, {y_col}, z_cols);
}

}  // namespace hypdb
