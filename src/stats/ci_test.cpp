#include "stats/ci_test.h"

#include <algorithm>
#include <cmath>

#include "stats/patefield.h"
#include "stats/special_math.h"
#include "util/trace.h"

namespace hypdb {

const char* CiMethodName(CiMethod method) {
  switch (method) {
    case CiMethod::kGTest:
      return "chi2(G)";
    case CiMethod::kPearson:
      return "pearson";
    case CiMethod::kMit:
      return "MIT";
    case CiMethod::kMitSampled:
      return "MIT(sampling)";
    case CiMethod::kHybrid:
      return "HyMIT";
  }
  return "?";
}

CiTester::CiTester(MiEngine* engine, CiOptions options, uint64_t seed)
    : engine_(engine), options_(options), rng_(seed) {}

StatusOr<StratifiedTable> CiTester::Stratify(const std::vector<int>& xs,
                                             const std::vector<int>& ys,
                                             const std::vector<int>& z) {
  // Counts come from the engine's CountEngine, so stratified summaries
  // share the cache / cube with the entropy path instead of re-scanning.
  std::vector<int> all = z;
  all.insert(all.end(), xs.begin(), xs.end());
  all.insert(all.end(), ys.begin(), ys.end());
  HYPDB_ASSIGN_OR_RETURN(GroupCounts counts, engine_->CountsFor(all));
  return BuildStratifiedFromCounts(counts, static_cast<int>(z.size()),
                                   static_cast<int>(xs.size()),
                                   static_cast<int>(ys.size()));
}

StatusOr<CiResult> CiTester::Test(int x, int y, const std::vector<int>& z) {
  return TestSets({x}, {y}, z);
}

StatusOr<CiResult> CiTester::TestSets(const std::vector<int>& xs,
                                      const std::vector<int>& ys,
                                      const std::vector<int>& z) {
  if (xs.empty() || ys.empty()) {
    return Status::InvalidArgument("CI test requires non-empty sides");
  }
  for (int x : xs) {
    for (int y : ys) {
      if (x == y) {
        return Status::InvalidArgument("CI test sides must be disjoint");
      }
    }
  }
  for (int c : z) {
    for (int x : xs) {
      if (c == x) {
        return Status::InvalidArgument(
            "conditioning set must not contain the tested variables");
      }
    }
    for (int y : ys) {
      if (c == y) {
        return Status::InvalidArgument(
            "conditioning set must not contain the tested variables");
      }
    }
  }
  ++num_tests_;
  // Deep trace level only: discovery runs hundreds of these. arg0 packs
  // the side/conditioning-set sizes, arg1 the first tested column pair.
  TraceSpanScope span(
      TraceEventKind::kCiTest, 2,
      (static_cast<uint64_t>(xs.size()) << 32) |
          (static_cast<uint64_t>(ys.size()) << 16) |
          static_cast<uint64_t>(z.size() & 0xffff),
      (static_cast<uint64_t>(static_cast<uint32_t>(xs[0])) << 32) |
          static_cast<uint64_t>(static_cast<uint32_t>(ys[0])));
  switch (options_.method) {
    case CiMethod::kGTest:
      return RunGTest(xs, ys, z);
    case CiMethod::kPearson:
      return RunPearson(xs, ys, z);
    case CiMethod::kMit:
      return RunMit(xs, ys, z, /*sampled=*/false);
    case CiMethod::kMitSampled:
      return RunMit(xs, ys, z, /*sampled=*/true);
    case CiMethod::kHybrid: {
      // HyMIT: χ² when the data is dense enough for the asymptotics.
      HYPDB_ASSIGN_OR_RETURN(int64_t rx, engine_->Support(xs));
      HYPDB_ASSIGN_OR_RETURN(int64_t ry, engine_->Support(ys));
      int64_t strata = 1;
      if (!z.empty()) {
        HYPDB_ASSIGN_OR_RETURN(strata, engine_->Support(z));
      }
      int64_t df = std::max<int64_t>(rx - 1, 1) *
                   std::max<int64_t>(ry - 1, 1) * std::max<int64_t>(strata, 1);
      double n = static_cast<double>(engine_->NumRows());
      if (static_cast<double>(df) <= n / options_.hybrid_beta) {
        return RunGTest(xs, ys, z);
      }
      bool sampled = strata > options_.sampled_strata_threshold;
      return RunMit(xs, ys, z, sampled);
    }
  }
  return Status::Internal("unknown CI method");
}

StatusOr<bool> CiTester::Independent(int x, int y, const std::vector<int>& z,
                                     double alpha) {
  HYPDB_ASSIGN_OR_RETURN(CiResult r, Test(x, y, z));
  return r.IndependentAt(alpha);
}

StatusOr<CiResult> CiTester::RunGTest(const std::vector<int>& xs,
                                      const std::vector<int>& ys,
                                      const std::vector<int>& z) {
  HYPDB_ASSIGN_OR_RETURN(
      double mi, engine_->MiSets(xs, ys, z, EntropyEstimator::kPlugin));
  HYPDB_ASSIGN_OR_RETURN(int64_t rx, engine_->Support(xs));
  HYPDB_ASSIGN_OR_RETURN(int64_t ry, engine_->Support(ys));
  int64_t strata = 1;
  if (!z.empty()) {
    HYPDB_ASSIGN_OR_RETURN(strata, engine_->Support(z));
  }
  CiResult result;
  result.method_used = CiMethod::kGTest;
  result.statistic = mi;
  result.df = std::max<int64_t>(rx - 1, 1) * std::max<int64_t>(ry - 1, 1) *
              std::max<int64_t>(strata, 1);
  double g = 2.0 * static_cast<double>(engine_->NumRows()) * mi;
  result.p_value =
      ChiSquaredSurvival(static_cast<double>(result.df), g);
  result.p_low = result.p_high = result.p_value;
  return result;
}

StatusOr<CiResult> CiTester::RunPearson(const std::vector<int>& xs,
                                        const std::vector<int>& ys,
                                        const std::vector<int>& z) {
  HYPDB_ASSIGN_OR_RETURN(StratifiedTable table, Stratify(xs, ys, z));
  CiResult result;
  result.method_used = CiMethod::kPearson;
  result.statistic = table.PearsonStatistic();
  result.df = table.DegreesOfFreedom();
  result.p_value =
      ChiSquaredSurvival(static_cast<double>(result.df), result.statistic);
  result.p_low = result.p_high = result.p_value;
  return result;
}

StatusOr<CiResult> CiTester::RunMit(const std::vector<int>& xs,
                                    const std::vector<int>& ys,
                                    const std::vector<int>& z, bool sampled) {
  HYPDB_ASSIGN_OR_RETURN(StratifiedTable table, Stratify(xs, ys, z));
  const int num_strata = table.NumStrata();

  std::vector<int> chosen(num_strata);
  for (int i = 0; i < num_strata; ++i) chosen[i] = i;

  if (sampled) {
    // Sec. 5 "sampling from groups": a stratum can only move the statistic
    // by Pr(z)·max(Ĥ_z(X), Ĥ_z(Y)); sample strata by that weight.
    std::vector<double> weights(num_strata);
    int positive = 0;
    for (int i = 0; i < num_strata; ++i) {
      const Table2D& t = table.strata[i].table;
      double pr_z = table.total > 0 ? static_cast<double>(t.total()) /
                                          static_cast<double>(table.total)
                                    : 0.0;
      weights[i] = pr_z * std::max(t.RowEntropy(EntropyEstimator::kPlugin),
                                   t.ColEntropy(EntropyEstimator::kPlugin));
      if (weights[i] > 0.0) ++positive;
    }
    int k = std::max(
        options_.min_sampled_strata,
        static_cast<int>(std::ceil(options_.strata_sample_factor *
                                   std::log(1.0 + num_strata))));
    k = std::min(k, positive);
    if (k <= 0) {
      // No stratum can contribute: the conditional MI is exactly 0.
      CiResult result;
      result.method_used = CiMethod::kMitSampled;
      result.df = table.DegreesOfFreedom();
      return result;
    }
    // Weighted sampling without replacement.
    chosen.clear();
    std::vector<double> w = weights;
    for (int draw = 0; draw < k; ++draw) {
      int idx = rng_.WeightedIndex(w);
      chosen.push_back(idx);
      w[idx] = 0.0;
    }
    std::sort(chosen.begin(), chosen.end());
  }

  return MitOnStrata(table, chosen, sampled);
}

CiResult CiTester::MitOnStrata(const StratifiedTable& table,
                               const std::vector<int>& strata_idx,
                               bool sampled) {
  const EntropyEstimator est = options_.mit_estimator;
  const int m = options_.permutations;

  // Stratum weights renormalized over the selection.
  int64_t selected_total = 0;
  int64_t max_stratum_total = 0;
  for (int i : strata_idx) {
    selected_total += table.strata[i].table.total();
    max_stratum_total =
        std::max(max_stratum_total, table.strata[i].table.total());
  }

  CiResult result;
  result.method_used = sampled ? CiMethod::kMitSampled : CiMethod::kMit;
  result.df = table.DegreesOfFreedom();
  if (selected_total == 0 || m <= 0) return result;

  // Observed statistic over the selected strata (Alg. 2 line 1).
  double s0 = 0.0;
  for (int i : strata_idx) {
    const Table2D& t = table.strata[i].table;
    double pr_z = static_cast<double>(t.total()) /
                  static_cast<double>(selected_total);
    s0 += pr_z * t.MutualInformation(est);
  }
  result.statistic = s0;

  // Permutation replicates: per stratum, draw m tables with the observed
  // margins (Alg. 2 lines 2-5), then aggregate s_i = Σ_z Pr(z)·Î_Ci
  // (lines 7-10).
  std::vector<double> log_fact = LogFactorialTable(max_stratum_total);
  std::vector<double> replicate(m, 0.0);
  Table2D sample;
  for (int i : strata_idx) {
    const Table2D& t = table.strata[i].table;
    double pr_z = static_cast<double>(t.total()) /
                  static_cast<double>(selected_total);
    if (t.total() == 0) continue;
    // Degenerate margins admit a single table: MI is always 0.
    int nonzero_rows = 0;
    int nonzero_cols = 0;
    for (int64_t v : t.row_margins()) nonzero_rows += v > 0 ? 1 : 0;
    for (int64_t v : t.col_margins()) nonzero_cols += v > 0 ? 1 : 0;
    if (nonzero_rows <= 1 || nonzero_cols <= 1) continue;
    for (int rep = 0; rep < m; ++rep) {
      Status st = SampleTableWithMargins(t.row_margins(), t.col_margins(),
                                         log_fact, rng_, &sample);
      if (!st.ok()) continue;  // underflow: skip this replicate's stratum
      replicate[rep] += pr_z * sample.MutualInformation(est);
    }
  }

  // Mid-p convention: contingency tables are discrete, so exact ties
  // between the replicate statistic and s0 carry real probability mass;
  // counting them half keeps the p-value calibrated (the paper's strict
  // ">" is anti-conservative, ">=" alone over-covers).
  double exceed = 0.0;
  for (double s : replicate) {
    if (s > s0 + 1e-12) {
      exceed += 1.0;
    } else if (s >= s0 - 1e-12) {
      exceed += 0.5;
    }
  }
  double p = exceed / static_cast<double>(m);
  double half_width =
      1.96 * std::sqrt(std::max(p * (1.0 - p), 0.0) / static_cast<double>(m));
  result.p_value = p;
  result.p_low = std::max(0.0, p - half_width);
  result.p_high = std::min(1.0, p + half_width);
  return result;
}

}  // namespace hypdb
