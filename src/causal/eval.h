// Quality metrics for discovery algorithms (paper Sec. 7.4: F1 of parent
// recovery, all nodes or only nodes with ≥ 2 parents).

#ifndef HYPDB_CAUSAL_EVAL_H_
#define HYPDB_CAUSAL_EVAL_H_

#include <map>
#include <vector>

#include "graph/dag.h"

namespace hypdb {

struct F1Stats {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;

  double Precision() const {
    int64_t denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double Recall() const {
    int64_t denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double F1() const {
    double p = Precision();
    double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  void Accumulate(const F1Stats& other) {
    true_positives += other.true_positives;
    false_positives += other.false_positives;
    false_negatives += other.false_negatives;
  }
};

/// Compares predicted parent sets against the true DAG, micro-averaged
/// over `eval_nodes`. Nodes absent from `predicted` are treated as
/// all-missed (recall hit). `min_parents` restricts evaluation to nodes
/// with at least that many true parents (Fig. 5c uses 2).
F1Stats ParentRecoveryF1(const Dag& truth,
                         const std::map<int, std::vector<int>>& predicted,
                         const std::vector<int>& eval_nodes,
                         int min_parents = 0);

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_EVAL_H_
