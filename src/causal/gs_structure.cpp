#include "causal/gs_structure.h"

#include <algorithm>
#include <map>

#include "causal/markov_blanket.h"
#include "causal/subsets.h"

namespace hypdb {
namespace {

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

std::vector<int> Minus(const std::vector<int>& v,
                       std::initializer_list<int> drop) {
  std::vector<int> out;
  out.reserve(v.size());
  for (int x : v) {
    if (std::find(drop.begin(), drop.end(), x) == drop.end()) {
      out.push_back(x);
    }
  }
  return out;
}

// Meek rules R1-R3 until fixpoint. (R4 only fires with background
// knowledge edges, which this learner never produces.)
void MeekPropagate(Pdag* g, const std::vector<int>& variables) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (int y : variables) {
      for (int z : variables) {
        if (y == z || !g->HasUndirected(y, z)) continue;
        // R1: x -> y, y - z, x and z non-adjacent  =>  y -> z.
        for (int x : variables) {
          if (x == y || x == z) continue;
          if (g->HasDirected(x, y) && !g->Adjacent(x, z)) {
            if (g->Direct(y, z)) changed = true;
            break;
          }
        }
        if (!g->HasUndirected(y, z)) continue;
        // R2: y -> w -> z with y - z  =>  y -> z.
        for (int w : variables) {
          if (w == y || w == z) continue;
          if (g->HasDirected(y, w) && g->HasDirected(w, z)) {
            if (g->Direct(y, z)) changed = true;
            break;
          }
        }
        if (!g->HasUndirected(y, z)) continue;
        // R3: y - w1, y - w2, w1 -> z, w2 -> z, w1 and w2 non-adjacent
        //     => y -> z.
        for (int w1 : variables) {
          if (w1 == y || w1 == z || !g->HasUndirected(y, w1) ||
              !g->HasDirected(w1, z)) {
            continue;
          }
          bool fired = false;
          for (int w2 : variables) {
            if (w2 == y || w2 == z || w2 == w1) continue;
            if (g->HasUndirected(y, w2) && g->HasDirected(w2, z) &&
                !g->Adjacent(w1, w2)) {
              if (g->Direct(y, z)) changed = true;
              fired = true;
              break;
            }
          }
          if (fired) break;
        }
      }
    }
  }
}

}  // namespace

StatusOr<GsStructureResult> LearnStructureGs(
    CiOracle& oracle, const std::vector<int>& variables,
    const GsStructureOptions& options) {
  const int64_t tests_before = oracle.num_tests();
  const CountEngineStats counts_before = oracle.count_stats();
  int max_id = 0;
  for (int v : variables) max_id = std::max(max_id, v);
  GsStructureResult result;
  result.pdag = Pdag(max_id + 1);

  // --- Step 1: Markov boundaries.
  std::map<int, std::vector<int>> mb;
  for (int v : variables) {
    std::vector<int> pool = Minus(variables, {v});
    std::vector<int> blanket;
    if (options.use_iamb) {
      HYPDB_ASSIGN_OR_RETURN(blanket, IambMb(oracle, v, pool));
    } else {
      HYPDB_ASSIGN_OR_RETURN(blanket, GrowShrinkMb(oracle, v, pool));
    }
    if (static_cast<int>(blanket.size()) > options.max_blanket) {
      blanket.resize(options.max_blanket);
    }
    mb[v] = blanket;
    result.blankets.push_back(std::move(blanket));
  }

  // --- Step 2: skeleton. x, y are direct neighbors iff no subset of the
  // smaller boundary separates them.
  for (size_t i = 0; i < variables.size(); ++i) {
    for (size_t j = i + 1; j < variables.size(); ++j) {
      int x = variables[i];
      int y = variables[j];
      if (!Contains(mb[x], y) && !Contains(mb[y], x)) continue;
      std::vector<int> pool_x = Minus(mb[x], {y});
      std::vector<int> pool_y = Minus(mb[y], {x});
      const std::vector<int>& pool =
          pool_x.size() <= pool_y.size() ? pool_x : pool_y;
      HYPDB_ASSIGN_OR_RETURN(
          bool separable,
          ForEachSubset(pool, options.max_sepset,
                        [&](const std::vector<int>& s) -> StatusOr<bool> {
                          return oracle.Independent(x, y, s);
                        }));
      if (!separable) result.pdag.SetUndirected(x, y);
    }
  }

  // --- Step 3: colliders. For y - x - z with y, z non-adjacent: if some
  // S separates y from z but S ∪ {x} does not, x is a collider.
  for (int x : variables) {
    std::vector<int> neighbors = result.pdag.Neighbors(x);
    for (size_t a = 0; a < neighbors.size(); ++a) {
      for (size_t b = a + 1; b < neighbors.size(); ++b) {
        int y = neighbors[a];
        int z = neighbors[b];
        if (result.pdag.Adjacent(y, z)) continue;
        if (result.pdag.HasDirected(y, x) && result.pdag.HasDirected(z, x)) {
          continue;  // already oriented as a collider
        }
        std::vector<int> pool_y = Minus(mb[y], {x, z});
        std::vector<int> pool_z = Minus(mb[z], {x, y});
        const std::vector<int>& pool =
            pool_y.size() <= pool_z.size() ? pool_y : pool_z;
        HYPDB_ASSIGN_OR_RETURN(
            bool is_collider,
            ForEachSubset(
                pool, options.max_sepset,
                [&](const std::vector<int>& s) -> StatusOr<bool> {
                  HYPDB_ASSIGN_OR_RETURN(bool sep,
                                         oracle.Independent(y, z, s));
                  if (!sep) return false;
                  std::vector<int> s_x = s;
                  s_x.push_back(x);
                  HYPDB_ASSIGN_OR_RETURN(bool sep_x,
                                         oracle.Independent(y, z, s_x));
                  return !sep_x;
                }));
        if (is_collider) {
          result.pdag.Direct(y, x);
          result.pdag.Direct(z, x);
        }
      }
    }
  }

  // --- Step 4: Meek propagation.
  MeekPropagate(&result.pdag, variables);

  result.tests_used = oracle.num_tests() - tests_before;
  result.count_stats = oracle.count_stats() - counts_before;
  return result;
}

}  // namespace hypdb
