#include "causal/markov_blanket.h"

#include <algorithm>

namespace hypdb {
namespace {

// Shared shrink phase: evict any member independent of the target given
// the remaining members, repeating until stable.
Status Shrink(CiOracle& oracle, int target, std::vector<int>* blanket) {
  // Every shrink test runs within target ∪ blanket; hint the count engine
  // so one materialized summary serves the whole phase (Sec. 6).
  std::vector<int> focus = *blanket;
  focus.push_back(target);
  HYPDB_RETURN_IF_ERROR(oracle.Focus(focus));
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < blanket->size(); ++i) {
      std::vector<int> rest;
      rest.reserve(blanket->size() - 1);
      for (size_t j = 0; j < blanket->size(); ++j) {
        if (j != i) rest.push_back((*blanket)[j]);
      }
      HYPDB_ASSIGN_OR_RETURN(bool indep,
                             oracle.Independent(target, (*blanket)[i], rest));
      if (indep) {
        blanket->erase(blanket->begin() + i);
        changed = true;
        break;  // restart: the conditioning sets changed
      }
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<int>> GrowShrinkMb(CiOracle& oracle, int target,
                                        const std::vector<int>& candidates) {
  std::vector<int> blanket;
  std::vector<bool> in_blanket(candidates.size(), false);

  // Grow until a full pass admits nothing.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (in_blanket[i] || candidates[i] == target) continue;
      HYPDB_ASSIGN_OR_RETURN(
          bool indep, oracle.Independent(target, candidates[i], blanket));
      if (!indep) {
        in_blanket[i] = true;
        blanket.push_back(candidates[i]);
        changed = true;
      }
    }
  }

  HYPDB_RETURN_IF_ERROR(Shrink(oracle, target, &blanket));
  std::sort(blanket.begin(), blanket.end());
  return blanket;
}

StatusOr<std::vector<int>> IambMb(CiOracle& oracle, int target,
                                  const std::vector<int>& candidates) {
  std::vector<int> blanket;
  std::vector<bool> in_blanket(candidates.size(), false);

  // Grow: admit the strongest dependent candidate each round.
  for (;;) {
    int best = -1;
    double best_assoc = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (in_blanket[i] || candidates[i] == target) continue;
      HYPDB_ASSIGN_OR_RETURN(
          double assoc, oracle.Association(target, candidates[i], blanket));
      if (assoc > best_assoc) {
        best_assoc = assoc;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // every remaining candidate is independent
    in_blanket[best] = true;
    blanket.push_back(candidates[best]);
  }

  HYPDB_RETURN_IF_ERROR(Shrink(oracle, target, &blanket));
  std::sort(blanket.begin(), blanket.end());
  return blanket;
}

}  // namespace hypdb
