// FGS: full structure learning via Grow-Shrink Markov boundaries
// (Margaritis & Thrun 2000) — the constraint-based baseline of Sec. 7.4.
//
// Pipeline: (1) learn MB(X) for every variable; (2) resolve direct
// neighbors inside each boundary by exhaustive separating-set search;
// (3) orient colliders X→Y←Z via the same (⊥ without, ⊮ with) collider
// signature the CD algorithm uses; (4) propagate with Meek rules R1-R3.
// Edges whose direction is not identified remain undirected (Markov
// equivalence class).

#ifndef HYPDB_CAUSAL_GS_STRUCTURE_H_
#define HYPDB_CAUSAL_GS_STRUCTURE_H_

#include <vector>

#include "causal/ci_oracle.h"
#include "causal/pdag.h"
#include "util/statusor.h"

namespace hypdb {

struct GsStructureOptions {
  int max_sepset = -1;   // cap on separating-set size (-1 = unlimited)
  bool use_iamb = false; // IAMB instead of Grow-Shrink for boundaries
  int max_blanket = 16;
};

struct GsStructureResult {
  Pdag pdag;
  /// Markov boundary learned for each variable (indexed as `variables`).
  std::vector<std::vector<int>> blankets;
  int64_t tests_used = 0;
  /// Count-engine work consumed (oracle delta, Fig. 6c accounting).
  CountEngineStats count_stats;
};

/// Learns the structure over `variables` (oracle ids; the Pdag is sized
/// max(variables)+1 and uses the ids directly).
StatusOr<GsStructureResult> LearnStructureGs(
    CiOracle& oracle, const std::vector<int>& variables,
    const GsStructureOptions& options = {});

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_GS_STRUCTURE_H_
