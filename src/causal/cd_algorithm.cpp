#include "causal/cd_algorithm.h"

#include <algorithm>
#include <map>

#include "causal/markov_blanket.h"
#include "causal/subsets.h"

namespace hypdb {
namespace {

StatusOr<std::vector<int>> LearnBlanket(CiOracle& oracle, int target,
                                        const std::vector<int>& candidates,
                                        const CdOptions& options) {
  std::vector<int> mb;
  if (options.use_iamb) {
    HYPDB_ASSIGN_OR_RETURN(mb, IambMb(oracle, target, candidates));
  } else {
    HYPDB_ASSIGN_OR_RETURN(mb, GrowShrinkMb(oracle, target, candidates));
  }
  if (static_cast<int>(mb.size()) > options.max_blanket) {
    mb.resize(options.max_blanket);
  }
  return mb;
}

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

StatusOr<CdResult> DiscoverParents(CiOracle& oracle, int treatment,
                                   const std::vector<int>& candidates,
                                   const CdOptions& options,
                                   const std::vector<int>& outcomes) {
  if (Contains(candidates, treatment)) {
    return Status::InvalidArgument("candidates must not contain treatment");
  }
  const int64_t tests_before = oracle.num_tests();
  const CountEngineStats counts_before = oracle.count_stats();
  CdResult result;

  HYPDB_ASSIGN_OR_RETURN(result.markov_blanket,
                         LearnBlanket(oracle, treatment, candidates, options));
  const std::vector<int>& mb_t = result.markov_blanket;

  // Blankets of MB(T) members are learned over candidates ∪ {T} − {Z}.
  std::map<int, std::vector<int>> blanket_cache;
  auto blanket_of = [&](int z) -> StatusOr<std::vector<int>> {
    auto it = blanket_cache.find(z);
    if (it != blanket_cache.end()) return it->second;
    std::vector<int> pool;
    pool.reserve(candidates.size() + 1);
    for (int c : candidates) {
      if (c != z) pool.push_back(c);
    }
    pool.push_back(treatment);
    HYPDB_ASSIGN_OR_RETURN(std::vector<int> mb,
                           LearnBlanket(oracle, z, pool, options));
    blanket_cache.emplace(z, mb);
    return mb;
  };

  // ---- Phase I: collect Z (and W) for which T is a collider between
  // them: (Z ⊥ W | S) ∧ (Z ⊮ W | S ∪ {T}) for some S ⊆ MB(Z) − {T}.
  std::vector<int> collected;
  for (int z : mb_t) {
    if (Contains(collected, z)) continue;
    HYPDB_ASSIGN_OR_RETURN(std::vector<int> mb_z, blanket_of(z));
    // Focus the oracle on the attribute set this phase touches (Sec. 6
    // materialization).
    std::vector<int> focus = mb_z;
    focus.insert(focus.end(), mb_t.begin(), mb_t.end());
    focus.push_back(treatment);
    focus.push_back(z);
    HYPDB_RETURN_IF_ERROR(oracle.Focus(focus));

    std::vector<int> pool;  // MB(Z) − {T}
    for (int s : mb_z) {
      if (s != treatment) pool.push_back(s);
    }
    int found_w = -1;
    HYPDB_ASSIGN_OR_RETURN(
        bool found,
        ForEachSubset(
            pool, options.max_sepset,
            [&](const std::vector<int>& s) -> StatusOr<bool> {
              for (int w : mb_t) {
                if (w == z || Contains(s, w)) continue;
                HYPDB_ASSIGN_OR_RETURN(bool sep,
                                       oracle.Independent(z, w, s));
                if (!sep) continue;
                std::vector<int> s_t = s;
                s_t.push_back(treatment);
                HYPDB_ASSIGN_OR_RETURN(
                    bool sep_t,
                    oracle.IndependentStrict(z, w, s_t,
                                             options.collider_alpha_scale));
                if (!sep_t) {
                  found_w = w;
                  return true;
                }
              }
              return false;
            }));
    if (found) {
      if (!Contains(collected, z)) collected.push_back(z);
      if (!Contains(collected, found_w)) collected.push_back(found_w);
    }
  }
  std::sort(collected.begin(), collected.end());
  result.phase1_candidates = collected;

  // ---- Phase II: evict candidates separable from T within MB(T) —
  // those were spouses (parents of children), not parents.
  // Every phase-II test conditions within MB(T), so one materialized
  // summary over MB(T) ∪ {T} ∪ candidates serves the whole phase.
  {
    std::vector<int> focus = mb_t;
    focus.push_back(treatment);
    for (int c : collected) {
      if (!Contains(focus, c)) focus.push_back(c);
    }
    HYPDB_RETURN_IF_ERROR(oracle.Focus(focus));
  }
  std::vector<int> parents;
  for (int c : collected) {
    std::vector<int> pool;  // MB(T) − {C}
    for (int s : mb_t) {
      if (s != c) pool.push_back(s);
    }
    HYPDB_ASSIGN_OR_RETURN(
        bool separable,
        ForEachSubset(pool, options.max_sepset,
                      [&](const std::vector<int>& s) -> StatusOr<bool> {
                        return oracle.Independent(treatment, c, s);
                      }));
    if (!separable) parents.push_back(c);
  }

  if (parents.empty()) {
    // Identifiability assumption failed (Sec. 4): fall back to the full
    // boundary minus the outcomes.
    result.fell_back_to_blanket = true;
    for (int z : mb_t) {
      if (!Contains(outcomes, z)) result.parents.push_back(z);
    }
  } else {
    result.parents = std::move(parents);
  }
  std::sort(result.parents.begin(), result.parents.end());
  result.tests_used = oracle.num_tests() - tests_before;
  result.count_stats = oracle.count_stats() - counts_before;
  return result;
}

}  // namespace hypdb
