#include "causal/eval.h"

#include <algorithm>

namespace hypdb {

F1Stats ParentRecoveryF1(const Dag& truth,
                         const std::map<int, std::vector<int>>& predicted,
                         const std::vector<int>& eval_nodes,
                         int min_parents) {
  F1Stats stats;
  static const std::vector<int> kEmpty;
  for (int v : eval_nodes) {
    const std::vector<int>& true_parents = truth.Parents(v);
    if (static_cast<int>(true_parents.size()) < min_parents) continue;
    auto it = predicted.find(v);
    const std::vector<int>& pred = it == predicted.end() ? kEmpty : it->second;
    for (int p : pred) {
      if (std::find(true_parents.begin(), true_parents.end(), p) !=
          true_parents.end()) {
        ++stats.true_positives;
      } else {
        ++stats.false_positives;
      }
    }
    for (int p : true_parents) {
      if (std::find(pred.begin(), pred.end(), p) == pred.end()) {
        ++stats.false_negatives;
      }
    }
  }
  return stats;
}

}  // namespace hypdb
