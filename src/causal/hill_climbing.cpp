#include "causal/hill_climbing.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "dataframe/group_by.h"
#include "stats/special_math.h"

namespace hypdb {
namespace {

// True if `to` is reachable from `from` via directed edges.
bool Reaches(const Dag& dag, int from, int to) {
  if (from == to) return true;
  std::vector<bool> seen(dag.NumNodes(), false);
  std::deque<int> queue = {from};
  seen[from] = true;
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    for (int c : dag.Children(v)) {
      if (c == to) return true;
      if (!seen[c]) {
        seen[c] = true;
        queue.push_back(c);
      }
    }
  }
  return false;
}

class Scorer {
 public:
  Scorer(const TableView& view, const HcOptions& options)
      : view_(view), options_(options) {}

  StatusOr<double> Score(int node, std::vector<int> parents) {
    std::sort(parents.begin(), parents.end());
    auto key = std::make_pair(node, parents);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    HYPDB_ASSIGN_OR_RETURN(double score, Compute(node, parents));
    cache_.emplace(std::move(key), score);
    ++families_scored_;
    return score;
  }

  StatusOr<int64_t> Levels(int v) {
    auto it = levels_.find(v);
    if (it != levels_.end()) return it->second;
    HYPDB_ASSIGN_OR_RETURN(GroupCounts c, CountBy(view_, {v}));
    levels_[v] = c.NumGroups();
    return levels_[v];
  }

  int64_t families_scored() const { return families_scored_; }

 private:
  StatusOr<double> Compute(int node, const std::vector<int>& parents) {
    // Counts over parents ∪ {node}; the node's position in the sorted
    // column list identifies its digit in the tuple codec.
    std::vector<int> cols = parents;
    cols.push_back(node);
    std::sort(cols.begin(), cols.end());
    HYPDB_ASSIGN_OR_RETURN(GroupCounts joint, CountBy(view_, cols));
    int node_pos = static_cast<int>(
        std::lower_bound(cols.begin(), cols.end(), node) - cols.begin());
    std::vector<int> parent_positions;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (static_cast<int>(i) != node_pos) {
        parent_positions.push_back(static_cast<int>(i));
      }
    }

    // n_p: counts per parent configuration (single config when no
    // parents).
    TupleCodec parent_codec = joint.codec.Project(parent_positions);
    std::map<uint64_t, int64_t> parent_counts;
    std::vector<int32_t> codes(parent_positions.size());
    std::vector<uint64_t> parent_key_of(joint.keys.size());
    for (size_t g = 0; g < joint.keys.size(); ++g) {
      for (size_t i = 0; i < parent_positions.size(); ++i) {
        codes[i] = joint.codec.DecodeAt(joint.keys[g], parent_positions[i]);
      }
      uint64_t pk = parent_codec.EncodeCodes(codes);
      parent_key_of[g] = pk;
      parent_counts[pk] += joint.counts[g];
    }

    HYPDB_ASSIGN_OR_RETURN(int64_t r, Levels(node));  // node levels
    double q = 1.0;  // parent configuration space size
    for (int p : parents) {
      HYPDB_ASSIGN_OR_RETURN(int64_t lp, Levels(p));
      q *= static_cast<double>(lp);
    }

    if (options_.score == ScoreType::kBdeu) {
      const double iss = options_.bdeu_iss;
      const double alpha_p = iss / q;
      const double alpha_px = iss / (q * static_cast<double>(r));
      double score = 0.0;
      for (const auto& [pk, np] : parent_counts) {
        score += LnGamma(alpha_p) -
                 LnGamma(alpha_p + static_cast<double>(np));
      }
      for (size_t g = 0; g < joint.keys.size(); ++g) {
        score += LnGamma(alpha_px +
                             static_cast<double>(joint.counts[g])) -
                 LnGamma(alpha_px);
      }
      return score;
    }

    // Log-likelihood scores.
    double ll = 0.0;
    for (size_t g = 0; g < joint.keys.size(); ++g) {
      double n_px = static_cast<double>(joint.counts[g]);
      double n_p = static_cast<double>(parent_counts[parent_key_of[g]]);
      ll += n_px * std::log(n_px / n_p);
    }
    double params = q * static_cast<double>(r - 1);
    if (options_.score == ScoreType::kAic) return ll - params;
    double n = static_cast<double>(view_.NumRows());
    return ll - 0.5 * std::log(std::max(n, 1.0)) * params;  // BIC
  }

  const TableView& view_;
  const HcOptions& options_;
  std::map<std::pair<int, std::vector<int>>, double> cache_;
  std::map<int, int64_t> levels_;
  int64_t families_scored_ = 0;
};

}  // namespace

const char* ScoreTypeName(ScoreType type) {
  switch (type) {
    case ScoreType::kBic:
      return "BIC";
    case ScoreType::kAic:
      return "AIC";
    case ScoreType::kBdeu:
      return "BDe";
  }
  return "?";
}

StatusOr<double> FamilyScore(const TableView& view, int node,
                             const std::vector<int>& parents,
                             const HcOptions& options) {
  Scorer scorer(view, options);
  return scorer.Score(node, parents);
}

StatusOr<HcResult> HillClimb(const TableView& view,
                             const std::vector<int>& variables,
                             const HcOptions& options) {
  int max_id = 0;
  for (int v : variables) max_id = std::max(max_id, v);
  HcResult result;
  result.dag = Dag(max_id + 1);
  Scorer scorer(view, options);

  // Current family scores.
  std::map<int, double> family;
  for (int v : variables) {
    HYPDB_ASSIGN_OR_RETURN(family[v], scorer.Score(v, {}));
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double best_delta = 1e-9;
    enum class Move { kNone, kAdd, kDelete, kReverse };
    Move best_move = Move::kNone;
    int best_u = -1;
    int best_v = -1;

    for (int u : variables) {
      for (int v : variables) {
        if (u == v) continue;
        if (!result.dag.HasEdge(u, v) && !result.dag.HasEdge(v, u)) {
          // Add u -> v.
          if (static_cast<int>(result.dag.Parents(v).size()) >=
              options.max_parents) {
            continue;
          }
          if (Reaches(result.dag, v, u)) continue;  // would close a cycle
          std::vector<int> parents = result.dag.Parents(v);
          parents.push_back(u);
          HYPDB_ASSIGN_OR_RETURN(double s, scorer.Score(v, parents));
          double delta = s - family[v];
          if (delta > best_delta) {
            best_delta = delta;
            best_move = Move::kAdd;
            best_u = u;
            best_v = v;
          }
        } else if (result.dag.HasEdge(u, v)) {
          // Delete u -> v.
          std::vector<int> parents;
          for (int p : result.dag.Parents(v)) {
            if (p != u) parents.push_back(p);
          }
          HYPDB_ASSIGN_OR_RETURN(double s_del, scorer.Score(v, parents));
          double delta = s_del - family[v];
          if (delta > best_delta) {
            best_delta = delta;
            best_move = Move::kDelete;
            best_u = u;
            best_v = v;
          }
          // Reverse u -> v to v -> u.
          if (static_cast<int>(result.dag.Parents(u).size()) <
              options.max_parents) {
            result.dag.RemoveEdge(u, v);
            bool cyclic = Reaches(result.dag, u, v);
            result.dag.AddEdge(u, v);
            if (!cyclic) {
              std::vector<int> u_parents = result.dag.Parents(u);
              u_parents.push_back(v);
              HYPDB_ASSIGN_OR_RETURN(double s_u,
                                     scorer.Score(u, u_parents));
              double delta_rev = (s_del - family[v]) + (s_u - family[u]);
              if (delta_rev > best_delta) {
                best_delta = delta_rev;
                best_move = Move::kReverse;
                best_u = u;
                best_v = v;
              }
            }
          }
        }
      }
    }

    if (best_move == Move::kNone) break;
    result.iterations = iter + 1;
    if (best_move == Move::kAdd) {
      result.dag.AddEdge(best_u, best_v);
      HYPDB_ASSIGN_OR_RETURN(family[best_v],
                             scorer.Score(best_v,
                                          result.dag.Parents(best_v)));
    } else if (best_move == Move::kDelete) {
      result.dag.RemoveEdge(best_u, best_v);
      HYPDB_ASSIGN_OR_RETURN(family[best_v],
                             scorer.Score(best_v,
                                          result.dag.Parents(best_v)));
    } else {
      result.dag.RemoveEdge(best_u, best_v);
      result.dag.AddEdge(best_v, best_u);
      HYPDB_ASSIGN_OR_RETURN(family[best_v],
                             scorer.Score(best_v,
                                          result.dag.Parents(best_v)));
      HYPDB_ASSIGN_OR_RETURN(family[best_u],
                             scorer.Score(best_u,
                                          result.dag.Parents(best_u)));
    }
  }

  result.score = 0.0;
  for (int v : variables) result.score += family[v];
  result.families_scored = scorer.families_scored();
  return result;
}

}  // namespace hypdb
