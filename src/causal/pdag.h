// Partially directed acyclic graphs: the output of constraint-based
// structure learners, where some edges remain unoriented (Markov
// equivalence, paper Sec. 4).

#ifndef HYPDB_CAUSAL_PDAG_H_
#define HYPDB_CAUSAL_PDAG_H_

#include <utility>
#include <vector>

#include "graph/dag.h"

namespace hypdb {

/// Adjacency with three edge states: none, directed, undirected.
class Pdag {
 public:
  Pdag() = default;
  explicit Pdag(int num_nodes)
      : state_(num_nodes, std::vector<uint8_t>(num_nodes, kNone)) {}

  int NumNodes() const { return static_cast<int>(state_.size()); }

  void SetUndirected(int a, int b) {
    state_[a][b] = state_[b][a] = kUndirected;
  }
  /// Directs a -> b (overwrites an undirected edge; refuses to flip an
  /// existing opposite orientation — returns false).
  bool Direct(int a, int b) {
    if (state_[b][a] == kDirected) return false;
    state_[a][b] = kDirected;
    state_[b][a] = kNone;
    return true;
  }
  void RemoveEdge(int a, int b) { state_[a][b] = state_[b][a] = kNone; }

  bool HasDirected(int from, int to) const {
    return state_[from][to] == kDirected;
  }
  bool HasUndirected(int a, int b) const {
    return state_[a][b] == kUndirected;
  }
  bool Adjacent(int a, int b) const {
    return state_[a][b] != kNone || state_[b][a] != kNone;
  }

  /// Nodes with a directed edge into `node`.
  std::vector<int> DirectedParents(int node) const {
    std::vector<int> out;
    for (int u = 0; u < NumNodes(); ++u) {
      if (HasDirected(u, node)) out.push_back(u);
    }
    return out;
  }

  /// Neighbors over directed or undirected edges.
  std::vector<int> Neighbors(int node) const {
    std::vector<int> out;
    for (int u = 0; u < NumNodes(); ++u) {
      if (u != node && Adjacent(u, node)) out.push_back(u);
    }
    return out;
  }

  int CountUndirected() const {
    int count = 0;
    for (int a = 0; a < NumNodes(); ++a) {
      for (int b = a + 1; b < NumNodes(); ++b) {
        if (HasUndirected(a, b)) ++count;
      }
    }
    return count;
  }

  /// The directed sub-graph (undirected edges dropped).
  Dag DirectedPart() const {
    Dag dag(NumNodes());
    for (int a = 0; a < NumNodes(); ++a) {
      for (int b = 0; b < NumNodes(); ++b) {
        if (HasDirected(a, b)) dag.AddEdge(a, b);
      }
    }
    return dag;
  }

 private:
  enum : uint8_t { kNone = 0, kDirected = 1, kUndirected = 2 };
  std::vector<std::vector<uint8_t>> state_;
};

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_PDAG_H_
