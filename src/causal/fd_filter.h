// Dropping logical dependencies before causal discovery (paper Sec. 4).
//
// Integrity constraints confuse constraint-based discovery: if X ⇒ T
// functionally, conditioning on X makes T independent of everything, so
// MB(T) collapses to {X} and all causal structure is lost (e.g.
// AirportWAC ⇔ Airport in FlightData). Key-like attributes (ID,
// FlightNum, TailNum) have the same effect through near-unique values.
//
// Two detectors, both from Sec. 4:
//  * approximate two-way FDs: drop X when H(A|X) ≤ ε ∧ H(X|A) ≤ ε for an
//    already-kept attribute A (the pair is a bijection; one copy
//    suffices);
//  * key-like attributes: entropy is a property of the generating
//    distribution, not of the sample size — estimate each attribute's
//    entropy on subsamples of increasing size and drop attributes whose
//    entropy keeps growing with ln(size) (for a true key Ĥ = ln(size),
//    slope 1; for ordinary attributes the slope is ≈ 0).

#ifndef HYPDB_CAUSAL_FD_FILTER_H_
#define HYPDB_CAUSAL_FD_FILTER_H_

#include <utility>
#include <vector>

#include "dataframe/view.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace hypdb {

struct FdFilterOptions {
  /// Conditional-entropy threshold (nats) for approximate FDs.
  double fd_epsilon = 0.01;
  /// Subsample ladder for key detection: sizes base, 2·base, 4·base, ...
  int num_sizes = 5;
  int64_t base_size = 256;
  /// Replicate subsamples per size (entropies are averaged).
  int replicates = 3;
  /// Ĥ-vs-ln(size) slope above which an attribute is key-like.
  double slope_threshold = 0.3;
};

struct FdFilterReport {
  /// Surviving candidate columns, in input order.
  std::vector<int> kept;
  /// (dropped, kept_partner) pairs of detected bijections.
  std::vector<std::pair<int, int>> dropped_fd;
  /// Columns dropped as key-like.
  std::vector<int> dropped_keys;
};

/// Filters `candidates` (column indices into `view`).
StatusOr<FdFilterReport> FilterLogicalDependencies(
    const TableView& view, const std::vector<int>& candidates,
    const FdFilterOptions& options, Rng& rng);

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_FD_FILTER_H_
