// The CD (Covariate Detection) algorithm — paper Alg. 1, Sec. 4.
//
// Given a treatment T, CD discovers the parents PA_T in the (unknown)
// causal DAG directly from independence tests, without learning the full
// DAG. The idea (Prop. 4.1): Z ∈ MB(T) is a parent iff
//  (a) T is a collider on a path between Z and some W ∈ MB(T): there are
//      S ⊆ MB(Z) − {T} and W with (Z ⊥ W | S) ∧ (Z ⊮ W | S ∪ {T}); and
//  (b) no S' ⊆ MB(T) − {Z} separates Z from T (Z is a true neighbor).
// Phase I collects candidates by (a) — parents and possibly spouses;
// phase II evicts spouses by (b).
//
// The identifiability assumption: every parent has a non-adjacent
// co-parent. When phase I finds nothing the assumption failed (e.g. a
// single parent); HypDB then falls back to Z = MB(T) − {outcomes}
// (Sec. 4), reported via `fell_back_to_blanket`.

#ifndef HYPDB_CAUSAL_CD_ALGORITHM_H_
#define HYPDB_CAUSAL_CD_ALGORITHM_H_

#include <vector>

#include "causal/ci_oracle.h"
#include "util/statusor.h"

namespace hypdb {

struct CdOptions {
  /// Cap on conditioning-set size in both phases (-1 = unlimited). The
  /// search is exponential in the Markov-boundary size; boundaries in the
  /// paper's experiments never exceed 8 members.
  int max_sepset = -1;
  /// Use IAMB instead of Grow-Shrink for Markov boundaries.
  bool use_iamb = false;
  /// Alpha scale for the collider-admission test of phase I
  /// ((Z ⊮ W | S ∪ {T}) must hold at alpha·scale). Phase I enumerates
  /// many (S, W) hypotheses; without the stricter threshold a single
  /// chance rejection among dozens of truly-independent pairs admits a
  /// non-parent (multiple-testing guard; 1.0 = the paper's behavior).
  double collider_alpha_scale = 0.05;
  /// Safety valve: boundaries larger than this are truncated before the
  /// subset enumeration (keeps worst-case cost bounded).
  int max_blanket = 16;
};

struct CdResult {
  /// The discovered covariates Z = PA_T (sorted), or MB(T) − outcomes
  /// when the fallback fired.
  std::vector<int> parents;
  /// MB(T) as learned from the oracle (sorted).
  std::vector<int> markov_blanket;
  /// Candidates after phase I (parents ∪ spouses) — diagnostic.
  std::vector<int> phase1_candidates;
  /// True when phase I/II produced nothing and Z fell back to the
  /// Markov boundary minus the outcomes.
  bool fell_back_to_blanket = false;
  /// Independence tests consumed (oracle delta).
  int64_t tests_used = 0;
  /// Count-engine work consumed (oracle delta): scans vs cache hits vs
  /// marginalizations — the Fig. 6c accounting for this discovery run.
  CountEngineStats count_stats;
};

/// Runs CD for `treatment` over `candidates` (ids the oracle understands;
/// must not contain the treatment). `outcomes` are excluded from any
/// fallback covariate set.
StatusOr<CdResult> DiscoverParents(CiOracle& oracle, int treatment,
                                   const std::vector<int>& candidates,
                                   const CdOptions& options = {},
                                   const std::vector<int>& outcomes = {});

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_CD_ALGORITHM_H_
