// Markov-boundary discovery: Grow-Shrink and IAMB (paper Sec. 2 & 4).
//
// Under DAG-isomorphism the Markov boundary of T is exactly parents ∪
// children ∪ spouses (Prop. 2.5); the CD algorithm starts from MB(T) and
// extracts the parents. Grow-Shrink (Margaritis & Thrun 2000) is the
// learner the paper uses; IAMB (Tsamardinos et al. 2003) is the improved
// variant used by the baseline comparison.

#ifndef HYPDB_CAUSAL_MARKOV_BLANKET_H_
#define HYPDB_CAUSAL_MARKOV_BLANKET_H_

#include <vector>

#include "causal/ci_oracle.h"
#include "util/statusor.h"

namespace hypdb {

/// Grow-Shrink: grow = repeatedly admit any candidate dependent on the
/// target given the current blanket; shrink = evict members independent
/// of the target given the rest. `candidates` must not contain `target`.
StatusOr<std::vector<int>> GrowShrinkMb(CiOracle& oracle, int target,
                                        const std::vector<int>& candidates);

/// IAMB: like Grow-Shrink but the grow phase admits the *strongest*
/// dependent candidate each round (by oracle Association), which keeps
/// the conditioning sets smaller and the tests more reliable.
StatusOr<std::vector<int>> IambMb(CiOracle& oracle, int target,
                                  const std::vector<int>& candidates);

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_MARKOV_BLANKET_H_
