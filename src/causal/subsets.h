// Subset enumeration in increasing-cardinality order.
//
// Constraint-based discovery enumerates conditioning sets S ⊆ pool;
// testing small sets first finds separating sets cheaply and matches the
// order used by the reference algorithms.

#ifndef HYPDB_CAUSAL_SUBSETS_H_
#define HYPDB_CAUSAL_SUBSETS_H_

#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace hypdb {

/// Calls `fn(subset)` for every subset of `pool` with size ≤ max_size
/// (max_size < 0 means |pool|), smallest subsets first, starting with the
/// empty set. `fn` returns StatusOr<bool>: true stops the enumeration
/// ("found"). Returns whether fn ever returned true.
template <typename Fn>
StatusOr<bool> ForEachSubset(const std::vector<int>& pool, int max_size,
                             Fn&& fn) {
  const int n = static_cast<int>(pool.size());
  if (max_size < 0 || max_size > n) max_size = n;
  std::vector<int> subset;
  std::vector<int> idx;

  for (int k = 0; k <= max_size; ++k) {
    // k-combinations of pool in lexicographic index order.
    idx.resize(k);
    for (int i = 0; i < k; ++i) idx[i] = i;
    for (;;) {
      subset.clear();
      for (int i : idx) subset.push_back(pool[i]);
      HYPDB_ASSIGN_OR_RETURN(bool stop, fn(subset));
      if (stop) return true;
      if (k == 0) break;
      // Advance to the next combination.
      int pos = k - 1;
      while (pos >= 0 && idx[pos] == n - k + pos) --pos;
      if (pos < 0) break;
      ++idx[pos];
      for (int i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
    }
  }
  return false;
}

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_SUBSETS_H_
