// Conditional-independence oracles for structure discovery.
//
// Sec. 4 of the paper assumes "an oracle for testing conditional
// independence in the data". The discovery algorithms (Grow-Shrink, IAMB,
// CD, FGS) are written against this interface so they run identically on:
//  * DataCiOracle  — statistical tests on a view (CiTester, Sec. 5/6);
//  * DSeparationOracle — exact d-separation on a known DAG, the
//    ground-truth oracle used by unit tests and quality benchmarks.

#ifndef HYPDB_CAUSAL_CI_ORACLE_H_
#define HYPDB_CAUSAL_CI_ORACLE_H_

#include <vector>

#include "graph/d_separation.h"
#include "graph/dag.h"
#include "stats/ci_test.h"
#include "util/statusor.h"

namespace hypdb {

/// Answers "is X independent of Y given Z?" over variables identified by
/// integer ids (table column indices for data oracles, node ids for
/// graph oracles).
class CiOracle {
 public:
  virtual ~CiOracle() = default;

  virtual StatusOr<bool> Independent(int x, int y,
                                     const std::vector<int>& z) = 0;

  /// Like Independent but with the rejection threshold scaled by
  /// `alpha_scale` < 1 — i.e. dependence must be *more* significant to be
  /// asserted. Phase I of the CD algorithm enumerates many (S, W)
  /// hypotheses and uses this to keep its family-wise false-admission
  /// rate in check (the paper defers FDR control to future work, Sec. 8).
  /// Exact oracles ignore the scale.
  virtual StatusOr<bool> IndependentStrict(int x, int y,
                                           const std::vector<int>& z,
                                           double alpha_scale) {
    (void)alpha_scale;
    return Independent(x, y, z);
  }

  /// Dependence strength used by IAMB's greedy ordering. Data oracles
  /// return Î(x;y|z); the default maps Independent() to {0, 1}.
  virtual StatusOr<double> Association(int x, int y,
                                       const std::vector<int>& z) {
    HYPDB_ASSIGN_OR_RETURN(bool indep, Independent(x, y, z));
    return indep ? 0.0 : 1.0;
  }

  /// Hints that upcoming tests touch only `cols`; data oracles respond by
  /// materializing a contingency table over the set (Sec. 6). Default
  /// no-op.
  virtual Status Focus(const std::vector<int>& cols) {
    (void)cols;
    return Status::Ok();
  }

  /// Count-engine instrumentation backing this oracle (scans, cache hits
  /// — the Fig. 6c metrics). Exact oracles have none.
  virtual CountEngineStats count_stats() const { return {}; }

  /// Number of independence queries answered — the Fig. 6(a) metric.
  int64_t num_tests() const { return num_tests_; }
  void ResetStats() { num_tests_ = 0; }

 protected:
  int64_t num_tests_ = 0;
};

/// Statistical oracle: rejects independence when the CiTester p-value is
/// ≤ alpha (the paper uses alpha = 0.01 throughout Sec. 7).
class DataCiOracle : public CiOracle {
 public:
  /// `tester` must outlive the oracle.
  DataCiOracle(CiTester* tester, double alpha)
      : tester_(tester), alpha_(alpha) {}

  StatusOr<bool> Independent(int x, int y,
                             const std::vector<int>& z) override {
    ++num_tests_;
    HYPDB_ASSIGN_OR_RETURN(CiResult r, tester_->Test(x, y, z));
    return r.IndependentAt(alpha_);
  }

  StatusOr<double> Association(int x, int y,
                               const std::vector<int>& z) override {
    ++num_tests_;
    HYPDB_ASSIGN_OR_RETURN(CiResult r, tester_->Test(x, y, z));
    return r.IndependentAt(alpha_) ? 0.0 : r.statistic;
  }

  StatusOr<bool> IndependentStrict(int x, int y, const std::vector<int>& z,
                                   double alpha_scale) override {
    ++num_tests_;
    HYPDB_ASSIGN_OR_RETURN(CiResult r, tester_->Test(x, y, z));
    return r.IndependentAt(alpha_ * alpha_scale);
  }

  Status Focus(const std::vector<int>& cols) override {
    // A focus that cannot be materialized (domain overflow) is a missed
    // optimization, not an error.
    (void)tester_->engine()->SetFocus(cols);
    return Status::Ok();
  }

  CountEngineStats count_stats() const override {
    return tester_->engine()->count_engine().stats();
  }

  double alpha() const { return alpha_; }
  CiTester* tester() { return tester_; }

 private:
  CiTester* tester_;
  double alpha_;
};

/// Exact oracle over a known causal DAG (faithfulness assumed).
class DSeparationOracle : public CiOracle {
 public:
  explicit DSeparationOracle(const Dag* dag) : dag_(dag) {}

  StatusOr<bool> Independent(int x, int y,
                             const std::vector<int>& z) override {
    ++num_tests_;
    return DSeparated(*dag_, x, y, z);
  }

 private:
  const Dag* dag_;
};

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_CI_ORACLE_H_
