#include "causal/fd_filter.h"

#include <algorithm>
#include <cmath>

#include "stats/entropy.h"
#include "stats/mi_engine.h"

namespace hypdb {
namespace {

// Plugin entropy of `col` over a random subsample of `size` view rows.
double SubsampleEntropy(const TableView& view, int col, int64_t size,
                        Rng& rng) {
  const int64_t n = view.NumRows();
  const Column& column = view.table().column(col);
  std::vector<int64_t> counts(column.Cardinality(), 0);
  for (int64_t i = 0; i < size; ++i) {
    int64_t row = view.RowId(static_cast<int64_t>(rng.NextBounded(n)));
    ++counts[column.CodeAt(row)];
  }
  return EntropyFromCounts(counts, size, EntropyEstimator::kPlugin);
}

// Least-squares slope of y against x.
double Slope(const std::vector<double>& x, const std::vector<double>& y) {
  const double n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace

StatusOr<FdFilterReport> FilterLogicalDependencies(
    const TableView& view, const std::vector<int>& candidates,
    const FdFilterOptions& options, Rng& rng) {
  FdFilterReport report;
  const int64_t n = view.NumRows();
  if (n == 0) {
    report.kept = candidates;
    return report;
  }

  // --- Key-like attributes: entropy must not depend on sample size.
  std::vector<int> survivors;
  for (int col : candidates) {
    std::vector<double> log_sizes;
    std::vector<double> entropies;
    for (int s = 0; s < options.num_sizes; ++s) {
      int64_t size = std::min<int64_t>(options.base_size << s, n);
      double h = 0.0;
      for (int r = 0; r < options.replicates; ++r) {
        h += SubsampleEntropy(view, col, size, rng);
      }
      log_sizes.push_back(std::log(static_cast<double>(size)));
      entropies.push_back(h / options.replicates);
      if (size == n) break;
    }
    if (Slope(log_sizes, entropies) > options.slope_threshold) {
      report.dropped_keys.push_back(col);
    } else {
      survivors.push_back(col);
    }
  }

  // --- Approximate two-way FDs among the survivors. Bijective pairs have
  // H(X) ≈ H(Y) ≈ H(XY); prefilter on the (cheap) marginal entropies so
  // only plausible pairs pay for a joint count.
  MiEngine engine(view, MiEngineOptions{
                            .cache_entropies = true,
                            .materialize_focus = false,
                            .estimator = EntropyEstimator::kPlugin});
  std::vector<double> h(survivors.size());
  for (size_t i = 0; i < survivors.size(); ++i) {
    HYPDB_ASSIGN_OR_RETURN(h[i], engine.Entropy({survivors[i]}));
  }

  std::vector<bool> dropped(survivors.size(), false);
  for (size_t i = 0; i < survivors.size(); ++i) {
    if (dropped[i]) continue;
    for (size_t j = i + 1; j < survivors.size(); ++j) {
      if (dropped[j]) continue;
      if (std::fabs(h[i] - h[j]) > 2.0 * options.fd_epsilon) continue;
      HYPDB_ASSIGN_OR_RETURN(
          double h_joint, engine.Entropy({survivors[i], survivors[j]}));
      double h_i_given_j = h_joint - h[j];
      double h_j_given_i = h_joint - h[i];
      if (h_i_given_j <= options.fd_epsilon &&
          h_j_given_i <= options.fd_epsilon) {
        dropped[j] = true;
        report.dropped_fd.emplace_back(survivors[j], survivors[i]);
      }
    }
  }
  for (size_t i = 0; i < survivors.size(); ++i) {
    if (!dropped[i]) report.kept.push_back(survivors[i]);
  }
  return report;
}

}  // namespace hypdb
