// Score-based structure learning: greedy hill climbing with decomposable
// scores (the paper's HC(BDe) / HC(AIC) / HC(BIC) baselines, Sec. 7.4).
//
// The search starts from the empty graph and greedily applies the best
// of {add, delete, reverse} edge moves until no move improves the score.
// Scores are decomposable — Σ_v family_score(v | parents) — so each move
// re-scores at most two families; family scores are memoized.

#ifndef HYPDB_CAUSAL_HILL_CLIMBING_H_
#define HYPDB_CAUSAL_HILL_CLIMBING_H_

#include <vector>

#include "dataframe/view.h"
#include "graph/dag.h"
#include "util/statusor.h"

namespace hypdb {

enum class ScoreType {
  kBic,   // log-likelihood - (ln n / 2) · #params
  kAic,   // log-likelihood - #params
  kBdeu,  // Bayesian Dirichlet equivalent uniform (iss = prior weight)
};

const char* ScoreTypeName(ScoreType type);

struct HcOptions {
  ScoreType score = ScoreType::kBic;
  double bdeu_iss = 1.0;  // imaginary sample size for kBdeu
  int max_parents = 6;
  int max_iterations = 10000;
};

struct HcResult {
  Dag dag;
  double score = 0.0;
  int iterations = 0;
  int64_t families_scored = 0;
};

/// Learns a DAG over `variables` (table column indices) from `view`. The
/// returned DAG is sized max(variables)+1 and uses column indices as node
/// ids.
StatusOr<HcResult> HillClimb(const TableView& view,
                             const std::vector<int>& variables,
                             const HcOptions& options = {});

/// Family score of `node` given `parents` under `options` — exposed for
/// tests.
StatusOr<double> FamilyScore(const TableView& view, int node,
                             const std::vector<int>& parents,
                             const HcOptions& options);

}  // namespace hypdb

#endif  // HYPDB_CAUSAL_HILL_CLIMBING_H_
