#include "storage/chunked_table.h"

#include <algorithm>
#include <utility>

#include "dataframe/group_by.h"
#include "dataframe/tuple_codec.h"
#include "dataframe/view.h"
#include "util/trace.h"

namespace hypdb {

ChunkedTable::Chunk::Chunk(int num_cols, int64_t capacity)
    : codes(num_cols, std::vector<int32_t>(capacity)) {}

StatusOr<std::shared_ptr<ChunkedTable>> ChunkedTable::FromTable(
    const TablePtr& seed, int64_t chunk_rows) {
  if (!seed) return Status::InvalidArgument("null seed table");
  if (chunk_rows <= 0) {
    return Status::InvalidArgument("chunk_rows must be positive");
  }
  std::vector<std::string> names = seed->ColumnNames();
  auto table = std::shared_ptr<ChunkedTable>(
      new ChunkedTable(std::move(names), chunk_rows));
  const int num_cols = seed->NumColumns();
  const int64_t num_rows = seed->NumRows();
  table->dicts_.reserve(num_cols);
  for (int c = 0; c < num_cols; ++c) {
    table->dicts_.push_back(seed->column(c).dict());
  }
  for (int64_t begin = 0; begin < num_rows; begin += chunk_rows) {
    const int64_t n = std::min(chunk_rows, num_rows - begin);
    auto chunk = std::make_shared<Chunk>(num_cols, chunk_rows);
    for (int c = 0; c < num_cols; ++c) {
      const std::vector<int32_t>& src = seed->column(c).codes();
      std::copy(src.begin() + begin, src.begin() + begin + n,
                chunk->codes[c].begin());
    }
    chunk->used.store(n, std::memory_order_relaxed);
    if (n == chunk_rows) {
      chunk->sealed = table->SliceTable(*chunk, 0, chunk_rows, table->dicts_);
    }
    table->chunks_.push_back(std::move(chunk));
  }
  // The seed *is* the materialization of the initial watermark.
  table->materialized_watermark_ = num_rows;
  table->materialized_ = seed;
  table->watermark_.store(num_rows, std::memory_order_release);
  return table;
}

Status ChunkedTable::Append(const std::vector<std::vector<std::string>>& rows) {
  const size_t num_cols = names_.size();
  for (const auto& row : rows) {
    if (row.size() != num_cols) {
      return Status::InvalidArgument(
          "append row has " + std::to_string(row.size()) + " values, schema has " +
          std::to_string(num_cols) + " columns");
    }
  }
  if (rows.empty()) return Status::Ok();
  TraceSpanScope span(TraceEventKind::kIngestAppend, 1,
                      static_cast<uint64_t>(rows.size()));
  std::lock_guard<std::mutex> lock(mu_);
  int64_t w = watermark_.load(std::memory_order_relaxed);
  for (const auto& row : rows) {
    const int64_t offset = w % chunk_rows_;
    const size_t chunk_index = static_cast<size_t>(w / chunk_rows_);
    if (chunk_index == chunks_.size()) {
      chunks_.push_back(
          std::make_shared<Chunk>(static_cast<int>(num_cols), chunk_rows_));
    }
    Chunk& chunk = *chunks_[chunk_index];
    for (size_t c = 0; c < num_cols; ++c) {
      chunk.codes[c][offset] = dicts_[c].GetOrAdd(row[c]);
    }
    chunk.used.store(offset + 1, std::memory_order_relaxed);
    ++w;
    if (offset + 1 == chunk_rows_) {
      // Seal: every code in the chunk is below the current dictionary
      // cardinalities, so this snapshot stays valid forever.
      chunk.sealed = SliceTable(chunk, 0, chunk_rows_, dicts_);
    }
  }
  span.set_arg1(static_cast<uint64_t>(w));
  watermark_.store(w, std::memory_order_release);
  return Status::Ok();
}

int64_t ChunkedTable::NumChunks() const {
  return (Watermark() + chunk_rows_ - 1) / chunk_rows_;
}

TablePtr ChunkedTable::Materialized() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t w = watermark_.load(std::memory_order_relaxed);
  if (materialized_watermark_ == w && materialized_) return materialized_;
  Table out;
  for (size_t c = 0; c < names_.size(); ++c) {
    std::vector<int32_t> codes(static_cast<size_t>(w));
    for (size_t ci = 0; ci * chunk_rows_ < static_cast<size_t>(w); ++ci) {
      const int64_t begin = static_cast<int64_t>(ci) * chunk_rows_;
      const int64_t n = std::min(chunk_rows_, w - begin);
      std::copy(chunks_[ci]->codes[c].begin(),
                chunks_[ci]->codes[c].begin() + n, codes.begin() + begin);
    }
    Status s = out.AddColumn(Column(names_[c], dicts_[c], std::move(codes)));
    (void)s;  // row counts agree by construction
  }
  materialized_watermark_ = w;
  materialized_ = MakeTable(std::move(out));
  return materialized_;
}

TablePtr ChunkedTable::SliceTable(const Chunk& chunk, int64_t lo, int64_t hi,
                                  const std::vector<Dictionary>& dicts) const {
  Table t;
  for (size_t c = 0; c < names_.size(); ++c) {
    std::vector<int32_t> codes(chunk.codes[c].begin() + lo,
                               chunk.codes[c].begin() + hi);
    Status s = t.AddColumn(Column(names_[c], dicts[c], std::move(codes)));
    (void)s;  // row counts agree by construction
  }
  return MakeTable(std::move(t));
}

StatusOr<GroupCounts> ChunkedTable::ScanRange(
    const std::vector<int>& cols, int64_t from_row, int64_t to_row,
    const GroupByKernelOptions& kernel, ChunkedScanStats* stats) const {
  if (from_row < 0 || to_row < from_row) {
    return Status::InvalidArgument("invalid scan range");
  }
  if (to_row > Watermark()) {
    return Status::OutOfRange("scan range exceeds the published watermark");
  }
  struct Snap {
    std::shared_ptr<Chunk> chunk;
    TablePtr sealed;
  };
  std::vector<Snap> snap;
  std::vector<Dictionary> dicts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.reserve(chunks_.size());
    for (const auto& c : chunks_) snap.push_back({c, c->sealed});
    dicts = dicts_;
  }
  // The merge target: current cardinalities, exactly what a cold kernel
  // scan of Materialized() would key under.
  Table schema;
  for (size_t c = 0; c < names_.size(); ++c) {
    Status s = schema.AddColumn(Column(names_[c], dicts[c], {}));
    (void)s;
  }
  GroupCounts result;
  HYPDB_ASSIGN_OR_RETURN(result.codec, TupleCodec::Create(schema, cols));
  for (size_t ci = 0; ci < snap.size(); ++ci) {
    const int64_t begin = static_cast<int64_t>(ci) * chunk_rows_;
    const int64_t end = begin + chunk_rows_;
    if (begin >= to_row) break;
    if (end <= from_row) {
      // Entirely below the caller's watermark: the rows delta
      // maintenance never re-reads.
      if (stats) ++stats->chunks_skipped;
      continue;
    }
    const int64_t lo = std::max(from_row, begin);
    const int64_t hi = std::min(to_row, end);
    if (hi <= lo) continue;
    TraceSpanScope span(TraceEventKind::kChunkScan, 1,
                        static_cast<uint64_t>(ci),
                        static_cast<uint64_t>(hi - lo));
    TablePtr chunk_table;
    if (lo == begin && hi == end && snap[ci].sealed) {
      chunk_table = snap[ci].sealed;
    } else {
      chunk_table = SliceTable(*snap[ci].chunk, lo - begin, hi - begin, dicts);
    }
    HYPDB_ASSIGN_OR_RETURN(GroupCounts chunk_counts,
                           ScanCounts(TableView(chunk_table), cols, kernel));
    result = MergeGroupCounts(result, chunk_counts, result.codec);
    if (stats) {
      ++stats->chunk_scans;
      stats->rows_scanned += hi - lo;
    }
  }
  return result;
}

}  // namespace hypdb
