// FilteredPopulationProvider: a growing WHERE-subpopulation over a
// ChunkedTable.
//
// A subpopulation shard used to freeze its row subset at creation (a
// TableView over the table as of then). With incremental ingest the
// population itself grows: appended rows that match the shard's WHERE
// conjunction belong to it. This provider keeps the matching row-id
// list *incrementally extended* — on each use it evaluates the
// predicate over only the rows appended since the last extension — and
// implements the delta protocol so a CachingCountEngine above it can
// patch cached subpopulation summaries the same way full-table ones
// are patched: PopulationVersion() is the store's row watermark (NOT
// the matching-row count, which is why caching layers track versions
// explicitly) and CountsDelta(from, to) scans only the matching rows
// appended in [from, to).
//
// Terms are conjunctive `attr IN {labels}` (OR within a term, AND
// across terms), the service's canonical subpopulation signature. Label
// codes are re-resolved at every extension, so a label that first
// appears in an appended batch starts matching from that batch on —
// exactly what a cold filter of the grown table produces.

#ifndef HYPDB_STORAGE_FILTERED_POPULATION_H_
#define HYPDB_STORAGE_FILTERED_POPULATION_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/count_engine.h"
#include "storage/chunked_table.h"

namespace hypdb {

class FilteredPopulationProvider : public CountEngine {
 public:
  /// One conjunct: column `attribute` IN `labels`.
  struct Term {
    std::string attribute;
    std::vector<std::string> labels;
  };

  /// Fails (NotFound) when a term names a column absent from the schema.
  /// Label values need not exist yet — they may arrive with a later
  /// append.
  static StatusOr<std::shared_ptr<FilteredPopulationProvider>> Create(
      std::shared_ptr<const ChunkedTable> table, std::vector<Term> terms,
      GroupByKernelOptions kernel = {});

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override;

  /// Matching rows at the current watermark (extends the id list).
  int64_t NumRows() const override;

  int64_t PopulationVersion() const override { return table_->Watermark(); }

  StatusOr<GroupCounts> CountsDelta(const std::vector<int>& cols,
                                    int64_t from_version,
                                    int64_t to_version) override;

  CountEngineStats stats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = {};
  }

 private:
  FilteredPopulationProvider(std::shared_ptr<const ChunkedTable> table,
                             std::vector<std::pair<int, std::vector<std::string>>>
                                 terms,
                             GroupByKernelOptions kernel)
      : table_(std::move(table)), terms_(std::move(terms)), kernel_(kernel) {}

  // Extends the matching-id list to the current watermark and returns a
  // consistent (table, ids) snapshot.
  struct Snapshot {
    TablePtr table;
    std::shared_ptr<const std::vector<int64_t>> ids;
    int64_t watermark = 0;
  };
  Snapshot Extend() const;

  void CountScanned(const StatusOr<GroupCounts>& counts, int64_t rows);

  std::shared_ptr<const ChunkedTable> table_;
  const std::vector<std::pair<int, std::vector<std::string>>> terms_;
  GroupByKernelOptions kernel_;

  mutable std::mutex mu_;  // guards the extension state below
  mutable int64_t extended_ = 0;
  mutable TablePtr materialized_;
  mutable std::shared_ptr<const std::vector<int64_t>> ids_ =
      std::make_shared<const std::vector<int64_t>>();

  mutable std::mutex stats_mu_;
  CountEngineStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_STORAGE_FILTERED_POPULATION_H_
