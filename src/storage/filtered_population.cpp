#include "storage/filtered_population.h"

#include <algorithm>
#include <unordered_set>

namespace hypdb {

StatusOr<std::shared_ptr<FilteredPopulationProvider>>
FilteredPopulationProvider::Create(std::shared_ptr<const ChunkedTable> table,
                                   std::vector<Term> terms,
                                   GroupByKernelOptions kernel) {
  if (!table) return Status::InvalidArgument("null chunked table");
  std::vector<std::pair<int, std::vector<std::string>>> resolved;
  resolved.reserve(terms.size());
  const std::vector<std::string>& names = table->ColumnNames();
  for (Term& t : terms) {
    auto it = std::find(names.begin(), names.end(), t.attribute);
    if (it == names.end()) {
      return Status::NotFound("unknown column in subpopulation term: " +
                              t.attribute);
    }
    resolved.emplace_back(static_cast<int>(it - names.begin()),
                          std::move(t.labels));
  }
  return std::shared_ptr<FilteredPopulationProvider>(
      new FilteredPopulationProvider(std::move(table), std::move(resolved),
                                     kernel));
}

FilteredPopulationProvider::Snapshot FilteredPopulationProvider::Extend()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t w = table_->Watermark();
  if (extended_ < w || !materialized_) {
    TablePtr mat = table_->Materialized();
    // Re-resolve label codes: append-only dictionaries keep old codes
    // stable, and labels that arrived since last time start matching now.
    std::vector<std::pair<int, std::unordered_set<int32_t>>> codes;
    codes.reserve(terms_.size());
    for (const auto& [col, labels] : terms_) {
      std::unordered_set<int32_t> set;
      for (const std::string& label : labels) {
        const int32_t code = mat->column(col).dict().Find(label);
        if (code >= 0) set.insert(code);
      }
      codes.emplace_back(col, std::move(set));
    }
    std::vector<int64_t> ids(*ids_);
    for (int64_t row = extended_; row < w; ++row) {
      bool match = true;
      for (const auto& [col, set] : codes) {
        if (set.count(mat->column(col).CodeAt(row)) == 0) {
          match = false;
          break;
        }
      }
      if (match) ids.push_back(row);
    }
    ids_ = std::make_shared<const std::vector<int64_t>>(std::move(ids));
    materialized_ = std::move(mat);
    extended_ = w;
  }
  return Snapshot{materialized_, ids_, extended_};
}

void FilteredPopulationProvider::CountScanned(
    const StatusOr<GroupCounts>& counts, int64_t rows) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.queries;
  if (counts.ok()) {
    ++stats_.scans;
    stats_.rows_scanned += rows;
  }
}

StatusOr<GroupCounts> FilteredPopulationProvider::Counts(
    const std::vector<int>& cols) {
  Snapshot snap = Extend();
  StatusOr<GroupCounts> counts =
      ScanCounts(TableView(snap.table, snap.ids), cols, kernel_);
  CountScanned(counts, static_cast<int64_t>(snap.ids->size()));
  return counts;
}

int64_t FilteredPopulationProvider::NumRows() const {
  return static_cast<int64_t>(Extend().ids->size());
}

StatusOr<GroupCounts> FilteredPopulationProvider::CountsDelta(
    const std::vector<int>& cols, int64_t from_version, int64_t to_version) {
  if (from_version < 0 || to_version < from_version) {
    return Status::InvalidArgument("invalid delta range");
  }
  Snapshot snap = Extend();
  if (to_version > snap.watermark) {
    return Status::OutOfRange("delta range exceeds the published watermark");
  }
  // Ids are appended in physical-row order, so the delta's rows are a
  // contiguous suffix slice found by binary search.
  auto lo = std::lower_bound(snap.ids->begin(), snap.ids->end(), from_version);
  auto hi = std::lower_bound(lo, snap.ids->end(), to_version);
  auto delta_ids = std::make_shared<const std::vector<int64_t>>(lo, hi);
  const int64_t n = static_cast<int64_t>(delta_ids->size());
  StatusOr<GroupCounts> counts =
      ScanCounts(TableView(snap.table, std::move(delta_ids)), cols, kernel_);
  CountScanned(counts, n);
  return counts;
}

}  // namespace hypdb
