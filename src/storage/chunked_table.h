// ChunkedTable: the append-friendly storage layer under a dataset.
//
// A registered dataset used to be one monolithic immutable Table; any
// refresh meant re-registering, which bumps the epoch and cold-drops
// every cache, shard, session and discovery entry. Production traffic
// appends, it doesn't reload — and because every HypDB statistic reduces
// to additive count(*) GROUP BY summaries (paper Sec. 6), appended rows
// can *patch* cached summaries instead of invalidating them.
//
// Layout: per column, dictionary codes stored in fixed-capacity row
// chunks. Invariants, in order of importance:
//  * Sealed chunks are immutable: once a chunk reaches capacity it is
//    sealed and its rows (and their codes) never change. A sealed chunk
//    caches a per-chunk Table built with the dictionary snapshot at seal
//    time — every code in the chunk is below that snapshot's
//    cardinality, so the cached table stays valid forever.
//  * Dictionaries grow append-only: a label's code never changes, so
//    codes written yesterday mean the same thing after any number of
//    appends, and summaries keyed under an older (smaller-cardinality)
//    codec re-key exactly onto a newer one (MergeGroupCounts).
//  * The watermark is the single publication point: Append() writes
//    codes first, then release-stores the new row count. A reader that
//    acquire-loads Watermark() == W may touch any row < W without
//    locking; rows at or past W are writer-private.
//  * Scans are chunk-at-a-time: ScanRange() feeds each chunk (or chunk
//    suffix) to the group-by kernel as its own table, so kernel morsels
//    never straddle a chunk boundary, and merges the per-chunk
//    summaries. A delta scan [from, to) skips every chunk entirely
//    below `from` — the whole point of incremental ingest.
//
// Writer concurrency: Append() assumes external serialization (the
// DatasetRegistry holds the dataset's exclusive ingest lease around it).
// Readers are lock-free on the hot path and take the internal mutex only
// to snapshot the chunk list and dictionaries.

#ifndef HYPDB_STORAGE_CHUNKED_TABLE_H_
#define HYPDB_STORAGE_CHUNKED_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dataframe/table.h"
#include "engine/groupby_kernel.h"
#include "util/statusor.h"

namespace hypdb {

/// Work accounting for one ScanRange call; the chunked count provider
/// folds these into CountEngineStats (chunk_scans / chunks_skipped /
/// rows_scanned).
struct ChunkedScanStats {
  int64_t chunk_scans = 0;
  int64_t chunks_skipped = 0;
  int64_t rows_scanned = 0;
};

class ChunkedTable {
 public:
  /// Default rows per chunk. Small enough that an append batch lands in
  /// O(1) chunks, large enough that a full chunk is a meaningful kernel
  /// scan (matches the kernel's default morsel size).
  static constexpr int64_t kDefaultChunkRows = int64_t{1} << 14;

  /// Builds a chunked table from an existing monolithic table (the CSV /
  /// generator load path): the seed's dictionaries become the initial
  /// append-only dictionaries and its rows fill the first chunks.
  /// `chunk_rows` must be positive.
  static StatusOr<std::shared_ptr<ChunkedTable>> FromTable(
      const TablePtr& seed, int64_t chunk_rows = kDefaultChunkRows);

  /// Appends rows. Each row carries one label per column in schema
  /// order; new labels extend the dictionaries append-only. Rows become
  /// visible atomically: a reader sees either the pre-append or the
  /// post-append watermark, never a partial batch. Empty batches are
  /// valid no-ops. Errors (wrong arity) leave the table unchanged.
  /// Requires external write serialization (the registry's ingest lease).
  Status Append(const std::vector<std::vector<std::string>>& rows);

  /// Published row count — the global watermark (acquire; pairs with
  /// Append's release store, so rows below it are safe to read lock-free).
  int64_t Watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }
  int64_t NumRows() const { return Watermark(); }

  /// Chunks holding at least one published row.
  int64_t NumChunks() const;
  int64_t chunk_rows() const { return chunk_rows_; }

  int NumColumns() const { return static_cast<int>(names_.size()); }
  const std::vector<std::string>& ColumnNames() const { return names_; }

  /// The rows [0, watermark) materialized as a plain immutable Table,
  /// built with the current dictionary snapshot and cached per
  /// watermark. This bridges the chunked store to everything that wants
  /// a TablePtr (query binding, views, sessions); count queries should
  /// go through ScanRange instead. Call at the current watermark (i.e.
  /// under the dataset read lease) so the dictionary snapshot matches.
  TablePtr Materialized() const;

  /// count(*) GROUP BY `cols` over rows [from_row, to_row), scanned
  /// chunk-at-a-time and merged onto a codec with the current dictionary
  /// cardinalities — bit-identical to a cold kernel scan of
  /// Materialized() restricted to the same range. Chunks entirely below
  /// `from_row` are skipped, which is what makes a delta scan cheap.
  /// `to_row` must not exceed the watermark.
  StatusOr<GroupCounts> ScanRange(const std::vector<int>& cols,
                                  int64_t from_row, int64_t to_row,
                                  const GroupByKernelOptions& kernel,
                                  ChunkedScanStats* stats) const;

 private:
  // One fixed-capacity run of rows. Codes are preallocated at
  // construction so readers never race a reallocation; `used` counts
  // writer-filled rows (ordering comes from the global watermark, so
  // relaxed is enough).
  struct Chunk {
    Chunk(int num_cols, int64_t capacity);
    std::vector<std::vector<int32_t>> codes;  // [col][row-in-chunk]
    std::atomic<int64_t> used{0};
    TablePtr sealed;  // set once when the chunk fills (guarded by mu_)
  };

  ChunkedTable(std::vector<std::string> names, int64_t chunk_rows)
      : names_(std::move(names)), chunk_rows_(chunk_rows) {}

  // Builds the per-chunk Table for rows [lo, hi) of `chunk` (chunk-local
  // offsets) under dictionary snapshot `dicts`.
  TablePtr SliceTable(const Chunk& chunk, int64_t lo, int64_t hi,
                      const std::vector<Dictionary>& dicts) const;

  const std::vector<std::string> names_;
  const int64_t chunk_rows_;

  // Guards chunks_ (the vector itself; code arrays are published via the
  // watermark), sealed pointers, dicts_, and the materialized cache.
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Chunk>> chunks_;
  std::vector<Dictionary> dicts_;

  std::atomic<int64_t> watermark_{0};

  mutable int64_t materialized_watermark_ = -1;
  mutable TablePtr materialized_;
};

using ChunkedTablePtr = std::shared_ptr<ChunkedTable>;

}  // namespace hypdb

#endif  // HYPDB_STORAGE_CHUNKED_TABLE_H_
