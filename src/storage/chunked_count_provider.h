// ChunkedCountProvider: the ground-truth CountEngine over a ChunkedTable.
//
// Where ViewCountProvider scans one immutable view, this provider scans
// the chunked store chunk-at-a-time (kernel morsels never straddle a
// chunk) and, crucially, implements the delta protocol: its
// PopulationVersion() is the store's row watermark and CountsDelta()
// scans only the chunks holding appended rows. A CachingCountEngine
// stacked on top therefore patches stale summaries instead of
// re-scanning — the delta-maintained contingency tables of Sec. 6
// carried over to a growing dataset.

#ifndef HYPDB_STORAGE_CHUNKED_COUNT_PROVIDER_H_
#define HYPDB_STORAGE_CHUNKED_COUNT_PROVIDER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "engine/count_engine.h"
#include "storage/chunked_table.h"

namespace hypdb {

class ChunkedCountProvider : public CountEngine {
 public:
  explicit ChunkedCountProvider(std::shared_ptr<const ChunkedTable> table,
                                GroupByKernelOptions kernel = {})
      : table_(std::move(table)), kernel_(kernel) {}

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override {
    return CountRange(cols, 0, table_->Watermark());
  }

  int64_t NumRows() const override { return table_->Watermark(); }
  int64_t PopulationVersion() const override { return table_->Watermark(); }

  StatusOr<GroupCounts> CountsDelta(const std::vector<int>& cols,
                                    int64_t from_version,
                                    int64_t to_version) override {
    return CountRange(cols, from_version, to_version);
  }

  CountEngineStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = {};
  }

  const std::shared_ptr<const ChunkedTable>& table() const { return table_; }

 private:
  StatusOr<GroupCounts> CountRange(const std::vector<int>& cols,
                                   int64_t from_row, int64_t to_row) {
    ChunkedScanStats scan;
    StatusOr<GroupCounts> counts =
        table_->ScanRange(cols, from_row, to_row, kernel_, &scan);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    if (counts.ok()) {
      // One logical data pass over the requested range, however many
      // chunks it decomposed into (keeps `scans` comparable with
      // ViewCountProvider); the chunk-level detail is its own family.
      ++stats_.scans;
      stats_.chunk_scans += scan.chunk_scans;
      stats_.chunks_skipped += scan.chunks_skipped;
      stats_.rows_scanned += scan.rows_scanned;
    }
    return counts;
  }

  std::shared_ptr<const ChunkedTable> table_;
  GroupByKernelOptions kernel_;
  mutable std::mutex mu_;
  CountEngineStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_STORAGE_CHUNKED_COUNT_PROVIDER_H_
