// Union prefetch planning for batched queries.
//
// A worker that drains a batch of same-key requests (same dataset,
// treatment, subpopulation) knows every attribute set the batch is about
// to demand. Running them one by one, each request materializes its own
// focus — the batch pays one scan per distinct set. This planner computes
// a cheaper cover first: greedily merge the needed sets into union bins
// whose domain-product bound fits the cache cell budget, and Prefetch
// each bin that covers at least two requests — one scan materializes a
// superset summary every covered request then answers by marginalization
// (CachingCountEngine) instead of scanning.
//
// Pure and deterministic: no engine calls, no clocks, no randomness —
// the same inputs always produce the same bins (tests enumerate them).
// Counts stay exact whatever the plan: prefetching is a cache warm-up,
// and marginalized summaries are bit-identical to direct scans (the
// standing invariant), so planning can only change *where* counts come
// from, never what they are.

#ifndef HYPDB_SERVICE_UNION_PLANNER_H_
#define HYPDB_SERVICE_UNION_PLANNER_H_

#include <cstdint>
#include <vector>

namespace hypdb {

/// One prefetch the planner recommends.
struct UnionPlanBin {
  /// Sorted union of the covered column sets — the Prefetch argument.
  std::vector<int> cols;
  /// Domain-product cell bound of `cols` (what admission would check).
  int64_t bound_cells = 0;
  /// Distinct requested column sets this bin covers (subset-of-cols).
  /// Bins with covered < 2 are not worth a prefetch: the single covered
  /// request would materialize exactly that focus on its own anyway.
  int covered = 0;
};

/// Plans superset prefetches for `requests` (one needed column set per
/// batched request; unsorted/duplicated columns tolerated).
/// `cardinalities[c]` is the dictionary size of column c — the source of
/// the domain-product bounds. `budget_cells` caps each bin's bound;
/// <= 0 means unbounded (everything merges into one bin). Requested sets
/// whose own bound already exceeds the budget are dropped (they would be
/// refused at admission too). Bins come out with their covered counts;
/// callers typically Prefetch those with covered >= 2.
std::vector<UnionPlanBin> PlanUnionPrefetch(
    const std::vector<std::vector<int>>& requests,
    const std::vector<int64_t>& cardinalities, int64_t budget_cells);

}  // namespace hypdb

#endif  // HYPDB_SERVICE_UNION_PLANNER_H_
