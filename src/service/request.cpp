#include "service/request.h"

#include <algorithm>

#include "util/string_util.h"

namespace hypdb {
namespace {

// Field separator for composed keys.
constexpr char kSep = '\x1f';

// Escapes every character the key grammar uses as structure — the field
// separator plus the '=', ',', '&' of the WHERE rendering. Attribute
// names and values come from arbitrary CSV data, so without this two
// different WHERE clauses could print the same signature (e.g. one value
// "1&B=2" vs two terms "...=1" & "B=2") and falsely share a shard.
std::string EscapeValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == kSep || c == '\\' || c == '=' || c == ',' || c == '&') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string SubpopulationSignature(const AggQuery& query) {
  // Normalize: per-term sorted unique values, terms sorted by attribute
  // (ties broken by value list so `a IN (1)` and `a IN (2)` stay apart).
  std::vector<std::string> terms;
  terms.reserve(query.where.size());
  for (const auto& [attr, values] : query.where) {
    std::vector<std::string> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::string term = EscapeValue(attr) + "=";
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) term += ",";
      term += EscapeValue(sorted[i]);
    }
    terms.push_back(std::move(term));
  }
  std::sort(terms.begin(), terms.end());
  // Identical conjuncts are idempotent (t AND t ≡ t): `a IN ('1') AND
  // a IN ('1')` selects the same rows as `a IN ('1')` and must map to
  // the same shard. (Distinct terms on one attribute are kept — their
  // conjunction is an intersection, a different subpopulation.)
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  std::string sig;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) sig += "&";
    sig += terms[i];
  }
  return sig;
}

StatusOr<std::vector<SubpopulationTerm>> ParseSubpopulationSignature(
    const std::string& signature) {
  std::vector<SubpopulationTerm> terms;
  if (signature.empty()) return terms;
  SubpopulationTerm term;
  std::string token;
  bool in_values = false;  // before vs after the term's unescaped '='
  auto finish_term = [&]() -> Status {
    if (!in_values) {
      return Status::InvalidArgument(
          "malformed subpopulation signature (term without '='): " +
          signature);
    }
    term.values.push_back(std::move(token));
    token.clear();
    terms.push_back(std::move(term));
    term = {};
    in_values = false;
    return Status::Ok();
  };
  for (size_t i = 0; i < signature.size(); ++i) {
    const char c = signature[i];
    if (c == '\\') {
      if (i + 1 >= signature.size()) {
        return Status::InvalidArgument(
            "malformed subpopulation signature (trailing escape): " +
            signature);
      }
      token.push_back(signature[++i]);
    } else if (c == '=' && !in_values) {
      term.attribute = std::move(token);
      token.clear();
      in_values = true;
    } else if (c == ',' && in_values) {
      term.values.push_back(std::move(token));
      token.clear();
    } else if (c == '&') {
      HYPDB_RETURN_IF_ERROR(finish_term());
    } else {
      token.push_back(c);
    }
  }
  HYPDB_RETURN_IF_ERROR(finish_term());
  return terms;
}

std::string DatasetKeyPrefix(const std::string& dataset) {
  return EscapeValue(dataset) + kSep;
}

std::string DiscoveryKey(const std::string& dataset, int64_t epoch,
                         const AggQuery& query, const HypDbOptions& o) {
  // Everything the DiscoveryReport depends on. Counts are exact, so the
  // count-engine configuration is deliberately absent (caching and scan
  // threads are execution strategy, not statistics) — with one exception:
  // the entropy estimator, which changes every CI statistic.
  std::string key = DatasetKeyPrefix(dataset);
  key += std::to_string(epoch);
  key += kSep;
  key += EscapeValue(query.treatment);
  key += kSep;
  // Outcome ORDER matters: mediators are discovered for the primary
  // outcome (outcomes[0]), so a reordered outcome list is a different
  // discovery — never canonicalize it away.
  for (size_t i = 0; i < query.outcomes.size(); ++i) {
    if (i > 0) key += ",";
    key += EscapeValue(query.outcomes[i]);
  }
  key += kSep;
  key += SubpopulationSignature(query);
  key += kSep;
  // Every float at full precision (%.17g round-trips doubles): a 7th-
  // significant-digit difference in any threshold is a different test
  // configuration and must not share a cached discovery.
  key += StrFormat(
      "ci=%d,%d,%.17g,%.17g,%d,%d,%d|a=%.17g|cd=%d,%d,%.17g,%d|"
      "fd=%.17g,%d,%lld,%d,%.17g|f=%d,%d|est=%d|seed=%llu",
      static_cast<int>(o.ci.method), o.ci.permutations, o.ci.hybrid_beta,
      o.ci.strata_sample_factor, o.ci.min_sampled_strata,
      o.ci.sampled_strata_threshold, static_cast<int>(o.ci.mit_estimator),
      o.alpha, o.cd.max_sepset, o.cd.use_iamb ? 1 : 0,
      o.cd.collider_alpha_scale, o.cd.max_blanket, o.fd.fd_epsilon,
      o.fd.num_sizes, static_cast<long long>(o.fd.base_size),
      o.fd.replicates, o.fd.slope_threshold, o.apply_fd_filter ? 1 : 0,
      o.discover_mediators ? 1 : 0, static_cast<int>(o.engine.estimator),
      static_cast<unsigned long long>(o.seed));
  return key;
}

std::string BatchKey(const std::string& dataset, const AggQuery& query) {
  return DatasetKeyPrefix(dataset) + EscapeValue(query.treatment) + kSep +
         SubpopulationSignature(query);
}

}  // namespace hypdb
