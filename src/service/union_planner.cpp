#include "service/union_planner.h"

#include <algorithm>
#include <limits>

namespace hypdb {
namespace {

/// Π cardinalities[c] over `cols`, saturating at int64 max. Unknown or
/// empty columns count as 1 (they cannot widen the summary).
int64_t BoundCells(const std::vector<int>& cols,
                   const std::vector<int64_t>& cardinalities) {
  int64_t bound = 1;
  const int64_t cap = std::numeric_limits<int64_t>::max();
  for (int c : cols) {
    int64_t card = 1;
    if (c >= 0 && c < static_cast<int>(cardinalities.size())) {
      card = std::max<int64_t>(1, cardinalities[c]);
    }
    if (bound > cap / card) return cap;
    bound *= card;
  }
  return bound;
}

bool IsSubset(const std::vector<int>& sub, const std::vector<int>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

std::vector<int> SortedUnion(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<UnionPlanBin> PlanUnionPrefetch(
    const std::vector<std::vector<int>>& requests,
    const std::vector<int64_t>& cardinalities, int64_t budget_cells) {
  // Normalize and deduplicate: bins cover *distinct* sets; five twins of
  // one set still count as one (the first run materializes their shared
  // focus anyway — a union buys nothing for exact repeats).
  std::vector<std::vector<int>> sets;
  for (const std::vector<int>& request : requests) {
    std::vector<int> cols = request;
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    if (cols.empty()) continue;
    if (budget_cells > 0 && BoundCells(cols, cardinalities) > budget_cells) {
      continue;  // admission would refuse this focus on its own
    }
    sets.push_back(std::move(cols));
  }
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());

  // Widest bound first so the large sets seed bins and the small ones
  // fold into them; ties broken on the set itself for determinism.
  std::stable_sort(sets.begin(), sets.end(),
                   [&](const std::vector<int>& a, const std::vector<int>& b) {
                     const int64_t ba = BoundCells(a, cardinalities);
                     const int64_t bb = BoundCells(b, cardinalities);
                     return ba != bb ? ba > bb : a < b;
                   });

  std::vector<UnionPlanBin> bins;
  for (const std::vector<int>& set : sets) {
    // Prefer a bin that already covers the set (no growth), else the
    // first bin whose union still fits the budget.
    UnionPlanBin* home = nullptr;
    for (UnionPlanBin& bin : bins) {
      if (IsSubset(set, bin.cols)) {
        home = &bin;
        break;
      }
    }
    if (home == nullptr) {
      for (UnionPlanBin& bin : bins) {
        std::vector<int> merged = SortedUnion(bin.cols, set);
        const int64_t bound = BoundCells(merged, cardinalities);
        if (budget_cells <= 0 || bound <= budget_cells) {
          bin.cols = std::move(merged);
          bin.bound_cells = bound;
          home = &bin;
          break;
        }
      }
    }
    if (home == nullptr) {
      UnionPlanBin bin;
      bin.cols = set;
      bin.bound_cells = BoundCells(set, cardinalities);
      bins.push_back(std::move(bin));
      home = &bins.back();
    }
    ++home->covered;
  }
  return bins;
}

}  // namespace hypdb
