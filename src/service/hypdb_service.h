// HypDbService: HypDB as a long-lived, concurrent analysis service.
//
// The one-shot library usage — construct a HypDb around a table, call
// Analyze() — re-loads data and re-discovers covariates per call. The
// service turns that into the paper's interactive "think twice about your
// group-by query" workflow at production shape:
//
//   HypDbService service;                      // workers = hardware
//   service.RegisterTable("flights", table);   // load once
//   auto r = service.AnalyzeSql("flights",     // synchronous facade
//       "SELECT Carrier, avg(Delayed) FROM flights GROUP BY Carrier");
//   uint64_t t = service.Submit({...});        // async submit/poll
//   ... service.Done(t) ... service.Wait(t);
//
// Composition (each part is its own module under src/service/):
//  * DatasetRegistry — named tables + per-dataset pools of thread-safe
//    CachingCountEngines sharded by subpopulation signature;
//  * DiscoveryCache  — covariate/mediator discovery computed once per
//    DiscoveryKey, with coalescing of concurrent twins and invalidation
//    on dataset re-registration;
//  * QueryScheduler  — the worker pool, with same-(dataset, treatment,
//    subpopulation) batching.
// Reports come back as ServiceReport: the ordinary HypDbReport plus
// RequestStats (queue wait, cache reuse, shared-engine work deltas).
// Reports are bit-identical to cold serial execution by construction —
// see service/report_digest.h for the checked invariant.

#ifndef HYPDB_SERVICE_HYPDB_SERVICE_H_
#define HYPDB_SERVICE_HYPDB_SERVICE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/dataset_registry.h"
#include "service/discovery_cache.h"
#include "service/query_scheduler.h"
#include "service/request.h"
#include "service/session_manager.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace hypdb {

struct HypDbServiceOptions {
  /// Worker threads; 0 resolves to hardware_concurrency.
  int num_workers = 0;
  /// Analysis options for requests without per-request overrides. Also
  /// configures the shared shard engines (engine member).
  HypDbOptions analysis;
  /// Shard engines kept per dataset.
  int max_shards_per_dataset = 32;
  /// Cached discovery reports kept.
  int64_t max_discovery_entries = 256;
  /// Same-batch-key requests a worker drains per pickup.
  int batch_max = 8;
  /// Feature toggles (all on in production; tests and benches ablate
  /// them). `cross_shard_slicing` lets equality-conjunction shards derive
  /// counts from the dataset's shared parent engine instead of scanning
  /// their filtered view in isolation (DatasetRegistryOptions).
  bool share_engines = true;
  bool share_discovery = true;
  bool cross_shard_slicing = true;
  /// Rows per storage chunk (DatasetRegistryOptions::chunk_rows): the
  /// granularity of delta scans after appends.
  int64_t chunk_rows = ChunkedTable::kDefaultChunkRows;
  /// Background cube-advisor cadence under adaptive materialization
  /// (analysis.engine.materialization == kAdaptive; inert under
  /// kStatic): seconds between passes promoting persistently hot
  /// attribute sets into a pre-built cube lattice and demoting stale
  /// ones. <= 0 disables the thread (the registry's AdvisorPass() can
  /// still be driven manually). Forwarded to
  /// DatasetRegistryOptions::advisor_interval_seconds.
  double advisor_interval_seconds = 0.25;
  /// Discovery staleness bound under appends
  /// (DiscoveryCacheOptions::refresh_rows_fraction): a cached discovery
  /// computed at watermark W is recomputed at the next lookup once the
  /// watermark exceeds W * (1 + fraction). 0.0 = any append retires it.
  double refresh_rows_fraction = 0.0;
  /// Staged analysis sessions kept live (LRU-evicted beyond this).
  int64_t max_sessions = 64;
  /// Idle seconds before a session expires; <= 0 disables expiry.
  double session_ttl_seconds = 600.0;
  /// Default trace sampling level for requests without a per-request
  /// `trace_level` (SubmitOptions / wire key / CLI --trace): 0 off,
  /// 1 stage spans + kernel scans + cache decisions (the default; gated
  /// ≤3% qps by bench_trace_overhead), 2 adds per-CI-test and
  /// per-morsel events.
  int trace_level = 1;
  /// Completed request traces retained for GET /v1/requests/{id}/trace
  /// (results are claim-once, so the trace outlives the claim here).
  /// Oldest dropped beyond the cap; 0 disables retention.
  int64_t trace_retention = 256;
  /// Per-request completion observer forwarded to the scheduler (see
  /// QuerySchedulerOptions::on_complete) — how `--stats-log` and the
  /// slow-query flight recorder hook in without the service depending on
  /// any serialization layer. The stats already carry the harvested
  /// trace events when the request ran at trace_level > 0.
  std::function<void(const RequestStats&, const Status&)> on_complete;
};

/// Thread-safe: any number of client threads may register datasets and
/// submit/await queries concurrently.
class HypDbService {
 public:
  explicit HypDbService(HypDbServiceOptions options = {});

  /// Registers (or replaces) a dataset. Replacement invalidates the
  /// dataset's cached discoveries and engine shards. Returns the epoch.
  int64_t RegisterTable(const std::string& name, TablePtr table);
  StatusOr<int64_t> RegisterCsv(const std::string& name,
                                const std::string& path);
  StatusOr<TablePtr> Dataset(const std::string& name) const;
  std::vector<DatasetInfo> Datasets() const;

  /// Appends rows (one label per column, schema order) to a registered
  /// dataset. Unlike re-registration this does NOT bump the epoch:
  /// sessions, shard caches and cached discoveries survive — cached
  /// summaries are delta-patched by scanning only the appended chunks,
  /// and discoveries refresh lazily under refresh_rows_fraction. Appends
  /// serialize behind in-flight requests (the dataset read lease).
  /// Returns the new watermark; NotFound for unknown datasets,
  /// InvalidArgument on arity mismatch (nothing is appended).
  StatusOr<int64_t> AppendRows(
      const std::string& name,
      const std::vector<std::vector<std::string>>& rows);

  /// Synchronous facade: submit + wait.
  StatusOr<ServiceReport> Analyze(AnalyzeRequest request);
  StatusOr<ServiceReport> AnalyzeSql(const std::string& dataset,
                                     const std::string& sql);

  /// Async API: Submit returns a ticket; Done polls; Wait blocks and
  /// claims the result (one Wait per ticket); Cancel drops still-queued
  /// requests, and for in-flight *session stage* jobs requests
  /// cooperative cancellation (kCancelled at the next stage boundary).
  uint64_t Submit(AnalyzeRequest request, SubmitOptions submit = {});
  bool Done(uint64_t ticket) const;
  StatusOr<ServiceReport> Wait(uint64_t ticket);
  bool Cancel(uint64_t ticket);

  /// --- staged analysis sessions (the "think twice" loop) -------------
  /// A session decomposes one analysis into independently invokable,
  /// idempotent stages over persisted state (core/analysis_session.h),
  /// wired into the shared infrastructure: its discovery goes through
  /// the DiscoveryCache, its population and per-context counts through
  /// the registry's shard engines, and each stage runs as a scheduler
  /// job (batching, deadlines and cancellation apply).

  /// Creates a session for `request` (binding the query now, so
  /// malformed queries fail here). The session dies with the dataset
  /// epoch: re-registration invalidates it (kGone afterwards).
  StatusOr<SessionInfo> CreateSession(const AnalyzeRequest& request);
  /// Runs one stage — "answers", "discover", "detect", "explain",
  /// "rewrite" (the latter two optionally for one `context`), or
  /// "report" (every remaining stage, canonical order). Synchronous
  /// facade over SubmitSessionStage + Wait. The returned report is the
  /// session's current snapshot; stats carry session_id/stage/
  /// stage_reused/session_complete.
  StatusOr<ServiceReport> AdvanceSession(uint64_t session_id,
                                         const std::string& stage,
                                         std::optional<int> context = {},
                                         SubmitOptions submit = {});
  /// Async flavor: the stage job's ticket (Wait/Done/Cancel as usual;
  /// Cancel on the running job takes effect at the next stage boundary).
  uint64_t SubmitSessionStage(uint64_t session_id, std::string stage,
                              std::optional<int> context = {},
                              SubmitOptions submit = {});
  StatusOr<SessionInfo> InspectSession(uint64_t session_id);
  /// The session's current report snapshot without running anything —
  /// the GET-side view (digest-comparable once the session is complete).
  StatusOr<ServiceReport> SessionSnapshot(uint64_t session_id);
  std::vector<SessionInfo> Sessions() const { return sessions_.List(); }
  /// Closes the session; kNotFound/kGone per the SessionManager rules.
  Status CloseSession(uint64_t session_id);
  int64_t num_sessions() const { return sessions_.size(); }

  /// The retained trace of a completed request: final stats including
  /// the harvested sub-stage events. Available after completion (even
  /// after Wait() claimed the result) until trace_retention pushes it
  /// out. kNotFound for unknown/expired tickets; kFailedPrecondition
  /// when the request ran with tracing off.
  StatusOr<RequestStats> RequestTrace(uint64_t ticket) const;

  /// Introspection.
  DiscoveryCacheStats discovery_stats() const { return discovery_.stats(); }
  StatusOr<CountEngineStats> engine_stats(const std::string& dataset) const {
    return registry_.EngineStats(dataset);
  }
  /// Cube-advisor activity (all zero under static materialization).
  CubeAdvisorStats advisor_stats() const { return registry_.advisor_stats(); }
  /// The dataset registry (shared engines, cube advisor). For benches,
  /// tests and operational tooling that drive AdvisorPass() manually or
  /// inspect shard engines directly; ordinary clients use the request
  /// API.
  DatasetRegistry& registry() { return registry_; }
  int num_workers() const { return scheduler_->num_workers(); }
  const HypDbServiceOptions& options() const { return options_; }

  /// --- observability -------------------------------------------------
  /// The service-wide registry behind GET /metrics: every subsystem's
  /// counters/histograms registered under stable hypdb_* names (see the
  /// README metric reference). Front-end objects (HttpServer, handlers)
  /// add their own metrics here post-construction. Scrapes are safe from
  /// any thread for the service's lifetime.
  MetricsRegistry& metrics_registry() { return metrics_; }
  double uptime_seconds() const { return uptime_.ElapsedSeconds(); }
  int64_t queue_depth() const { return scheduler_->queue_depth(); }
  const SchedulerMetrics& scheduler_metrics() const {
    return scheduler_->metrics();
  }
  const SessionManagerMetrics& session_metrics() const {
    return sessions_.metrics();
  }

 private:
  /// Registers every subsystem's metrics under the service registry.
  /// Called last in the constructor; all registered pointers are members
  /// of *this (or of subsystems *this owns), and metrics_ is declared
  /// first so it is destroyed last — nothing scrapes during teardown.
  void RegisterMetrics();
  /// The body of a session stage job (runs on a scheduler worker).
  StatusOr<ServiceReport> RunSessionStage(
      uint64_t session_id, const std::string& stage,
      std::optional<int> context,
      const std::shared_ptr<std::atomic<bool>>& cancel_flag,
      RequestStats* stats);

  /// Bounded retention of completed requests' final stats (with their
  /// harvested trace events), keyed by ticket — what the trace export
  /// endpoint reads after the claim-once result is gone.
  class TraceStore {
   public:
    explicit TraceStore(int64_t cap) : cap_(cap) {}
    void Record(const RequestStats& stats);
    StatusOr<RequestStats> Get(uint64_t ticket) const;

   private:
    const int64_t cap_;
    mutable std::mutex mu_;
    std::map<uint64_t, RequestStats> by_ticket_;
    std::deque<uint64_t> order_;
  };

  // First member: registered metric pointers all outlive the registry.
  MetricsRegistry metrics_;
  /// Ingest accounting (hypdb_ingest_*): rows/batches are bumped on the
  /// append path here; the delta-patch/chunk-scan side is aggregated
  /// from the registry's engine stats at scrape time.
  Counter ingest_rows_;
  Counter ingest_batches_;
  Stopwatch uptime_;
  HypDbServiceOptions options_;
  // Outlives the scheduler: workers publish into it via on_complete.
  TraceStore traces_;
  DatasetRegistry registry_;
  DiscoveryCache discovery_;
  mutable SessionManager sessions_;
  // Last member: workers touch registry_/discovery_/sessions_, so they
  // must be joined (scheduler destroyed) before those die.
  std::unique_ptr<QueryScheduler> scheduler_;
};

}  // namespace hypdb

#endif  // HYPDB_SERVICE_HYPDB_SERVICE_H_
