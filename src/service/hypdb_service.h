// HypDbService: HypDB as a long-lived, concurrent analysis service.
//
// The one-shot library usage — construct a HypDb around a table, call
// Analyze() — re-loads data and re-discovers covariates per call. The
// service turns that into the paper's interactive "think twice about your
// group-by query" workflow at production shape:
//
//   HypDbService service;                      // workers = hardware
//   service.RegisterTable("flights", table);   // load once
//   auto r = service.AnalyzeSql("flights",     // synchronous facade
//       "SELECT Carrier, avg(Delayed) FROM flights GROUP BY Carrier");
//   uint64_t t = service.Submit({...});        // async submit/poll
//   ... service.Done(t) ... service.Wait(t);
//
// Composition (each part is its own module under src/service/):
//  * DatasetRegistry — named tables + per-dataset pools of thread-safe
//    CachingCountEngines sharded by subpopulation signature;
//  * DiscoveryCache  — covariate/mediator discovery computed once per
//    DiscoveryKey, with coalescing of concurrent twins and invalidation
//    on dataset re-registration;
//  * QueryScheduler  — the worker pool, with same-(dataset, treatment,
//    subpopulation) batching.
// Reports come back as ServiceReport: the ordinary HypDbReport plus
// RequestStats (queue wait, cache reuse, shared-engine work deltas).
// Reports are bit-identical to cold serial execution by construction —
// see service/report_digest.h for the checked invariant.

#ifndef HYPDB_SERVICE_HYPDB_SERVICE_H_
#define HYPDB_SERVICE_HYPDB_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "service/dataset_registry.h"
#include "service/discovery_cache.h"
#include "service/query_scheduler.h"
#include "service/request.h"

namespace hypdb {

struct HypDbServiceOptions {
  /// Worker threads; 0 resolves to hardware_concurrency.
  int num_workers = 0;
  /// Analysis options for requests without per-request overrides. Also
  /// configures the shared shard engines (engine member).
  HypDbOptions analysis;
  /// Shard engines kept per dataset.
  int max_shards_per_dataset = 32;
  /// Cached discovery reports kept.
  int64_t max_discovery_entries = 256;
  /// Same-batch-key requests a worker drains per pickup.
  int batch_max = 8;
  /// Feature toggles (both on in production; tests ablate them).
  bool share_engines = true;
  bool share_discovery = true;
};

/// Thread-safe: any number of client threads may register datasets and
/// submit/await queries concurrently.
class HypDbService {
 public:
  explicit HypDbService(HypDbServiceOptions options = {});

  /// Registers (or replaces) a dataset. Replacement invalidates the
  /// dataset's cached discoveries and engine shards. Returns the epoch.
  int64_t RegisterTable(const std::string& name, TablePtr table);
  StatusOr<int64_t> RegisterCsv(const std::string& name,
                                const std::string& path);
  StatusOr<TablePtr> Dataset(const std::string& name) const;
  std::vector<DatasetInfo> Datasets() const;

  /// Synchronous facade: submit + wait.
  StatusOr<ServiceReport> Analyze(AnalyzeRequest request);
  StatusOr<ServiceReport> AnalyzeSql(const std::string& dataset,
                                     const std::string& sql);

  /// Async API: Submit returns a ticket; Done polls; Wait blocks and
  /// claims the result (one Wait per ticket); Cancel drops still-queued
  /// requests (returns false for running/finished/unknown tickets).
  uint64_t Submit(AnalyzeRequest request, SubmitOptions submit = {});
  bool Done(uint64_t ticket) const;
  StatusOr<ServiceReport> Wait(uint64_t ticket);
  bool Cancel(uint64_t ticket);

  /// Introspection.
  DiscoveryCacheStats discovery_stats() const { return discovery_.stats(); }
  StatusOr<CountEngineStats> engine_stats(const std::string& dataset) const {
    return registry_.EngineStats(dataset);
  }
  int num_workers() const { return scheduler_->num_workers(); }
  const HypDbServiceOptions& options() const { return options_; }

 private:
  HypDbServiceOptions options_;
  DatasetRegistry registry_;
  DiscoveryCache discovery_;
  // Last member: workers touch registry_/discovery_, so they must be
  // joined (scheduler destroyed) before those die.
  std::unique_ptr<QueryScheduler> scheduler_;
};

}  // namespace hypdb

#endif  // HYPDB_SERVICE_HYPDB_SERVICE_H_
