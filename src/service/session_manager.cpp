#include "service/session_manager.h"

#include <algorithm>

namespace hypdb {

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(options) {}

void SessionManager::SweepLocked() {
  if (options_.ttl_seconds <= 0.0) return;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->touched.ElapsedSeconds() > options_.ttl_seconds) {
      metrics_.expired.Add();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::shared_ptr<SessionManager::Entry> SessionManager::Insert(
    std::string dataset, int64_t epoch, std::string sql, AggQuery query,
    std::string batch_key, std::unique_ptr<AnalysisSession> session,
    std::shared_ptr<SessionDiscoveryFlags> discovery_flags) {
  auto entry = std::make_shared<Entry>();
  entry->dataset = std::move(dataset);
  entry->epoch = epoch;
  entry->sql = std::move(sql);
  entry->query = std::move(query);
  entry->batch_key = std::move(batch_key);
  entry->session = std::move(session);
  entry->discovery_flags = discovery_flags != nullptr
                               ? std::move(discovery_flags)
                               : std::make_shared<SessionDiscoveryFlags>();

  std::lock_guard<std::mutex> lock(mu_);
  SweepLocked();
  // LRU cap: make room by dropping the longest-idle session. An entry
  // mid-stage survives as long as the running job's shared_ptr does; its
  // id simply answers kGone afterwards.
  const int64_t cap = std::max<int64_t>(1, options_.max_sessions);
  while (static_cast<int64_t>(sessions_.size()) >= cap) {
    auto victim = sessions_.begin();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second->touched.ElapsedSeconds() >
          victim->second->touched.ElapsedSeconds()) {
        victim = it;
      }
    }
    metrics_.evicted.Add();
    sessions_.erase(victim);
  }
  entry->id = next_id_++;
  sessions_.emplace(entry->id, entry);
  metrics_.created.Add();
  return entry;
}

StatusOr<std::shared_ptr<SessionManager::Entry>> SessionManager::Get(
    uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  SweepLocked();
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (id > 0 && id < next_id_) {
      return Status::Gone("session " + std::to_string(id) +
                          " expired, was invalidated, or was closed");
    }
    return Status::NotFound("unknown session " + std::to_string(id));
  }
  it->second->touched.Restart();
  return it->second;
}

Status SessionManager::Erase(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  SweepLocked();
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (id > 0 && id < next_id_) {
      return Status::Gone("session " + std::to_string(id) +
                          " expired, was invalidated, or was closed");
    }
    return Status::NotFound("unknown session " + std::to_string(id));
  }
  sessions_.erase(it);
  metrics_.closed.Add();
  return Status::Ok();
}

int64_t SessionManager::InvalidateDataset(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->dataset == dataset) {
      it = sessions_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  metrics_.invalidated.Add(dropped);
  return dropped;
}

SessionInfo SessionManager::Info(
    const std::shared_ptr<Entry>& entry) const {
  SessionInfo info;
  info.id = entry->id;
  info.dataset = entry->dataset;
  info.epoch = entry->epoch;
  info.sql = entry->sql;
  info.age_seconds = entry->created.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    info.idle_seconds = entry->touched.ElapsedSeconds();
  }
  std::lock_guard<std::mutex> stage_lock(entry->mu);
  const AnalysisSession& session = *entry->session;
  info.complete = session.complete();
  info.contexts = session.SplitContextCount();
  for (int s = 0; s < kNumAnalysisStages; ++s) {
    const AnalysisStage stage = static_cast<AnalysisStage>(s);
    const StageState& state = session.stage_state(stage);
    SessionStageInfo row;
    row.stage = AnalysisStageName(stage);
    row.done = state.done;
    row.runs = state.runs;
    row.reuses = state.reuses;
    row.seconds = state.seconds;
    info.stages.push_back(std::move(row));
  }
  return info;
}

std::vector<SessionInfo> SessionManager::List() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : sessions_) entries.push_back(entry);
  }
  std::vector<SessionInfo> out;
  out.reserve(entries.size());
  for (const auto& entry : entries) out.push_back(Info(entry));
  return out;
}

int64_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

}  // namespace hypdb
