#include "service/report_digest.h"

#include "util/string_util.h"

namespace hypdb {
namespace {

void AppendDouble(std::string* out, double v) {
  *out += StrFormat("%.17g", v);
  *out += ";";
}

void AppendCi(std::string* out, const CiResult& r) {
  AppendDouble(out, r.statistic);
  AppendDouble(out, r.p_value);
  AppendDouble(out, r.p_low);
  AppendDouble(out, r.p_high);
  *out += StrFormat("df=%lld,m=%d;", static_cast<long long>(r.df),
                    static_cast<int>(r.method_used));
}

void AppendBalance(std::string* out, const BalanceTest& b) {
  *out += "[" + Join(b.variables, ",") + "]";
  AppendCi(out, b.ci);
  *out += b.biased ? "B" : "u";
  AppendDouble(out, b.p_adjusted);
  *out += b.biased_fdr ? "B" : "u";
  *out += "|";
}

void AppendGroups(std::string* out, const std::vector<AdjustedGroup>& gs) {
  for (const auto& g : gs) {
    *out += g.treatment_label + StrFormat(":%lld:",
                                          static_cast<long long>(g.rows));
    for (double m : g.means) AppendDouble(out, m);
  }
}

}  // namespace

std::string CanonicalReportDigest(const HypDbReport& report) {
  std::string out;
  out += "sql:" + report.sql_plain + "\n";
  out += "sql_total:" + report.sql_total + "\n";
  out += "sql_direct:" + report.sql_direct + "\n";

  out += "discovery:Z=[" + Join(report.discovery.covariates, ",") + "]M=[" +
         Join(report.discovery.mediators, ",") + "]fd=[" +
         Join(report.discovery.dropped_fd, ",") + "]keys=[" +
         Join(report.discovery.dropped_keys, ",") + "]";
  out += report.discovery.covariates_fell_back ? "ZF" : "z";
  out += report.discovery.mediators_fell_back ? "MF" : "m";
  out += StrFormat("tests=%lld",
                   static_cast<long long>(report.discovery.tests_used));
  out += "\n";

  out += "plain:" + Join(report.plain.outcome_names, ",") + "\n";
  for (const auto& ctx : report.plain.contexts) {
    out += "ctx[" + Join(ctx.context_labels, ",") + "]:";
    for (const auto& g : ctx.groups) {
      out += g.treatment_label +
             StrFormat(":%lld:", static_cast<long long>(g.count));
      for (double a : g.averages) AppendDouble(&out, a);
    }
    out += "\n";
  }

  for (const auto& b : report.bias) {
    out += "bias[" + Join(b.context_labels, ",") +
           StrFormat("]r=%lld:", static_cast<long long>(b.rows));
    AppendBalance(&out, b.total);
    if (b.has_direct) AppendBalance(&out, b.direct);
    out += "\n";
  }

  for (const auto& e : report.explanations) {
    out += "expl[" + Join(e.context_labels, ",") + "]:";
    for (const auto& r : e.coarse) {
      out += r.attribute + ":";
      AppendDouble(&out, r.rho);
    }
    for (const auto& f : e.fine) {
      out += "fine(" + f.covariate + "):";
      for (const auto& t : f.top) {
        out += StrFormat("#%d(", t.borda_rank) + t.t_label + "," +
               t.y_label + "," + t.z_label + ")";
        AppendDouble(&out, t.kappa_tz);
        AppendDouble(&out, t.kappa_yz);
      }
    }
    out += "\n";
  }

  for (const auto& rw : report.rewrites) {
    out += "rw[" + Join(rw.context_labels, ",") +
           StrFormat("]r=%lld,b=%lld/%lld,db=%lld/%lld:",
                     static_cast<long long>(rw.rows),
                     static_cast<long long>(rw.blocks_used),
                     static_cast<long long>(rw.blocks_seen),
                     static_cast<long long>(rw.direct_blocks_used),
                     static_cast<long long>(rw.direct_blocks_seen));
    out += "T:";
    AppendGroups(&out, rw.total);
    if (rw.has_direct) {
      out += "D(" + rw.direct_reference + "):";
      AppendGroups(&out, rw.direct);
    }
    out += "sig:";
    for (const auto& s : rw.plain_sig) AppendCi(&out, s);
    for (const auto& s : rw.total_sig) AppendCi(&out, s);
    for (const auto& s : rw.direct_sig) AppendCi(&out, s);
    out += "\n";
  }
  return out;
}

}  // namespace hypdb
