#include "service/discovery_cache.h"

#include <algorithm>

#include "util/trace.h"

namespace hypdb {

DiscoveryCache::DiscoveryCache(DiscoveryCacheOptions options)
    : options_(options) {}

bool DiscoveryCache::StaleLocked(int64_t entry_watermark,
                                 int64_t watermark) const {
  if (entry_watermark < 0 || watermark < 0) return false;
  if (options_.refresh_rows_fraction < 0) return false;  // refresh disabled
  const double grown = static_cast<double>(watermark - entry_watermark);
  return grown > options_.refresh_rows_fraction *
                     static_cast<double>(entry_watermark);
}

StatusOr<DiscoveryReport> DiscoveryCache::LookupOrCompute(
    const std::string& key,
    const std::function<StatusOr<DiscoveryReport>()>& compute, bool* reused,
    bool* coalesced, int64_t watermark) {
  if (reused != nullptr) *reused = false;
  if (coalesced != nullptr) *coalesced = false;

  std::unique_lock<std::mutex> lock(mu_);
  auto hit = cache_.find(key);
  if (hit != cache_.end()) {
    if (!StaleLocked(hit->second.watermark, watermark)) {
      ++stats_.hits;
      if (reused != nullptr) *reused = true;
      TraceInstant(TraceEventKind::kDiscoveryHit, 1);
      return hit->second.report;
    }
    // Past the staleness bound: drop the entry and recompute below (or
    // join a twin already recomputing). Appends never touch the cache —
    // this lazy refresh is the only way growth retires a discovery.
    ++stats_.stale_refreshes;
    cache_.erase(hit);
    age_.remove(key);
  }

  auto flight = inflight_.find(key);
  if (flight != inflight_.end()) {
    // Coalesce: another worker is computing this exact discovery right
    // now. Wait for it instead of duplicating the work — this is the
    // same-(table, treatment) request batching. The wait span makes
    // coalesced requests' "discovery time" legible in their trace: it
    // was a wait, not a computation.
    std::shared_ptr<InFlight> state = flight->second;
    ++stats_.coalesced;
    {
      TraceSpanScope wait_span(TraceEventKind::kDiscoveryWait, 1);
      state->cv.wait(lock, [&] { return state->done; });
    }
    if (!state->status.ok()) return state->status;
    if (reused != nullptr) *reused = true;
    if (coalesced != nullptr) *coalesced = true;
    return *state->report;
  }

  ++stats_.misses;
  TraceInstant(TraceEventKind::kDiscoveryCompute, 1);
  auto state = std::make_shared<InFlight>();
  inflight_.emplace(key, state);
  lock.unlock();

  StatusOr<DiscoveryReport> result = compute();

  lock.lock();
  inflight_.erase(key);
  state->done = true;
  if (result.ok()) {
    state->report = *result;
    if (cache_.emplace(key, Entry{*result, watermark}).second) {
      age_.push_back(key);
    }
    while (static_cast<int64_t>(cache_.size()) >
               std::max<int64_t>(1, options_.max_entries) &&
           !age_.empty()) {
      if (cache_.erase(age_.front()) > 0) ++stats_.evictions;
      age_.pop_front();
    }
  } else {
    state->status = result.status();
  }
  state->cv.notify_all();
  return result;
}

int64_t DiscoveryCache::InvalidatePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  auto it = cache_.lower_bound(prefix);
  while (it != cache_.end() && it->first.rfind(prefix, 0) == 0) {
    it = cache_.erase(it);
    ++dropped;
  }
  if (dropped > 0) {
    age_.remove_if([&](const std::string& key) {
      return key.rfind(prefix, 0) == 0;
    });
    stats_.invalidations += dropped;
  }
  return dropped;
}

DiscoveryCacheStats DiscoveryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t DiscoveryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(cache_.size());
}

}  // namespace hypdb
