// Canonical digest of a HypDbReport's analytical content.
//
// The service promises that sharing work across queries (cached counts,
// reused discovery, concurrent workers) is pure execution strategy: every
// report is bit-identical to the one a cold, serial HypDb::Analyze()
// produces. This digest is how that promise is checked — a deterministic,
// full-precision (%.17g round-trips doubles exactly) rendering of every
// statistical output, excluding only wall-clock timings and count-engine
// work counters, which legitimately vary with execution strategy.
// Used by the service tests and bench_service_throughput.

#ifndef HYPDB_SERVICE_REPORT_DIGEST_H_
#define HYPDB_SERVICE_REPORT_DIGEST_H_

#include <string>

#include "core/hypdb.h"

namespace hypdb {

/// Deterministic rendering of `report`'s analytical content. Two reports
/// digest equal iff every answer, discovery outcome, bias verdict,
/// explanation and rewrite matches to the last bit.
std::string CanonicalReportDigest(const HypDbReport& report);

}  // namespace hypdb

#endif  // HYPDB_SERVICE_REPORT_DIGEST_H_
