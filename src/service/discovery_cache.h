// DiscoveryCache: share covariate/mediator discovery across queries.
//
// Discovery (FD filtering + two CD runs) dominates Analyze() cost and
// depends only on (dataset, epoch, treatment, outcomes, subpopulation,
// discovery options) — the DiscoveryKey. Analyze-style workloads repeat
// that key constantly ("think twice" reruns, dashboards refreshing, many
// analysts probing the same grouping), so the service computes each
// distinct discovery once:
//  * completed results are cached (bounded, oldest-first eviction);
//  * concurrent requests for the same key are *coalesced*: the first
//    caller computes while the rest block on its result — the multi-query
//    batching for same-(table, treatment) requests. Errors propagate to
//    every coalesced waiter but are not cached (transient failures should
//    not stick).
// Invalidation: keys embed the dataset epoch, so re-registration makes
// stale entries unreachable; InvalidatePrefix() additionally frees them.
//
// Appends do NOT invalidate: entries are tagged with the storage
// watermark they were computed at, and a configurable staleness bound
// (refresh_rows_fraction) decides when enough rows have arrived that the
// discovery is recomputed — lazily, at the next lookup. The entry
// survives the append event itself; only a lookup observing a watermark
// past the bound pays the recompute (counted as stale_refreshes).

#ifndef HYPDB_SERVICE_DISCOVERY_CACHE_H_
#define HYPDB_SERVICE_DISCOVERY_CACHE_H_

#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/hypdb.h"

namespace hypdb {

struct DiscoveryCacheOptions {
  /// Cached discovery reports kept; oldest-first eviction beyond this.
  int64_t max_entries = 256;
  /// Staleness bound for append-grown datasets: an entry computed at
  /// watermark W keeps serving while the lookup watermark is at most
  /// W * (1 + refresh_rows_fraction); past that it is recomputed at the
  /// next lookup. 0.0 = exact (any appended row triggers recompute);
  /// e.g. 0.1 tolerates 10% growth before refreshing — the discovery
  /// outcome is a statistical property that rarely flips on a small
  /// fraction of new rows. Negative disables staleness entirely.
  double refresh_rows_fraction = 0.0;
};

struct DiscoveryCacheStats {
  int64_t hits = 0;            // served from a completed entry
  int64_t misses = 0;          // computed by the caller
  int64_t coalesced = 0;       // waited on an in-flight computation
  int64_t invalidations = 0;   // entries dropped by InvalidatePrefix
  int64_t evictions = 0;       // entries dropped by the size bound
  int64_t stale_refreshes = 0; // recomputed past the staleness bound
};

/// Thread-safe; LookupOrCompute may be called concurrently with any key.
class DiscoveryCache {
 public:
  explicit DiscoveryCache(DiscoveryCacheOptions options = {});

  /// Returns the report cached under `key`, or runs `compute` — at most
  /// once across concurrent callers of the same key — and caches an OK
  /// result. `reused` (optional) reports whether this caller skipped the
  /// computation; `coalesced` whether it waited on an in-flight twin.
  /// `compute` runs without the cache lock held. `watermark` is the
  /// caller's current storage watermark: an entry computed at an older
  /// watermark past the staleness bound is recomputed instead of served
  /// (-1 disables staleness tracking — the entry never goes stale).
  StatusOr<DiscoveryReport> LookupOrCompute(
      const std::string& key,
      const std::function<StatusOr<DiscoveryReport>()>& compute,
      bool* reused = nullptr, bool* coalesced = nullptr,
      int64_t watermark = -1);

  /// Drops every completed entry whose key starts with `prefix` (see
  /// DatasetKeyPrefix). Returns the number dropped.
  int64_t InvalidatePrefix(const std::string& prefix);

  DiscoveryCacheStats stats() const;
  int64_t size() const;

 private:
  struct InFlight {
    bool done = false;
    Status status;                          // meaningful once done
    std::optional<DiscoveryReport> report;  // set when status is OK
    std::condition_variable cv;             // waits on mu_
  };

  /// A completed entry tagged with the watermark it was computed at
  /// (-1 when the caller did not track one; such entries never go stale).
  struct Entry {
    DiscoveryReport report;
    int64_t watermark = -1;
  };

  /// True when an entry computed at `entry_watermark` must be recomputed
  /// for a lookup at `watermark` (see refresh_rows_fraction).
  bool StaleLocked(int64_t entry_watermark, int64_t watermark) const;

  mutable std::mutex mu_;
  DiscoveryCacheOptions options_;
  std::map<std::string, Entry> cache_;
  std::list<std::string> age_;  // insertion order, oldest first
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;
  DiscoveryCacheStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_SERVICE_DISCOVERY_CACHE_H_
