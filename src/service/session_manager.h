// SessionManager: the service's registry of live AnalysisSessions.
//
// A session is the wire-addressable handle of the staged "think twice"
// loop (core/analysis_session.h): created once per (dataset, query),
// advanced stage by stage, inspected, and eventually deleted. The
// manager owns lifecycle only — stage execution happens through the
// QueryScheduler; each entry carries a mutex serializing stages so the
// (non-thread-safe) session object is touched by one worker at a time.
//
// Lifecycle rules:
//  * TTL — a session idle longer than ttl_seconds expires; expired
//    entries are dropped lazily on any manager operation.
//  * LRU cap — at most max_sessions live entries; creating beyond the
//    cap evicts the longest-idle session.
//  * Epoch invalidation — re-registering a dataset invalidates all of
//    its sessions (their engines and discoveries aggregate the old
//    table's rows).
// A lookup of an id that once existed but was expired / invalidated /
// closed fails kGone (wire 410); an id never issued fails kNotFound
// (wire 404) — clients can tell "recreate the session" from "you have
// the wrong id".

#ifndef HYPDB_SERVICE_SESSION_MANAGER_H_
#define HYPDB_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/analysis_session.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace hypdb {

/// Session lifecycle counters (the SQLStats idiom): every way a session
/// can leave the table gets its own monotone counter, so
/// live = created - expired - evicted - invalidated - closed.
struct SessionManagerMetrics {
  Counter created;
  Counter expired;      // TTL sweep
  Counter evicted;      // LRU cap at Insert
  Counter invalidated;  // dataset re-registration
  Counter closed;       // explicit Erase
};

struct SessionManagerOptions {
  /// Live sessions kept; creating beyond this evicts the longest-idle.
  int64_t max_sessions = 64;
  /// Idle seconds before a session expires; <= 0 disables expiry.
  double ttl_seconds = 600.0;
};

/// One row of a session's stage table (wire + REPL rendering).
struct SessionStageInfo {
  std::string stage;
  bool done = false;
  int64_t runs = 0;
  int64_t reuses = 0;
  double seconds = 0.0;
};

/// Introspection snapshot of one session.
struct SessionInfo {
  uint64_t id = 0;
  std::string dataset;
  int64_t epoch = 0;
  std::string sql;
  bool complete = false;
  /// Contexts of the bound query; -1 until a stage split them.
  int contexts = -1;
  double age_seconds = 0.0;
  double idle_seconds = 0.0;
  std::vector<SessionStageInfo> stages;
};

/// Reuse flags the service's discovery interceptor stamps during the
/// last discovery computation (RequestStats reporting). Shared-owned:
/// the interceptor closure is built before the session's Entry exists,
/// so both hold the same object instead of patching raw pointers after
/// the entry is published.
struct SessionDiscoveryFlags {
  std::atomic<bool> reused{false};
  std::atomic<bool> coalesced{false};
};

/// Thread-safe (all methods); stage execution against an entry's session
/// additionally requires that entry's mu.
class SessionManager {
 public:
  struct Entry {
    uint64_t id = 0;
    std::string dataset;
    int64_t epoch = 0;
    std::string sql;
    AggQuery query;
    std::string batch_key;
    /// Serializes stage execution (AnalysisSession is not thread-safe).
    std::mutex mu;
    std::unique_ptr<AnalysisSession> session;
    std::shared_ptr<SessionDiscoveryFlags> discovery_flags;
    Stopwatch created;
    Stopwatch touched;  // guarded by the manager lock
  };

  explicit SessionManager(SessionManagerOptions options = {});

  /// Registers a new session and assigns its id; evicts expired entries
  /// and, beyond max_sessions, the longest-idle one. `discovery_flags`
  /// may be null (a fresh object is created).
  std::shared_ptr<Entry> Insert(
      std::string dataset, int64_t epoch, std::string sql, AggQuery query,
      std::string batch_key, std::unique_ptr<AnalysisSession> session,
      std::shared_ptr<SessionDiscoveryFlags> discovery_flags = nullptr);

  /// Looks the session up and refreshes its idle clock. kNotFound for
  /// ids never issued, kGone for ids that existed but were expired,
  /// invalidated or closed.
  StatusOr<std::shared_ptr<Entry>> Get(uint64_t id);

  /// Closes a session. Same error contract as Get().
  Status Erase(uint64_t id);

  /// Drops every session of `dataset` (epoch invalidation). Returns the
  /// number dropped.
  int64_t InvalidateDataset(const std::string& dataset);

  /// Introspection snapshot of one entry. Takes the entry's stage lock —
  /// blocks while a stage of that session is running.
  SessionInfo Info(const std::shared_ptr<Entry>& entry) const;
  /// Snapshots of all live sessions, id-ascending.
  std::vector<SessionInfo> List() const;

  int64_t size() const;

  /// Live lifecycle counters (see SessionManagerMetrics).
  const SessionManagerMetrics& metrics() const { return metrics_; }

 private:
  /// Drops expired entries. Requires mu_.
  void SweepLocked();

  SessionManagerOptions options_;
  mutable SessionManagerMetrics metrics_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<Entry>> sessions_;
  uint64_t next_id_ = 1;
};

}  // namespace hypdb

#endif  // HYPDB_SERVICE_SESSION_MANAGER_H_
