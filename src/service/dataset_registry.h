// DatasetRegistry: named tables plus their shared, sharded count engines.
//
// The one-shot pipeline re-loads data and re-scans counts per Analyze()
// call. The registry is the service's antidote: a table is registered
// once under a name, and every query against it draws counts from a
// per-dataset pool of count engines, *sharded by subpopulation signature*
// (the canonical WHERE rendering — see service/request.h). Concurrent
// queries on the same (dataset, subpopulation) therefore share one
// thread-safe contingency cache instead of each owning a private one.
//
// Shards of one dataset also share *across* subpopulations: every dataset
// owns one parent CachingCountEngine over the full table (the engine the
// empty signature gets), and a shard whose signature parses to a pure
// equality conjunction P = v is built as a CachingCountEngine over a
// PredicateSlicingCountEngine — its counts over S are derived by slicing
// the parent's shared S ∪ P summary at P = v instead of scanning the
// filtered view (src/engine/predicate_slicing_count_engine.h). Signatures
// with multi-value IN terms, unknown attributes, values absent from the
// dictionary, or repeated attributes keep the classic isolated stack
// (scanner + cache over the filtered view); either way counts are
// bit-identical, only the work accounting differs.
//
// Re-registering a name replaces the table, bumps its epoch and drops its
// shards (parent included); the service layer uses the epoch in
// discovery-cache keys so stale discoveries can never serve the new data.

#ifndef HYPDB_SERVICE_DATASET_REGISTRY_H_
#define HYPDB_SERVICE_DATASET_REGISTRY_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/count_engine.h"
#include "stats/mi_engine.h"
#include "util/statusor.h"

namespace hypdb {

struct DatasetRegistryOptions {
  /// Count-engine configuration for shard engines (kernel threads, cache
  /// budget, materialization toggle).
  MiEngineOptions engine;
  /// Filtered shard engines kept per dataset (the full-table parent is
  /// exempt); oldest-first eviction beyond this.
  int max_shards_per_dataset = 32;
  /// Serve equality-conjunction shards by slicing the dataset's shared
  /// parent engine (cross-shard reuse). Off, every shard scans its own
  /// filtered view in isolation — the pre-slicing behavior benches use
  /// as the baseline. Requires engine.materialize_focus (an uncached
  /// parent would re-scan the full table per slice, strictly worse than
  /// scanning the filtered view).
  bool cross_shard_slicing = true;
};

/// One row of List(): a registered dataset's shape and pool state.
struct DatasetInfo {
  std::string name;
  int64_t epoch = 0;
  int64_t rows = 0;
  int columns = 0;
  int shards = 0;
};

/// Thread-safe. All methods may be called concurrently with each other.
class DatasetRegistry {
 public:
  explicit DatasetRegistry(DatasetRegistryOptions options = {});

  /// Registers (or replaces) `table` under `name`. Replacement bumps the
  /// epoch and drops the dataset's engine shards. Returns the new epoch.
  int64_t Register(const std::string& name, TablePtr table);

  /// Loads `path` as CSV and registers it. Returns the new epoch.
  StatusOr<int64_t> RegisterCsv(const std::string& name,
                                const std::string& path);

  StatusOr<TablePtr> Get(const std::string& name) const;
  StatusOr<int64_t> Epoch(const std::string& name) const;
  std::vector<DatasetInfo> List() const;

  /// A consistent (table, epoch) pair read under one lock — the handle a
  /// request works against for its whole lifetime, so a concurrent
  /// re-registration can never mix the old table with the new epoch.
  struct Snapshot {
    TablePtr table;
    int64_t epoch = 0;
  };
  StatusOr<Snapshot> GetSnapshot(const std::string& name) const;

  /// The shared count engine of shard (`name`, `signature`), created over
  /// `population` on first use. Callers pass the bound WHERE view of
  /// their snapshot table; equal signatures select equal row sets by
  /// construction, so later callers may pass their own (content-
  /// identical) view. `epoch` must match the dataset's current epoch —
  /// FailedPrecondition otherwise (the dataset was re-registered since
  /// the caller's snapshot; a stale population must not seed the new
  /// epoch's pool). The empty signature names the dataset's full-table
  /// parent engine; equality-conjunction signatures get slicing shards
  /// backed by that parent (see the header comment). Oldest filtered
  /// shards are dropped beyond max_shards_per_dataset; an evicted
  /// parent reference held by live slicing shards stays valid
  /// (shared_ptr), it just stops being handed out.
  StatusOr<std::shared_ptr<CountEngine>> ShardEngine(
      const std::string& name, int64_t epoch, const std::string& signature,
      const TableView& population);

  /// Aggregate count-engine stats across a dataset's live shards plus
  /// its parent engine. Well-defined without double counting: slicing
  /// shards report only their own layer and private fallback scanner,
  /// never the shared parent they draw from.
  StatusOr<CountEngineStats> EngineStats(const std::string& name) const;

 private:
  struct Dataset {
    TablePtr table;
    int64_t epoch = 0;
    /// Full-table engine: serves empty-signature queries directly and
    /// superset summaries to the slicing shards. Created on first use,
    /// never LRU-evicted (it is the working set every slice derives
    /// from), dropped on re-registration like everything else.
    std::shared_ptr<CountEngine> parent;
    std::map<std::string, std::shared_ptr<CountEngine>> shards;
    std::list<std::string> shard_age;  // creation order, oldest first
    /// Slices performed by since-evicted shards: each one was an internal
    /// query on the parent, and EngineStats must keep subtracting them
    /// after the shard (and its predicate_slices counter) is gone.
    int64_t retired_slices = 0;
  };

  /// The options_.engine kernel configuration for scanners.
  GroupByKernelOptions KernelOptions() const;
  /// Wraps `base` in a CachingCountEngine under the options_ budget, or
  /// returns it unchanged when materialization is disabled. Every engine
  /// stack the registry builds goes through this one function, so parent
  /// and shards can never diverge in cache configuration.
  std::shared_ptr<CountEngine> WrapCache(
      std::shared_ptr<CountEngine> base) const;
  /// The classic stack: kernel-backed scanner over `view` + WrapCache.
  std::shared_ptr<CountEngine> CachedScanStack(const TableView& view) const;

  /// ds.parent, created over the full table if absent. Requires mu_.
  std::shared_ptr<CountEngine> ParentEngineLocked(Dataset& ds);

  /// A new engine for `signature` over `population`: a slicing stack
  /// through the shared parent when the signature is a pure equality
  /// conjunction (and slicing is enabled), the isolated scanner+cache
  /// stack otherwise. Requires mu_.
  std::shared_ptr<CountEngine> BuildShardLocked(
      Dataset& ds, const std::string& signature,
      const TableView& population);

  mutable std::mutex mu_;
  DatasetRegistryOptions options_;
  std::map<std::string, Dataset> datasets_;
};

}  // namespace hypdb

#endif  // HYPDB_SERVICE_DATASET_REGISTRY_H_
