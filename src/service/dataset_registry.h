// DatasetRegistry: named chunked tables plus their shared, sharded count
// engines and the append/ingest path.
//
// The one-shot pipeline re-loads data and re-scans counts per Analyze()
// call. The registry is the service's antidote: a table is registered
// once under a name, and every query against it draws counts from a
// per-dataset pool of count engines, *sharded by subpopulation signature*
// (the canonical WHERE rendering — see service/request.h). Concurrent
// queries on the same (dataset, subpopulation) therefore share one
// thread-safe contingency cache instead of each owning a private one.
//
// Storage: each dataset is backed by a ChunkedTable (src/storage/) —
// fixed-size row chunks of dictionary codes behind a published row
// watermark. AppendRows() ingests new rows WITHOUT bumping the epoch:
// dictionaries grow append-only so existing codes stay stable, and the
// caching layers patch their summaries by scanning only the appended
// chunks (CountsDelta) instead of invalidating. Re-registering a name
// still replaces the store wholesale, bumps the epoch and drops every
// shard; appending never does.
//
// Shards of one dataset also share *across* subpopulations: every dataset
// owns one parent CachingCountEngine over the chunked store (the engine
// the empty signature gets), and a shard whose signature parses to a pure
// equality conjunction P = v is built as a CachingCountEngine over a
// PredicateSlicingCountEngine — its counts over S are derived by slicing
// the parent's shared S ∪ P summary at P = v instead of scanning the
// filtered view (src/engine/predicate_slicing_count_engine.h). Such
// shards carry a live FilteredPopulationProvider so they track appends.
// Signatures with multi-value IN terms or values absent from the
// dictionary get a live isolated stack (cache over a filtered-population
// scanner). Only signatures the parser cannot resolve at all (unknown
// attributes) keep the classic frozen stack over the caller's view —
// those are dropped on the next append, since their view goes stale.
//
// Concurrency: readers take the dataset's shared lease (ReadLease) for a
// request's whole lifetime, so the watermark cannot advance mid-request;
// AppendRows takes the same lease exclusively. Lock order is always
// lease → registry mutex → store mutex.

#ifndef HYPDB_SERVICE_DATASET_REGISTRY_H_
#define HYPDB_SERVICE_DATASET_REGISTRY_H_

#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cube/adaptive_cube_provider.h"
#include "engine/caching_count_engine.h"
#include "engine/count_engine.h"
#include "stats/mi_engine.h"
#include "storage/chunked_table.h"
#include "util/statusor.h"

namespace hypdb {

struct DatasetRegistryOptions {
  /// Count-engine configuration for shard engines (kernel threads, cache
  /// budget, materialization toggle).
  MiEngineOptions engine;
  /// Filtered shard engines kept per dataset (the full-table parent is
  /// exempt); oldest-first eviction beyond this.
  int max_shards_per_dataset = 32;
  /// Serve equality-conjunction shards by slicing the dataset's shared
  /// parent engine (cross-shard reuse). Off, every shard scans its own
  /// filtered view in isolation — the pre-slicing behavior benches use
  /// as the baseline. Requires engine.materialize_focus (an uncached
  /// parent would re-scan the full table per slice, strictly worse than
  /// scanning the filtered view).
  bool cross_shard_slicing = true;
  /// Rows per storage chunk (delta-scan granularity for appends).
  int64_t chunk_rows = ChunkedTable::kDefaultChunkRows;

  /// --- cube advisor (active only under engine.materialization ==
  /// kAdaptive; all ignored under kStatic) ---
  /// Seconds between background advisor passes. <= 0 starts no thread;
  /// AdvisorPass() can still be driven manually (tests and benches do).
  double advisor_interval_seconds = 0.0;
  /// Queries a column set must draw within one pass to count as demanded.
  int64_t advisor_min_demand = 2;
  /// Consecutive demanded passes before a column set is hot (promotion
  /// candidate).
  int advisor_hot_passes = 2;
  /// Cap on promoted cube dimensionality (a k-dim cube holds 2^k
  /// cuboids).
  int advisor_max_cube_dims = 8;
};

/// One row of List(): a registered dataset's shape and pool state.
struct DatasetInfo {
  std::string name;
  int64_t epoch = 0;
  int64_t rows = 0;
  int columns = 0;
  int shards = 0;
  /// Storage shape: chunks holding published rows, and the published row
  /// watermark (== rows; reported separately so ingest monitoring reads
  /// the storage-level value, not a derived one).
  int64_t chunks = 0;
  int64_t watermark = 0;
  /// Cache occupancy summed over the dataset's engine pool (parent +
  /// live shards).
  CacheOccupancy cache;
  /// Lattice cells of the advisor-installed cube (0 when none).
  int64_t cube_cells = 0;
  /// Fraction of external count queries the pool answered without a
  /// table scan, 0 when idle.
  double cache_hit_ratio = 0.0;
  /// Cache evictions across the pool (policy-ranked under kAdaptive,
  /// oldest-first under kStatic).
  int64_t evictions = 0;
};

/// Cube-advisor activity counters (monotonic since construction).
struct CubeAdvisorStats {
  /// Completed AdvisorPass() sweeps (manual or background).
  int64_t passes = 0;
  /// Cubes installed (first promotion or hot-set rebuild).
  int64_t promotions = 0;
  /// Installed cubes dropped after going stale on watermark/epoch churn.
  int64_t demotions = 0;
  /// Full-table scans spent building candidate cubes (includes refused
  /// builds).
  int64_t build_scans = 0;
};

/// A held shared (reader) lease on one dataset: while alive, AppendRows
/// on that dataset blocks, so the watermark a request observed stays the
/// watermark for the request's whole body. Movable; releases on destroy.
/// Member order matters: the lock must be destroyed before the mutex
/// reference it holds.
struct DatasetLease {
  std::shared_ptr<std::shared_mutex> mu;
  std::shared_lock<std::shared_mutex> lock;
};

/// Thread-safe. All methods may be called concurrently with each other.
class DatasetRegistry {
 public:
  /// Starts the background advisor thread when the options say adaptive
  /// materialization with a positive advisor interval.
  explicit DatasetRegistry(DatasetRegistryOptions options = {});
  /// Stops and joins the advisor thread (if any).
  ~DatasetRegistry();
  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Registers (or replaces) `table` under `name`. Replacement bumps the
  /// epoch and drops the dataset's engine shards. Returns the new epoch.
  int64_t Register(const std::string& name, TablePtr table);

  /// Loads `path` as CSV and registers it. Returns the new epoch.
  StatusOr<int64_t> RegisterCsv(const std::string& name,
                                const std::string& path);

  /// Appends rows (one label per column, schema order) to `name`'s
  /// store. Serialized against readers via the dataset's lease; does NOT
  /// bump the epoch — shards, sessions and discovery entries survive and
  /// are delta-patched. Frozen shards (stale-view stacks) are dropped.
  /// Returns the new watermark. NotFound for an unknown dataset,
  /// InvalidArgument on arity mismatch (the store is left unchanged).
  StatusOr<int64_t> AppendRows(
      const std::string& name,
      const std::vector<std::vector<std::string>>& rows);

  /// The dataset's shared read lease, held for a request's lifetime.
  StatusOr<DatasetLease> ReadLease(const std::string& name) const;

  StatusOr<TablePtr> Get(const std::string& name) const;
  StatusOr<int64_t> Epoch(const std::string& name) const;
  std::vector<DatasetInfo> List() const;

  /// The dataset's chunked store (for ingest benches and storage tests).
  StatusOr<std::shared_ptr<const ChunkedTable>> Store(
      const std::string& name) const;

  /// A consistent (table, epoch, watermark) triple — the handle a request
  /// works against for its whole lifetime, so a concurrent
  /// re-registration can never mix the old table with the new epoch. The
  /// table is the store materialized at `watermark`; hold the read lease
  /// across the request so the watermark stays current.
  struct Snapshot {
    TablePtr table;
    int64_t epoch = 0;
    int64_t watermark = 0;
  };
  StatusOr<Snapshot> GetSnapshot(const std::string& name) const;

  /// The shared count engine of shard (`name`, `signature`), created over
  /// `population` on first use. Callers pass the bound WHERE view of
  /// their snapshot table; equal signatures select equal row sets by
  /// construction, so later callers may pass their own (content-
  /// identical) view. `epoch` must match the dataset's current epoch —
  /// FailedPrecondition otherwise (the dataset was re-registered since
  /// the caller's snapshot; a stale population must not seed the new
  /// epoch's pool). `watermark`, when >= 0, must match the store's
  /// current watermark — FailedPrecondition otherwise (the caller bound
  /// against a row count the live shared engines no longer answer for;
  /// callers degrade to a private engine over their pinned view). The
  /// empty signature names the dataset's full-table parent engine;
  /// equality-conjunction signatures get slicing shards backed by that
  /// parent (see the header comment). Oldest filtered shards are dropped
  /// beyond max_shards_per_dataset; an evicted parent reference held by
  /// live slicing shards stays valid (shared_ptr), it just stops being
  /// handed out.
  StatusOr<std::shared_ptr<CountEngine>> ShardEngine(
      const std::string& name, int64_t epoch, const std::string& signature,
      const TableView& population, int64_t watermark = -1);

  /// Aggregate count-engine stats across a dataset's live shards plus
  /// its parent engine. Well-defined without double counting: slicing
  /// shards report only their own layer and private fallback scanner,
  /// never the shared parent they draw from.
  StatusOr<CountEngineStats> EngineStats(const std::string& name) const;

  /// One advisor sweep over every dataset (no-op under kStatic
  /// materialization): harvests the parent cache's demand profile,
  /// advances per-column-set hot streaks, drops cubes stranded by
  /// watermark churn (demotion), and builds + installs a cube over the
  /// union of persistently hot column sets (promotion) when its lattice
  /// fits the engine cell budget. Cube builds scan the store OUTSIDE the
  /// registry mutex; concurrent queries are never blocked by a build.
  /// The background thread calls exactly this; tests and benches drive
  /// it manually for determinism.
  void AdvisorPass();

  /// Advisor activity counters (all zero under kStatic).
  CubeAdvisorStats advisor_stats() const;

 private:
  struct Dataset {
    /// The chunked store (append target; all reads derive from it).
    ChunkedTablePtr store;
    int64_t epoch = 0;
    /// Reader/writer lease serializing appends against in-flight
    /// requests. Created at first registration and NEVER replaced —
    /// leases held across a re-registration must keep excluding writers.
    std::shared_ptr<std::shared_mutex> lease;
    /// Full-table engine: serves empty-signature queries directly and
    /// superset summaries to the slicing shards. Created on first use,
    /// never LRU-evicted (it is the working set every slice derives
    /// from), dropped on re-registration — but NOT on append (it reads
    /// the live store and patches its cache by delta).
    std::shared_ptr<CountEngine> parent;
    /// Under kAdaptive the parent stack is cache → cube host → chunked
    /// scanner; these alias the two wrapper layers so the advisor can
    /// harvest demand (parent_cache) and hot-swap cubes (cube_host).
    /// Null under kStatic or before first parent use.
    std::shared_ptr<CachingCountEngine> parent_cache;
    std::shared_ptr<AdaptiveCubeProvider> cube_host;
    /// Advisor state: consecutive passes each demanded column set stayed
    /// hot, and the last hot-set the advisor refused to build (lattice
    /// over budget) — retried only when the hot-set changes.
    std::map<std::vector<int>, int> advisor_streak;
    std::vector<int> advisor_refused_dims;
    std::map<std::string, std::shared_ptr<CountEngine>> shards;
    std::list<std::string> shard_age;  // creation order, oldest first
    /// Signatures whose shard is a frozen stack over the caller's view
    /// (the signature did not resolve against the store). Appends drop
    /// these — their view no longer covers the population.
    std::set<std::string> frozen;
    /// Slices performed by since-evicted shards: each one was an internal
    /// query on the parent, and EngineStats must keep subtracting them
    /// after the shard (and its predicate_slices counter) is gone.
    int64_t retired_slices = 0;
  };

  /// The options_.engine kernel configuration for scanners.
  GroupByKernelOptions KernelOptions() const;
  /// Wraps `base` in a CachingCountEngine under the options_ budget (and
  /// the options_ materialization policy), or returns it unchanged when
  /// materialization is disabled. Every engine stack the registry builds
  /// goes through this one function, so parent and shards can never
  /// diverge in cache configuration. `track_demand` turns on the per-key
  /// demand profile the cube advisor harvests (parent engines only — a
  /// shard's demand is not cube-promotable).
  std::shared_ptr<CountEngine> WrapCache(std::shared_ptr<CountEngine> base,
                                         bool track_demand = false) const;
  /// The classic frozen stack: kernel-backed scanner over `view` +
  /// WrapCache. Static — no delta protocol.
  std::shared_ptr<CountEngine> CachedScanStack(const TableView& view) const;

  /// ds.parent, created over the chunked store if absent. Requires mu_.
  std::shared_ptr<CountEngine> ParentEngineLocked(Dataset& ds);

  /// A new engine for `signature` over `population`: a slicing stack
  /// through the shared parent when the signature is a pure equality
  /// conjunction (and slicing is enabled), a live isolated stack over a
  /// FilteredPopulationProvider when the signature resolves against the
  /// store, the frozen scanner+cache stack otherwise (recorded in
  /// ds.frozen for drop-on-append). Requires mu_.
  std::shared_ptr<CountEngine> BuildShardLocked(
      Dataset& ds, const std::string& signature,
      const TableView& population);

  /// True when every caching layer runs the adaptive policy (and the
  /// advisor is worth running at all).
  bool Adaptive() const {
    return options_.engine.materialization == MaterializationMode::kAdaptive;
  }

  /// EngineStats body without the lookup/lock. Requires mu_.
  CountEngineStats EngineStatsLocked(const Dataset& ds) const;

  /// Background advisor: AdvisorPass every advisor_interval_seconds
  /// until destruction.
  void AdvisorLoop();

  mutable std::mutex mu_;
  DatasetRegistryOptions options_;
  std::map<std::string, Dataset> datasets_;
  CubeAdvisorStats advisor_;  // guarded by mu_

  std::mutex advisor_mu_;
  std::condition_variable advisor_cv_;
  bool advisor_stop_ = false;  // guarded by advisor_mu_
  std::thread advisor_thread_;
};

}  // namespace hypdb

#endif  // HYPDB_SERVICE_DATASET_REGISTRY_H_
