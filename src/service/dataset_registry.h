// DatasetRegistry: named tables plus their shared, sharded count engines.
//
// The one-shot pipeline re-loads data and re-scans counts per Analyze()
// call. The registry is the service's antidote: a table is registered
// once under a name, and every query against it draws counts from a
// per-dataset pool of CachingCountEngines, *sharded by subpopulation
// signature* (the canonical WHERE rendering — see service/request.h).
// Concurrent queries on the same (dataset, subpopulation) therefore share
// one thread-safe contingency cache instead of each owning a private one;
// queries on different subpopulations get different shards, so their
// caches (whose counts aggregate different row sets) never mix — the
// ROADMAP's "context-keyed cache pool" sharding.
//
// Re-registering a name replaces the table, bumps its epoch and drops its
// shards; the service layer uses the epoch in discovery-cache keys so
// stale discoveries can never serve the new data.

#ifndef HYPDB_SERVICE_DATASET_REGISTRY_H_
#define HYPDB_SERVICE_DATASET_REGISTRY_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/count_engine.h"
#include "stats/mi_engine.h"
#include "util/statusor.h"

namespace hypdb {

struct DatasetRegistryOptions {
  /// Count-engine configuration for shard engines (kernel threads, cache
  /// budget, materialization toggle).
  MiEngineOptions engine;
  /// Shard engines kept per dataset; oldest-first eviction beyond this.
  int max_shards_per_dataset = 32;
};

/// One row of List(): a registered dataset's shape and pool state.
struct DatasetInfo {
  std::string name;
  int64_t epoch = 0;
  int64_t rows = 0;
  int columns = 0;
  int shards = 0;
};

/// Thread-safe. All methods may be called concurrently with each other.
class DatasetRegistry {
 public:
  explicit DatasetRegistry(DatasetRegistryOptions options = {});

  /// Registers (or replaces) `table` under `name`. Replacement bumps the
  /// epoch and drops the dataset's engine shards. Returns the new epoch.
  int64_t Register(const std::string& name, TablePtr table);

  /// Loads `path` as CSV and registers it. Returns the new epoch.
  StatusOr<int64_t> RegisterCsv(const std::string& name,
                                const std::string& path);

  StatusOr<TablePtr> Get(const std::string& name) const;
  StatusOr<int64_t> Epoch(const std::string& name) const;
  std::vector<DatasetInfo> List() const;

  /// A consistent (table, epoch) pair read under one lock — the handle a
  /// request works against for its whole lifetime, so a concurrent
  /// re-registration can never mix the old table with the new epoch.
  struct Snapshot {
    TablePtr table;
    int64_t epoch = 0;
  };
  StatusOr<Snapshot> GetSnapshot(const std::string& name) const;

  /// The shared count engine of shard (`name`, `signature`), created over
  /// `population` on first use. Callers pass the bound WHERE view of
  /// their snapshot table; equal signatures select equal row sets by
  /// construction, so later callers may pass their own (content-
  /// identical) view. `epoch` must match the dataset's current epoch —
  /// FailedPrecondition otherwise (the dataset was re-registered since
  /// the caller's snapshot; a stale population must not seed the new
  /// epoch's pool). Oldest shards are dropped beyond
  /// max_shards_per_dataset.
  StatusOr<std::shared_ptr<CountEngine>> ShardEngine(
      const std::string& name, int64_t epoch, const std::string& signature,
      const TableView& population);

  /// Aggregate count-engine stats across a dataset's live shards.
  StatusOr<CountEngineStats> EngineStats(const std::string& name) const;

 private:
  struct Dataset {
    TablePtr table;
    int64_t epoch = 0;
    std::map<std::string, std::shared_ptr<CountEngine>> shards;
    std::list<std::string> shard_age;  // creation order, oldest first
  };

  mutable std::mutex mu_;
  DatasetRegistryOptions options_;
  std::map<std::string, Dataset> datasets_;
};

}  // namespace hypdb

#endif  // HYPDB_SERVICE_DATASET_REGISTRY_H_
