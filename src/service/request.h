// Request/response types of the HypDB service layer, plus the cache-key
// helpers that make work sharable across queries.
//
// The service keys shared state two ways:
//  * SubpopulationSignature(query) — a canonical rendering of the WHERE
//    clause. Queries whose WHERE clauses select the same rows (up to term
//    and value order) map to the same shard of a dataset's CountEngine
//    pool, so their contingency summaries share one cache.
//  * DiscoveryKey(dataset, epoch, query, options) — everything the
//    covariate/mediator discovery outcome depends on: the dataset (and
//    its registration epoch, so re-registering invalidates), the
//    treatment, the outcomes, the subpopulation, and the discovery-
//    relevant options (CI test config, CD/FD knobs, alpha, seed). Two
//    requests with equal keys provably compute the same DiscoveryReport,
//    which is what lets the DiscoveryCache serve one computation to many
//    queries.

#ifndef HYPDB_SERVICE_REQUEST_H_
#define HYPDB_SERVICE_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/hypdb.h"
#include "util/trace.h"

namespace hypdb {

/// One unit of service work: a Listing-1 SQL query against a registered
/// dataset, with optional per-request analysis options.
struct AnalyzeRequest {
  /// Name the dataset was registered under (DatasetRegistry).
  std::string dataset;
  /// Listing-1 SQL text (see core/sql_parser.h for the dialect).
  std::string sql;
  /// Per-request override of the service-wide analysis options.
  std::optional<HypDbOptions> options;
};

/// One stage of a request's trace timeline. `start_seconds` is measured
/// from request submission on the same monotonic clock as
/// queue_seconds/run_seconds, so spans can be laid out on one axis.
struct TraceSpan {
  /// "queue", "discovery", "detect", "explain", "rewrite", or a session
  /// stage name. Serialization is not a span here: the response cannot
  /// contain its own serialization time (it is measured into the
  /// hypdb_http_serialize_seconds histogram instead).
  std::string name;
  double start_seconds = 0.0;
  double seconds = 0.0;
};

/// Service-side accounting for one request — what the pipeline itself
/// cannot know (queue wait, cross-query reuse, shared-engine work).
struct RequestStats {
  uint64_t ticket = 0;
  int worker_id = -1;
  /// Seconds between Submit() and a worker picking the request up.
  double queue_seconds = 0.0;
  /// Seconds the worker spent executing the pipeline.
  double run_seconds = 0.0;
  /// Discovery was served from the DiscoveryCache (a prior request
  /// computed it).
  bool discovery_reused = false;
  /// Discovery was coalesced with an in-flight twin request (computed
  /// once, shared by both — the scheduler's same-(table,treatment)
  /// batching).
  bool discovery_coalesced = false;
  /// A batch union prefetch covered this request's attribute set before
  /// it ran (scheduler union planning — service/union_planner.h), so its
  /// focus was served from the warmed shared cache. Rendered on the wire
  /// only when true, keeping the non-planned format byte-stable.
  bool union_prefetched = false;
  /// Shared shard-engine work observed during this request (scan/hit
  /// deltas). Attribution is approximate under concurrency: overlapping
  /// requests on the same shard see each other's work.
  CountEngineStats engine_delta;
  /// Where the latency went: stage spans in execution order ("queue"
  /// first, then the pipeline stages that actually ran). Populated on
  /// success AND on cancel/deadline/error paths (then typically just
  /// "queue"). Purely observational — excluded from the report digest by
  /// construction, so metrics stay digest-neutral.
  std::vector<TraceSpan> trace;
  /// The sampling level this request ran at (resolved from
  /// SubmitOptions::trace_level / the service default; 0 = off).
  int trace_level = 0;
  /// Engine-deep ring-buffer events harvested for this request (empty at
  /// trace_level 0): session stage spans, kernel scans, cache decisions,
  /// CI tests, morsel batches — on the same submit-relative axis as
  /// `trace`. Rendered only when non-empty, so the analyze-path wire
  /// format of untraced requests is byte-stable. Observational only.
  std::vector<TraceEventRecord> events;

  // --- session stage jobs only (session_id == 0 otherwise) ------------
  /// The AnalysisSession this request advanced.
  uint64_t session_id = 0;
  /// The stage that ran ("answers"..."rewrite", or "report").
  std::string stage;
  /// The stage was fully served from persisted session state (no
  /// computation happened — detect-after-detect is a no-op).
  bool stage_reused = false;
  /// Every stage of the session is now complete; the report snapshot's
  /// digest is comparable to a one-shot analysis.
  bool session_complete = false;
};

/// What HypDbService hands back: the full report plus service stats.
/// For session stage advances, `report` is the session's current
/// snapshot (per-context stages appear once every context is done) and
/// the optional members carry the single-context result of a
/// per-context explain/rewrite advance.
struct ServiceReport {
  HypDbReport report;
  RequestStats stats;
  std::optional<ContextExplanation> stage_explanation;
  std::optional<ContextRewrite> stage_rewrite;
};

/// Canonical rendering of the query's WHERE clause: values sorted and
/// de-duplicated within each term, terms sorted, identical terms
/// de-duplicated. Queries selecting the same subpopulation (up to term
/// order, value order, and term/value repetition) share it.
std::string SubpopulationSignature(const AggQuery& query);

/// One parsed conjunct of a subpopulation signature: attribute IN values.
struct SubpopulationTerm {
  std::string attribute;
  std::vector<std::string> values;
};

/// Inverse of SubpopulationSignature: parses the canonical rendering back
/// into structured terms (attributes and values unescaped, in signature
/// order). This is how DatasetRegistry decides whether a shard's
/// subpopulation is a pure equality conjunction it can serve by slicing
/// the dataset's shared parent engine. InvalidArgument for strings that
/// are not well-formed signatures.
StatusOr<std::vector<SubpopulationTerm>> ParseSubpopulationSignature(
    const std::string& signature);

/// Prefix every cache key of `dataset` starts with — the invalidation
/// handle used when a dataset is re-registered.
std::string DatasetKeyPrefix(const std::string& dataset);

/// Cache key for the discovery outcome of `query` under `options` against
/// registration `epoch` of `dataset`. Includes every option that can
/// change the discovered covariates/mediators.
std::string DiscoveryKey(const std::string& dataset, int64_t epoch,
                         const AggQuery& query, const HypDbOptions& options);

/// Batch key of the scheduler: requests sharing (dataset, treatment,
/// subpopulation) are drained together so the first one's discovery warms
/// the cache for the rest.
std::string BatchKey(const std::string& dataset, const AggQuery& query);

}  // namespace hypdb

#endif  // HYPDB_SERVICE_REQUEST_H_
