// QueryScheduler: worker pool executing AnalyzeRequests with batching.
//
// Submit() parses and enqueues a request and returns a ticket; a pool of
// worker threads drains the queue. Two mechanisms share work between
// requests on the same data:
//  * Batching — a worker that picks up a request also drains (up to
//    batch_max) queued requests with the same batch key (dataset,
//    treatment, subpopulation) and runs them back-to-back, so the first
//    one's discovery and contingency summaries are warm for the rest.
//  * Coalescing — requests with equal discovery keys that are *already
//    running* on other workers block on the in-flight computation via
//    DiscoveryCache::LookupOrCompute instead of recomputing.
// Per-request RequestStats record queue wait, run time, reuse flags and
// the shared shard-engine work delta.
//
// Results are bit-identical to serial execution: counts are exact
// integers whatever the cache state, permutation tests are seeded from
// the request options, and a reused discovery is the verbatim report the
// equivalent computation produces (service tests assert digest equality).

#ifndef HYPDB_SERVICE_QUERY_SCHEDULER_H_
#define HYPDB_SERVICE_QUERY_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/dataset_registry.h"
#include "service/discovery_cache.h"
#include "service/request.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace hypdb {

/// Scheduler-level observability counters, owned by the scheduler and
/// bumped lock-free on completion paths (the SQLStats idiom). `completed`
/// counts every terminal outcome, success or not; the error counters
/// partition the failures. Shutdown-discarded queued jobs are not
/// observed — no worker ever touched them.
struct SchedulerMetrics {
  Counter submitted;
  Counter completed;
  Counter failed;             // errors other than cancel/deadline
  Counter cancelled;          // kCancelled (queued or cooperative)
  Counter deadline_exceeded;  // kDeadlineExceeded at pickup
  Counter batched_twins;      // jobs drained as same-batch-key followers
  /// Superset prefetches executed by batch union planning (one per
  /// multi-request bin — see service/union_planner.h).
  Counter union_prefetches;
  LatencyHistogram queue_wait;  // submit -> pickup (or cancel/deadline)
  LatencyHistogram run_time;    // pickup -> completion, jobs that ran
};

struct QuerySchedulerOptions {
  /// Worker threads; 0 resolves to hardware_concurrency.
  int num_workers = 0;
  /// Same-batch-key requests a worker drains per pickup (1 = no batching).
  int batch_max = 8;
  /// Completed-but-unclaimed results retained; beyond this the oldest are
  /// dropped (their tickets then Wait() as not-found). Bounds the memory
  /// of fire-and-forget submitters that never collect.
  int64_t max_retained_results = 1024;
  /// Route discovery counts through the registry's shared shard engines.
  bool share_engines = true;
  /// Reuse/coalesce discovery via the DiscoveryCache.
  bool share_discovery = true;
  /// Batch union planning: before running a drained multi-request batch,
  /// compute the cheapest superset cover of the attribute sets the batch
  /// needs (service/union_planner.h) and Prefetch each multi-request bin
  /// once on the shared shard engine — covered requests then answer by
  /// marginalization instead of scanning. Requires share_engines (the
  /// warm-up must land in the cache the requests read). The service
  /// enables this under adaptive materialization. Results stay
  /// bit-identical: prefetching only moves counts into the cache.
  bool union_planning = false;
  /// Analysis options for requests that do not carry their own.
  HypDbOptions defaults;
  /// Trace sampling level for requests that do not carry their own
  /// (SubmitOptions::trace_level < 0). Level 1 — stage spans, kernel
  /// scans, cache decisions — is cheap enough to be the default (the
  /// bench_trace_overhead gate); 0 disables recording, 2 adds
  /// per-CI-test and per-morsel events.
  int default_trace_level = 1;
  /// Observer fired once per terminal outcome (success, error, cancel,
  /// deadline) with the final stats and status — the hook behind
  /// `--stats-log`. Called outside scheduler locks on whichever thread
  /// completed the request; must be thread-safe and must not call back
  /// into the scheduler. Not fired for jobs discarded by shutdown.
  std::function<void(const RequestStats&, const Status&)> on_complete;
};

/// Per-submission controls (deadline today; priorities would live here).
struct SubmitOptions {
  /// Maximum seconds the request may sit in the queue. A job whose wait
  /// already exceeds the deadline when a worker picks it up is rejected
  /// with kDeadlineExceeded instead of running — the waiter has likely
  /// timed out, so the cycles are better spent on live requests. 0 (the
  /// default) means no deadline.
  double deadline_seconds = 0.0;
  /// Per-request trace sampling level (wire key `trace_level`): 0 off,
  /// 1 stage/kernel/cache events, 2 adds per-CI-test and per-morsel
  /// events. Negative (the default) inherits the scheduler-wide
  /// QuerySchedulerOptions::default_trace_level.
  int trace_level = -1;
};

/// Thread-safe. Destruction waits for in-flight work, discarding queued
/// requests that no worker has picked up.
class QueryScheduler {
 public:
  QueryScheduler(DatasetRegistry* registry, DiscoveryCache* discovery,
                 QuerySchedulerOptions options = {});
  ~QueryScheduler();

  /// Enqueues `request`; returns the ticket to Wait()/Done() on.
  uint64_t Submit(AnalyzeRequest request, SubmitOptions submit = {});

  /// Enqueues an arbitrary unit of work (a session stage job) behind the
  /// same ticket machinery: it queues with `batch_key` (so it drains
  /// together with analyze twins of the same dataset/treatment/
  /// subpopulation), honors SubmitOptions::deadline_seconds at pickup,
  /// and can be Cancel()ed while queued. When `cancel_flag` is non-null
  /// the job is additionally *cooperatively* cancellable while running:
  /// Cancel(ticket) sets the flag and the job observes it at its next
  /// stage boundary, completing with kCancelled (or normally, if no
  /// boundary remained). `run` executes on a worker thread and may fill
  /// request-level stats; the scheduler stamps timing fields afterwards.
  uint64_t SubmitTask(
      std::string batch_key,
      std::function<StatusOr<ServiceReport>(RequestStats*)> run,
      SubmitOptions submit = {},
      std::shared_ptr<std::atomic<bool>> cancel_flag = nullptr);

  /// Blocks until the ticket completes; a ticket can be waited on once.
  StatusOr<ServiceReport> Wait(uint64_t ticket);

  /// True when the ticket has completed (Wait() will not block).
  bool Done(uint64_t ticket) const;

  /// Drops the ticket if it is still queued: the job never runs and its
  /// slot completes with kCancelled (a pending Wait() returns that).
  /// For a *running* job submitted with a cancel flag (session stage
  /// jobs), sets the flag and returns true — cancellation is then
  /// cooperative: the job completes with kCancelled at its next stage
  /// boundary, or normally if it had already passed the last one.
  /// Returns false when the ticket is unknown, done, or running without
  /// a cancel flag — in-flight analyze work is never aborted, so a false
  /// return with Done() false means the result is still coming.
  bool Cancel(uint64_t ticket);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Live observability counters/histograms (see SchedulerMetrics).
  const SchedulerMetrics& metrics() const { return metrics_; }

  /// Requests queued but not yet picked up by a worker.
  int64_t queue_depth() const;

 private:
  struct Job {
    uint64_t ticket = 0;
    AnalyzeRequest request;
    SubmitOptions submit;
    AggQuery query;         // parsed at Submit
    std::string batch_key;  // dataset + treatment + subpopulation
    Stopwatch queued;       // started at Submit; read at pickup
    /// Custom work (SubmitTask); when set, Execute() runs this instead
    /// of the analyze pipeline.
    std::function<StatusOr<ServiceReport>(RequestStats*)> run;
    /// Cooperative-cancel handle of a SubmitTask job (may be null).
    std::shared_ptr<std::atomic<bool>> cancel_flag;
    /// A batch union prefetch covered this job's attribute set
    /// (stamped into RequestStats::union_prefetched).
    bool union_planned = false;
  };

  struct Slot {
    bool done = false;
    std::optional<StatusOr<ServiceReport>> result;
  };

  void WorkerLoop(int worker_id);
  /// Batch union planning (options_.union_planning): plans a superset
  /// cover of the batch's analyze jobs and prefetches each multi-request
  /// bin on the shared shard engine. Best-effort — any failure (unknown
  /// dataset, stale epoch, bind error) just skips the warm-up; the jobs
  /// run unchanged. Call WITHOUT mu_ held (takes the dataset lease, then
  /// the registry mutex — the standing lock order).
  void PlanBatchPrefetch(std::vector<Job>* batch);
  void RunJob(Job job, int worker_id);
  StatusOr<ServiceReport> Execute(const Job& job, int worker_id,
                                  RequestStats* stats);
  void Complete(uint64_t ticket, StatusOr<ServiceReport> result);
  /// Marks the ticket done and bounds retained unclaimed results.
  /// Requires mu_ held; caller notifies done_cv_ after unlocking.
  void CompleteLocked(uint64_t ticket, StatusOr<ServiceReport> result);
  /// Records one terminal outcome into metrics_ and fires on_complete.
  /// `queued`/`ran` gate the wait/run histograms (a parse failure never
  /// queued; a deadline rejection never ran). Call WITHOUT mu_ held —
  /// on_complete is user code.
  void Observe(const RequestStats& stats, const Status& status, bool queued,
               bool ran);

  DatasetRegistry* registry_;
  DiscoveryCache* discovery_;
  QuerySchedulerOptions options_;
  mutable SchedulerMetrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // workers: queue non-empty / stop
  std::condition_variable done_cv_;   // waiters: a ticket completed
  std::deque<Job> queue_;
  std::map<uint64_t, std::shared_ptr<Slot>> slots_;
  /// Cancel flags of currently *running* cooperative jobs, by ticket.
  std::map<uint64_t, std::shared_ptr<std::atomic<bool>>> running_cancels_;
  std::deque<uint64_t> done_order_;  // completion order; may hold stale
                                     // (already-claimed) tickets
  int64_t retained_results_ = 0;     // live completed-unclaimed slots
  uint64_t next_ticket_ = 1;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace hypdb

#endif  // HYPDB_SERVICE_QUERY_SCHEDULER_H_
