#include "service/hypdb_service.h"

namespace hypdb {
namespace {

DatasetRegistryOptions RegistryOptions(const HypDbServiceOptions& o) {
  DatasetRegistryOptions out;
  out.engine = o.analysis.engine;
  out.max_shards_per_dataset = o.max_shards_per_dataset;
  return out;
}

QuerySchedulerOptions SchedulerOptions(const HypDbServiceOptions& o) {
  QuerySchedulerOptions out;
  out.num_workers = o.num_workers;
  out.batch_max = o.batch_max;
  out.share_engines = o.share_engines;
  out.share_discovery = o.share_discovery;
  out.defaults = o.analysis;
  return out;
}

}  // namespace

HypDbService::HypDbService(HypDbServiceOptions options)
    : options_(std::move(options)),
      registry_(RegistryOptions(options_)),
      discovery_(DiscoveryCacheOptions{options_.max_discovery_entries}),
      scheduler_(std::make_unique<QueryScheduler>(
          &registry_, &discovery_, SchedulerOptions(options_))) {}

int64_t HypDbService::RegisterTable(const std::string& name,
                                    TablePtr table) {
  const int64_t epoch = registry_.Register(name, std::move(table));
  // The epoch in DiscoveryKey already makes stale entries unreachable;
  // invalidation frees their memory eagerly.
  discovery_.InvalidatePrefix(DatasetKeyPrefix(name));
  return epoch;
}

StatusOr<int64_t> HypDbService::RegisterCsv(const std::string& name,
                                            const std::string& path) {
  HYPDB_ASSIGN_OR_RETURN(int64_t epoch, registry_.RegisterCsv(name, path));
  discovery_.InvalidatePrefix(DatasetKeyPrefix(name));
  return epoch;
}

StatusOr<TablePtr> HypDbService::Dataset(const std::string& name) const {
  return registry_.Get(name);
}

std::vector<DatasetInfo> HypDbService::Datasets() const {
  return registry_.List();
}

StatusOr<ServiceReport> HypDbService::Analyze(AnalyzeRequest request) {
  return Wait(Submit(std::move(request)));
}

StatusOr<ServiceReport> HypDbService::AnalyzeSql(const std::string& dataset,
                                                 const std::string& sql) {
  AnalyzeRequest request;
  request.dataset = dataset;
  request.sql = sql;
  return Analyze(std::move(request));
}

uint64_t HypDbService::Submit(AnalyzeRequest request, SubmitOptions submit) {
  return scheduler_->Submit(std::move(request), submit);
}

bool HypDbService::Cancel(uint64_t ticket) {
  return scheduler_->Cancel(ticket);
}

bool HypDbService::Done(uint64_t ticket) const {
  return scheduler_->Done(ticket);
}

StatusOr<ServiceReport> HypDbService::Wait(uint64_t ticket) {
  return scheduler_->Wait(ticket);
}

}  // namespace hypdb
