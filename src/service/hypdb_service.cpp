#include "service/hypdb_service.h"

#include "core/sql_parser.h"
#include "engine/caching_count_engine.h"
#include "engine/groupby_kernel.h"
#include "util/build_info.h"
#include "util/trace.h"

namespace hypdb {
namespace {

DatasetRegistryOptions RegistryOptions(const HypDbServiceOptions& o) {
  DatasetRegistryOptions out;
  out.engine = o.analysis.engine;
  out.max_shards_per_dataset = o.max_shards_per_dataset;
  out.cross_shard_slicing = o.cross_shard_slicing;
  out.chunk_rows = o.chunk_rows;
  out.advisor_interval_seconds = o.advisor_interval_seconds;
  return out;
}

DiscoveryCacheOptions DiscoveryOptions(const HypDbServiceOptions& o) {
  DiscoveryCacheOptions out;
  out.max_entries = o.max_discovery_entries;
  out.refresh_rows_fraction = o.refresh_rows_fraction;
  return out;
}

/// Pins a session's shared shard engine to the session's bind-time
/// watermark. The registry's shared engines are *live* — they answer at
/// the store's current watermark — but a session's population is fixed
/// when the query binds; an append between stages must not leak new rows
/// into its counts (the staged digest invariant). Each call validates the
/// shared engine's version before AND after delegating: the watermark is
/// monotone, so matching twice means it was the bind watermark throughout
/// the call. Once the store advances, calls permanently degrade to a
/// lazily-built private cached-scan stack over the pinned bind-time view
/// — bit-identical counts either way, just no cross-session pooling.
class WatermarkGuardEngine : public CountEngine {
 public:
  WatermarkGuardEngine(std::shared_ptr<CountEngine> shared,
                       int64_t bind_watermark, TableView pinned,
                       MiEngineOptions engine)
      : shared_(std::move(shared)), bind_(bind_watermark),
        pinned_(std::move(pinned)), engine_(engine) {}

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override {
    if (shared_->PopulationVersion() == bind_) {
      StatusOr<GroupCounts> counts = shared_->Counts(cols);
      if (shared_->PopulationVersion() == bind_) return counts;
    }
    return Pinned()->Counts(cols);
  }

  Status Prefetch(const std::vector<int>& cols) override {
    // A hint: no post-validation needed (a summary prefetched at the
    // wrong watermark is never *served* — Counts() re-validates).
    if (shared_->PopulationVersion() == bind_) {
      return shared_->Prefetch(cols);
    }
    return Pinned()->Prefetch(cols);
  }

  int64_t NumRows() const override { return pinned_.NumRows(); }
  int64_t PopulationVersion() const override { return bind_; }

  CountEngineStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return private_ != nullptr ? private_->stats() : shared_->stats();
  }
  void ResetStats() override {
    // The shared engine serves other sessions/requests — never reset it
    // from here.
    std::lock_guard<std::mutex> lock(mu_);
    if (private_ != nullptr) private_->ResetStats();
  }

 private:
  std::shared_ptr<CountEngine> Pinned() {
    std::lock_guard<std::mutex> lock(mu_);
    if (private_ == nullptr) {
      // Mirror the registry's isolated stack over the pinned view.
      std::shared_ptr<CountEngine> scan = std::make_shared<ViewCountProvider>(
          pinned_, ScanKernelOptions(engine_));
      if (engine_.materialize_focus) {
        CachingCountEngineOptions caching;
        caching.max_cached_cells = engine_.max_cached_cells;
        private_ =
            std::make_shared<CachingCountEngine>(std::move(scan), caching);
      } else {
        private_ = std::move(scan);
      }
    }
    return private_;
  }

  std::shared_ptr<CountEngine> shared_;
  const int64_t bind_;
  TableView pinned_;
  MiEngineOptions engine_;
  mutable std::mutex mu_;
  std::shared_ptr<CountEngine> private_;
};

QuerySchedulerOptions SchedulerOptions(const HypDbServiceOptions& o) {
  QuerySchedulerOptions out;
  out.num_workers = o.num_workers;
  out.batch_max = o.batch_max;
  out.share_engines = o.share_engines;
  out.share_discovery = o.share_discovery;
  // Batch union planning rides the adaptive-materialization knob: the
  // cost model that admits observed-size supersets is what keeps the
  // planned unions cache-resident long enough to pay off.
  out.union_planning =
      o.analysis.engine.materialization == MaterializationMode::kAdaptive;
  out.defaults = o.analysis;
  out.default_trace_level = o.trace_level;
  out.on_complete = o.on_complete;
  return out;
}

SessionManagerOptions SessionOptions(const HypDbServiceOptions& o) {
  SessionManagerOptions out;
  out.max_sessions = o.max_sessions;
  out.ttl_seconds = o.session_ttl_seconds;
  return out;
}

}  // namespace

HypDbService::HypDbService(HypDbServiceOptions options)
    : options_(std::move(options)),
      traces_(options_.trace_retention),
      registry_(RegistryOptions(options_)),
      discovery_(DiscoveryOptions(options_)),
      sessions_(SessionOptions(options_)) {
  QuerySchedulerOptions sched = SchedulerOptions(options_);
  // Interpose on completion: retain the harvested trace (so the trace
  // endpoint can serve it after the claim-once result is gone), then
  // forward to the user's observer (stats log / flight recorder).
  sched.on_complete = [this](const RequestStats& stats,
                             const Status& status) {
    traces_.Record(stats);
    if (options_.on_complete) options_.on_complete(stats, status);
  };
  scheduler_ = std::make_unique<QueryScheduler>(&registry_, &discovery_,
                                                std::move(sched));
  RegisterMetrics();
}

void HypDbService::TraceStore::Record(const RequestStats& stats) {
  if (cap_ <= 0 || stats.ticket == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = by_ticket_.insert_or_assign(stats.ticket, stats);
  (void)it;
  if (inserted) order_.push_back(stats.ticket);
  while (static_cast<int64_t>(order_.size()) > cap_) {
    by_ticket_.erase(order_.front());
    order_.pop_front();
  }
}

StatusOr<RequestStats> HypDbService::TraceStore::Get(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_ticket_.find(ticket);
  if (it == by_ticket_.end()) {
    return Status::NotFound("no retained trace for ticket " +
                            std::to_string(ticket) +
                            " (unknown, still running, or expired)");
  }
  if (it->second.trace_level <= 0) {
    return Status::FailedPrecondition(
        "request " + std::to_string(ticket) +
        " ran with tracing off (trace_level 0); resubmit with "
        "trace_level >= 1");
  }
  return it->second;
}

StatusOr<RequestStats> HypDbService::RequestTrace(uint64_t ticket) const {
  return traces_.Get(ticket);
}

void HypDbService::RegisterMetrics() {
  // Uptime + dataset inventory.
  metrics_.RegisterGaugeFn("hypdb_uptime_seconds",
                           "Seconds since the service was constructed.", {},
                           [this] { return uptime_.ElapsedSeconds(); });
  metrics_.RegisterGaugeFn(
      "hypdb_datasets", "Datasets currently registered.", {},
      [this] { return static_cast<double>(registry_.List().size()); });

  // Scheduler: counters + queue depth + wait/run histograms.
  const SchedulerMetrics& sched = scheduler_->metrics();
  metrics_.RegisterCounter("hypdb_scheduler_submitted_total",
                           "Requests submitted (sync, async and session "
                           "stage jobs).",
                           {}, &sched.submitted);
  metrics_.RegisterCounter("hypdb_scheduler_completed_total",
                           "Requests that reached a terminal outcome.", {},
                           &sched.completed);
  metrics_.RegisterCounter("hypdb_scheduler_failed_total",
                           "Requests completed with an error other than "
                           "cancellation or deadline.",
                           {}, &sched.failed);
  metrics_.RegisterCounter("hypdb_scheduler_cancelled_total",
                           "Requests cancelled while queued or at a "
                           "cooperative stage boundary.",
                           {}, &sched.cancelled);
  metrics_.RegisterCounter("hypdb_scheduler_deadline_exceeded_total",
                           "Requests rejected at pickup because their "
                           "queue wait exceeded the deadline.",
                           {}, &sched.deadline_exceeded);
  metrics_.RegisterCounter("hypdb_scheduler_batched_twins_total",
                           "Requests drained as same-batch-key followers "
                           "of another pickup.",
                           {}, &sched.batched_twins);
  metrics_.RegisterGaugeFn(
      "hypdb_scheduler_queue_depth",
      "Requests queued but not yet picked up by a worker.", {},
      [this] { return static_cast<double>(scheduler_->queue_depth()); });
  metrics_.RegisterHistogram("hypdb_scheduler_queue_wait_seconds",
                             "Seconds from submit to worker pickup (or to "
                             "cancellation/deadline rejection).",
                             {}, &sched.queue_wait);
  metrics_.RegisterHistogram("hypdb_scheduler_run_seconds",
                             "Seconds a worker spent executing a request.",
                             {}, &sched.run_time);
  metrics_.RegisterCounter("hypdb_scheduler_union_prefetches_total",
                           "Superset prefetches executed by batch union "
                           "planning (multi-request bins).",
                           {}, &sched.union_prefetches);

  // DiscoveryCache: its stats struct is mutex-guarded inside the cache,
  // so the registry reads it through callbacks instead of raw pointers.
  auto discovery_stat = [this](int64_t DiscoveryCacheStats::* member) {
    return [this, member] {
      return static_cast<double>(discovery_.stats().*member);
    };
  };
  metrics_.RegisterCounterFn("hypdb_discovery_hits_total",
                             "Discoveries served from a completed cache "
                             "entry.",
                             {}, discovery_stat(&DiscoveryCacheStats::hits));
  metrics_.RegisterCounterFn(
      "hypdb_discovery_misses_total",
      "Discoveries computed because no entry existed.", {},
      discovery_stat(&DiscoveryCacheStats::misses));
  metrics_.RegisterCounterFn(
      "hypdb_discovery_coalesced_total",
      "Discoveries that waited on an in-flight twin computation.", {},
      discovery_stat(&DiscoveryCacheStats::coalesced));
  metrics_.RegisterCounterFn(
      "hypdb_discovery_invalidations_total",
      "Cached discoveries dropped by dataset re-registration.", {},
      discovery_stat(&DiscoveryCacheStats::invalidations));
  metrics_.RegisterCounterFn(
      "hypdb_discovery_evictions_total",
      "Cached discoveries dropped by the size bound.", {},
      discovery_stat(&DiscoveryCacheStats::evictions));
  metrics_.RegisterCounterFn(
      "hypdb_discovery_stale_refreshes_total",
      "Cached discoveries recomputed because appended rows exceeded the "
      "staleness bound.",
      {}, discovery_stat(&DiscoveryCacheStats::stale_refreshes));

  // Sessions: lifecycle counters + the live level derived from them.
  const SessionManagerMetrics& sess = sessions_.metrics();
  metrics_.RegisterCounter("hypdb_sessions_created_total",
                           "Analysis sessions created.", {}, &sess.created);
  metrics_.RegisterCounter("hypdb_sessions_expired_total",
                           "Sessions dropped by the idle TTL.", {},
                           &sess.expired);
  metrics_.RegisterCounter("hypdb_sessions_evicted_total",
                           "Sessions dropped by the LRU cap.", {},
                           &sess.evicted);
  metrics_.RegisterCounter("hypdb_sessions_invalidated_total",
                           "Sessions dropped by dataset re-registration.",
                           {}, &sess.invalidated);
  metrics_.RegisterCounter("hypdb_sessions_closed_total",
                           "Sessions closed explicitly.", {}, &sess.closed);
  metrics_.RegisterGaugeFn(
      "hypdb_sessions_live", "Sessions currently live.", {},
      [this] { return static_cast<double>(sessions_.size()); });

  // Engine: shard-engine work aggregated over every registered dataset
  // at scrape time (monotone per dataset; datasets unregister only by
  // replacement, which resets their pools — acceptable counter resets).
  auto engine_stat = [this](int64_t CountEngineStats::* member) {
    return [this, member] {
      int64_t total = 0;
      for (const DatasetInfo& info : registry_.List()) {
        StatusOr<CountEngineStats> stats = registry_.EngineStats(info.name);
        if (stats.ok()) total += (*stats).*member;
      }
      return static_cast<double>(total);
    };
  };
  metrics_.RegisterCounterFn("hypdb_engine_queries_total",
                             "Count queries answered by the shared shard "
                             "engines.",
                             {}, engine_stat(&CountEngineStats::queries));
  metrics_.RegisterCounterFn("hypdb_engine_scans_total",
                             "Full data scans performed by the shared "
                             "shard engines (the Fig. 6c cost driver).",
                             {}, engine_stat(&CountEngineStats::scans));
  metrics_.RegisterCounterFn("hypdb_engine_cache_hits_total",
                             "Count queries answered from an exact cached "
                             "summary.",
                             {}, engine_stat(&CountEngineStats::cache_hits));
  metrics_.RegisterCounterFn(
      "hypdb_engine_marginalizations_total",
      "Count queries derived by marginalizing a cached superset summary.",
      {}, engine_stat(&CountEngineStats::marginalizations));
  metrics_.RegisterCounterFn(
      "hypdb_engine_predicate_slices_total",
      "Count queries answered by slicing a shared full-table summary at "
      "the shard's predicate values.",
      {}, engine_stat(&CountEngineStats::predicate_slices));
  metrics_.RegisterCounterFn(
      "hypdb_engine_morsels_total",
      "Morsels dispatched by parallel group-by scans (process-wide).", {},
      [] { return static_cast<double>(GroupByMorselsDispatched()); });

  // Cache occupancy + adaptive materialization. Occupancy gauges sum
  // DatasetInfo over every registered dataset at scrape time (List()
  // reads each engine's CacheUse under the registry mutex); the advisor
  // counters come off the registry's CubeAdvisorStats.
  auto cache_gauge = [this](int64_t CacheOccupancy::* member) {
    return [this, member] {
      int64_t total = 0;
      for (const DatasetInfo& info : registry_.List()) {
        total += info.cache.*member;
      }
      return static_cast<double>(total);
    };
  };
  metrics_.RegisterGaugeFn(
      "hypdb_cache_cached_cells",
      "Contingency cells resident across every dataset's engine pool.", {},
      cache_gauge(&CacheOccupancy::cached_cells));
  metrics_.RegisterGaugeFn(
      "hypdb_cache_pinned_cells",
      "Resident cells pinned as prefetched focus summaries (exempt from "
      "the eviction budget).",
      {}, cache_gauge(&CacheOccupancy::pinned_cells));
  metrics_.RegisterGaugeFn("hypdb_cache_entries",
                           "Cached summaries resident across every "
                           "dataset's engine pool.",
                           {}, cache_gauge(&CacheOccupancy::entries));
  metrics_.RegisterGaugeFn(
      "hypdb_cache_cube_cells",
      "Lattice cells held by advisor-installed cubes.", {}, [this] {
        int64_t total = 0;
        for (const DatasetInfo& info : registry_.List()) {
          total += info.cube_cells;
        }
        return static_cast<double>(total);
      });
  metrics_.RegisterCounterFn(
      "hypdb_cache_evictions_total",
      "Cached summaries evicted to keep pools under their cell budgets "
      "(policy-ranked under adaptive materialization).",
      {}, engine_stat(&CountEngineStats::evictions));
  metrics_.RegisterCounterFn(
      "hypdb_cache_cube_hits_total",
      "Count queries answered from a pre-built cube lattice.", {},
      engine_stat(&CountEngineStats::cube_hits));
  auto advisor_stat = [this](int64_t CubeAdvisorStats::* member) {
    return [this, member] {
      return static_cast<double>(registry_.advisor_stats().*member);
    };
  };
  metrics_.RegisterCounterFn("hypdb_cache_advisor_passes_total",
                             "Cube-advisor sweeps completed.", {},
                             advisor_stat(&CubeAdvisorStats::passes));
  metrics_.RegisterCounterFn(
      "hypdb_cache_advisor_promotions_total",
      "Cubes installed over persistently hot attribute sets.", {},
      advisor_stat(&CubeAdvisorStats::promotions));
  metrics_.RegisterCounterFn(
      "hypdb_cache_advisor_demotions_total",
      "Installed cubes dropped after going stale on watermark churn.", {},
      advisor_stat(&CubeAdvisorStats::demotions));
  metrics_.RegisterCounterFn(
      "hypdb_cache_advisor_build_scans_total",
      "Full-table scans spent building candidate cubes.", {},
      advisor_stat(&CubeAdvisorStats::build_scans));

  // Ingest: the append path (rows/batches, bumped by AppendRows) plus
  // the delta-maintenance work it causes, aggregated over every
  // dataset's engine pool at scrape time like the engine family above.
  metrics_.RegisterCounter("hypdb_ingest_rows_total",
                           "Rows appended across all datasets.", {},
                           &ingest_rows_);
  metrics_.RegisterCounter("hypdb_ingest_batches_total",
                           "Append batches accepted.", {}, &ingest_batches_);
  metrics_.RegisterCounterFn(
      "hypdb_ingest_delta_patches_total",
      "Cached summaries brought current by merging a delta scan of only "
      "the appended rows (instead of invalidating).",
      {}, engine_stat(&CountEngineStats::delta_patches));
  metrics_.RegisterCounterFn(
      "hypdb_ingest_chunk_scans_total",
      "Storage chunks fed to the group-by kernel by chunked scans.", {},
      engine_stat(&CountEngineStats::chunk_scans));
  metrics_.RegisterCounterFn(
      "hypdb_ingest_chunks_skipped_total",
      "Storage chunks skipped entirely below a delta scan's start "
      "watermark — the rows incremental ingest did not re-scan.",
      {}, engine_stat(&CountEngineStats::chunks_skipped));

  // Build identity: the Prometheus info-metric idiom (constant 1, the
  // payload lives in the labels) so scrapes say which binary they hit.
  metrics_.RegisterGaugeFn(
      "hypdb_build_info",
      "Build identity of the running binary (constant 1; see labels).",
      {{"version", BuildVersion()},
       {"compiler", BuildCompiler()},
       {"build_type", BuildType()},
       {"simd", GroupByKernelSimdActive() ? "avx2" : "scalar"}},
      [] { return 1.0; });

  // Trace rollups: per-event-family aggregates bumped as ring events are
  // recorded (process-wide, like the morsel counter). They answer "how
  // often do slices fall back / where do kernel scans land per tier"
  // without fetching any per-request trace.
  TraceRollup& trace = GlobalTraceRollup();
  const struct {
    const char* decision;
    Counter* counter;
  } kCacheDecisions[] = {
      {"hit", &trace.cache_hits},
      {"miss", &trace.cache_misses},
      {"marginalize", &trace.cache_marginalizations},
      {"evict", &trace.cache_evictions},
      {"prefetch", &trace.cache_prefetches},
  };
  for (const auto& d : kCacheDecisions) {
    metrics_.RegisterCounter(
        "hypdb_trace_cache_decisions_total",
        "Traced CachingCountEngine decisions by kind.",
        {{"decision", d.decision}}, d.counter);
  }
  metrics_.RegisterCounter("hypdb_trace_slice_total",
                           "Traced predicate-slicing outcomes.",
                           {{"outcome", "slice"}}, &trace.slice_serves);
  metrics_.RegisterCounter("hypdb_trace_slice_total",
                           "Traced predicate-slicing outcomes.",
                           {{"outcome", "fallback"}},
                           &trace.slice_fallbacks);
  metrics_.RegisterCounter("hypdb_trace_discovery_total",
                           "Traced discovery-cache outcomes.",
                           {{"outcome", "hit"}}, &trace.discovery_hits);
  metrics_.RegisterCounter("hypdb_trace_discovery_total",
                           "Traced discovery-cache outcomes.",
                           {{"outcome", "compute"}},
                           &trace.discovery_computes);
  metrics_.RegisterCounter("hypdb_trace_ci_tests_total",
                           "Traced conditional-independence tests (deep "
                           "trace level only).",
                           {}, &trace.ci_tests);
  metrics_.RegisterCounter("hypdb_trace_morsel_batches_total",
                           "Traced morsel dispatches (deep trace level "
                           "only).",
                           {}, &trace.morsel_batches);
  metrics_.RegisterCounter("hypdb_trace_ingest_events_total",
                           "Traced ingest-path events by kind.",
                           {{"event", "append"}}, &trace.ingest_appends);
  metrics_.RegisterCounter("hypdb_trace_ingest_events_total",
                           "Traced ingest-path events by kind.",
                           {{"event", "delta_patch"}}, &trace.delta_patches);
  metrics_.RegisterCounter("hypdb_trace_ingest_events_total",
                           "Traced ingest-path events by kind.",
                           {{"event", "chunk_scan"}}, &trace.chunk_scans);
  metrics_.RegisterCounter("hypdb_trace_dropped_events_total",
                           "Trace events dropped because the ring pool "
                           "was exhausted.",
                           {}, &trace.dropped_events);
  for (int s = 0; s < kNumTraceStages; ++s) {
    metrics_.RegisterHistogram(
        "hypdb_trace_stage_seconds",
        "Traced analysis-stage latencies by stage.",
        {{"stage", TraceStageName(static_cast<TraceStage>(s))}},
        &trace.stage_seconds[s]);
  }
  for (int t = 0; t < 3; ++t) {
    metrics_.RegisterHistogram(
        "hypdb_trace_kernel_scan_seconds",
        "Traced group-by kernel scan latencies by tier.",
        {{"tier", TraceKernelTierName(static_cast<TraceKernelTier>(t))}},
        &trace.kernel_scan_seconds[t]);
  }
  metrics_.RegisterHistogram("hypdb_trace_ci_test_seconds",
                             "Traced per-CI-test latencies (deep trace "
                             "level only).",
                             {}, &trace.ci_test_seconds);
  metrics_.RegisterHistogram("hypdb_trace_discovery_wait_seconds",
                             "Traced waits on in-flight twin discoveries "
                             "(coalescing).",
                             {}, &trace.discovery_wait_seconds);
}

int64_t HypDbService::RegisterTable(const std::string& name,
                                    TablePtr table) {
  const int64_t epoch = registry_.Register(name, std::move(table));
  // The epoch in DiscoveryKey already makes stale entries unreachable;
  // invalidation frees their memory eagerly. Sessions pin the old
  // epoch's engines and discovery, so they go with it (kGone).
  discovery_.InvalidatePrefix(DatasetKeyPrefix(name));
  sessions_.InvalidateDataset(name);
  return epoch;
}

StatusOr<int64_t> HypDbService::RegisterCsv(const std::string& name,
                                            const std::string& path) {
  HYPDB_ASSIGN_OR_RETURN(int64_t epoch, registry_.RegisterCsv(name, path));
  discovery_.InvalidatePrefix(DatasetKeyPrefix(name));
  sessions_.InvalidateDataset(name);
  return epoch;
}

StatusOr<int64_t> HypDbService::AppendRows(
    const std::string& name,
    const std::vector<std::vector<std::string>>& rows) {
  HYPDB_ASSIGN_OR_RETURN(const int64_t watermark,
                         registry_.AppendRows(name, rows));
  // Deliberately NO discovery invalidation and NO session invalidation:
  // appends keep the epoch, cached summaries patch themselves by delta,
  // and discoveries refresh lazily under the staleness bound. This is
  // the whole point of the chunked store.
  ingest_rows_.Add(static_cast<int64_t>(rows.size()));
  ingest_batches_.Add();
  return watermark;
}

StatusOr<TablePtr> HypDbService::Dataset(const std::string& name) const {
  return registry_.Get(name);
}

std::vector<DatasetInfo> HypDbService::Datasets() const {
  return registry_.List();
}

StatusOr<ServiceReport> HypDbService::Analyze(AnalyzeRequest request) {
  return Wait(Submit(std::move(request)));
}

StatusOr<ServiceReport> HypDbService::AnalyzeSql(const std::string& dataset,
                                                 const std::string& sql) {
  AnalyzeRequest request;
  request.dataset = dataset;
  request.sql = sql;
  return Analyze(std::move(request));
}

uint64_t HypDbService::Submit(AnalyzeRequest request, SubmitOptions submit) {
  return scheduler_->Submit(std::move(request), submit);
}

bool HypDbService::Cancel(uint64_t ticket) {
  return scheduler_->Cancel(ticket);
}

bool HypDbService::Done(uint64_t ticket) const {
  return scheduler_->Done(ticket);
}

StatusOr<ServiceReport> HypDbService::Wait(uint64_t ticket) {
  return scheduler_->Wait(ticket);
}

StatusOr<SessionInfo> HypDbService::CreateSession(
    const AnalyzeRequest& request) {
  HYPDB_ASSIGN_OR_RETURN(DatasetRegistry::Snapshot snapshot,
                         registry_.GetSnapshot(request.dataset));
  HYPDB_ASSIGN_OR_RETURN(AggQuery query, ParseAggQuery(request.sql));
  const HypDbOptions& analysis =
      request.options.has_value() ? *request.options : options_.analysis;

  SessionHooks hooks;
  const std::string dataset = request.dataset;
  const int64_t epoch = snapshot.epoch;
  const int64_t watermark = snapshot.watermark;
  const MiEngineOptions engine_options = analysis.engine;
  if (options_.share_engines) {
    // The whole-population shard (discovery counts), exactly as the
    // analyze path wires it. A re-registration between snapshot and here
    // degrades to unshared — still correct, just not pooled. The bind
    // span keeps this setup scan nested under a stage in the trace.
    // Shared engines are wrapped in a WatermarkGuardEngine: the session
    // outlives this call, and appends between its stages must not leak
    // new rows into the bind-time population (staged digest invariant).
    TraceSpanScope bind_span(TraceEventKind::kStage, 1,
                             static_cast<uint64_t>(TraceStage::kBind));
    HYPDB_ASSIGN_OR_RETURN(BoundQuery bound,
                           BindQuery(snapshot.table, query));
    StatusOr<std::shared_ptr<CountEngine>> shard = registry_.ShardEngine(
        dataset, epoch, SubpopulationSignature(query), bound.population,
        watermark);
    if (shard.ok()) {
      hooks.population_engine = std::make_shared<WatermarkGuardEngine>(
          std::move(*shard), watermark, bound.population, engine_options);
    } else if (shard.status().code() != StatusCode::kFailedPrecondition) {
      return shard.status();
    }
    // Per-context shards: detection/explanation/resolution counts of
    // context Γ_i = C ∧ X = x_i route through the shard keyed by that
    // conjunction's canonical signature, so concurrent sessions (and
    // future direct queries on the same subpopulation) share one cache
    // instead of each rebuilding a private engine.
    DatasetRegistry* registry = &registry_;
    hooks.context_engine_provider =
        [registry, dataset, epoch, watermark, engine_options](
            const std::vector<std::pair<std::string,
                                        std::vector<std::string>>>& where,
            const TableView& view) -> std::shared_ptr<CountEngine> {
      AggQuery context_query;
      context_query.where = where;
      StatusOr<std::shared_ptr<CountEngine>> shard = registry->ShardEngine(
          dataset, epoch, SubpopulationSignature(context_query), view,
          watermark);
      // Stale epoch or advanced watermark: private fallback — the
      // session keeps computing over its pinned bind-time table.
      if (!shard.ok()) return nullptr;
      return std::make_shared<WatermarkGuardEngine>(
          std::move(*shard), watermark, view, engine_options);
    };
  }
  // The interceptor closure is built before the session's Entry exists;
  // both share ownership of the flags object, so there is no post-
  // publication pointer patching a concurrent stage job could race.
  auto flags = std::make_shared<SessionDiscoveryFlags>();
  if (options_.share_discovery) {
    DiscoveryCache* cache = &discovery_;
    const std::string key = DiscoveryKey(dataset, epoch, query, analysis);
    // The session discovers over its pinned bind-time table, so the
    // staleness check runs against the bind watermark: an entry computed
    // at (or after) it serves; an older one refreshes — over this
    // session's pinned rows.
    const int64_t bind_watermark = snapshot.watermark;
    hooks.discovery_interceptor =
        [cache, key, flags, bind_watermark](
            const std::function<StatusOr<DiscoveryReport>()>& compute)
        -> StatusOr<DiscoveryReport> {
      bool reused = false;
      bool coalesced = false;
      StatusOr<DiscoveryReport> report = cache->LookupOrCompute(
          key, compute, &reused, &coalesced, bind_watermark);
      flags->reused.store(reused);
      flags->coalesced.store(coalesced);
      return report;
    };
  }

  HYPDB_ASSIGN_OR_RETURN(
      std::unique_ptr<AnalysisSession> session,
      AnalysisSession::Create(snapshot.table, query, analysis,
                              std::move(hooks)));
  std::shared_ptr<SessionManager::Entry> entry = sessions_.Insert(
      dataset, epoch, request.sql, query, BatchKey(dataset, query),
      std::move(session), std::move(flags));
  return sessions_.Info(entry);
}

uint64_t HypDbService::SubmitSessionStage(uint64_t session_id,
                                          std::string stage,
                                          std::optional<int> context,
                                          SubmitOptions submit) {
  auto cancel_flag = std::make_shared<std::atomic<bool>>(false);
  // Batch with analyze twins of the same (dataset, treatment,
  // subpopulation) when the session is alive; an unknown/expired id
  // keeps an empty batch key and the job itself reports the error.
  std::string batch_key;
  if (StatusOr<std::shared_ptr<SessionManager::Entry>> entry =
          sessions_.Get(session_id);
      entry.ok()) {
    batch_key = (*entry)->batch_key;
  }
  return scheduler_->SubmitTask(
      std::move(batch_key),
      [this, session_id, stage = std::move(stage), context, cancel_flag](
          RequestStats* stats) {
        return RunSessionStage(session_id, stage, context, cancel_flag,
                               stats);
      },
      submit, cancel_flag);
}

StatusOr<ServiceReport> HypDbService::AdvanceSession(uint64_t session_id,
                                                     const std::string& stage,
                                                     std::optional<int> context,
                                                     SubmitOptions submit) {
  return Wait(SubmitSessionStage(session_id, stage, context, submit));
}

StatusOr<ServiceReport> HypDbService::RunSessionStage(
    uint64_t session_id, const std::string& stage,
    std::optional<int> context,
    const std::shared_ptr<std::atomic<bool>>& cancel_flag,
    RequestStats* stats) {
  HYPDB_ASSIGN_OR_RETURN(std::shared_ptr<SessionManager::Entry> entry,
                         sessions_.Get(session_id));
  std::lock_guard<std::mutex> stage_lock(entry->mu);
  AnalysisSession& session = *entry->session;
  session.SetCancelCheck(
      [cancel_flag] { return cancel_flag != nullptr && cancel_flag->load(); });
  int64_t runs_before = 0;
  for (int s = 0; s < kNumAnalysisStages; ++s) {
    runs_before +=
        session.stage_state(static_cast<AnalysisStage>(s)).runs;
  }

  ServiceReport out;
  Status status = [&]() -> Status {
    if (stage == "report" || stage == "run") {
      if (context.has_value()) {
        return Status::InvalidArgument(
            "stage 'report' does not take a context (only explain and "
            "rewrite run per-context)");
      }
      return session.Report().status();
    }
    HYPDB_ASSIGN_OR_RETURN(AnalysisStage parsed, ParseAnalysisStage(stage));
    if (context.has_value() && parsed != AnalysisStage::kExplain &&
        parsed != AnalysisStage::kRewrite) {
      return Status::InvalidArgument(
          "stage '" + stage + "' does not take a context (only explain "
          "and rewrite run per-context)");
    }
    switch (parsed) {
      case AnalysisStage::kAnswers: return session.Answers().status();
      case AnalysisStage::kDiscover: return session.Discover().status();
      case AnalysisStage::kDetect: return session.Detect().status();
      case AnalysisStage::kExplain: {
        if (!context.has_value()) return session.Explain().status();
        // Per-context advances surface the single context's result even
        // while the whole stage (the snapshot vector) is incomplete.
        HYPDB_ASSIGN_OR_RETURN(const ContextExplanation* expl,
                               session.Explain(*context));
        out.stage_explanation = *expl;
        return Status::Ok();
      }
      case AnalysisStage::kRewrite: {
        if (!context.has_value()) return session.Rewrite().status();
        HYPDB_ASSIGN_OR_RETURN(const ContextRewrite* rewrite,
                               session.Rewrite(*context));
        out.stage_rewrite = *rewrite;
        return Status::Ok();
      }
    }
    return Status::Internal("unhandled stage");
  }();
  session.SetCancelCheck({});
  HYPDB_RETURN_IF_ERROR(status);

  int64_t runs_after = 0;
  for (int s = 0; s < kNumAnalysisStages; ++s) {
    runs_after += session.stage_state(static_cast<AnalysisStage>(s)).runs;
  }
  stats->session_id = session_id;
  stats->stage = stage;
  stats->stage_reused = runs_after == runs_before;
  stats->session_complete = session.complete();
  stats->discovery_reused = entry->discovery_flags->reused.load();
  stats->discovery_coalesced = entry->discovery_flags->coalesced.load();
  out.report = session.Snapshot();
  return out;
}

StatusOr<SessionInfo> HypDbService::InspectSession(uint64_t session_id) {
  HYPDB_ASSIGN_OR_RETURN(std::shared_ptr<SessionManager::Entry> entry,
                         sessions_.Get(session_id));
  return sessions_.Info(entry);
}

StatusOr<ServiceReport> HypDbService::SessionSnapshot(uint64_t session_id) {
  HYPDB_ASSIGN_OR_RETURN(std::shared_ptr<SessionManager::Entry> entry,
                         sessions_.Get(session_id));
  std::lock_guard<std::mutex> stage_lock(entry->mu);
  ServiceReport out;
  out.report = entry->session->Snapshot();
  out.stats.session_id = session_id;
  out.stats.session_complete = entry->session->complete();
  return out;
}

Status HypDbService::CloseSession(uint64_t session_id) {
  return sessions_.Erase(session_id);
}

}  // namespace hypdb
