#include "service/dataset_registry.h"

#include <algorithm>
#include <utility>

#include "dataframe/csv.h"
#include "engine/caching_count_engine.h"
#include "engine/predicate_slicing_count_engine.h"
#include "service/request.h"
#include "storage/chunked_count_provider.h"
#include "storage/filtered_population.h"

namespace hypdb {
namespace {

/// Resolves `signature` into the equality conjunction it denotes against
/// `table`, or false when it is not sliceable: not a well-formed
/// signature, a term with more (or fewer) than one value, an unknown
/// attribute, a value absent from the column dictionary (such a term
/// matches no row *today*, but the label may arrive with a later append,
/// so the shard must track the store — the live filtered stack does), or
/// a repeated attribute (distinct conjuncts on one column intersect; not
/// worth slicing machinery).
bool ResolveSlicePredicates(const Table& table, const std::string& signature,
                            std::vector<SlicePredicate>* out) {
  StatusOr<std::vector<SubpopulationTerm>> terms =
      ParseSubpopulationSignature(signature);
  if (!terms.ok() || terms->empty()) return false;
  out->clear();
  for (const SubpopulationTerm& term : *terms) {
    if (term.values.size() != 1) return false;
    StatusOr<int> col = table.ColumnIndex(term.attribute);
    if (!col.ok()) return false;
    const int32_t code = table.column(*col).dict().Find(term.values[0]);
    if (code < 0) return false;
    for (const SlicePredicate& prev : *out) {
      if (prev.col == *col) return false;
    }
    out->push_back(SlicePredicate{*col, code});
  }
  return true;
}

}  // namespace

DatasetRegistry::DatasetRegistry(DatasetRegistryOptions options)
    : options_(std::move(options)) {}

int64_t DatasetRegistry::Register(const std::string& name, TablePtr table) {
  ChunkedTablePtr store;
  if (table != nullptr) {
    StatusOr<ChunkedTablePtr> built = ChunkedTable::FromTable(
        table, std::max<int64_t>(1, options_.chunk_rows));
    if (built.ok()) store = std::move(*built);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Dataset& ds = datasets_[name];
  ds.store = std::move(store);
  ++ds.epoch;
  // The lease outlives re-registration: requests holding the old epoch's
  // read lease must keep excluding writers until they drain.
  if (ds.lease == nullptr) ds.lease = std::make_shared<std::shared_mutex>();
  // New data invalidates every cached summary: shards (and the parent
  // they slice from) aggregate rows of the replaced table. Live engines
  // held by in-flight queries stay valid for the old store (shared_ptr),
  // they just stop being handed out.
  ds.parent.reset();
  ds.shards.clear();
  ds.shard_age.clear();
  ds.frozen.clear();
  ds.retired_slices = 0;  // the parent's counters went with it
  return ds.epoch;
}

StatusOr<int64_t> DatasetRegistry::RegisterCsv(const std::string& name,
                                               const std::string& path) {
  HYPDB_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return Register(name, MakeTable(std::move(table)));
}

StatusOr<int64_t> DatasetRegistry::AppendRows(
    const std::string& name,
    const std::vector<std::vector<std::string>>& rows) {
  // Grab the store and lease under the registry mutex, then release it
  // before taking the lease exclusively: the lock order is lease →
  // registry mutex, and readers holding the shared lease re-enter the
  // registry (ShardEngine), so holding mu_ while waiting on the lease
  // would deadlock.
  ChunkedTablePtr store;
  std::shared_ptr<std::shared_mutex> lease;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end() || it->second.store == nullptr) {
      return Status::NotFound("dataset not registered: " + name);
    }
    store = it->second.store;
    lease = it->second.lease;
  }
  int64_t watermark = 0;
  {
    std::unique_lock<std::shared_mutex> write(*lease);
    HYPDB_RETURN_IF_ERROR(store->Append(rows));
    watermark = store->Watermark();
  }
  // Frozen shards were built over a caller's materialized view; the view
  // no longer covers the population, so drop them (they rebuild live on
  // next use). Skip if the dataset was re-registered concurrently — the
  // replacement already dropped everything.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it != datasets_.end() && it->second.store == store) {
      Dataset& ds = it->second;
      for (const std::string& sig : ds.frozen) {
        auto shard = ds.shards.find(sig);
        if (shard != ds.shards.end()) {
          ds.shards.erase(shard);
          ds.shard_age.remove(sig);
        }
      }
      ds.frozen.clear();
    }
  }
  return watermark;
}

StatusOr<DatasetLease> DatasetRegistry::ReadLease(
    const std::string& name) const {
  std::shared_ptr<std::shared_mutex> lease;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end() || it->second.store == nullptr) {
      return Status::NotFound("dataset not registered: " + name);
    }
    lease = it->second.lease;
  }
  // Acquire outside mu_ (lock order: lease before registry mutex).
  DatasetLease out;
  out.mu = std::move(lease);
  out.lock = std::shared_lock<std::shared_mutex>(*out.mu);
  return out;
}

StatusOr<TablePtr> DatasetRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.store == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second.store->Materialized();
}

StatusOr<int64_t> DatasetRegistry::Epoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second.epoch;
}

StatusOr<std::shared_ptr<const ChunkedTable>> DatasetRegistry::Store(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.store == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return std::shared_ptr<const ChunkedTable>(it->second.store);
}

StatusOr<DatasetRegistry::Snapshot> DatasetRegistry::GetSnapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.store == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  Snapshot out;
  out.table = it->second.store->Materialized();
  out.epoch = it->second.epoch;
  out.watermark = out.table->NumRows();
  return out;
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) {
    DatasetInfo info;
    info.name = name;
    info.epoch = ds.epoch;
    if (ds.store != nullptr) {
      info.rows = ds.store->NumRows();
      info.columns = ds.store->NumColumns();
      info.chunks = ds.store->NumChunks();
      info.watermark = ds.store->Watermark();
    }
    info.shards =
        static_cast<int>(ds.shards.size()) + (ds.parent != nullptr ? 1 : 0);
    out.push_back(std::move(info));
  }
  return out;
}

StatusOr<std::shared_ptr<CountEngine>> DatasetRegistry::ShardEngine(
    const std::string& name, int64_t epoch, const std::string& signature,
    const TableView& population, int64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  Dataset& ds = it->second;
  if (ds.epoch != epoch) {
    // The caller's snapshot predates a re-registration; its population
    // view aggregates the replaced table and must not seed this pool.
    return Status::FailedPrecondition(
        "dataset " + name + " re-registered (snapshot epoch " +
        std::to_string(epoch) + ", current " + std::to_string(ds.epoch) +
        ")");
  }
  if (watermark >= 0 && ds.store != nullptr &&
      ds.store->Watermark() != watermark) {
    // The caller bound against an older watermark (a session created
    // before an append, or a rare snapshot/append race outside the read
    // lease). The live shared engines answer at the current watermark,
    // which would change the caller's pinned population; callers degrade
    // to a private engine over their own view instead.
    return Status::FailedPrecondition(
        "dataset " + name + " advanced past the caller's watermark (bound " +
        std::to_string(watermark) + ", current " +
        std::to_string(ds.store->Watermark()) + ")");
  }
  // The empty signature selects the whole table: that IS the parent
  // engine, so full-table queries and the slicing shards share one cache.
  if (signature.empty()) return ParentEngineLocked(ds);

  auto shard = ds.shards.find(signature);
  if (shard != ds.shards.end()) return shard->second;

  std::shared_ptr<CountEngine> engine =
      BuildShardLocked(ds, signature, population);
  ds.shards.emplace(signature, engine);
  ds.shard_age.push_back(signature);
  while (static_cast<int>(ds.shards.size()) >
         std::max(1, options_.max_shards_per_dataset)) {
    auto oldest = ds.shards.find(ds.shard_age.front());
    if (oldest != ds.shards.end()) {
      // Remember the evicted shard's slice count: the internal parent
      // queries it caused outlive it (in-flight holders of the evicted
      // engine may still add a few — the accounting is best-effort under
      // that race, exact otherwise).
      ds.retired_slices += oldest->second->stats().predicate_slices;
      ds.frozen.erase(oldest->first);
      ds.shards.erase(oldest);
    }
    ds.shard_age.pop_front();
  }
  return engine;
}

GroupByKernelOptions DatasetRegistry::KernelOptions() const {
  // One translation for the whole stack: the same mapping MiEngine and
  // session per-context engines use (stats/mi_engine.h).
  return ScanKernelOptions(options_.engine);
}

std::shared_ptr<CountEngine> DatasetRegistry::WrapCache(
    std::shared_ptr<CountEngine> base) const {
  if (!options_.engine.materialize_focus) return base;
  CachingCountEngineOptions caching;
  caching.max_cached_cells = options_.engine.max_cached_cells;
  return std::make_shared<CachingCountEngine>(std::move(base), caching);
}

std::shared_ptr<CountEngine> DatasetRegistry::CachedScanStack(
    const TableView& view) const {
  // Mirror MiEngine's engine stack: a kernel-backed scanner, wrapped in
  // a (thread-safe) caching layer unless materialization is disabled.
  return WrapCache(
      std::make_shared<ViewCountProvider>(view, KernelOptions()));
}

std::shared_ptr<CountEngine> DatasetRegistry::ParentEngineLocked(
    Dataset& ds) {
  if (ds.parent == nullptr && ds.store != nullptr) {
    ds.parent = WrapCache(
        std::make_shared<ChunkedCountProvider>(ds.store, KernelOptions()));
  }
  return ds.parent;
}

std::shared_ptr<CountEngine> DatasetRegistry::BuildShardLocked(
    Dataset& ds, const std::string& signature,
    const TableView& population) {
  // A live filtered-population scanner whenever the signature resolves
  // against the store's schema: it tracks appends (its row set extends
  // lazily) and carries the delta protocol, so the caching layer above
  // patches instead of invalidating.
  std::shared_ptr<CountEngine> live;
  if (ds.store != nullptr) {
    StatusOr<std::vector<SubpopulationTerm>> terms =
        ParseSubpopulationSignature(signature);
    if (terms.ok() && !terms->empty()) {
      std::vector<FilteredPopulationProvider::Term> filter;
      filter.reserve(terms->size());
      for (SubpopulationTerm& term : *terms) {
        filter.push_back(FilteredPopulationProvider::Term{
            std::move(term.attribute), std::move(term.values)});
      }
      StatusOr<std::shared_ptr<FilteredPopulationProvider>> provider =
          FilteredPopulationProvider::Create(ds.store, std::move(filter),
                                             KernelOptions());
      if (provider.ok()) live = std::move(*provider);
    }
  }
  std::vector<SlicePredicate> predicates;
  // Slicing needs a parent that actually caches: with materialization
  // off OR a zero cell budget (cache nothing), every slice would re-scan
  // the full table, strictly worse than scanning the filtered view. (A
  // zero budget means "unlimited" to the slicer's guard but "cache
  // nothing" to CachingCountEngine — never forward that configuration.)
  if (live != nullptr && options_.cross_shard_slicing &&
      options_.engine.materialize_focus &&
      options_.engine.max_cached_cells > 0 &&
      ResolveSlicePredicates(*ds.store->Materialized(), signature,
                             &predicates)) {
    // A shard-local cache over the slicer: exact repeats and shard-level
    // marginalizations short-circuit before reaching the parent. The
    // preference order per query is therefore shard hit > shard
    // marginalization > parent slice (hit/marginalize/scan inside the
    // parent) > private fallback scan. The live population keeps
    // NumRows/fallbacks/deltas current across appends.
    return WrapCache(std::make_shared<PredicateSlicingCountEngine>(
        ParentEngineLocked(ds), std::move(predicates), population,
        KernelOptions(), options_.engine.max_cached_cells, live));
  }
  if (live != nullptr) {
    // Live isolated stack: the filtered-population scanner plus the
    // cache (delta-patched across appends, no cross-shard sharing).
    return WrapCache(std::move(live));
  }
  // Frozen stack: scanner over the caller's view, plus the cache. The
  // view stops covering the population at the next append, so remember
  // the signature for drop-on-append.
  ds.frozen.insert(signature);
  return CachedScanStack(population);
}

StatusOr<CountEngineStats> DatasetRegistry::EngineStats(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  CountEngineStats total;
  // Parent first, shards after. Work counters never double count:
  // slicing shards report their own layer + private fallback only, never
  // the shared parent. `queries` needs one correction — each successful
  // slice issued exactly one internal Counts() on the parent (counted in
  // the parent's queries), so subtract the slice count to keep the
  // aggregate at "each external query once". A parent call that *failed*
  // (S ∪ P codec overflow, answered by the shard's fallback instead)
  // still counts once extra — rare and conservative.
  if (it->second.parent != nullptr) total += it->second.parent->stats();
  for (const auto& [sig, engine] : it->second.shards) {
    const CountEngineStats shard = engine->stats();
    total += shard;
    total.queries -= shard.predicate_slices;
  }
  // Slices by since-evicted shards still sit in the parent's queries.
  total.queries -= it->second.retired_slices;
  // Parent and shard counters are read under their own mutexes, not one
  // atomic snapshot: a worker mid-slice can land its predicate_slices
  // increment between our two reads, transiently over-subtracting.
  // Clamp — the counters are approximate under concurrency (as
  // RequestStats documents), but never negative.
  total.queries = std::max<int64_t>(total.queries, 0);
  return total;
}

}  // namespace hypdb
