#include "service/dataset_registry.h"

#include <algorithm>

#include "dataframe/csv.h"
#include "engine/caching_count_engine.h"
#include "engine/predicate_slicing_count_engine.h"
#include "service/request.h"

namespace hypdb {
namespace {

/// Resolves `signature` into the equality conjunction it denotes against
/// `table`, or false when it is not sliceable: not a well-formed
/// signature, a term with more (or fewer) than one value, an unknown
/// attribute, a value absent from the column dictionary (such a term
/// matches no row — BindQuery rejects the empty population before a
/// shard is ever requested), or a repeated attribute (distinct conjuncts
/// on one column intersect; not worth slicing machinery).
bool ResolveSlicePredicates(const Table& table, const std::string& signature,
                            std::vector<SlicePredicate>* out) {
  StatusOr<std::vector<SubpopulationTerm>> terms =
      ParseSubpopulationSignature(signature);
  if (!terms.ok() || terms->empty()) return false;
  out->clear();
  for (const SubpopulationTerm& term : *terms) {
    if (term.values.size() != 1) return false;
    StatusOr<int> col = table.ColumnIndex(term.attribute);
    if (!col.ok()) return false;
    const int32_t code = table.column(*col).dict().Find(term.values[0]);
    if (code < 0) return false;
    for (const SlicePredicate& prev : *out) {
      if (prev.col == *col) return false;
    }
    out->push_back(SlicePredicate{*col, code});
  }
  return true;
}

}  // namespace

DatasetRegistry::DatasetRegistry(DatasetRegistryOptions options)
    : options_(std::move(options)) {}

int64_t DatasetRegistry::Register(const std::string& name, TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  Dataset& ds = datasets_[name];
  ds.table = std::move(table);
  ++ds.epoch;
  // New data invalidates every cached summary: shards (and the parent
  // they slice from) aggregate rows of the replaced table. Live engines
  // held by in-flight queries stay valid for the old view (shared_ptr),
  // they just stop being handed out.
  ds.parent.reset();
  ds.shards.clear();
  ds.shard_age.clear();
  ds.retired_slices = 0;  // the parent's counters went with it
  return ds.epoch;
}

StatusOr<int64_t> DatasetRegistry::RegisterCsv(const std::string& name,
                                               const std::string& path) {
  HYPDB_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return Register(name, MakeTable(std::move(table)));
}

StatusOr<TablePtr> DatasetRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.table == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second.table;
}

StatusOr<int64_t> DatasetRegistry::Epoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second.epoch;
}

StatusOr<DatasetRegistry::Snapshot> DatasetRegistry::GetSnapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.table == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return Snapshot{it->second.table, it->second.epoch};
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) {
    DatasetInfo info;
    info.name = name;
    info.epoch = ds.epoch;
    info.rows = ds.table ? ds.table->NumRows() : 0;
    info.columns = ds.table ? ds.table->NumColumns() : 0;
    info.shards =
        static_cast<int>(ds.shards.size()) + (ds.parent != nullptr ? 1 : 0);
    out.push_back(std::move(info));
  }
  return out;
}

StatusOr<std::shared_ptr<CountEngine>> DatasetRegistry::ShardEngine(
    const std::string& name, int64_t epoch, const std::string& signature,
    const TableView& population) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  Dataset& ds = it->second;
  if (ds.epoch != epoch) {
    // The caller's snapshot predates a re-registration; its population
    // view aggregates the replaced table and must not seed this pool.
    return Status::FailedPrecondition(
        "dataset " + name + " re-registered (snapshot epoch " +
        std::to_string(epoch) + ", current " + std::to_string(ds.epoch) +
        ")");
  }
  // The empty signature selects the whole table: that IS the parent
  // engine, so full-table queries and the slicing shards share one cache.
  if (signature.empty()) return ParentEngineLocked(ds);

  auto shard = ds.shards.find(signature);
  if (shard != ds.shards.end()) return shard->second;

  std::shared_ptr<CountEngine> engine =
      BuildShardLocked(ds, signature, population);
  ds.shards.emplace(signature, engine);
  ds.shard_age.push_back(signature);
  while (static_cast<int>(ds.shards.size()) >
         std::max(1, options_.max_shards_per_dataset)) {
    auto oldest = ds.shards.find(ds.shard_age.front());
    if (oldest != ds.shards.end()) {
      // Remember the evicted shard's slice count: the internal parent
      // queries it caused outlive it (in-flight holders of the evicted
      // engine may still add a few — the accounting is best-effort under
      // that race, exact otherwise).
      ds.retired_slices += oldest->second->stats().predicate_slices;
      ds.shards.erase(oldest);
    }
    ds.shard_age.pop_front();
  }
  return engine;
}

GroupByKernelOptions DatasetRegistry::KernelOptions() const {
  // One translation for the whole stack: the same mapping MiEngine and
  // session per-context engines use (stats/mi_engine.h).
  return ScanKernelOptions(options_.engine);
}

std::shared_ptr<CountEngine> DatasetRegistry::WrapCache(
    std::shared_ptr<CountEngine> base) const {
  if (!options_.engine.materialize_focus) return base;
  CachingCountEngineOptions caching;
  caching.max_cached_cells = options_.engine.max_cached_cells;
  return std::make_shared<CachingCountEngine>(std::move(base), caching);
}

std::shared_ptr<CountEngine> DatasetRegistry::CachedScanStack(
    const TableView& view) const {
  // Mirror MiEngine's engine stack: a kernel-backed scanner, wrapped in
  // a (thread-safe) caching layer unless materialization is disabled.
  return WrapCache(
      std::make_shared<ViewCountProvider>(view, KernelOptions()));
}

std::shared_ptr<CountEngine> DatasetRegistry::ParentEngineLocked(
    Dataset& ds) {
  if (ds.parent == nullptr) {
    ds.parent = CachedScanStack(TableView(ds.table));
  }
  return ds.parent;
}

std::shared_ptr<CountEngine> DatasetRegistry::BuildShardLocked(
    Dataset& ds, const std::string& signature,
    const TableView& population) {
  std::vector<SlicePredicate> predicates;
  // Slicing needs a parent that actually caches: with materialization
  // off OR a zero cell budget (cache nothing), every slice would re-scan
  // the full table, strictly worse than scanning the filtered view. (A
  // zero budget means "unlimited" to the slicer's guard but "cache
  // nothing" to CachingCountEngine — never forward that configuration.)
  if (options_.cross_shard_slicing && options_.engine.materialize_focus &&
      options_.engine.max_cached_cells > 0 && ds.table != nullptr &&
      ResolveSlicePredicates(*ds.table, signature, &predicates)) {
    // A shard-local cache over the slicer: exact repeats and shard-level
    // marginalizations short-circuit before reaching the parent. The
    // preference order per query is therefore shard hit > shard
    // marginalization > parent slice (hit/marginalize/scan inside the
    // parent) > private fallback scan.
    return WrapCache(std::make_shared<PredicateSlicingCountEngine>(
        ParentEngineLocked(ds), std::move(predicates), population,
        KernelOptions(), options_.engine.max_cached_cells));
  }
  // Isolated stack: scanner over the filtered view, plus the cache.
  return CachedScanStack(population);
}

StatusOr<CountEngineStats> DatasetRegistry::EngineStats(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  CountEngineStats total;
  // Parent first, shards after. Work counters never double count:
  // slicing shards report their own layer + private fallback only, never
  // the shared parent. `queries` needs one correction — each successful
  // slice issued exactly one internal Counts() on the parent (counted in
  // the parent's queries), so subtract the slice count to keep the
  // aggregate at "each external query once". A parent call that *failed*
  // (S ∪ P codec overflow, answered by the shard's fallback instead)
  // still counts once extra — rare and conservative.
  if (it->second.parent != nullptr) total += it->second.parent->stats();
  for (const auto& [sig, engine] : it->second.shards) {
    const CountEngineStats shard = engine->stats();
    total += shard;
    total.queries -= shard.predicate_slices;
  }
  // Slices by since-evicted shards still sit in the parent's queries.
  total.queries -= it->second.retired_slices;
  // Parent and shard counters are read under their own mutexes, not one
  // atomic snapshot: a worker mid-slice can land its predicate_slices
  // increment between our two reads, transiently over-subtracting.
  // Clamp — the counters are approximate under concurrency (as
  // RequestStats documents), but never negative.
  total.queries = std::max<int64_t>(total.queries, 0);
  return total;
}

}  // namespace hypdb
