#include "service/dataset_registry.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "dataframe/csv.h"
#include "engine/caching_count_engine.h"
#include "engine/predicate_slicing_count_engine.h"
#include "service/request.h"
#include "storage/chunked_count_provider.h"
#include "storage/filtered_population.h"

namespace hypdb {
namespace {

/// Resolves `signature` into the equality conjunction it denotes against
/// `table`, or false when it is not sliceable: not a well-formed
/// signature, a term with more (or fewer) than one value, an unknown
/// attribute, a value absent from the column dictionary (such a term
/// matches no row *today*, but the label may arrive with a later append,
/// so the shard must track the store — the live filtered stack does), or
/// a repeated attribute (distinct conjuncts on one column intersect; not
/// worth slicing machinery).
bool ResolveSlicePredicates(const Table& table, const std::string& signature,
                            std::vector<SlicePredicate>* out) {
  StatusOr<std::vector<SubpopulationTerm>> terms =
      ParseSubpopulationSignature(signature);
  if (!terms.ok() || terms->empty()) return false;
  out->clear();
  for (const SubpopulationTerm& term : *terms) {
    if (term.values.size() != 1) return false;
    StatusOr<int> col = table.ColumnIndex(term.attribute);
    if (!col.ok()) return false;
    const int32_t code = table.column(*col).dict().Find(term.values[0]);
    if (code < 0) return false;
    for (const SlicePredicate& prev : *out) {
      if (prev.col == *col) return false;
    }
    out->push_back(SlicePredicate{*col, code});
  }
  return true;
}

}  // namespace

DatasetRegistry::DatasetRegistry(DatasetRegistryOptions options)
    : options_(std::move(options)) {
  if (Adaptive() && options_.advisor_interval_seconds > 0) {
    advisor_thread_ = std::thread([this] { AdvisorLoop(); });
  }
}

DatasetRegistry::~DatasetRegistry() {
  {
    std::lock_guard<std::mutex> lock(advisor_mu_);
    advisor_stop_ = true;
  }
  advisor_cv_.notify_all();
  if (advisor_thread_.joinable()) advisor_thread_.join();
}

void DatasetRegistry::AdvisorLoop() {
  const auto interval =
      std::chrono::duration<double>(options_.advisor_interval_seconds);
  std::unique_lock<std::mutex> lock(advisor_mu_);
  while (!advisor_stop_) {
    if (advisor_cv_.wait_for(lock, interval,
                             [this] { return advisor_stop_; })) {
      break;
    }
    // Pass outside advisor_mu_: stop requests must never wait on a cube
    // build.
    lock.unlock();
    AdvisorPass();
    lock.lock();
  }
}

int64_t DatasetRegistry::Register(const std::string& name, TablePtr table) {
  ChunkedTablePtr store;
  if (table != nullptr) {
    StatusOr<ChunkedTablePtr> built = ChunkedTable::FromTable(
        table, std::max<int64_t>(1, options_.chunk_rows));
    if (built.ok()) store = std::move(*built);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Dataset& ds = datasets_[name];
  ds.store = std::move(store);
  ++ds.epoch;
  // The lease outlives re-registration: requests holding the old epoch's
  // read lease must keep excluding writers until they drain.
  if (ds.lease == nullptr) ds.lease = std::make_shared<std::shared_mutex>();
  // New data invalidates every cached summary: shards (and the parent
  // they slice from) aggregate rows of the replaced table. Live engines
  // held by in-flight queries stay valid for the old store (shared_ptr),
  // they just stop being handed out.
  ds.parent.reset();
  ds.parent_cache.reset();
  ds.cube_host.reset();
  ds.advisor_streak.clear();
  ds.advisor_refused_dims.clear();
  ds.shards.clear();
  ds.shard_age.clear();
  ds.frozen.clear();
  ds.retired_slices = 0;  // the parent's counters went with it
  return ds.epoch;
}

StatusOr<int64_t> DatasetRegistry::RegisterCsv(const std::string& name,
                                               const std::string& path) {
  HYPDB_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return Register(name, MakeTable(std::move(table)));
}

StatusOr<int64_t> DatasetRegistry::AppendRows(
    const std::string& name,
    const std::vector<std::vector<std::string>>& rows) {
  // Grab the store and lease under the registry mutex, then release it
  // before taking the lease exclusively: the lock order is lease →
  // registry mutex, and readers holding the shared lease re-enter the
  // registry (ShardEngine), so holding mu_ while waiting on the lease
  // would deadlock.
  ChunkedTablePtr store;
  std::shared_ptr<std::shared_mutex> lease;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end() || it->second.store == nullptr) {
      return Status::NotFound("dataset not registered: " + name);
    }
    store = it->second.store;
    lease = it->second.lease;
  }
  int64_t watermark = 0;
  {
    std::unique_lock<std::shared_mutex> write(*lease);
    HYPDB_RETURN_IF_ERROR(store->Append(rows));
    watermark = store->Watermark();
  }
  // Frozen shards were built over a caller's materialized view; the view
  // no longer covers the population, so drop them (they rebuild live on
  // next use). Skip if the dataset was re-registered concurrently — the
  // replacement already dropped everything.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it != datasets_.end() && it->second.store == store) {
      Dataset& ds = it->second;
      for (const std::string& sig : ds.frozen) {
        auto shard = ds.shards.find(sig);
        if (shard != ds.shards.end()) {
          ds.shards.erase(shard);
          ds.shard_age.remove(sig);
        }
      }
      ds.frozen.clear();
    }
  }
  return watermark;
}

StatusOr<DatasetLease> DatasetRegistry::ReadLease(
    const std::string& name) const {
  std::shared_ptr<std::shared_mutex> lease;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end() || it->second.store == nullptr) {
      return Status::NotFound("dataset not registered: " + name);
    }
    lease = it->second.lease;
  }
  // Acquire outside mu_ (lock order: lease before registry mutex).
  DatasetLease out;
  out.mu = std::move(lease);
  out.lock = std::shared_lock<std::shared_mutex>(*out.mu);
  return out;
}

StatusOr<TablePtr> DatasetRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.store == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second.store->Materialized();
}

StatusOr<int64_t> DatasetRegistry::Epoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second.epoch;
}

StatusOr<std::shared_ptr<const ChunkedTable>> DatasetRegistry::Store(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.store == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return std::shared_ptr<const ChunkedTable>(it->second.store);
}

StatusOr<DatasetRegistry::Snapshot> DatasetRegistry::GetSnapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.store == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  Snapshot out;
  out.table = it->second.store->Materialized();
  out.epoch = it->second.epoch;
  out.watermark = out.table->NumRows();
  return out;
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) {
    DatasetInfo info;
    info.name = name;
    info.epoch = ds.epoch;
    if (ds.store != nullptr) {
      info.rows = ds.store->NumRows();
      info.columns = ds.store->NumColumns();
      info.chunks = ds.store->NumChunks();
      info.watermark = ds.store->Watermark();
    }
    info.shards =
        static_cast<int>(ds.shards.size()) + (ds.parent != nullptr ? 1 : 0);
    // Cache occupancy over the pool. Slicing shards report only their
    // own layer (their CacheUse does not recurse into the shared
    // parent), so the sum never double counts.
    if (ds.parent != nullptr) info.cache += ds.parent->CacheUse();
    for (const auto& [sig, engine] : ds.shards) {
      info.cache += engine->CacheUse();
    }
    if (ds.cube_host != nullptr) info.cube_cells = ds.cube_host->CubeCells();
    if (ds.parent != nullptr || !ds.shards.empty()) {
      const CountEngineStats stats = EngineStatsLocked(ds);
      info.evictions = stats.evictions;
      if (stats.queries > 0) {
        const double miss = static_cast<double>(stats.scans) /
                            static_cast<double>(stats.queries);
        info.cache_hit_ratio = std::min(1.0, std::max(0.0, 1.0 - miss));
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

StatusOr<std::shared_ptr<CountEngine>> DatasetRegistry::ShardEngine(
    const std::string& name, int64_t epoch, const std::string& signature,
    const TableView& population, int64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  Dataset& ds = it->second;
  if (ds.epoch != epoch) {
    // The caller's snapshot predates a re-registration; its population
    // view aggregates the replaced table and must not seed this pool.
    return Status::FailedPrecondition(
        "dataset " + name + " re-registered (snapshot epoch " +
        std::to_string(epoch) + ", current " + std::to_string(ds.epoch) +
        ")");
  }
  if (watermark >= 0 && ds.store != nullptr &&
      ds.store->Watermark() != watermark) {
    // The caller bound against an older watermark (a session created
    // before an append, or a rare snapshot/append race outside the read
    // lease). The live shared engines answer at the current watermark,
    // which would change the caller's pinned population; callers degrade
    // to a private engine over their own view instead.
    return Status::FailedPrecondition(
        "dataset " + name + " advanced past the caller's watermark (bound " +
        std::to_string(watermark) + ", current " +
        std::to_string(ds.store->Watermark()) + ")");
  }
  // The empty signature selects the whole table: that IS the parent
  // engine, so full-table queries and the slicing shards share one cache.
  if (signature.empty()) return ParentEngineLocked(ds);

  auto shard = ds.shards.find(signature);
  if (shard != ds.shards.end()) return shard->second;

  std::shared_ptr<CountEngine> engine =
      BuildShardLocked(ds, signature, population);
  ds.shards.emplace(signature, engine);
  ds.shard_age.push_back(signature);
  while (static_cast<int>(ds.shards.size()) >
         std::max(1, options_.max_shards_per_dataset)) {
    auto oldest = ds.shards.find(ds.shard_age.front());
    if (oldest != ds.shards.end()) {
      // Remember the evicted shard's slice count: the internal parent
      // queries it caused outlive it (in-flight holders of the evicted
      // engine may still add a few — the accounting is best-effort under
      // that race, exact otherwise).
      ds.retired_slices += oldest->second->stats().predicate_slices;
      ds.frozen.erase(oldest->first);
      ds.shards.erase(oldest);
    }
    ds.shard_age.pop_front();
  }
  return engine;
}

GroupByKernelOptions DatasetRegistry::KernelOptions() const {
  // One translation for the whole stack: the same mapping MiEngine and
  // session per-context engines use (stats/mi_engine.h).
  return ScanKernelOptions(options_.engine);
}

std::shared_ptr<CountEngine> DatasetRegistry::WrapCache(
    std::shared_ptr<CountEngine> base, bool track_demand) const {
  if (!options_.engine.materialize_focus) return base;
  CachingCountEngineOptions caching;
  caching.max_cached_cells = options_.engine.max_cached_cells;
  caching.policy = MakeCachePolicy(options_.engine.materialization);
  caching.track_demand = track_demand;
  return std::make_shared<CachingCountEngine>(std::move(base), caching);
}

std::shared_ptr<CountEngine> DatasetRegistry::CachedScanStack(
    const TableView& view) const {
  // Mirror MiEngine's engine stack: a kernel-backed scanner, wrapped in
  // a (thread-safe) caching layer unless materialization is disabled.
  return WrapCache(
      std::make_shared<ViewCountProvider>(view, KernelOptions()));
}

std::shared_ptr<CountEngine> DatasetRegistry::ParentEngineLocked(
    Dataset& ds) {
  if (ds.parent == nullptr && ds.store != nullptr) {
    std::shared_ptr<CountEngine> base =
        std::make_shared<ChunkedCountProvider>(ds.store, KernelOptions());
    if (Adaptive()) {
      // Adaptive stack: cache → cube host → chunked scanner. The cube
      // host sits below the cache so a promoted lattice serves cache
      // misses (and observed-cell admission checks); the cache above it
      // keeps hit/marginalization semantics — and bit-identity —
      // unchanged.
      ds.cube_host = std::make_shared<AdaptiveCubeProvider>(std::move(base));
      base = ds.cube_host;
      ds.parent = WrapCache(base, /*track_demand=*/true);
      if (ds.parent != base) {
        ds.parent_cache =
            std::static_pointer_cast<CachingCountEngine>(ds.parent);
      }
    } else {
      ds.parent = WrapCache(std::move(base));
    }
  }
  return ds.parent;
}

std::shared_ptr<CountEngine> DatasetRegistry::BuildShardLocked(
    Dataset& ds, const std::string& signature,
    const TableView& population) {
  // A live filtered-population scanner whenever the signature resolves
  // against the store's schema: it tracks appends (its row set extends
  // lazily) and carries the delta protocol, so the caching layer above
  // patches instead of invalidating.
  std::shared_ptr<CountEngine> live;
  if (ds.store != nullptr) {
    StatusOr<std::vector<SubpopulationTerm>> terms =
        ParseSubpopulationSignature(signature);
    if (terms.ok() && !terms->empty()) {
      std::vector<FilteredPopulationProvider::Term> filter;
      filter.reserve(terms->size());
      for (SubpopulationTerm& term : *terms) {
        filter.push_back(FilteredPopulationProvider::Term{
            std::move(term.attribute), std::move(term.values)});
      }
      StatusOr<std::shared_ptr<FilteredPopulationProvider>> provider =
          FilteredPopulationProvider::Create(ds.store, std::move(filter),
                                             KernelOptions());
      if (provider.ok()) live = std::move(*provider);
    }
  }
  std::vector<SlicePredicate> predicates;
  // Slicing needs a parent that actually caches: with materialization
  // off OR a zero cell budget (cache nothing), every slice would re-scan
  // the full table, strictly worse than scanning the filtered view. (A
  // zero budget means "unlimited" to the slicer's guard but "cache
  // nothing" to CachingCountEngine — never forward that configuration.)
  if (live != nullptr && options_.cross_shard_slicing &&
      options_.engine.materialize_focus &&
      options_.engine.max_cached_cells > 0 &&
      ResolveSlicePredicates(*ds.store->Materialized(), signature,
                             &predicates)) {
    // A shard-local cache over the slicer: exact repeats and shard-level
    // marginalizations short-circuit before reaching the parent. The
    // preference order per query is therefore shard hit > shard
    // marginalization > parent slice (hit/marginalize/scan inside the
    // parent) > private fallback scan. The live population keeps
    // NumRows/fallbacks/deltas current across appends.
    return WrapCache(std::make_shared<PredicateSlicingCountEngine>(
        ParentEngineLocked(ds), std::move(predicates), population,
        KernelOptions(), options_.engine.max_cached_cells, live,
        MakeCachePolicy(options_.engine.materialization)));
  }
  if (live != nullptr) {
    // Live isolated stack: the filtered-population scanner plus the
    // cache (delta-patched across appends, no cross-shard sharing).
    return WrapCache(std::move(live));
  }
  // Frozen stack: scanner over the caller's view, plus the cache. The
  // view stops covering the population at the next append, so remember
  // the signature for drop-on-append.
  ds.frozen.insert(signature);
  return CachedScanStack(population);
}

StatusOr<CountEngineStats> DatasetRegistry::EngineStats(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return EngineStatsLocked(it->second);
}

CountEngineStats DatasetRegistry::EngineStatsLocked(const Dataset& ds) const {
  CountEngineStats total;
  // Parent first, shards after. Work counters never double count:
  // slicing shards report their own layer + private fallback only, never
  // the shared parent. `queries` needs one correction — each successful
  // slice issued exactly one internal Counts() on the parent (counted in
  // the parent's queries), so subtract the slice count to keep the
  // aggregate at "each external query once". A parent call that *failed*
  // (S ∪ P codec overflow, answered by the shard's fallback instead)
  // still counts once extra — rare and conservative.
  if (ds.parent != nullptr) total += ds.parent->stats();
  for (const auto& [sig, engine] : ds.shards) {
    const CountEngineStats shard = engine->stats();
    total += shard;
    total.queries -= shard.predicate_slices;
  }
  // Slices by since-evicted shards still sit in the parent's queries.
  total.queries -= ds.retired_slices;
  // Parent and shard counters are read under their own mutexes, not one
  // atomic snapshot: a worker mid-slice can land its predicate_slices
  // increment between our two reads, transiently over-subtracting.
  // Clamp — the counters are approximate under concurrency (as
  // RequestStats documents), but never negative.
  total.queries = std::max<int64_t>(total.queries, 0);
  return total;
}

CubeAdvisorStats DatasetRegistry::advisor_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return advisor_;
}

void DatasetRegistry::AdvisorPass() {
  if (!Adaptive()) return;
  // Snapshot the per-dataset handles under mu_, then work lease-free and
  // lock-free: the store, cube host and parent cache are all shared_ptrs
  // that stay valid across a concurrent re-registration (which merely
  // stops handing them out — exactly the signal the epoch check below
  // catches before any advisor state is written back).
  struct Work {
    std::string name;
    int64_t epoch = 0;
    ChunkedTablePtr store;
    std::shared_ptr<AdaptiveCubeProvider> host;
    std::shared_ptr<CachingCountEngine> cache;
  };
  std::vector<Work> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++advisor_.passes;
    for (auto& [name, ds] : datasets_) {
      if (ds.store != nullptr && ds.cube_host != nullptr &&
          ds.parent_cache != nullptr) {
        work.push_back(
            Work{name, ds.epoch, ds.store, ds.cube_host, ds.parent_cache});
      }
    }
  }

  for (Work& w : work) {
    // Demotion: an append moved the watermark past the installed cube,
    // so every query already falls through it (bit-identity was never at
    // risk); drop it so its cells stop counting against occupancy. A
    // fresh build below may re-promote at the new watermark.
    if (w.host->HasCube() &&
        w.host->CubeWatermark() != w.store->Watermark()) {
      w.host->DropCube();
      std::lock_guard<std::mutex> lock(mu_);
      ++advisor_.demotions;
    }

    // Harvest this pass's demand profile and advance hot streaks. A
    // column set is demanded when the parent cache saw >= min_demand
    // queries for it since the last pass; a streak of hot_passes
    // consecutive demanded passes makes it hot.
    std::map<std::vector<int>, int64_t> demand = w.cache->TakeDemandProfile();
    std::vector<int> target;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = datasets_.find(w.name);
      if (it == datasets_.end() || it->second.epoch != w.epoch) continue;
      Dataset& ds = it->second;
      for (auto s = ds.advisor_streak.begin();
           s != ds.advisor_streak.end();) {
        auto d = demand.find(s->first);
        if (d == demand.end() || d->second < options_.advisor_min_demand) {
          s = ds.advisor_streak.erase(s);  // went cold: streak resets
        } else {
          ++s;
        }
      }
      for (const auto& [key, n] : demand) {
        if (n >= options_.advisor_min_demand) ++ds.advisor_streak[key];
      }
      // Greedy union of hot sets, hottest first (deterministic tie-break
      // on the column set itself), skipping any set that would push the
      // cube past the dimension cap.
      std::vector<std::pair<int64_t, const std::vector<int>*>> hot;
      for (const auto& [key, streak] : ds.advisor_streak) {
        if (streak >= options_.advisor_hot_passes) {
          hot.emplace_back(demand.find(key)->second, &key);
        }
      }
      std::sort(hot.begin(), hot.end(),
                [](const std::pair<int64_t, const std::vector<int>*>& a,
                   const std::pair<int64_t, const std::vector<int>*>& b) {
                  return a.first != b.first ? a.first > b.first
                                            : *a.second < *b.second;
                });
      std::set<int> dims;
      for (const auto& [n, key] : hot) {
        std::set<int> merged = dims;
        merged.insert(key->begin(), key->end());
        if (static_cast<int>(merged.size()) > options_.advisor_max_cube_dims) {
          continue;
        }
        dims = std::move(merged);
      }
      target.assign(dims.begin(), dims.end());
      if (target.empty()) continue;  // nothing persistently hot
      if (target == ds.advisor_refused_dims) continue;  // known over budget
    }

    // Already serving this hot set? (Current cube at the live watermark
    // covering every target dimension.) Then the build would be pure
    // waste.
    const std::vector<int> current = w.host->CubeDims();
    if (w.host->HasCube() &&
        w.host->CubeWatermark() == w.store->Watermark() &&
        std::includes(current.begin(), current.end(), target.begin(),
                      target.end())) {
      continue;
    }

    // Promotion: build the lattice outside every registry lock (one
    // full-table scan plus in-memory marginalizations), then install iff
    // it fits the engine cell budget. The cube is built over a
    // materialized snapshot; its watermark is that snapshot's row count,
    // so a racing append simply leaves it inert until the next pass.
    TablePtr table = w.store->Materialized();
    const int64_t built_at = table->NumRows();
    StatusOr<DataCube> cube = DataCube::Build(
        TableView(table), target, options_.advisor_max_cube_dims);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++advisor_.build_scans;
    }
    if (!cube.ok() ||
        cube->TotalCells() > options_.engine.max_cached_cells) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = datasets_.find(w.name);
      if (it != datasets_.end() && it->second.epoch == w.epoch) {
        it->second.advisor_refused_dims = std::move(target);
      }
      continue;
    }
    w.host->InstallCube(std::make_shared<const DataCube>(std::move(*cube)),
                        built_at);
    std::lock_guard<std::mutex> lock(mu_);
    ++advisor_.promotions;
    auto it = datasets_.find(w.name);
    if (it != datasets_.end() && it->second.epoch == w.epoch) {
      it->second.advisor_refused_dims.clear();
    }
  }
}

}  // namespace hypdb
