#include "service/dataset_registry.h"

#include <algorithm>

#include "dataframe/csv.h"
#include "engine/caching_count_engine.h"

namespace hypdb {

DatasetRegistry::DatasetRegistry(DatasetRegistryOptions options)
    : options_(std::move(options)) {}

int64_t DatasetRegistry::Register(const std::string& name, TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  Dataset& ds = datasets_[name];
  ds.table = std::move(table);
  ++ds.epoch;
  // New data invalidates every cached summary: shards aggregate rows of
  // the replaced table. Live engines held by in-flight queries stay valid
  // for the old view (shared_ptr), they just stop being handed out.
  ds.shards.clear();
  ds.shard_age.clear();
  return ds.epoch;
}

StatusOr<int64_t> DatasetRegistry::RegisterCsv(const std::string& name,
                                               const std::string& path) {
  HYPDB_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return Register(name, MakeTable(std::move(table)));
}

StatusOr<TablePtr> DatasetRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.table == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second.table;
}

StatusOr<int64_t> DatasetRegistry::Epoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return it->second.epoch;
}

StatusOr<DatasetRegistry::Snapshot> DatasetRegistry::GetSnapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end() || it->second.table == nullptr) {
    return Status::NotFound("dataset not registered: " + name);
  }
  return Snapshot{it->second.table, it->second.epoch};
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) {
    DatasetInfo info;
    info.name = name;
    info.epoch = ds.epoch;
    info.rows = ds.table ? ds.table->NumRows() : 0;
    info.columns = ds.table ? ds.table->NumColumns() : 0;
    info.shards = static_cast<int>(ds.shards.size());
    out.push_back(std::move(info));
  }
  return out;
}

StatusOr<std::shared_ptr<CountEngine>> DatasetRegistry::ShardEngine(
    const std::string& name, int64_t epoch, const std::string& signature,
    const TableView& population) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  Dataset& ds = it->second;
  if (ds.epoch != epoch) {
    // The caller's snapshot predates a re-registration; its population
    // view aggregates the replaced table and must not seed this pool.
    return Status::FailedPrecondition(
        "dataset " + name + " re-registered (snapshot epoch " +
        std::to_string(epoch) + ", current " + std::to_string(ds.epoch) +
        ")");
  }
  auto shard = ds.shards.find(signature);
  if (shard != ds.shards.end()) return shard->second;

  // Mirror MiEngine's engine stack: a kernel-backed scanner, wrapped in a
  // (thread-safe) caching layer unless materialization is disabled.
  GroupByKernelOptions kernel;
  kernel.num_threads = options_.engine.scan_threads;
  std::shared_ptr<CountEngine> engine =
      std::make_shared<ViewCountProvider>(population, kernel);
  if (options_.engine.materialize_focus) {
    CachingCountEngineOptions caching;
    caching.max_cached_cells = options_.engine.max_cached_cells;
    engine = std::make_shared<CachingCountEngine>(std::move(engine), caching);
  }
  ds.shards.emplace(signature, engine);
  ds.shard_age.push_back(signature);
  while (static_cast<int>(ds.shards.size()) >
         std::max(1, options_.max_shards_per_dataset)) {
    ds.shards.erase(ds.shard_age.front());
    ds.shard_age.pop_front();
  }
  return engine;
}

StatusOr<CountEngineStats> DatasetRegistry::EngineStats(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset not registered: " + name);
  }
  CountEngineStats total;
  for (const auto& [sig, engine] : it->second.shards) {
    total += engine->stats();
  }
  return total;
}

}  // namespace hypdb
