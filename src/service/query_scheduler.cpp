#include "service/query_scheduler.h"

#include <algorithm>

#include "core/sql_parser.h"
#include "service/union_planner.h"
#include "util/string_util.h"

namespace hypdb {

QueryScheduler::QueryScheduler(DatasetRegistry* registry,
                               DiscoveryCache* discovery,
                               QuerySchedulerOptions options)
    : registry_(registry), discovery_(discovery),
      options_(std::move(options)) {
  int workers = options_.num_workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Queued-but-unpicked jobs complete with an error so Wait() never
    // hangs across shutdown.
    for (Job& job : queue_) {
      auto slot = slots_.find(job.ticket);
      if (slot != slots_.end() && !slot->second->done) {
        slot->second->done = true;
        slot->second->result =
            StatusOr<ServiceReport>(Status::FailedPrecondition(
                "scheduler shut down before the request ran"));
      }
    }
    queue_.clear();
  }
  queue_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

uint64_t QueryScheduler::Submit(AnalyzeRequest request,
                                SubmitOptions submit) {
  Job job;
  job.request = std::move(request);
  job.submit = submit;

  metrics_.submitted.Add();
  StatusOr<AggQuery> parsed = ParseAggQuery(job.request.sql);
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  job.ticket = ticket;
  slots_.emplace(ticket, std::make_shared<Slot>());
  if (!parsed.ok()) {
    // Malformed SQL never reaches a worker; the ticket completes
    // immediately with the parser error — through the same accounting as
    // worker completions, so it counts against the retention bound.
    // Observe() runs first (and outside mu_, it fires on_complete): the
    // counters must land before the completion is publishable, so a
    // returned Wait() always sees them.
    lock.unlock();
    RequestStats stats;
    stats.ticket = ticket;
    Observe(stats, parsed.status(), /*queued=*/false, /*ran=*/false);
    lock.lock();
    CompleteLocked(ticket, StatusOr<ServiceReport>(parsed.status()));
    lock.unlock();
    done_cv_.notify_all();
    return ticket;
  }
  job.query = std::move(*parsed);
  job.batch_key = BatchKey(job.request.dataset, job.query);
  queue_.push_back(std::move(job));
  lock.unlock();
  queue_cv_.notify_one();
  return ticket;
}

uint64_t QueryScheduler::SubmitTask(
    std::string batch_key,
    std::function<StatusOr<ServiceReport>(RequestStats*)> run,
    SubmitOptions submit, std::shared_ptr<std::atomic<bool>> cancel_flag) {
  Job job;
  job.submit = submit;
  job.batch_key = std::move(batch_key);
  job.run = std::move(run);
  job.cancel_flag = std::move(cancel_flag);
  metrics_.submitted.Add();
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  job.ticket = ticket;
  slots_.emplace(ticket, std::make_shared<Slot>());
  queue_.push_back(std::move(job));
  lock.unlock();
  queue_cv_.notify_one();
  return ticket;
}

StatusOr<ServiceReport> QueryScheduler::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = slots_.find(ticket);
  if (it == slots_.end()) {
    return Status::NotFound("unknown or already-claimed ticket " +
                            std::to_string(ticket));
  }
  std::shared_ptr<Slot> slot = it->second;
  done_cv_.wait(lock, [&] { return slot->done || stopping_; });
  if (!slot->done) {
    return Status::FailedPrecondition("scheduler shutting down");
  }
  // Claim-once even when two threads raced Wait() on the same pending
  // ticket: the result moves out exactly once; the loser gets the same
  // error a sequential double-Wait does.
  if (!slot->result.has_value()) {
    return Status::NotFound("ticket " + std::to_string(ticket) +
                            " already claimed");
  }
  StatusOr<ServiceReport> result = std::move(*slot->result);
  slot->result.reset();
  if (slots_.erase(ticket) > 0) --retained_results_;
  return result;
}

bool QueryScheduler::Done(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(ticket);
  return it == slots_.end() || it->second->done;
}

bool QueryScheduler::Cancel(uint64_t ticket) {
  std::shared_ptr<std::atomic<bool>> running_flag;
  // Built under the lock (the job dies there), observed after unlock.
  std::optional<RequestStats> cancelled_stats;
  Status cancelled_status = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto job = std::find_if(queue_.begin(), queue_.end(),
                            [&](const Job& j) { return j.ticket == ticket; });
    if (job == queue_.end()) {
      // Not queued: cooperative jobs can still be cancelled in flight —
      // the worker observes the flag at its next stage boundary.
      auto running = running_cancels_.find(ticket);
      if (running == running_cancels_.end()) return false;
      running_flag = running->second;
    } else {
      RequestStats stats;
      stats.ticket = ticket;
      stats.queue_seconds = job->queued.ElapsedSeconds();
      stats.trace.push_back({"queue", 0.0, stats.queue_seconds});
      cancelled_status = Status::Cancelled("request " +
                                           std::to_string(ticket) +
                                           " cancelled before it ran");
      cancelled_stats = std::move(stats);
      // Erased from the queue but not completed yet: the slot flips to
      // done only after Observe() below, so a returned Wait() always
      // sees the cancelled counter and the on_complete record.
      queue_.erase(job);
    }
  }
  if (running_flag != nullptr) {
    running_flag->store(true);
    return true;
  }
  Observe(*cancelled_stats, cancelled_status, /*queued=*/true,
          /*ran=*/false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    CompleteLocked(ticket, StatusOr<ServiceReport>(cancelled_status));
  }
  done_cv_.notify_all();
  return true;
}

void QueryScheduler::WorkerLoop(int worker_id) {
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Batching: drain queued twins of this request (same dataset,
      // treatment, subpopulation) and run them back-to-back — the first
      // run leaves the discovery cache and count shards warm for them.
      // Copied, not referenced: push_back below reallocates `batch`.
      const std::string key = batch.front().batch_key;
      for (auto it = queue_.begin();
           it != queue_.end() &&
           static_cast<int>(batch.size()) < std::max(1, options_.batch_max);) {
        if (it->batch_key == key) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (batch.size() > 1) {
      metrics_.batched_twins.Add(static_cast<int64_t>(batch.size()) - 1);
      if (options_.union_planning && options_.share_engines) {
        PlanBatchPrefetch(&batch);
      }
    }
    for (Job& job : batch) RunJob(std::move(job), worker_id);
  }
}

void QueryScheduler::PlanBatchPrefetch(std::vector<Job>* batch) {
  // Analyze jobs only: session stage jobs (job.run) schedule their own
  // engine work inside the session.
  std::vector<Job*> jobs;
  for (Job& job : *batch) {
    if (!job.run) jobs.push_back(&job);
  }
  if (jobs.size() < 2) return;
  const std::string& dataset = jobs.front()->request.dataset;
  // Same lease/snapshot discipline as Execute(): the prefetched summary
  // must aggregate the watermark the shared shard engine answers at.
  StatusOr<DatasetLease> lease = registry_->ReadLease(dataset);
  if (!lease.ok()) return;
  StatusOr<DatasetRegistry::Snapshot> snapshot =
      registry_->GetSnapshot(dataset);
  if (!snapshot.ok()) return;
  // One bind suffices: batch-key equality means every job shares the
  // WHERE clause (and the treatment), so they all resolve to the same
  // shard engine.
  StatusOr<BoundQuery> bound =
      BindQuery(snapshot->table, jobs.front()->query);
  if (!bound.ok()) return;
  StatusOr<std::shared_ptr<CountEngine>> shard = registry_->ShardEngine(
      dataset, snapshot->epoch, SubpopulationSignature(jobs.front()->query),
      bound->population, snapshot->watermark);
  if (!shard.ok() || *shard == nullptr) return;

  const Table& table = *snapshot->table;
  std::vector<int64_t> cardinalities(table.NumColumns());
  for (int c = 0; c < table.NumColumns(); ++c) {
    cardinalities[c] = table.column(c).Cardinality();
  }
  // The attribute set each job is about to demand: treatment, contexts,
  // outcomes. (Discovery probes more sets, but these are the ones every
  // job materializes as its focus.)
  std::vector<std::vector<int>> needs;
  std::vector<Job*> need_jobs;
  for (Job* job : jobs) {
    std::vector<int> cols;
    bool resolved = true;
    auto add = [&](const std::string& name) {
      StatusOr<int> idx = table.ColumnIndex(name);
      if (idx.ok()) {
        cols.push_back(*idx);
      } else {
        resolved = false;
      }
    };
    add(job->query.treatment);
    for (const std::string& name : job->query.grouping) add(name);
    for (const std::string& name : job->query.outcomes) add(name);
    if (!resolved || cols.empty()) continue;
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    needs.push_back(std::move(cols));
    need_jobs.push_back(job);
  }
  if (needs.size() < 2) return;

  // Per-request options may override the engine budget, but the shared
  // shard engine was built from the scheduler defaults — plan against
  // the budget that engine actually enforces.
  const int64_t budget = options_.defaults.engine.max_cached_cells;
  for (const UnionPlanBin& bin :
       PlanUnionPrefetch(needs, cardinalities, budget)) {
    if (bin.covered < 2) continue;
    if (!(*shard)->Prefetch(bin.cols).ok()) continue;
    metrics_.union_prefetches.Add();
    for (size_t i = 0; i < needs.size(); ++i) {
      if (std::includes(bin.cols.begin(), bin.cols.end(), needs[i].begin(),
                        needs[i].end())) {
        need_jobs[i]->union_planned = true;
      }
    }
  }
}

void QueryScheduler::RunJob(Job job, int worker_id) {
  RequestStats stats;
  stats.ticket = job.ticket;
  stats.worker_id = worker_id;
  stats.union_prefetched = job.union_planned;
  stats.queue_seconds = job.queued.ElapsedSeconds();
  stats.trace.push_back({"queue", 0.0, stats.queue_seconds});
  // Deadline check at pickup — it also covers batched twins, whose wait
  // keeps growing while earlier batch members run.
  if (job.submit.deadline_seconds > 0.0 &&
      stats.queue_seconds > job.submit.deadline_seconds) {
    const Status status = Status::DeadlineExceeded(StrFormat(
        "request waited %.3fs, past its %.3fs deadline",
        stats.queue_seconds, job.submit.deadline_seconds));
    Observe(stats, status, /*queued=*/true, /*ran=*/false);
    Complete(job.ticket, StatusOr<ServiceReport>(status));
    return;
  }
  if (job.cancel_flag != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    running_cancels_.emplace(job.ticket, job.cancel_flag);
  }
  // Engine-deep tracing: attribute everything the worker (and any helper
  // thread that inherits the context) records to this ticket, on the
  // submit-relative axis the queue span already started.
  TraceContext trace_ctx;
  trace_ctx.ticket = job.ticket;
  trace_ctx.level = std::min(
      2, std::max(0, job.submit.trace_level >= 0
                         ? job.submit.trace_level
                         : options_.default_trace_level));
  trace_ctx.t0_nanos = job.queued.StartNanos();
  stats.trace_level = trace_ctx.level;
  Stopwatch run;
  StatusOr<ServiceReport> result = [&] {
    TraceContextScope trace_scope(trace_ctx);
    return Execute(job, worker_id, &stats);
  }();
  stats.run_seconds = run.ElapsedSeconds();
  if (trace_ctx.level > 0) {
    // Harvested before Observe() fires on_complete, so the slow-query
    // flight recorder sees the full sub-stage trace.
    stats.events = HarvestTrace(job.ticket, trace_ctx.t0_nanos);
  }
  if (job.cancel_flag != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    running_cancels_.erase(job.ticket);
  }
  if (job.run) {
    // Custom work (session stage jobs): one span covering the stage the
    // closure reported it ran. The analyze pipeline gets finer-grained
    // spans inside Execute().
    stats.trace.push_back({stats.stage.empty() ? "run" : stats.stage,
                           stats.queue_seconds, stats.run_seconds});
  }
  // Copied before the move: Observe() needs the terminal status, and an
  // OK StatusOr's status() is just Ok. Observe() runs before Complete()
  // publishes the result: the counters and the on_complete hook must
  // land before any waiter can observe the terminal state.
  const Status status = result.status();
  if (result.ok()) result->stats = stats;
  Observe(stats, status, /*queued=*/true, /*ran=*/true);
  Complete(job.ticket, std::move(result));
}

StatusOr<ServiceReport> QueryScheduler::Execute(const Job& job,
                                                int worker_id,
                                                RequestStats* stats) {
  (void)worker_id;
  // Custom work (session stage jobs) — the closure owns its own
  // sharing/validation; ticket/batching/deadline handling above applies
  // unchanged.
  if (job.run) return job.run(stats);
  // Reader lease for the whole request body: appends serialize behind it,
  // so the storage watermark the snapshot below is materialized at stays
  // the watermark until this request completes — the live shared engines
  // and the snapshot table always agree on the population.
  HYPDB_ASSIGN_OR_RETURN(DatasetLease lease,
                         registry_->ReadLease(job.request.dataset));
  (void)lease;
  // One snapshot for the whole request: table, epoch and watermark are
  // read atomically, every later step (binding, shard lookup, discovery
  // key) uses this triple, so a concurrent re-registration can neither
  // mix old counts into the new epoch's pool nor cache old-table
  // discovery under a new-epoch key.
  HYPDB_ASSIGN_OR_RETURN(DatasetRegistry::Snapshot snapshot,
                         registry_->GetSnapshot(job.request.dataset));
  const HypDbOptions& options = job.request.options.has_value()
                                    ? *job.request.options
                                    : options_.defaults;
  HypDb db(snapshot.table, options);

  AnalyzeHooks hooks;
  std::shared_ptr<CountEngine> engine;
  CountEngineStats engine_before;
  if (options_.share_engines) {
    // Bind once here to materialize the WHERE view the shard engine
    // aggregates. Analyze() re-binds internally; both binds produce the
    // same row set, which is all count equality needs. The bind span
    // covers this setup scan so every traced kernel event has a stage
    // parent.
    TraceSpanScope bind_span(TraceEventKind::kStage, 1,
                             static_cast<uint64_t>(TraceStage::kBind));
    HYPDB_ASSIGN_OR_RETURN(BoundQuery bound,
                           BindQuery(snapshot.table, job.query));
    StatusOr<std::shared_ptr<CountEngine>> shard = registry_->ShardEngine(
        job.request.dataset, snapshot.epoch,
        SubpopulationSignature(job.query), bound.population,
        snapshot.watermark);
    if (shard.ok()) {
      engine = std::move(*shard);
      hooks.population_engine = engine;
      engine_before = engine->stats();
    } else if (shard.status().code() != StatusCode::kFailedPrecondition) {
      return shard.status();
    }
    // FailedPrecondition = the dataset was re-registered after our
    // snapshot. Run unshared over the snapshot table — still correct,
    // just not pooled; the discovery below caches under the (now stale,
    // unreachable) snapshot epoch.
  }

  // Trace cursor: spans are laid out on the submit-relative axis, the
  // queue span (already recorded by RunJob) ends at queue_seconds.
  double cursor = stats->queue_seconds;

  DiscoveryReport discovery;
  double discovery_span = -1.0;  // <0: take it from the report below
  if (options_.share_discovery) {
    const std::string key = DiscoveryKey(job.request.dataset,
                                         snapshot.epoch, job.query, options);
    Stopwatch discovery_watch;
    HYPDB_ASSIGN_OR_RETURN(
        discovery,
        discovery_->LookupOrCompute(
            key,
            [&] { return db.Discover(job.query, hooks.population_engine); },
            &stats->discovery_reused, &stats->discovery_coalesced,
            snapshot.watermark));
    // Wall time THIS request spent (near-zero on a cache hit, the full
    // compute when it was the single flight) — not the cached report's
    // original compute time.
    discovery_span = discovery_watch.ElapsedSeconds();
    hooks.reuse_discovery = &discovery;
  }

  ServiceReport out;
  HYPDB_ASSIGN_OR_RETURN(out.report, db.Analyze(job.query, hooks));
  if (discovery_span < 0.0) discovery_span = out.report.discovery.seconds;
  stats->trace.push_back({"discovery", cursor, discovery_span});
  cursor += discovery_span;
  stats->trace.push_back({"detect", cursor, out.report.detect_seconds});
  cursor += out.report.detect_seconds;
  stats->trace.push_back({"explain", cursor, out.report.explain_seconds});
  cursor += out.report.explain_seconds;
  stats->trace.push_back({"rewrite", cursor, out.report.resolve_seconds});
  // RunJob stamps the finished stats (including this delta) onto the
  // report after timing completes.
  if (engine != nullptr) {
    stats->engine_delta = engine->stats() - engine_before;
  }
  return out;
}

int64_t QueryScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void QueryScheduler::Observe(const RequestStats& stats, const Status& status,
                             bool queued, bool ran) {
  metrics_.completed.Add();
  switch (status.code()) {
    case StatusCode::kCancelled:
      metrics_.cancelled.Add();
      break;
    case StatusCode::kDeadlineExceeded:
      metrics_.deadline_exceeded.Add();
      break;
    default:
      if (!status.ok()) metrics_.failed.Add();
      break;
  }
  if (queued) metrics_.queue_wait.Observe(stats.queue_seconds);
  if (ran) metrics_.run_time.Observe(stats.run_seconds);
  if (options_.on_complete) options_.on_complete(stats, status);
}

void QueryScheduler::CompleteLocked(uint64_t ticket,
                                    StatusOr<ServiceReport> result) {
  auto it = slots_.find(ticket);
  if (it == slots_.end()) return;
  it->second->result = std::move(result);
  it->second->done = true;
  done_order_.push_back(ticket);
  ++retained_results_;
  // Fire-and-forget submitters never Wait(); drop the oldest *live*
  // unclaimed results so slots_ cannot grow without bound. Stale queue
  // entries (tickets Wait() already claimed and erased) are popped
  // without counting against the bound.
  const int64_t cap = std::max<int64_t>(1, options_.max_retained_results);
  while (retained_results_ > cap && !done_order_.empty()) {
    const uint64_t oldest = done_order_.front();
    done_order_.pop_front();
    auto found = slots_.find(oldest);
    if (found != slots_.end() && found->second->done) {
      slots_.erase(found);
      --retained_results_;
    }
  }
}

void QueryScheduler::Complete(uint64_t ticket,
                              StatusOr<ServiceReport> result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CompleteLocked(ticket, std::move(result));
  }
  done_cv_.notify_all();
}

}  // namespace hypdb
