// Blocking C++ clients for the two wire protocols — used by the tests,
// the bench_net_throughput load generator, and the CI smoke job. One
// TCP connection per client, reused across calls (HTTP keep-alive /
// line-JSON persistent connection) and transparently re-established once
// when the server closed it idle. Not thread-safe: give each client
// thread its own instance.

#ifndef HYPDB_NET_CLIENT_H_
#define HYPDB_NET_CLIENT_H_

#include <string>

#include "net/json.h"
#include "util/statusor.h"

namespace hypdb {
namespace net {

/// A raw HTTP exchange as the client saw it.
struct HttpResult {
  int status = 0;
  std::string body;
};

class HttpClient {
 public:
  HttpClient(std::string host, int port)
      : host_(std::move(host)), port_(port) {}
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One request/response exchange; connects lazily. A reused
  /// connection that dies before yielding any response byte (the server
  /// idle-closed it) is re-established and the request re-sent once;
  /// failures after response bytes arrived are NOT retried — the server
  /// may have executed the request. Any HTTP status is a successful
  /// Request() — only transport failures are errors.
  StatusOr<HttpResult> Request(const std::string& method,
                               const std::string& target,
                               const std::string& body = "");

  /// JSON conveniences: 2xx bodies parse into the returned value; error
  /// bodies parse back into the Status the server sent (StatusFromJson).
  StatusOr<JsonValue> Get(const std::string& target);
  StatusOr<JsonValue> Post(const std::string& target, const JsonValue& body);
  StatusOr<JsonValue> Delete(const std::string& target);

  void Close();

 private:
  Status Connect();
  /// `received_bytes` reports whether any response byte arrived — the
  /// retry-safety signal for Request().
  StatusOr<HttpResult> RequestOnce(const std::string& wire,
                                   bool* received_bytes);

  std::string host_;
  int port_;
  int fd_ = -1;
  std::string buffer_;  // bytes read past the previous response
};

/// Client for the raw line-JSON mode on the same port: one serialized
/// request object per line, one envelope line back.
class LineClient {
 public:
  LineClient(std::string host, int port)
      : host_(std::move(host)), port_(port) {}
  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Sends `request` and decodes the envelope: the "result" value on
  /// {"ok":true}, the decoded "error" Status otherwise.
  StatusOr<JsonValue> Call(const JsonValue& request);
  /// Raw exchange: one line out (newline appended), one line back.
  StatusOr<std::string> CallRaw(const std::string& line);

  void Close();

 private:
  Status Connect();

  std::string host_;
  int port_;
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace net
}  // namespace hypdb

#endif  // HYPDB_NET_CLIENT_H_
