#include "net/hypdb_handlers.h"

#include <cstdlib>

#include "datagen/adult_data.h"
#include "datagen/berkeley_data.h"
#include "datagen/cancer_data.h"
#include "datagen/flight_data.h"
#include "datagen/staples_data.h"
#include "engine/groupby_kernel.h"
#include "util/build_info.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hypdb {
namespace net {

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kFailedPrecondition: return 409;
    case StatusCode::kUnimplemented: return 501;
    case StatusCode::kInternal: return 500;
    case StatusCode::kIoError: return 500;
    case StatusCode::kCancelled: return 409;
    case StatusCode::kDeadlineExceeded: return 408;
    case StatusCode::kGone: return 410;
  }
  return 500;
}

StatusOr<Table> GenerateNamedDataset(const std::string& kind) {
  if (kind == "berkeley") return GenerateBerkeleyData();
  if (kind == "flight") return GenerateFlightData();
  if (kind == "adult") return GenerateAdultData();
  if (kind == "staples") return GenerateStaplesData();
  if (kind == "cancer") return GenerateCancerData();
  return Status::InvalidArgument(
      "unknown generator '" + kind +
      "' (expected berkeley|flight|adult|staples|cancer)");
}

namespace {

/// Splits "/v1/requests/7?wait=1" into path and a query-parameter check.
struct Target {
  std::string path;
  std::string query;

  bool HasParam(const std::string& name) const {
    for (const std::string& param : Split(query, '&')) {
      const size_t eq = param.find('=');
      const std::string key =
          eq == std::string::npos ? param : param.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? "" : param.substr(eq + 1);
      if (key == name && value != "0" && value != "false") return true;
    }
    return false;
  }

  /// Value of the first `name=value` parameter; "" when absent.
  std::string ParamValue(const std::string& name) const {
    for (const std::string& param : Split(query, '&')) {
      const size_t eq = param.find('=');
      if (eq != std::string::npos && param.substr(0, eq) == name) {
        return param.substr(eq + 1);
      }
    }
    return "";
  }
};

Target SplitTarget(const std::string& target) {
  const size_t question = target.find('?');
  if (question == std::string::npos) return {target, ""};
  return {target.substr(0, question), target.substr(question + 1)};
}

StatusOr<uint64_t> ParseId(const std::string& id) {
  if (id.empty() || id.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("malformed request id '" + id + "'");
  }
  errno = 0;
  const uint64_t ticket = std::strtoull(id.c_str(), nullptr, 10);
  if (errno != 0 || ticket == 0) {
    return Status::InvalidArgument("request id out of range: " + id);
  }
  return ticket;
}

/// ASSIGN_OR_RETURN for HttpResponse-returning routing code: failures
/// become the mapped 4xx/5xx error response instead of a Status.
#define HYPDB_ASSIGN_OR_RETURN_HTTP(lhs, rexpr)                    \
  HYPDB_ASSIGN_OR_RETURN_HTTP_IMPL_(                               \
      HYPDB_STATUS_CONCAT_(_http_statusor_, __LINE__), lhs, rexpr)
#define HYPDB_ASSIGN_OR_RETURN_HTTP_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                      \
  if (!tmp.ok()) return ErrorResponse(tmp.status());       \
  lhs = std::move(tmp).value()

StatusOr<uint64_t> TicketFromJson(const JsonValue& body) {
  const JsonValue* ticket = body.Find("ticket");
  if (ticket == nullptr || !ticket->is_int() || ticket->int_value() <= 0) {
    return Status::InvalidArgument(
        "expected a positive integer \"ticket\" member");
  }
  return static_cast<uint64_t>(ticket->int_value());
}

}  // namespace

HttpResponse HypDbHandlers::JsonResponse(int status,
                                         const JsonValue& body) const {
  HttpResponse response;
  response.status = status;
  Stopwatch watch;
  response.body = SerializeJson(body);
  serialize_.Observe(watch.ElapsedSeconds());
  return response;
}

HttpResponse HypDbHandlers::ErrorResponse(const Status& status) const {
  return JsonResponse(HttpStatusForCode(status.code()), ErrorToJson(status));
}

HttpResponse HypDbHandlers::ResultResponse(
    const StatusOr<JsonValue>& result) const {
  if (!result.ok()) return ErrorResponse(result.status());
  return JsonResponse(200, *result);
}

JsonValue HypDbHandlers::Healthz() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("workers", JsonValue::Int(service_->num_workers()));
  out.Set("uptime_seconds", JsonValue::Double(service_->uptime_seconds()));
  out.Set("datasets",
          JsonValue::Int(static_cast<int64_t>(service_->Datasets().size())));
  out.Set("queue_depth", JsonValue::Int(service_->queue_depth()));
  out.Set("sessions", JsonValue::Int(service_->num_sessions()));
  out.Set("simd",
          JsonValue::Str(GroupByKernelSimdActive() ? "avx2" : "scalar"));
  out.Set("materialization",
          JsonValue::Str(MaterializationModeName(
              service_->options().analysis.engine.materialization)));
  // Build identity, mirroring the hypdb_build_info metric: lets a probe
  // (or an operator's curl) confirm which binary is actually serving.
  out.Set("version", JsonValue::Str(BuildVersion()));
  out.Set("compiler", JsonValue::Str(BuildCompiler()));
  out.Set("build_type", JsonValue::Str(BuildType()));
  // Per-dataset storage shape: a probe watching an ingest pipeline reads
  // row/chunk/watermark progression here without the full dataset list.
  // Cache occupancy rides along so an operator sees pool pressure
  // (cells/budget, hit ratio, evictions) and advisor cube residency from
  // one readiness probe.
  JsonValue storage = JsonValue::MakeObject();
  for (const DatasetInfo& info : service_->Datasets()) {
    JsonValue shape = JsonValue::MakeObject();
    shape.Set("rows", JsonValue::Int(info.rows));
    shape.Set("chunks", JsonValue::Int(info.chunks));
    shape.Set("watermark", JsonValue::Int(info.watermark));
    shape.Set("cache", ToJson(info.cache));
    shape.Set("cube_cells", JsonValue::Int(info.cube_cells));
    shape.Set("cache_hit_ratio", JsonValue::Double(info.cache_hit_ratio));
    shape.Set("evictions", JsonValue::Int(info.evictions));
    storage.Set(info.name, std::move(shape));
  }
  out.Set("storage", std::move(storage));
  return out;
}

StatusOr<JsonValue> HypDbHandlers::Register(const JsonValue& body) {
  HYPDB_ASSIGN_OR_RETURN(RegisterCommand command,
                         RegisterCommandFromJson(body));
  int64_t epoch = 0;
  if (!command.csv_path.empty()) {
    HYPDB_ASSIGN_OR_RETURN(
        epoch, service_->RegisterCsv(command.name, command.csv_path));
  } else {
    HYPDB_ASSIGN_OR_RETURN(Table table,
                           GenerateNamedDataset(command.generator));
    epoch = service_->RegisterTable(command.name,
                                    MakeTable(std::move(table)));
  }
  HYPDB_ASSIGN_OR_RETURN(TablePtr table, service_->Dataset(command.name));
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue::Str(command.name));
  out.Set("epoch", JsonValue::Int(epoch));
  out.Set("rows", JsonValue::Int(table->NumRows()));
  out.Set("columns", JsonValue::Int(table->NumColumns()));
  return out;
}

StatusOr<JsonValue> HypDbHandlers::Append(const JsonValue& body,
                                          const std::string& path_name) {
  HYPDB_ASSIGN_OR_RETURN(AppendCommand command, AppendCommandFromJson(body));
  if (!path_name.empty()) {
    if (!command.name.empty() && command.name != path_name) {
      return Status::InvalidArgument(
          "body \"name\" '" + command.name +
          "' does not match the URL dataset '" + path_name + "'");
    }
    command.name = path_name;
  }
  if (command.name.empty()) {
    return Status::InvalidArgument(
        "append requires a dataset \"name\"");
  }
  HYPDB_ASSIGN_OR_RETURN(int64_t watermark,
                         service_->AppendRows(command.name, command.rows));
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue::Str(command.name));
  out.Set("appended", JsonValue::Int(static_cast<int64_t>(command.rows.size())));
  out.Set("watermark", JsonValue::Int(watermark));
  return out;
}

StatusOr<JsonValue> HypDbHandlers::Analyze(const JsonValue& body) {
  HYPDB_ASSIGN_OR_RETURN(
      WireAnalyzeRequest wire,
      AnalyzeRequestFromJson(body, service_->options().analysis));
  // Submit + Wait rather than the sync facade so deadlines apply to
  // synchronous requests too.
  const uint64_t ticket =
      service_->Submit(std::move(wire.request), wire.submit);
  HYPDB_ASSIGN_OR_RETURN(ServiceReport report, service_->Wait(ticket));
  return ToJson(report);
}

StatusOr<JsonValue> HypDbHandlers::Submit(const JsonValue& body) {
  HYPDB_ASSIGN_OR_RETURN(
      WireAnalyzeRequest wire,
      AnalyzeRequestFromJson(body, service_->options().analysis));
  const uint64_t ticket =
      service_->Submit(std::move(wire.request), wire.submit);
  JsonValue out = JsonValue::MakeObject();
  out.Set("ticket", JsonValue::Int(static_cast<int64_t>(ticket)));
  return out;
}

StatusOr<JsonValue> HypDbHandlers::Poll(uint64_t ticket) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ticket", JsonValue::Int(static_cast<int64_t>(ticket)));
  out.Set("done", JsonValue::Bool(service_->Done(ticket)));
  return out;
}

StatusOr<JsonValue> HypDbHandlers::WaitFor(uint64_t ticket) {
  HYPDB_ASSIGN_OR_RETURN(ServiceReport report, service_->Wait(ticket));
  return ToJson(report);
}

StatusOr<JsonValue> HypDbHandlers::SessionCreate(const JsonValue& body) {
  HYPDB_ASSIGN_OR_RETURN(
      WireAnalyzeRequest wire,
      AnalyzeRequestFromJson(body, service_->options().analysis));
  HYPDB_ASSIGN_OR_RETURN(SessionInfo info,
                         service_->CreateSession(wire.request));
  return ToJson(info);
}

StatusOr<JsonValue> HypDbHandlers::SessionStep(uint64_t session,
                                               const std::string& stage,
                                               const JsonValue& body) {
  std::optional<int> context;
  SubmitOptions submit;
  if (body.is_object()) {
    // Strict like every other wire body: only the step parameters are
    // legal here (HandleLine strips its cmd/session/stage envelope
    // members before delegating).
    for (const auto& [key, value] : body.members()) {
      if (key == "context" && value.is_int()) {
        context = static_cast<int>(value.int_value());
      } else if (key == "deadline_seconds" && value.is_number()) {
        submit.deadline_seconds = value.number_value();
      } else {
        return Status::InvalidArgument(
            "unknown or mistyped step member \"" + key + "\"");
      }
    }
  } else if (!body.is_null()) {
    return Status::InvalidArgument("step body must be a JSON object");
  }
  HYPDB_ASSIGN_OR_RETURN(
      ServiceReport report,
      service_->AdvanceSession(session, stage, context, submit));
  // The "report" stage is the full analysis: answer with the same body
  // /v1/analyze serves (digest-comparable by any client).
  if (stage == "report" || stage == "run") return ToJson(report);
  return SessionStageToJson(report);
}

StatusOr<JsonValue> HypDbHandlers::SessionInspect(uint64_t session) {
  HYPDB_ASSIGN_OR_RETURN(SessionInfo info,
                         service_->InspectSession(session));
  JsonValue out = ToJson(info);
  if (info.complete) {
    HYPDB_ASSIGN_OR_RETURN(ServiceReport snapshot,
                           service_->SessionSnapshot(session));
    out.Set("report", ToJson(snapshot));
  }
  return out;
}

StatusOr<JsonValue> HypDbHandlers::SessionClose(uint64_t session) {
  HYPDB_RETURN_IF_ERROR(service_->CloseSession(session));
  JsonValue out = JsonValue::MakeObject();
  out.Set("session", JsonValue::Int(static_cast<int64_t>(session)));
  out.Set("closed", JsonValue::Bool(true));
  return out;
}

JsonValue HypDbHandlers::SessionList() {
  JsonValue out = JsonValue::MakeArray();
  for (const SessionInfo& info : service_->Sessions()) {
    out.Append(ToJson(info));
  }
  return out;
}

StatusOr<JsonValue> HypDbHandlers::Cancel(uint64_t ticket) {
  if (!service_->Cancel(ticket)) {
    if (service_->Done(ticket)) {
      return Status::FailedPrecondition(
          "request " + std::to_string(ticket) +
          " already finished (or is unknown); nothing to cancel");
    }
    return Status::FailedPrecondition(
        "request " + std::to_string(ticket) +
        " is already running; in-flight work is not aborted");
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("ticket", JsonValue::Int(static_cast<int64_t>(ticket)));
  out.Set("cancelled", JsonValue::Bool(true));
  return out;
}

StatusOr<JsonValue> HypDbHandlers::RequestTrace(uint64_t ticket,
                                                bool chrome) {
  HYPDB_ASSIGN_OR_RETURN(RequestStats stats,
                         service_->RequestTrace(ticket));
  return chrome ? ChromeTraceJson(stats) : ToJson(stats);
}

HypDbHandlers::Route HypDbHandlers::ClassifyRoute(const std::string& target) {
  const std::string path = target.substr(0, target.find('?'));
  if (path == "/healthz") return kRouteHealthz;
  if (path == "/metrics") return kRouteMetrics;
  if (path == "/v1/stats") return kRouteStats;
  if (path == "/v1/datasets") return kRouteDatasets;
  if (path.rfind("/v1/datasets/", 0) == 0) return kRouteIngest;
  if (path == "/v1/analyze") return kRouteAnalyze;
  if (path == "/v1/submit") return kRouteSubmit;
  if (path.rfind("/v1/requests/", 0) == 0) return kRouteRequests;
  if (path == "/v1/sessions" || path.rfind("/v1/sessions/", 0) == 0) {
    return kRouteSessions;
  }
  return kRouteOther;
}

HttpResponse HypDbHandlers::HandleHttp(const HttpRequest& request) {
  Stopwatch watch;
  const Route route = ClassifyRoute(request.target);
  HttpResponse response = RouteHttp(request);
  // Count after the body is built: a /metrics scrape never includes
  // itself, so a client can assert exact counts against what it sent.
  RouteMetrics& m = routes_[route];
  (response.status >= 500   ? m.server_error
   : response.status >= 400 ? m.client_error
                            : m.ok)
      .Add();
  m.latency.Observe(watch.ElapsedSeconds());
  return response;
}

HttpResponse HypDbHandlers::RouteHttp(const HttpRequest& request) {
  const Target target = SplitTarget(request.target);

  if (target.path == "/healthz") {
    if (request.method != "GET") {
      return ErrorResponse(Status::InvalidArgument("use GET /healthz"));
    }
    return JsonResponse(200, Healthz());
  }

  if (target.path == "/metrics") {
    if (request.method != "GET") {
      return ErrorResponse(Status::InvalidArgument("use GET /metrics"));
    }
    const MetricsSnapshot snapshot = service_->metrics_registry().Snapshot();
    if (target.ParamValue("format") == "json") {
      return JsonResponse(200, MetricsToJson(snapshot));
    }
    HttpResponse response;
    response.status = 200;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    Stopwatch render;
    response.body = RenderPrometheusText(snapshot);
    serialize_.Observe(render.ElapsedSeconds());
    return response;
  }

  if (target.path == "/v1/stats") {
    if (request.method != "GET") {
      return ErrorResponse(Status::InvalidArgument("use GET /v1/stats"));
    }
    return JsonResponse(200, ServiceStatsToJson(*service_));
  }

  if (target.path == "/v1/datasets") {
    if (request.method == "GET") {
      JsonValue out = JsonValue::MakeArray();
      for (const DatasetInfo& info : service_->Datasets()) {
        out.Append(ToJson(info));
      }
      return JsonResponse(200, out);
    }
    if (request.method == "POST") {
      HYPDB_ASSIGN_OR_RETURN_HTTP(JsonValue body, ParseJson(request.body));
      return ResultResponse(Register(body));
    }
    return ErrorResponse(
        Status::InvalidArgument("use GET or POST /v1/datasets"));
  }

  const std::string kDatasets = "/v1/datasets/";
  if (target.path.rfind(kDatasets, 0) == 0) {
    const std::string rest = target.path.substr(kDatasets.size());
    const size_t slash = rest.find('/');
    if (slash == std::string::npos || slash == 0 ||
        rest.substr(slash + 1) != "rows") {
      // The only dataset sub-resource is the append endpoint.
      return ErrorResponse(Status::NotFound(
          "no route for " + request.method + " " + target.path));
    }
    if (request.method != "POST") {
      return ErrorResponse(
          Status::InvalidArgument("use POST " + target.path));
    }
    HYPDB_ASSIGN_OR_RETURN_HTTP(JsonValue body, ParseJson(request.body));
    return ResultResponse(Append(body, rest.substr(0, slash)));
  }

  if (target.path == "/v1/analyze" || target.path == "/v1/submit") {
    if (request.method != "POST") {
      return ErrorResponse(
          Status::InvalidArgument("use POST " + target.path));
    }
    HYPDB_ASSIGN_OR_RETURN_HTTP(JsonValue body, ParseJson(request.body));
    return ResultResponse(target.path == "/v1/analyze" ? Analyze(body)
                                                       : Submit(body));
  }

  if (target.path == "/v1/sessions") {
    if (request.method == "GET") return JsonResponse(200, SessionList());
    if (request.method == "POST") {
      HYPDB_ASSIGN_OR_RETURN_HTTP(JsonValue body, ParseJson(request.body));
      StatusOr<JsonValue> created = SessionCreate(body);
      if (!created.ok()) return ErrorResponse(created.status());
      return JsonResponse(201, *created);
    }
    return ErrorResponse(
        Status::InvalidArgument("use GET or POST /v1/sessions"));
  }

  const std::string kSessions = "/v1/sessions/";
  if (target.path.rfind(kSessions, 0) == 0) {
    const std::string rest = target.path.substr(kSessions.size());
    const size_t slash = rest.find('/');
    if (slash == std::string::npos) {
      HYPDB_ASSIGN_OR_RETURN_HTTP(uint64_t session, ParseId(rest));
      if (request.method == "GET") {
        return ResultResponse(SessionInspect(session));
      }
      if (request.method == "DELETE") {
        return ResultResponse(SessionClose(session));
      }
      return ErrorResponse(
          Status::InvalidArgument("use GET or DELETE " + target.path));
    }
    HYPDB_ASSIGN_OR_RETURN_HTTP(uint64_t session,
                                ParseId(rest.substr(0, slash)));
    const std::string stage = rest.substr(slash + 1);
    if (stage.empty() || stage.find('/') != std::string::npos) {
      return ErrorResponse(Status::InvalidArgument(
          "use POST /v1/sessions/{id}/{stage}"));
    }
    if (request.method != "POST") {
      return ErrorResponse(
          Status::InvalidArgument("use POST " + target.path));
    }
    JsonValue body;  // stage bodies are optional
    if (!request.body.empty()) {
      HYPDB_ASSIGN_OR_RETURN_HTTP(body, ParseJson(request.body));
    }
    return ResultResponse(SessionStep(session, stage, body));
  }

  const std::string kRequests = "/v1/requests/";
  if (target.path.rfind(kRequests, 0) == 0) {
    std::string rest = target.path.substr(kRequests.size());
    const size_t slash = rest.find('/');
    if (slash != std::string::npos) {
      // The only sub-resource is the execution trace.
      if (rest.substr(slash + 1) != "trace") {
        return ErrorResponse(Status::NotFound(
            "no route for " + request.method + " " + target.path));
      }
      HYPDB_ASSIGN_OR_RETURN_HTTP(uint64_t ticket,
                                  ParseId(rest.substr(0, slash)));
      if (request.method != "GET") {
        return ErrorResponse(
            Status::InvalidArgument("use GET " + target.path));
      }
      const std::string format = target.ParamValue("format");
      if (!format.empty() && format != "chrome" && format != "raw") {
        return ErrorResponse(Status::InvalidArgument(
            "unknown trace format '" + format +
            "' (expected chrome|raw)"));
      }
      return ResultResponse(RequestTrace(ticket, format != "raw"));
    }
    HYPDB_ASSIGN_OR_RETURN_HTTP(uint64_t ticket, ParseId(rest));
    if (request.method == "DELETE") return ResultResponse(Cancel(ticket));
    if (request.method == "GET") {
      // Poll unless told to block. The GET that sees done=true (or
      // ?wait=1) claims the result — claim-once, like Wait().
      if (!target.HasParam("wait") && !service_->Done(ticket)) {
        JsonValue pending = JsonValue::MakeObject();
        pending.Set("ticket", JsonValue::Int(static_cast<int64_t>(ticket)));
        pending.Set("done", JsonValue::Bool(false));
        return JsonResponse(202, pending);
      }
      return ResultResponse(WaitFor(ticket));
    }
    return ErrorResponse(
        Status::InvalidArgument("use GET or DELETE " + target.path));
  }

  return ErrorResponse(
      Status::NotFound("no route for " + request.method + " " +
                       target.path));
}

std::string HypDbHandlers::HandleLine(const std::string& line) {
  Stopwatch watch;
  const auto envelope = [this, &watch](StatusOr<JsonValue> result) {
    JsonValue out = JsonValue::MakeObject();
    RouteMetrics& m = routes_[kRouteLine];
    if (result.ok()) {
      out.Set("ok", JsonValue::Bool(true));
      out.Set("result", std::move(*result));
      m.ok.Add();
    } else {
      out.Set("ok", JsonValue::Bool(false));
      out.Set("error", ErrorToJson(result.status()));
      (HttpStatusForCode(result.status().code()) >= 500 ? m.server_error
                                                        : m.client_error)
          .Add();
    }
    m.latency.Observe(watch.ElapsedSeconds());
    Stopwatch serialize;
    std::string text = SerializeJson(out);
    serialize_.Observe(serialize.ElapsedSeconds());
    return text;
  };

  auto parsed = ParseJson(line);
  if (!parsed.ok()) return envelope(parsed.status());
  const JsonValue& body = *parsed;
  const JsonValue* cmd = body.Find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    return envelope(Status::InvalidArgument(
        "expected a string \"cmd\" member (register|append|datasets|"
        "analyze|submit|poll|wait|cancel|trace|session|step|sessions|"
        "session_info|session_close|stats|health|metrics)"));
  }
  const std::string& verb = cmd->string_value();

  const auto session_id = [&body]() -> StatusOr<uint64_t> {
    const JsonValue* session = body.Find("session");
    if (session == nullptr || !session->is_int() ||
        session->int_value() <= 0) {
      return Status::InvalidArgument(
          "expected a positive integer \"session\" member");
    }
    return static_cast<uint64_t>(session->int_value());
  };

  if (verb == "health") return envelope(Healthz());
  if (verb == "metrics") {
    return envelope(MetricsToJson(service_->metrics_registry().Snapshot()));
  }
  if (verb == "stats") return envelope(ServiceStatsToJson(*service_));
  if (verb == "datasets") {
    JsonValue out = JsonValue::MakeArray();
    for (const DatasetInfo& info : service_->Datasets()) {
      out.Append(ToJson(info));
    }
    return envelope(std::move(out));
  }
  if (verb == "register") return envelope(Register(body));
  if (verb == "append") return envelope(Append(body));
  if (verb == "analyze") return envelope(Analyze(body));
  if (verb == "submit") return envelope(Submit(body));
  if (verb == "poll" || verb == "wait" || verb == "cancel" ||
      verb == "trace") {
    auto ticket = TicketFromJson(body);
    if (!ticket.ok()) return envelope(ticket.status());
    if (verb == "poll") return envelope(Poll(*ticket));
    if (verb == "wait") return envelope(WaitFor(*ticket));
    if (verb == "trace") {
      const JsonValue* format = body.Find("format");
      if (format != nullptr &&
          (!format->is_string() ||
           (format->string_value() != "chrome" &&
            format->string_value() != "raw"))) {
        return envelope(Status::InvalidArgument(
            "\"format\" must be \"chrome\" or \"raw\""));
      }
      const bool chrome = format == nullptr ||
                          format->string_value() == "chrome";
      return envelope(RequestTrace(*ticket, chrome));
    }
    return envelope(Cancel(*ticket));
  }
  if (verb == "session") return envelope(SessionCreate(body));
  if (verb == "sessions") return envelope(SessionList());
  if (verb == "step") {
    auto session = session_id();
    if (!session.ok()) return envelope(session.status());
    const JsonValue* stage = body.Find("stage");
    if (stage == nullptr || !stage->is_string()) {
      return envelope(Status::InvalidArgument(
          "expected a string \"stage\" member (answers|discover|detect|"
          "explain|rewrite|report)"));
    }
    // Strip the line-protocol envelope; SessionStep is strict about the
    // rest, exactly like the HTTP route.
    JsonValue params = JsonValue::MakeObject();
    for (const auto& [key, value] : body.members()) {
      if (key == "cmd" || key == "session" || key == "stage") continue;
      params.Set(key, value);
    }
    return envelope(SessionStep(*session, stage->string_value(), params));
  }
  if (verb == "session_info" || verb == "session_close") {
    auto session = session_id();
    if (!session.ok()) return envelope(session.status());
    return envelope(verb == "session_info" ? SessionInspect(*session)
                                           : SessionClose(*session));
  }
  return envelope(Status::InvalidArgument("unknown cmd \"" + verb + "\""));
}

void HypDbHandlers::RegisterMetrics(MetricsRegistry* registry) const {
  static const char* const kRouteNames[kNumRoutes] = {
      "healthz",  "metrics", "stats",  "datasets", "analyze", "submit",
      "requests", "sessions", "ingest", "line",    "other"};
  for (int r = 0; r < kNumRoutes; ++r) {
    const std::string route = kRouteNames[r];
    registry->RegisterCounter(
        "hypdb_http_requests_total",
        "Requests handled, by route and status class.",
        {{"route", route}, {"status", "2xx"}}, &routes_[r].ok);
    registry->RegisterCounter("hypdb_http_requests_total",
                              "Requests handled, by route and status class.",
                              {{"route", route}, {"status", "4xx"}},
                              &routes_[r].client_error);
    registry->RegisterCounter("hypdb_http_requests_total",
                              "Requests handled, by route and status class.",
                              {{"route", route}, {"status", "5xx"}},
                              &routes_[r].server_error);
    registry->RegisterHistogram("hypdb_http_request_seconds",
                                "Handler wall time, by route.",
                                {{"route", route}}, &routes_[r].latency);
  }
  registry->RegisterHistogram(
      "hypdb_http_serialize_seconds",
      "Response serialization time (not part of the request trace: "
      "serialization cannot appear inside its own output).",
      {}, &serialize_);
}

}  // namespace net
}  // namespace hypdb
