// A small dependency-free TCP front-end speaking two protocols on one
// port:
//  * HTTP/1.1 — request-line + headers + Content-Length framed bodies,
//    keep-alive by default, one worker thread per connection. Enough for
//    curl, load balancers and the blocking client in net/client.h; no
//    chunked encoding (501) and no TLS (see ROADMAP follow-ups).
//  * line-JSON — if the first byte of a connection is '{', every
//    newline-terminated line is handed to the line handler and answered
//    with exactly one newline-terminated line. This skips all HTTP
//    parsing for low-overhead machine clients; framing is trivial because
//    serialized JSON never contains a raw newline.
//
// The server is transport only: it owns sockets, framing, limits and
// connection lifecycle, and delegates every request to the two handler
// callbacks (see net/hypdb_handlers.h for the HypDB routing). Malformed
// input earns the client a 4xx (or an {"ok":false,...} line) — never a
// crash and never a torn-down server.

#ifndef HYPDB_NET_HTTP_SERVER_H_
#define HYPDB_NET_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace hypdb {
namespace net {

/// Transport-level counters (the SQLStats idiom). Route/status breakdown
/// lives in the handler layer (HypDbHandlers) — the server only sees raw
/// connections, framing and bytes.
struct HttpServerMetrics {
  Counter connections_accepted;
  Counter connections_rejected;  // over max_connections -> immediate 503
  Counter http_requests;         // fully parsed and dispatched
  Counter line_requests;         // line-JSON requests dispatched
  Counter parse_rejects;         // malformed framing answered with a 4xx
  Counter bytes_read;
  Counter bytes_written;
};

struct HttpRequest {
  std::string method;  // uppercase token, e.g. "POST"
  std::string target;  // path + optional query, e.g. "/v1/analyze"
  /// Header (name, value) pairs in arrival order; names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lowercase), or nullptr.
  const std::string* Header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

struct HttpServerOptions {
  /// Interface to bind. The default stays off external interfaces; bind
  /// 0.0.0.0 explicitly to serve remote traffic.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Concurrent connections served; beyond this, new connections get an
  /// immediate 503 and are closed.
  int max_connections = 128;
  /// Request-head (request line + headers) and body size caps.
  int64_t max_header_bytes = 64 * 1024;
  int64_t max_body_bytes = 8 * 1024 * 1024;
  /// Seconds a keep-alive connection may sit idle before the server
  /// closes it. Also bounds how long a half-sent request can stall a
  /// worker thread.
  int idle_timeout_seconds = 60;
};

/// Thread-safe once Start()ed; Stop() (or destruction) closes the
/// listener and every live connection and joins all threads.
class HttpServer {
 public:
  /// `http` answers parsed HTTP requests; `line` answers one line-JSON
  /// request per call and returns the response line (no newline). Both
  /// must be thread-safe — they run concurrently on connection threads.
  using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;
  using LineHandler = std::function<std::string(const std::string&)>;

  HttpServer(HttpHandler http, LineHandler line,
             HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts accepting. IoError when the port is taken.
  Status Start();
  /// Idempotent; safe to call from any thread (not from a handler).
  void Stop();

  /// The bound port (after a successful Start()).
  int port() const { return port_; }
  const HttpServerOptions& options() const { return options_; }

  /// Live transport counters (see HttpServerMetrics).
  const HttpServerMetrics& metrics() const { return metrics_; }
  /// Connections currently being served.
  int64_t active_connections() const;
  /// Registers the transport metrics under hypdb_http_* / hypdb_line_*
  /// names. The server must outlive every scrape of `registry`.
  void RegisterMetrics(MetricsRegistry* registry) const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  void ServeHttp(int fd, std::string* buffer);
  void ServeLines(int fd, std::string* buffer);
  /// ReadMore with the received bytes counted into metrics_.
  bool ReadMoreCounted(int fd, std::string* buffer);

  HttpHandler http_;
  LineHandler line_;
  HttpServerOptions options_;
  mutable HttpServerMetrics metrics_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;

  mutable std::mutex mu_;
  bool stopping_ = false;
  /// Live connection fds, for Stop() to shut down mid-read.
  std::set<int> connections_;
  /// One thread per live connection. Finished threads park their
  /// iterator in finished_ and the acceptor joins and erases them before
  /// the next accept, so a long-lived server does not accumulate dead
  /// thread handles.
  std::list<std::thread> threads_;
  std::vector<std::list<std::thread>::iterator> finished_;
};

}  // namespace net
}  // namespace hypdb

#endif  // HYPDB_NET_HTTP_SERVER_H_
