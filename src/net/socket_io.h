// Socket send/recv helpers shared by the server and the clients — one
// place for chunk sizing, SIGPIPE suppression, and EINTR retries.

#ifndef HYPDB_NET_SOCKET_IO_H_
#define HYPDB_NET_SOCKET_IO_H_

#include <sys/socket.h>

#include <cerrno>
#include <string>

namespace hypdb {
namespace net {

/// send()s the whole buffer; false on any socket error. MSG_NOSIGNAL
/// keeps a peer that hung up from killing the process with SIGPIPE.
inline bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Appends up to 16 KiB more bytes from the socket. False on EOF, error,
/// or receive timeout (SO_RCVTIMEO).
inline bool ReadMore(int fd, std::string* buffer) {
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
    return true;
  }
}

}  // namespace net
}  // namespace hypdb

#endif  // HYPDB_NET_SOCKET_IO_H_
