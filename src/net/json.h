// Strict, dependency-free JSON for the wire protocol (RFC 8259 subset).
//
// JsonValue is a small tagged union (null / bool / int / double / string /
// array / object) with an insertion-ordered object representation so that
// serialization is deterministic: building the same value produces the
// same bytes, which is what lets the golden-digest tests pin the wire
// format. ParseJson is strict — it rejects trailing garbage, raw control
// characters in strings, lone surrogates, leading zeros, and nesting
// beyond a configurable depth — because every byte it accepts comes from
// an untrusted socket.
//
// The codecs below are the single rendering path between the service
// layer and any front-end: the HTTP server, the line-JSON protocol, and
// the hypdb_cli REPL all format reports and stats through them, so the
// surfaces cannot drift from each other.

#ifndef HYPDB_NET_JSON_H_
#define HYPDB_NET_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "service/hypdb_service.h"
#include "util/statusor.h"

namespace hypdb {
namespace net {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered members; Set() replaces an existing key in place.
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  static JsonValue Bool(bool v);
  static JsonValue Int(int64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string v);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  /// Exact integer value; meaningful only when is_int().
  int64_t int_value() const { return int_; }
  /// Numeric value of either number flavor (ints widen to double).
  double number_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }
  const Array& array() const { return array_; }
  Array& array() { return array_; }
  const Members& members() const { return members_; }
  Members& members() { return members_; }

  /// Array append / object set (replace-or-add). Chainable.
  JsonValue& Append(JsonValue v);
  JsonValue& Set(const std::string& key, JsonValue v);
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Structural equality; the two number flavors compare numerically, so
  /// a round trip that turns 5.0 into 5 still compares equal.
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Members members_;
};

struct JsonParseOptions {
  /// Maximum container nesting; parsing deeper input fails rather than
  /// recursing toward stack exhaustion on adversarial payloads.
  int max_depth = 64;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed). InvalidArgument with a byte offset on anything
/// malformed.
StatusOr<JsonValue> ParseJson(const std::string& text,
                              JsonParseOptions options = {});

/// Compact serialization (no insignificant whitespace). Doubles render
/// with %.17g so they round-trip bit-exactly; non-finite doubles (which
/// JSON cannot represent) render as null.
std::string SerializeJson(const JsonValue& value);

// ---- wire codecs: service types -> JSON --------------------------------

JsonValue ToJson(const CountEngineStats& stats);
JsonValue ToJson(const CacheOccupancy& cache);
JsonValue ToJson(const RequestStats& stats);
JsonValue ToJson(const DiscoveryReport& discovery);
JsonValue ToJson(const DiscoveryCacheStats& stats);
JsonValue ToJson(const DatasetInfo& info);
/// Stage-piece renderers — the same functions assemble the full report
/// body and the incremental session stage reports, so the two surfaces
/// cannot drift.
JsonValue ToJson(const QueryAnswers& answers);
JsonValue ToJson(const std::vector<ContextBias>& bias);
JsonValue ToJson(const ContextExplanation& explanation);
JsonValue ToJson(const ContextRewrite& rewrite);
/// A session's lifecycle/introspection row (stage table, counters, TTL
/// clocks) — the POST/GET /v1/sessions body.
JsonValue ToJson(const SessionInfo& info);
/// The full response body of an analysis: canonical digest, structured
/// answers/bias/discovery, the human-readable rendering, request stats.
JsonValue ToJson(const ServiceReport& report);
/// Incremental stage report of POST /v1/sessions/{id}/{stage}: session/
/// stage/reused/complete header, the advanced stage's payload (rendered
/// through the piece renderers above), the canonical digest once the
/// session is complete, and the request stats.
JsonValue SessionStageToJson(const ServiceReport& report);
/// {"code": "<stable name>", "message": ...} — the wire error convention.
JsonValue ErrorToJson(const Status& status);
/// Inverse of ErrorToJson: rebuilds the Status a peer sent (unrecognized
/// code names map to kInternal so no error is ever silently dropped).
Status StatusFromJson(const JsonValue& v);
/// Whole-service introspection (workers, discovery cache, per-dataset
/// engine stats) — the GET /v1/stats and REPL `stats` body.
JsonValue ServiceStatsToJson(const HypDbService& service);

/// One engine-deep trace event (util/trace.h TraceEventRecord) as the raw
/// line-JSON rendering used inside RequestStats "events": kind-specific
/// members (stage name / kernel tier) decoded from the packed args.
JsonValue TraceEventToJson(const TraceEventRecord& e);

/// The Chrome/Perfetto trace ("chrome://tracing") export of one request:
/// {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}.
/// The scheduler's synthetic stage tiling renders at tid 0 and the
/// engine-deep ring-buffer events at their recording thread's tid, both
/// on the submit-relative microsecond axis, so nested kernel/cache/CI
/// events sit visually inside their parent stage span.
JsonValue ChromeTraceJson(const RequestStats& stats);

/// The JSON flavor of GET /metrics (?format=json): one entry per metric
/// family with name/type/help and its samples; histogram samples carry
/// the raw bucket table plus extracted p50/p95/p99. The Prometheus text
/// flavor is RenderPrometheusText (util/metrics.h) — this renderer lives
/// in net because util cannot depend on the JSON library.
JsonValue MetricsToJson(const MetricsSnapshot& snapshot);

// ---- wire codecs: JSON -> commands -------------------------------------

/// An AnalyzeRequest plus its scheduler submit options as read off the
/// wire: {"dataset": ..., "sql": ..., "options"?: {...},
/// "deadline_seconds"?: N}. Unknown keys are rejected — a typoed option
/// silently ignored would analyze with the wrong configuration.
struct WireAnalyzeRequest {
  AnalyzeRequest request;
  SubmitOptions submit;
};
/// `base_options` (the service-wide analysis defaults) seed the
/// per-request override, so a request that sets only {"alpha": 0.05}
/// keeps every other default. Without an "options" member the request
/// carries no override at all.
StatusOr<WireAnalyzeRequest> AnalyzeRequestFromJson(
    const JsonValue& v, const HypDbOptions& base_options);

/// A dataset registration: {"name": ..., "csv": path} to load a file or
/// {"name": ..., "generator": kind} for a built-in generator (exactly one
/// of the two).
struct RegisterCommand {
  std::string name;
  std::string csv_path;
  std::string generator;
};
StatusOr<RegisterCommand> RegisterCommandFromJson(const JsonValue& v);

/// An ingest batch: {"name": ..., "rows": [["label", ...], ...]} — one
/// array of string labels per row, in the dataset's schema column order.
/// On the HTTP route (POST /v1/datasets/{name}/rows) the name comes from
/// the URL path, so a body "name" is optional there and must match the
/// path when present; the line-JSON "append" verb requires it.
struct AppendCommand {
  std::string name;
  std::vector<std::vector<std::string>> rows;
};
StatusOr<AppendCommand> AppendCommandFromJson(const JsonValue& v);

}  // namespace net
}  // namespace hypdb

#endif  // HYPDB_NET_JSON_H_
