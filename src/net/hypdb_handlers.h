// Endpoint routing: the HypDbService API as HTTP resources and line-JSON
// commands. Every route maps one-to-one onto a DatasetRegistry or
// QueryScheduler call, so the sharding, discovery coalescing, and
// same-key batching built for in-process callers apply unchanged to
// remote traffic.
//
//   POST   /v1/datasets        {"name","csv"|"generator"}  register
//   GET    /v1/datasets                                    list
//   POST   /v1/datasets/{name}/rows
//                              {"rows": [["label",...],...]}  append rows
//                              (schema column order; no epoch bump — 200
//                              with the new watermark, 400 on arity/
//                              schema mismatch, 404 unknown dataset)
//   POST   /v1/analyze         {"dataset","sql",...}       sync analyze
//   POST   /v1/submit          (same body)                 async -> ticket
//   GET    /v1/requests/{id}   poll; ?wait=1 blocks; a finished result is
//                              claimed by the GET that fetches it
//   DELETE /v1/requests/{id}   cancel a still-queued request (or request
//                              cooperative cancellation of a running
//                              session stage job)
//   GET    /v1/requests/{id}/trace
//                              engine-deep execution trace of a completed
//                              request; ?format=chrome (default) is a
//                              chrome://tracing / Perfetto JSON document,
//                              ?format=raw the RequestStats rendering.
//                              404 unknown/expired, 409 ran untraced
//   POST   /v1/sessions        (analyze body)  create a staged session
//   POST   /v1/sessions/{id}/{answers|discover|detect|explain|rewrite|
//          report}             advance one stage; body optional
//                              {"context": N, "deadline_seconds": X}
//   GET    /v1/sessions        list live sessions
//   GET    /v1/sessions/{id}   inspect (full report + digest once the
//                              session is complete)
//   DELETE /v1/sessions/{id}   close the session
//   GET    /v1/stats           cache/engine/worker/session introspection
//   GET    /healthz            readiness: ok/workers/uptime/datasets/
//                              queue_depth/sessions/simd + build identity
//                              (version/compiler/build_type) + per-dataset
//                              storage shape (rows/chunks/watermark)
//   GET    /metrics            Prometheus text exposition; ?format=json
//                              for the structured flavor (with p50/95/99)
//
// Errors are ErrorToJson bodies ({"code","message"}) with the HTTP status
// from HttpStatusForCode; expired/invalidated sessions answer 410 Gone,
// never-issued session ids 404. The line-JSON protocol carries the same
// payloads in an {"ok":bool, "result"|"error": ...} envelope, selected by
// a "cmd" member (register/append/datasets/analyze/submit/poll/wait/
// cancel/trace/session/step/sessions/session_info/session_close/stats/
// health).

#ifndef HYPDB_NET_HYPDB_HANDLERS_H_
#define HYPDB_NET_HYPDB_HANDLERS_H_

#include <string>

#include "net/http_server.h"
#include "net/json.h"
#include "service/hypdb_service.h"

namespace hypdb {
namespace net {

/// HTTP status for a Status code (kOk -> 200, kNotFound -> 404, ...).
int HttpStatusForCode(StatusCode code);

/// Builds the table of a named built-in generator
/// (berkeley|flight|adult|staples|cancer) — shared by the wire protocol
/// and the CLI so both accept the same names.
StatusOr<Table> GenerateNamedDataset(const std::string& kind);

/// Fan-in from both wire protocols onto one HypDbService. Thread-safe:
/// the service is, and the handlers' only mutable state is lock-free
/// route metrics.
class HypDbHandlers {
 public:
  explicit HypDbHandlers(HypDbService* service) : service_(service) {}

  /// The HttpServer HTTP callback. Wraps the routing with per-route
  /// status-class counters and a latency histogram; the counters are
  /// bumped AFTER the response body is built, so a GET /metrics scrape
  /// never counts itself in its own body — which is what lets CI assert
  /// exact counter consistency against the requests it issued.
  HttpResponse HandleHttp(const HttpRequest& request);
  /// The HttpServer line-JSON callback: one request line in, one
  /// response line out (envelope documented above). Counted under the
  /// "line" route.
  std::string HandleLine(const std::string& line);

  /// Registers hypdb_http_requests_total{route,status},
  /// hypdb_http_request_seconds{route} and hypdb_http_serialize_seconds.
  /// The handlers must outlive every scrape of `registry`.
  void RegisterMetrics(MetricsRegistry* registry) const;

 private:
  /// Stable route classes for metric labels — bounded cardinality, so a
  /// path scanner probing random URLs cannot mint unbounded series
  /// (everything unknown lands in kRouteOther).
  enum Route {
    kRouteHealthz,
    kRouteMetrics,
    kRouteStats,
    kRouteDatasets,
    kRouteAnalyze,
    kRouteSubmit,
    kRouteRequests,
    kRouteSessions,
    kRouteIngest,
    kRouteLine,
    kRouteOther,
    kNumRoutes
  };
  /// Per-route status-class counters + latency. Plain C array member:
  /// the atomics make RouteMetrics immovable.
  struct RouteMetrics {
    Counter ok;            // 2xx/3xx
    Counter client_error;  // 4xx
    Counter server_error;  // 5xx
    LatencyHistogram latency;
  };

  static Route ClassifyRoute(const std::string& target);
  /// The actual routing (the pre-metrics HandleHttp body).
  HttpResponse RouteHttp(const HttpRequest& request);

  /// Response builders; JsonResponse times SerializeJson into the
  /// hypdb_http_serialize_seconds histogram (serialization cannot appear
  /// as a trace span inside its own output).
  HttpResponse JsonResponse(int status, const JsonValue& body) const;
  HttpResponse ErrorResponse(const Status& status) const;
  HttpResponse ResultResponse(const StatusOr<JsonValue>& result) const;
  /// The readiness body shared by GET /healthz and the line "health"
  /// verb.
  JsonValue Healthz() const;

  /// Shared verb implementations; both protocols decode into these.
  StatusOr<JsonValue> Register(const JsonValue& body);
  /// Append rows to a dataset. `path_name` is the dataset from the URL
  /// path on the HTTP route (empty for the line verb, where the body
  /// carries "name"); a body name must match the path when both appear.
  StatusOr<JsonValue> Append(const JsonValue& body,
                             const std::string& path_name = "");
  StatusOr<JsonValue> Analyze(const JsonValue& body);
  StatusOr<JsonValue> Submit(const JsonValue& body);
  StatusOr<JsonValue> Poll(uint64_t ticket);
  StatusOr<JsonValue> WaitFor(uint64_t ticket);
  StatusOr<JsonValue> Cancel(uint64_t ticket);
  /// The retained trace of a completed request, rendered as a Chrome
  /// trace document (`chrome` true) or the raw RequestStats body.
  StatusOr<JsonValue> RequestTrace(uint64_t ticket, bool chrome);
  StatusOr<JsonValue> SessionCreate(const JsonValue& body);
  StatusOr<JsonValue> SessionStep(uint64_t session, const std::string& stage,
                                  const JsonValue& body);
  StatusOr<JsonValue> SessionInspect(uint64_t session);
  StatusOr<JsonValue> SessionClose(uint64_t session);
  JsonValue SessionList();

  HypDbService* service_;
  mutable RouteMetrics routes_[kNumRoutes];
  mutable LatencyHistogram serialize_;
};

}  // namespace net
}  // namespace hypdb

#endif  // HYPDB_NET_HYPDB_HANDLERS_H_
