#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "net/socket_io.h"
#include "util/string_util.h"

namespace hypdb {
namespace net {
namespace {

constexpr int kRecvTimeoutSeconds = 120;  // outlasts any analysis we run

StatusOr<int> OpenConnection(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid server address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError(StrFormat("connect %s:%d: %s", host.c_str(),
                                     port, error.c_str()));
  }
  timeval timeout{};
  timeout.tv_sec = kRecvTimeoutSeconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// 2xx bodies parse into the value; anything else decodes the error body.
StatusOr<JsonValue> DecodeJsonResult(const HttpResult& result) {
  HYPDB_ASSIGN_OR_RETURN(JsonValue body, ParseJson(result.body));
  if (result.status >= 200 && result.status < 300) return body;
  return StatusFromJson(body);
}

}  // namespace

// ---- HttpClient ---------------------------------------------------------

Status HttpClient::Connect() {
  Close();
  HYPDB_ASSIGN_OR_RETURN(fd_, OpenConnection(host_, port_));
  buffer_.clear();
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<HttpResult> HttpClient::RequestOnce(const std::string& wire,
                                             bool* received_bytes) {
  *received_bytes = false;
  if (!SendAll(fd_, wire)) {
    return Status::IoError("send failed (connection lost)");
  }
  // Response head.
  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (!ReadMore(fd_, &buffer_)) {
      return Status::IoError("connection closed mid-response");
    }
    *received_bytes = true;
  }
  const std::string head = buffer_.substr(0, head_end);
  std::vector<std::string> lines = Split(head, '\n');
  for (std::string& l : lines) {
    if (!l.empty() && l.back() == '\r') l.pop_back();
  }
  const std::vector<std::string> status_line =
      Split(lines.empty() ? "" : lines[0], ' ');
  if (status_line.size() < 2 || status_line[0].rfind("HTTP/1.", 0) != 0) {
    return Status::IoError("malformed HTTP status line: " +
                           (lines.empty() ? "" : lines[0]));
  }
  HttpResult result;
  result.status = std::atoi(status_line[1].c_str());

  int64_t content_length = 0;
  bool server_closes = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;
    const std::string name = ToLower(Trim(lines[i].substr(0, colon)));
    const std::string value = Trim(lines[i].substr(colon + 1));
    if (name == "content-length") {
      content_length = std::strtoll(value.c_str(), nullptr, 10);
    } else if (name == "connection" && ToLower(value) == "close") {
      server_closes = true;
    }
  }

  buffer_.erase(0, head_end + 4);
  while (static_cast<int64_t>(buffer_.size()) < content_length) {
    if (!ReadMore(fd_, &buffer_)) {
      return Status::IoError("connection closed mid-body");
    }
  }
  result.body = buffer_.substr(0, static_cast<size_t>(content_length));
  buffer_.erase(0, static_cast<size_t>(content_length));
  if (server_closes) Close();
  return result;
}

StatusOr<HttpResult> HttpClient::Request(const std::string& method,
                                         const std::string& target,
                                         const std::string& body) {
  std::string wire = StrFormat(
      "%s %s HTTP/1.1\r\n"
      "Host: %s:%d\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: %zu\r\n\r\n",
      method.c_str(), target.c_str(), host_.c_str(), port_, body.size());
  wire += body;

  const bool reused = fd_ >= 0;
  if (!reused) HYPDB_RETURN_IF_ERROR(Connect());
  bool received_bytes = false;
  StatusOr<HttpResult> result = RequestOnce(wire, &received_bytes);
  if (!result.ok() && reused && !received_bytes) {
    // The server may have idle-closed the kept-alive connection between
    // calls; one fresh-connection retry distinguishes that from a down
    // server. Only when NO response bytes arrived: a failure
    // mid-response means the server already executed the (possibly
    // non-idempotent) request, and re-sending would run it twice.
    HYPDB_RETURN_IF_ERROR(Connect());
    result = RequestOnce(wire, &received_bytes);
  }
  if (!result.ok()) Close();
  return result;
}

StatusOr<JsonValue> HttpClient::Get(const std::string& target) {
  HYPDB_ASSIGN_OR_RETURN(HttpResult result, Request("GET", target));
  return DecodeJsonResult(result);
}

StatusOr<JsonValue> HttpClient::Post(const std::string& target,
                                     const JsonValue& body) {
  HYPDB_ASSIGN_OR_RETURN(HttpResult result,
                         Request("POST", target, SerializeJson(body)));
  return DecodeJsonResult(result);
}

StatusOr<JsonValue> HttpClient::Delete(const std::string& target) {
  HYPDB_ASSIGN_OR_RETURN(HttpResult result, Request("DELETE", target));
  return DecodeJsonResult(result);
}

// ---- LineClient ---------------------------------------------------------

Status LineClient::Connect() {
  Close();
  HYPDB_ASSIGN_OR_RETURN(fd_, OpenConnection(host_, port_));
  buffer_.clear();
  return Status::Ok();
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<std::string> LineClient::CallRaw(const std::string& line) {
  const std::string wire = line + "\n";
  const bool reused = fd_ >= 0;
  if (!reused) HYPDB_RETURN_IF_ERROR(Connect());
  bool received_bytes = false;
  const auto exchange = [&]() -> StatusOr<std::string> {
    received_bytes = false;
    if (!SendAll(fd_, wire)) {
      return Status::IoError("send failed (connection lost)");
    }
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      if (!ReadMore(fd_, &buffer_)) {
        return Status::IoError("connection closed before a response line");
      }
      received_bytes = true;
    }
    std::string response = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    if (!response.empty() && response.back() == '\r') response.pop_back();
    return response;
  };
  StatusOr<std::string> result = exchange();
  if (!result.ok() && reused && !received_bytes) {
    // Same retry rule as HttpClient::Request: a reused connection that
    // died yielding no response byte was idle-closed before this request
    // was processed; anything later is not safely re-sendable.
    HYPDB_RETURN_IF_ERROR(Connect());
    result = exchange();
  }
  if (!result.ok()) Close();
  return result;
}

StatusOr<JsonValue> LineClient::Call(const JsonValue& request) {
  HYPDB_ASSIGN_OR_RETURN(std::string line, CallRaw(SerializeJson(request)));
  HYPDB_ASSIGN_OR_RETURN(JsonValue envelope, ParseJson(line));
  const JsonValue* ok = envelope.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::Internal("malformed envelope: " + line);
  }
  if (!ok->bool_value()) {
    const JsonValue* error = envelope.Find("error");
    if (error == nullptr) {
      return Status::Internal("error envelope without error: " + line);
    }
    return StatusFromJson(*error);
  }
  const JsonValue* result = envelope.Find("result");
  if (result == nullptr) {
    return Status::Internal("ok envelope without result: " + line);
  }
  return *result;
}

}  // namespace net
}  // namespace hypdb
