#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "net/socket_io.h"
#include "util/string_util.h"

namespace hypdb {
namespace net {

const std::string* HttpRequest::Header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

bool SendResponse(int fd, const HttpResponse& response, bool keep_alive,
                  HttpServerMetrics* metrics) {
  std::string head = StrFormat(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: %s\r\n\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size(),
      keep_alive ? "keep-alive" : "close");
  head += response.body;
  const bool ok = SendAll(fd, head);
  if (ok) metrics->bytes_written.Add(static_cast<int64_t>(head.size()));
  return ok;
}

bool IsHttpMethodToken(const std::string& method) {
  if (method.empty() || method.size() > 16) return false;
  for (const char c : method) {
    if (c < 'A' || c > 'Z') return false;
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(HttpHandler http, LineHandler line,
                       HttpServerOptions options)
    : http_(std::move(http)), line_(std::move(line)),
      options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid bind address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(StrFormat("bind/listen %s:%d: %s",
                                     options_.host.c_str(), options_.port,
                                     error.c_str()));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Waking the acceptor and every blocked reader makes join() prompt.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  // No new threads spawn once the acceptor is gone; drain the rest.
  std::list<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
    finished_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    // Captured immediately: the joins below make syscalls that clobber
    // errno before the error branch reads it.
    const int accept_errno = fd < 0 ? errno : 0;
    std::unique_lock<std::mutex> lock(mu_);
    // Reap connection threads that finished since the last accept.
    for (auto it : finished_) {
      if (it->joinable()) it->join();
      threads_.erase(it);
    }
    finished_.clear();
    if (stopping_) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (accept_errno == EINTR || accept_errno == ECONNABORTED) continue;
      if (accept_errno == EMFILE || accept_errno == ENFILE ||
          accept_errno == ENOMEM || accept_errno == ENOBUFS) {
        // Resource exhaustion is transient (connections close, fds
        // free); a permanently dead acceptor would strand the server.
        // Back off briefly instead of spinning on the error.
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      return;  // listener broken (e.g. closed); Stop() tears down
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      lock.unlock();
      metrics_.connections_rejected.Add();
      SendResponse(fd, {503, "application/json",
                        "{\"code\":\"unavailable\",\"message\":"
                        "\"connection limit reached\"}"},
                   /*keep_alive=*/false, &metrics_);
      ::close(fd);
      continue;
    }
    timeval timeout{};
    timeout.tv_sec = options_.idle_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    metrics_.connections_accepted.Add();
    connections_.insert(fd);
    threads_.emplace_back();
    const auto slot = std::prev(threads_.end());
    *slot = std::thread([this, fd, slot] {
      ServeConnection(fd);
      {
        // Untrack strictly BEFORE closing: if the kernel reuses this fd
        // number for a new connection the moment it is closed, a
        // close-then-erase order would erase the new connection's entry
        // and leave it unreachable for Stop().
        std::lock_guard<std::mutex> done(mu_);
        connections_.erase(fd);
      }
      ::close(fd);
      std::lock_guard<std::mutex> done(mu_);
      finished_.push_back(slot);
    });
  }
}

// The caller (the connection thread in AcceptLoop) closes fd after
// untracking it.
void HttpServer::ServeConnection(int fd) {
  // Protocol sniff: serialized JSON starts with '{'; no HTTP method does,
  // so one peeked byte picks the framing for the connection's lifetime.
  char first = 0;
  const ssize_t peeked = ::recv(fd, &first, 1, MSG_PEEK);
  if (peeked != 1) return;
  std::string buffer;
  if (first == '{') {
    ServeLines(fd, &buffer);
  } else {
    ServeHttp(fd, &buffer);
  }
}

void HttpServer::ServeLines(int fd, std::string* buffer) {
  size_t scanned = 0;  // bytes already searched for '\n'
  for (;;) {
    const size_t newline = buffer->find('\n', scanned);
    if (newline == std::string::npos) {
      scanned = buffer->size();  // only new bytes need searching
      if (static_cast<int64_t>(buffer->size()) > options_.max_body_bytes) {
        metrics_.parse_rejects.Add();
        const std::string error =
            "{\"ok\":false,\"error\":{\"code\":\"invalid_argument\","
            "\"message\":\"line exceeds the size limit\"}}\n";
        if (SendAll(fd, error)) {
          metrics_.bytes_written.Add(static_cast<int64_t>(error.size()));
        }
        return;
      }
      if (!ReadMoreCounted(fd, buffer)) return;  // EOF/error/idle timeout
      continue;
    }
    std::string request = buffer->substr(0, newline);
    buffer->erase(0, newline + 1);
    scanned = 0;
    if (!request.empty() && request.back() == '\r') request.pop_back();
    if (Trim(request).empty()) continue;  // blank lines are keep-alives
    metrics_.line_requests.Add();
    const std::string response = line_(request) + "\n";
    if (!SendAll(fd, response)) return;
    metrics_.bytes_written.Add(static_cast<int64_t>(response.size()));
  }
}

void HttpServer::ServeHttp(int fd, std::string* buffer) {
  for (;;) {
    // Read the request head (request line + headers). The search resumes
    // where the previous read left off (minus the 3 bytes a split
    // delimiter can straddle) instead of rescanning the whole buffer.
    size_t head_end;
    size_t scanned = 0;
    while ((head_end = buffer->find("\r\n\r\n", scanned)) ==
           std::string::npos) {
      scanned = buffer->size() < 3 ? 0 : buffer->size() - 3;
      if (static_cast<int64_t>(buffer->size()) > options_.max_header_bytes) {
        metrics_.parse_rejects.Add();
        SendResponse(fd, {400, "application/json",
                          "{\"code\":\"invalid_argument\",\"message\":"
                          "\"request head exceeds the size limit\"}"},
                     false, &metrics_);
        return;
      }
      if (!ReadMoreCounted(fd, buffer)) return;  // EOF/error/idle timeout
    }

    HttpRequest request;
    bool keep_alive = true;
    {
      const std::string head = buffer->substr(0, head_end);
      std::vector<std::string> lines = Split(head, '\n');
      for (std::string& l : lines) {
        if (!l.empty() && l.back() == '\r') l.pop_back();
      }
      // Request line: METHOD SP TARGET SP HTTP/1.x
      std::vector<std::string> parts = Split(lines.empty() ? "" : lines[0],
                                             ' ');
      if (parts.size() != 3 || !IsHttpMethodToken(parts[0]) ||
          parts[1].empty() || parts[1][0] != '/' ||
          (parts[2] != "HTTP/1.1" && parts[2] != "HTTP/1.0")) {
        metrics_.parse_rejects.Add();
        SendResponse(fd, {400, "application/json",
                          "{\"code\":\"invalid_argument\",\"message\":"
                          "\"malformed request line\"}"},
                     false, &metrics_);
        return;
      }
      request.method = parts[0];
      request.target = parts[1];
      keep_alive = parts[2] == "HTTP/1.1";  // 1.0 defaults to close

      for (size_t i = 1; i < lines.size(); ++i) {
        const size_t colon = lines[i].find(':');
        if (colon == std::string::npos || colon == 0) {
          metrics_.parse_rejects.Add();
          SendResponse(fd, {400, "application/json",
                            "{\"code\":\"invalid_argument\",\"message\":"
                            "\"malformed header line\"}"},
                       false, &metrics_);
          return;
        }
        request.headers.emplace_back(
            ToLower(Trim(lines[i].substr(0, colon))),
            Trim(lines[i].substr(colon + 1)));
      }
    }

    if (const std::string* connection = request.Header("connection")) {
      const std::string value = ToLower(*connection);
      if (value == "close") keep_alive = false;
      if (value == "keep-alive") keep_alive = true;
    }
    if (request.Header("transfer-encoding") != nullptr) {
      // A well-formed request for an unsupported feature — not counted
      // as a parse reject.
      SendResponse(fd, {501, "application/json",
                        "{\"code\":\"unimplemented\",\"message\":"
                        "\"chunked transfer encoding not supported\"}"},
                   false, &metrics_);
      return;
    }

    // Body framing: Content-Length only.
    int64_t content_length = 0;
    if (const std::string* header = request.Header("content-length")) {
      if (header->empty() ||
          header->find_first_not_of("0123456789") != std::string::npos) {
        metrics_.parse_rejects.Add();
        SendResponse(fd, {400, "application/json",
                          "{\"code\":\"invalid_argument\",\"message\":"
                          "\"malformed content-length\"}"},
                     false, &metrics_);
        return;
      }
      errno = 0;
      content_length = std::strtoll(header->c_str(), nullptr, 10);
      if (errno != 0 || content_length > options_.max_body_bytes) {
        metrics_.parse_rejects.Add();
        SendResponse(fd, {413, "application/json",
                          "{\"code\":\"invalid_argument\",\"message\":"
                          "\"body exceeds the size limit\"}"},
                     false, &metrics_);
        return;
      }
    } else if (request.method == "POST" || request.method == "PUT") {
      metrics_.parse_rejects.Add();
      SendResponse(fd, {411, "application/json",
                        "{\"code\":\"invalid_argument\",\"message\":"
                        "\"content-length required\"}"},
                   false, &metrics_);
      return;
    }

    buffer->erase(0, head_end + 4);
    while (static_cast<int64_t>(buffer->size()) < content_length) {
      if (!ReadMoreCounted(fd, buffer)) return;
    }
    request.body = buffer->substr(0, static_cast<size_t>(content_length));
    buffer->erase(0, static_cast<size_t>(content_length));

    metrics_.http_requests.Add();
    if (!SendResponse(fd, http_(request), keep_alive, &metrics_)) return;
    if (!keep_alive) return;
  }
}

bool HttpServer::ReadMoreCounted(int fd, std::string* buffer) {
  const size_t before = buffer->size();
  if (!ReadMore(fd, buffer)) return false;
  metrics_.bytes_read.Add(static_cast<int64_t>(buffer->size() - before));
  return true;
}

int64_t HttpServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(connections_.size());
}

void HttpServer::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounter("hypdb_http_connections_accepted_total",
                            "TCP connections accepted and served.", {},
                            &metrics_.connections_accepted);
  registry->RegisterCounter(
      "hypdb_http_connections_rejected_total",
      "Connections answered 503 over the connection limit.", {},
      &metrics_.connections_rejected);
  registry->RegisterGaugeFn(
      "hypdb_http_connections_active",
      "Connections currently being served.", {},
      [this] { return static_cast<double>(active_connections()); });
  registry->RegisterCounter("hypdb_http_requests_parsed_total",
                            "HTTP requests fully parsed and dispatched.",
                            {}, &metrics_.http_requests);
  registry->RegisterCounter("hypdb_line_requests_total",
                            "Line-JSON requests dispatched.", {},
                            &metrics_.line_requests);
  registry->RegisterCounter(
      "hypdb_http_parse_rejects_total",
      "Requests rejected for malformed framing (4xx before routing).", {},
      &metrics_.parse_rejects);
  registry->RegisterCounter("hypdb_http_bytes_read_total",
                            "Bytes received from clients.", {},
                            &metrics_.bytes_read);
  registry->RegisterCounter("hypdb_http_bytes_written_total",
                            "Bytes sent to clients.", {},
                            &metrics_.bytes_written);
}

}  // namespace net
}  // namespace hypdb
