#include "net/json.h"

#include <cmath>
#include <cstdlib>

#include "service/report_digest.h"
#include "util/string_util.h"

namespace hypdb {
namespace net {

// ---- JsonValue ----------------------------------------------------------

JsonValue JsonValue::Bool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::Int(int64_t v) {
  JsonValue out;
  out.type_ = Type::kInt;
  out.int_ = v;
  return out;
}

JsonValue JsonValue::Double(double v) {
  JsonValue out;
  out.type_ = Type::kDouble;
  out.double_ = v;
  return out;
}

JsonValue JsonValue::Str(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray() {
  JsonValue out;
  out.type_ = Type::kArray;
  return out;
}

JsonValue JsonValue::MakeObject() {
  JsonValue out;
  out.type_ = Type::kObject;
  return out;
}

JsonValue& JsonValue::Append(JsonValue v) {
  array_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (is_number() && other.is_number()) {
    if (type_ == Type::kInt && other.type_ == Type::kInt) {
      return int_ == other.int_;
    }
    return number_value() == other.number_value();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
    case Type::kDouble:
      return true;  // handled above
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return members_ == other.members_;
  }
  return false;
}

// ---- parser -------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    HYPDB_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        return ParseString(out);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = JsonValue::Bool(true);
      return Status::Ok();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = JsonValue::Bool(false);
      return Status::Ok();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = JsonValue();
      return Status::Ok();
    }
    return Error("invalid literal (expected true/false/null)");
  }

  Status ParseObject(JsonValue* out, int depth) {
    if (depth >= max_depth_) return Error("nesting exceeds the depth limit");
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a quoted object key");
      }
      JsonValue key;
      HYPDB_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      JsonValue value;
      HYPDB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      // Last duplicate wins, matching Set(); strictness here would reject
      // inputs most ecosystems accept.
      out->Set(key.string_value(), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    if (depth >= max_depth_) return Error("nesting exceeds the depth limit");
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      HYPDB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  Status AppendUtf8(std::string* s, uint32_t cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return Status::Ok();
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  Status ParseString(JsonValue* out) {
    ++pos_;  // '"'
    std::string s;
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        *out = JsonValue::Str(std::move(s));
        return Status::Ok();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        s.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          HYPDB_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (!(Consume('\\') && Consume('u'))) {
              return Error("high surrogate not followed by \\u escape");
            }
            HYPDB_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("high surrogate not followed by low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          HYPDB_RETURN_IF_ERROR(AppendUtf8(&s, cp));
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // fallthrough to digits
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        return Error("leading zero in number");
      }
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        *out = JsonValue::Int(static_cast<int64_t>(v));
        return Status::Ok();
      }
      // Out of int64 range: fall back to double precision.
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') return Error("invalid number");
    if (!std::isfinite(v)) return Error("number out of double range");
    *out = JsonValue::Double(v);
    return Status::Ok();
  }

  const std::string& text_;
  const int max_depth_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text,
                              JsonParseOptions options) {
  return Parser(text, options.max_depth).Parse();
}

// ---- serializer ---------------------------------------------------------

namespace {

void SerializeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(raw);  // UTF-8 bytes pass through
        }
    }
  }
  out->push_back('"');
}

void SerializeValue(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      return;
    case JsonValue::Type::kBool:
      *out += v.bool_value() ? "true" : "false";
      return;
    case JsonValue::Type::kInt:
      *out += StrFormat("%lld", static_cast<long long>(v.int_value()));
      return;
    case JsonValue::Type::kDouble: {
      const double d = v.number_value();
      if (!std::isfinite(d)) {
        *out += "null";  // JSON has no NaN/Inf
      } else {
        *out += StrFormat("%.17g", d);
      }
      return;
    }
    case JsonValue::Type::kString:
      SerializeString(v.string_value(), out);
      return;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.array()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeValue(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& member : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeString(member.first, out);
        out->push_back(':');
        SerializeValue(member.second, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

std::string SerializeJson(const JsonValue& value) {
  std::string out;
  SerializeValue(value, &out);
  return out;
}

// ---- service types -> JSON ----------------------------------------------

namespace {

JsonValue StringsToJson(const std::vector<std::string>& strings) {
  JsonValue out = JsonValue::MakeArray();
  for (const std::string& s : strings) out.Append(JsonValue::Str(s));
  return out;
}

JsonValue BalanceToJson(const BalanceTest& b) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("variables", StringsToJson(b.variables));
  out.Set("statistic", JsonValue::Double(b.ci.statistic));
  out.Set("p_value", JsonValue::Double(b.ci.p_value));
  out.Set("p_adjusted", JsonValue::Double(b.p_adjusted));
  out.Set("biased", JsonValue::Bool(b.biased));
  out.Set("biased_fdr", JsonValue::Bool(b.biased_fdr));
  return out;
}

}  // namespace

JsonValue ToJson(const CountEngineStats& stats) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("queries", JsonValue::Int(stats.queries));
  out.Set("scans", JsonValue::Int(stats.scans));
  out.Set("cache_hits", JsonValue::Int(stats.cache_hits));
  out.Set("marginalizations", JsonValue::Int(stats.marginalizations));
  out.Set("predicate_slices", JsonValue::Int(stats.predicate_slices));
  out.Set("cube_hits", JsonValue::Int(stats.cube_hits));
  out.Set("fallback_calls", JsonValue::Int(stats.fallback_calls));
  out.Set("evictions", JsonValue::Int(stats.evictions));
  out.Set("delta_patches", JsonValue::Int(stats.delta_patches));
  out.Set("chunk_scans", JsonValue::Int(stats.chunk_scans));
  out.Set("chunks_skipped", JsonValue::Int(stats.chunks_skipped));
  out.Set("rows_scanned", JsonValue::Int(stats.rows_scanned));
  return out;
}

namespace {

// Chrome-trace category per event kind: groups the timeline rows and
// lets Perfetto filter by family.
const char* TraceEventCategory(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kStage: return "stage";
    case TraceEventKind::kKernelScan:
    case TraceEventKind::kMorselBatch: return "kernel";
    case TraceEventKind::kCiTest:
    case TraceEventKind::kDiscoveryWait:
    case TraceEventKind::kDiscoveryHit:
    case TraceEventKind::kDiscoveryCompute: return "discovery";
    case TraceEventKind::kCacheHit:
    case TraceEventKind::kCacheMiss:
    case TraceEventKind::kCacheMarginalize:
    case TraceEventKind::kCacheEvict:
    case TraceEventKind::kCachePrefetch: return "cache";
    case TraceEventKind::kSliceServe:
    case TraceEventKind::kSliceFallback: return "slice";
    case TraceEventKind::kIngestAppend:
    case TraceEventKind::kDeltaPatch:
    case TraceEventKind::kChunkScan: return "ingest";
    case TraceEventKind::kNone: break;
  }
  return "other";
}

bool TraceEventIsSpan(TraceEventKind kind) {
  return kind == TraceEventKind::kStage ||
         kind == TraceEventKind::kKernelScan ||
         kind == TraceEventKind::kCiTest ||
         kind == TraceEventKind::kDiscoveryWait ||
         kind == TraceEventKind::kIngestAppend ||
         kind == TraceEventKind::kDeltaPatch ||
         kind == TraceEventKind::kChunkScan;
}

}  // namespace

JsonValue TraceEventToJson(const TraceEventRecord& e) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("event", JsonValue::Str(TraceEventKindName(e.kind)));
  out.Set("thread", JsonValue::Int(static_cast<int64_t>(e.thread_id)));
  out.Set("start_seconds", JsonValue::Double(e.start_seconds));
  out.Set("seconds", JsonValue::Double(e.dur_seconds));
  switch (e.kind) {
    case TraceEventKind::kStage:
      out.Set("name", JsonValue::Str(e.arg0 < kNumTraceStages
                                         ? TraceStageName(
                                               static_cast<TraceStage>(e.arg0))
                                         : "unknown"));
      out.Set("arg", JsonValue::Int(static_cast<int64_t>(e.arg1)));
      break;
    case TraceEventKind::kKernelScan:
      out.Set("tier",
              JsonValue::Str(e.arg0 < 3 ? TraceKernelTierName(
                                              static_cast<TraceKernelTier>(
                                                  e.arg0))
                                        : "unknown"));
      out.Set("rows", JsonValue::Int(static_cast<int64_t>(e.arg1)));
      break;
    default:
      out.Set("arg0", JsonValue::Int(static_cast<int64_t>(e.arg0)));
      out.Set("arg1", JsonValue::Int(static_cast<int64_t>(e.arg1)));
      break;
  }
  return out;
}

JsonValue ChromeTraceJson(const RequestStats& stats) {
  JsonValue events = JsonValue::MakeArray();
  // The scheduler-side timeline (queue + stage tiling) renders as
  // pid 1 / tid 0 "X" spans, so the synthetic and engine-deep views sit
  // side by side on one clock (both axes are submit-relative seconds).
  for (const TraceSpan& span : stats.trace) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("name", JsonValue::Str(span.name));
    e.Set("cat", JsonValue::Str("timeline"));
    e.Set("ph", JsonValue::Str("X"));
    e.Set("ts", JsonValue::Double(span.start_seconds * 1e6));
    e.Set("dur", JsonValue::Double(span.seconds * 1e6));
    e.Set("pid", JsonValue::Int(1));
    e.Set("tid", JsonValue::Int(0));
    events.Append(std::move(e));
  }
  for (const TraceEventRecord& rec : stats.events) {
    JsonValue e = JsonValue::MakeObject();
    std::string name = TraceEventKindName(rec.kind);
    JsonValue args = JsonValue::MakeObject();
    switch (rec.kind) {
      case TraceEventKind::kStage:
        name = rec.arg0 < kNumTraceStages
                   ? TraceStageName(static_cast<TraceStage>(rec.arg0))
                   : "unknown_stage";
        args.Set("arg", JsonValue::Int(static_cast<int64_t>(rec.arg1)));
        break;
      case TraceEventKind::kKernelScan:
        args.Set("tier", JsonValue::Str(
                             rec.arg0 < 3
                                 ? TraceKernelTierName(
                                       static_cast<TraceKernelTier>(rec.arg0))
                                 : "unknown"));
        args.Set("rows", JsonValue::Int(static_cast<int64_t>(rec.arg1)));
        break;
      default:
        args.Set("arg0", JsonValue::Int(static_cast<int64_t>(rec.arg0)));
        args.Set("arg1", JsonValue::Int(static_cast<int64_t>(rec.arg1)));
        break;
    }
    e.Set("name", JsonValue::Str(std::move(name)));
    e.Set("cat", JsonValue::Str(TraceEventCategory(rec.kind)));
    if (TraceEventIsSpan(rec.kind)) {
      e.Set("ph", JsonValue::Str("X"));
      e.Set("ts", JsonValue::Double(rec.start_seconds * 1e6));
      e.Set("dur", JsonValue::Double(rec.dur_seconds * 1e6));
    } else {
      e.Set("ph", JsonValue::Str("i"));
      e.Set("ts", JsonValue::Double(rec.start_seconds * 1e6));
      e.Set("s", JsonValue::Str("t"));
    }
    e.Set("pid", JsonValue::Int(1));
    e.Set("tid", JsonValue::Int(static_cast<int64_t>(rec.thread_id)));
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", JsonValue::Str("ms"));
  JsonValue other = JsonValue::MakeObject();
  other.Set("ticket", JsonValue::Int(static_cast<int64_t>(stats.ticket)));
  other.Set("trace_level", JsonValue::Int(stats.trace_level));
  other.Set("queue_seconds", JsonValue::Double(stats.queue_seconds));
  other.Set("run_seconds", JsonValue::Double(stats.run_seconds));
  out.Set("otherData", std::move(other));
  return out;
}

JsonValue ToJson(const RequestStats& stats) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ticket", JsonValue::Int(static_cast<int64_t>(stats.ticket)));
  out.Set("worker", JsonValue::Int(stats.worker_id));
  out.Set("queue_seconds", JsonValue::Double(stats.queue_seconds));
  out.Set("run_seconds", JsonValue::Double(stats.run_seconds));
  out.Set("discovery",
          JsonValue::Str(stats.discovery_coalesced ? "coalesced"
                         : stats.discovery_reused  ? "cached"
                                                   : "computed"));
  // Only when a batch union prefetch actually covered this request —
  // absent otherwise, so the un-planned wire format stays byte-stable.
  if (stats.union_prefetched) {
    out.Set("union_prefetched", JsonValue::Bool(true));
  }
  out.Set("engine_delta", ToJson(stats.engine_delta));
  // Trace timeline: where the latency went, spans in execution order on
  // the submit-relative axis. Serialization cannot be a span in its own
  // response; it is measured into the hypdb_http_serialize_seconds
  // histogram instead.
  JsonValue trace = JsonValue::MakeArray();
  for (const TraceSpan& span : stats.trace) {
    JsonValue s = JsonValue::MakeObject();
    s.Set("span", JsonValue::Str(span.name));
    s.Set("start_seconds", JsonValue::Double(span.start_seconds));
    s.Set("seconds", JsonValue::Double(span.seconds));
    trace.Append(std::move(s));
  }
  out.Set("trace", std::move(trace));
  // Engine-deep ring events — only for traced requests, so the wire
  // format of untraced (trace_level 0) requests stays byte-stable with
  // the pre-tracing protocol.
  if (stats.trace_level > 0) {
    out.Set("trace_level", JsonValue::Int(stats.trace_level));
    JsonValue events = JsonValue::MakeArray();
    for (const TraceEventRecord& e : stats.events) {
      events.Append(TraceEventToJson(e));
    }
    out.Set("events", std::move(events));
  }
  // Session stage jobs only — absent members keep the analyze-path wire
  // format (and its golden digests) byte-stable.
  if (stats.session_id != 0) {
    out.Set("session",
            JsonValue::Int(static_cast<int64_t>(stats.session_id)));
    out.Set("stage", JsonValue::Str(stats.stage));
    out.Set("stage_reused", JsonValue::Bool(stats.stage_reused));
    out.Set("session_complete", JsonValue::Bool(stats.session_complete));
  }
  return out;
}

JsonValue ToJson(const DiscoveryReport& discovery) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("covariates", StringsToJson(discovery.covariates));
  out.Set("mediators", StringsToJson(discovery.mediators));
  out.Set("dropped_fd", StringsToJson(discovery.dropped_fd));
  out.Set("dropped_keys", StringsToJson(discovery.dropped_keys));
  out.Set("covariates_fell_back",
          JsonValue::Bool(discovery.covariates_fell_back));
  out.Set("mediators_fell_back",
          JsonValue::Bool(discovery.mediators_fell_back));
  out.Set("tests_used", JsonValue::Int(discovery.tests_used));
  return out;
}

JsonValue ToJson(const DiscoveryCacheStats& stats) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("hits", JsonValue::Int(stats.hits));
  out.Set("misses", JsonValue::Int(stats.misses));
  out.Set("coalesced", JsonValue::Int(stats.coalesced));
  out.Set("invalidations", JsonValue::Int(stats.invalidations));
  out.Set("evictions", JsonValue::Int(stats.evictions));
  out.Set("stale_refreshes", JsonValue::Int(stats.stale_refreshes));
  return out;
}

JsonValue ToJson(const DatasetInfo& info) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue::Str(info.name));
  out.Set("epoch", JsonValue::Int(info.epoch));
  out.Set("rows", JsonValue::Int(info.rows));
  out.Set("columns", JsonValue::Int(info.columns));
  out.Set("shards", JsonValue::Int(info.shards));
  out.Set("chunks", JsonValue::Int(info.chunks));
  out.Set("watermark", JsonValue::Int(info.watermark));
  out.Set("cache", ToJson(info.cache));
  out.Set("cube_cells", JsonValue::Int(info.cube_cells));
  out.Set("cache_hit_ratio", JsonValue::Double(info.cache_hit_ratio));
  out.Set("evictions", JsonValue::Int(info.evictions));
  return out;
}

JsonValue ToJson(const CacheOccupancy& cache) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("cached_cells", JsonValue::Int(cache.cached_cells));
  out.Set("pinned_cells", JsonValue::Int(cache.pinned_cells));
  out.Set("budget_cells", JsonValue::Int(cache.budget_cells));
  out.Set("entries", JsonValue::Int(cache.entries));
  return out;
}

JsonValue ToJson(const QueryAnswers& plain) {
  JsonValue answers = JsonValue::MakeObject();
  answers.Set("outcomes", StringsToJson(plain.outcome_names));
  JsonValue contexts = JsonValue::MakeArray();
  for (const auto& ctx : plain.contexts) {
    JsonValue c = JsonValue::MakeObject();
    c.Set("context", StringsToJson(ctx.context_labels));
    JsonValue groups = JsonValue::MakeArray();
    for (const auto& g : ctx.groups) {
      JsonValue group = JsonValue::MakeObject();
      group.Set("treatment", JsonValue::Str(g.treatment_label));
      group.Set("rows", JsonValue::Int(g.count));
      JsonValue averages = JsonValue::MakeArray();
      for (double a : g.averages) averages.Append(JsonValue::Double(a));
      group.Set("averages", std::move(averages));
      groups.Append(std::move(group));
    }
    c.Set("groups", std::move(groups));
    contexts.Append(std::move(c));
  }
  answers.Set("contexts", std::move(contexts));
  return answers;
}

JsonValue ToJson(const std::vector<ContextBias>& bias) {
  JsonValue out = JsonValue::MakeArray();
  for (const auto& b : bias) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("context", StringsToJson(b.context_labels));
    entry.Set("rows", JsonValue::Int(b.rows));
    entry.Set("total", BalanceToJson(b.total));
    if (b.has_direct) entry.Set("direct", BalanceToJson(b.direct));
    out.Append(std::move(entry));
  }
  return out;
}

JsonValue ToJson(const ContextExplanation& explanation) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("context", StringsToJson(explanation.context_labels));
  JsonValue coarse = JsonValue::MakeArray();
  for (const auto& r : explanation.coarse) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("attribute", JsonValue::Str(r.attribute));
    entry.Set("responsibility", JsonValue::Double(r.rho));
    coarse.Append(std::move(entry));
  }
  out.Set("coarse", std::move(coarse));
  JsonValue fine = JsonValue::MakeArray();
  for (const auto& f : explanation.fine) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("covariate", JsonValue::Str(f.covariate));
    JsonValue triples = JsonValue::MakeArray();
    for (const auto& t : f.top) {
      JsonValue triple = JsonValue::MakeObject();
      triple.Set("rank", JsonValue::Int(t.borda_rank));
      triple.Set("t", JsonValue::Str(t.t_label));
      triple.Set("y", JsonValue::Str(t.y_label));
      triple.Set("z", JsonValue::Str(t.z_label));
      triple.Set("kappa_tz", JsonValue::Double(t.kappa_tz));
      triple.Set("kappa_yz", JsonValue::Double(t.kappa_yz));
      triples.Append(std::move(triple));
    }
    entry.Set("top", std::move(triples));
    fine.Append(std::move(entry));
  }
  out.Set("fine", std::move(fine));
  return out;
}

namespace {

JsonValue AdjustedGroupsToJson(const std::vector<AdjustedGroup>& groups) {
  JsonValue out = JsonValue::MakeArray();
  for (const auto& g : groups) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("treatment", JsonValue::Str(g.treatment_label));
    entry.Set("rows", JsonValue::Int(g.rows));
    JsonValue means = JsonValue::MakeArray();
    for (double m : g.means) means.Append(JsonValue::Double(m));
    entry.Set("means", std::move(means));
    out.Append(std::move(entry));
  }
  return out;
}

JsonValue CiResultsToJson(const std::vector<CiResult>& results) {
  JsonValue out = JsonValue::MakeArray();
  for (const auto& r : results) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("statistic", JsonValue::Double(r.statistic));
    entry.Set("p_value", JsonValue::Double(r.p_value));
    out.Append(std::move(entry));
  }
  return out;
}

}  // namespace

JsonValue ToJson(const ContextRewrite& rewrite) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("context", StringsToJson(rewrite.context_labels));
  out.Set("rows", JsonValue::Int(rewrite.rows));
  out.Set("total", AdjustedGroupsToJson(rewrite.total));
  out.Set("blocks_seen", JsonValue::Int(rewrite.blocks_seen));
  out.Set("blocks_used", JsonValue::Int(rewrite.blocks_used));
  if (rewrite.has_direct) {
    out.Set("direct", AdjustedGroupsToJson(rewrite.direct));
    out.Set("direct_reference", JsonValue::Str(rewrite.direct_reference));
  }
  out.Set("plain_sig", CiResultsToJson(rewrite.plain_sig));
  out.Set("total_sig", CiResultsToJson(rewrite.total_sig));
  out.Set("direct_sig", CiResultsToJson(rewrite.direct_sig));
  return out;
}

JsonValue ToJson(const SessionInfo& info) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("session", JsonValue::Int(static_cast<int64_t>(info.id)));
  out.Set("dataset", JsonValue::Str(info.dataset));
  out.Set("epoch", JsonValue::Int(info.epoch));
  out.Set("sql", JsonValue::Str(info.sql));
  out.Set("complete", JsonValue::Bool(info.complete));
  out.Set("contexts", JsonValue::Int(info.contexts));
  out.Set("age_seconds", JsonValue::Double(info.age_seconds));
  out.Set("idle_seconds", JsonValue::Double(info.idle_seconds));
  JsonValue stages = JsonValue::MakeArray();
  for (const auto& s : info.stages) {
    JsonValue stage = JsonValue::MakeObject();
    stage.Set("stage", JsonValue::Str(s.stage));
    stage.Set("done", JsonValue::Bool(s.done));
    stage.Set("runs", JsonValue::Int(s.runs));
    stage.Set("reuses", JsonValue::Int(s.reuses));
    stage.Set("seconds", JsonValue::Double(s.seconds));
    stages.Append(std::move(stage));
  }
  out.Set("stages", std::move(stages));
  return out;
}

JsonValue ToJson(const ServiceReport& report) {
  const HypDbReport& r = report.report;
  JsonValue out = JsonValue::MakeObject();
  out.Set("digest", JsonValue::Str(CanonicalReportDigest(r)));
  out.Set("any_bias", JsonValue::Bool(r.AnyBias()));

  JsonValue sql = JsonValue::MakeObject();
  sql.Set("plain", JsonValue::Str(r.sql_plain));
  sql.Set("total", JsonValue::Str(r.sql_total));
  sql.Set("direct", JsonValue::Str(r.sql_direct));
  out.Set("sql", std::move(sql));

  out.Set("discovery", ToJson(r.discovery));
  out.Set("answers", ToJson(r.plain));
  out.Set("bias", ToJson(r.bias));

  out.Set("rendered", JsonValue::Str(RenderReport(r)));
  out.Set("stats", ToJson(report.stats));
  return out;
}

JsonValue SessionStageToJson(const ServiceReport& report) {
  const HypDbReport& r = report.report;
  const RequestStats& stats = report.stats;
  JsonValue out = JsonValue::MakeObject();
  out.Set("session",
          JsonValue::Int(static_cast<int64_t>(stats.session_id)));
  out.Set("stage", JsonValue::Str(stats.stage));
  out.Set("reused", JsonValue::Bool(stats.stage_reused));
  out.Set("complete", JsonValue::Bool(stats.session_complete));

  // The advanced stage's payload, through the same piece renderers the
  // full report body uses.
  if (stats.stage == "answers") {
    out.Set("answers", ToJson(r.plain));
  } else if (stats.stage == "discover") {
    out.Set("discovery", ToJson(r.discovery));
    JsonValue sql = JsonValue::MakeObject();
    sql.Set("plain", JsonValue::Str(r.sql_plain));
    sql.Set("total", JsonValue::Str(r.sql_total));
    sql.Set("direct", JsonValue::Str(r.sql_direct));
    out.Set("sql", std::move(sql));
  } else if (stats.stage == "detect") {
    out.Set("bias", ToJson(r.bias));
    out.Set("any_bias", JsonValue::Bool(r.AnyBias()));
  } else if (stats.stage == "explain") {
    if (report.stage_explanation.has_value()) {
      out.Set("explanation", ToJson(*report.stage_explanation));
    } else {
      JsonValue explanations = JsonValue::MakeArray();
      for (const auto& e : r.explanations) explanations.Append(ToJson(e));
      out.Set("explanations", std::move(explanations));
    }
  } else if (stats.stage == "rewrite") {
    if (report.stage_rewrite.has_value()) {
      out.Set("rewrite", ToJson(*report.stage_rewrite));
    } else {
      JsonValue rewrites = JsonValue::MakeArray();
      for (const auto& rw : r.rewrites) rewrites.Append(ToJson(rw));
      out.Set("rewrites", std::move(rewrites));
    }
  }
  // Once every stage has run, the snapshot is the full report: publish
  // the canonical digest so any client can check bit-identity against
  // the one-shot /v1/analyze path.
  if (stats.session_complete) {
    out.Set("digest", JsonValue::Str(CanonicalReportDigest(r)));
    out.Set("any_bias", JsonValue::Bool(r.AnyBias()));
  }
  out.Set("stats", ToJson(stats));
  return out;
}

JsonValue ErrorToJson(const Status& status) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("code", JsonValue::Str(StatusCodeName(status.code())));
  out.Set("message", JsonValue::Str(status.message()));
  return out;
}

Status StatusFromJson(const JsonValue& v) {
  const JsonValue* code = v.Find("code");
  const JsonValue* message = v.Find("message");
  const std::string text =
      message != nullptr && message->is_string() ? message->string_value()
                                                 : SerializeJson(v);
  if (code == nullptr || !code->is_string()) {
    return Status::Internal("malformed wire error: " + SerializeJson(v));
  }
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument, StatusCode::kNotFound,
      StatusCode::kOutOfRange,      StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented,   StatusCode::kInternal,
      StatusCode::kIoError,         StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded, StatusCode::kGone};
  for (const StatusCode c : kCodes) {
    if (code->string_value() == StatusCodeName(c)) return Status(c, text);
  }
  return Status::Internal(code->string_value() + ": " + text);
}

JsonValue ServiceStatsToJson(const HypDbService& service) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("workers", JsonValue::Int(service.num_workers()));
  out.Set("sessions", JsonValue::Int(service.num_sessions()));
  out.Set("discovery_cache", ToJson(service.discovery_stats()));
  JsonValue datasets = JsonValue::MakeArray();
  for (const DatasetInfo& info : service.Datasets()) {
    JsonValue entry = ToJson(info);
    auto engine = service.engine_stats(info.name);
    if (engine.ok()) entry.Set("engine", ToJson(*engine));
    datasets.Append(std::move(entry));
  }
  out.Set("datasets", std::move(datasets));
  return out;
}

JsonValue MetricsToJson(const MetricsSnapshot& snapshot) {
  JsonValue families = JsonValue::MakeArray();
  for (const auto& family : snapshot.families) {
    JsonValue f = JsonValue::MakeObject();
    f.Set("name", JsonValue::Str(family.name));
    switch (family.type) {
      case MetricType::kCounter:
        f.Set("type", JsonValue::Str("counter"));
        break;
      case MetricType::kGauge:
        f.Set("type", JsonValue::Str("gauge"));
        break;
      case MetricType::kHistogram:
        f.Set("type", JsonValue::Str("histogram"));
        break;
    }
    f.Set("help", JsonValue::Str(family.help));
    JsonValue samples = JsonValue::MakeArray();
    for (const auto& sample : family.samples) {
      JsonValue s = JsonValue::MakeObject();
      if (!sample.labels.empty()) {
        JsonValue labels = JsonValue::MakeObject();
        for (const auto& [name, value] : sample.labels) {
          labels.Set(name, JsonValue::Str(value));
        }
        s.Set("labels", std::move(labels));
      }
      if (family.type == MetricType::kHistogram) {
        const HistogramSnapshot& h = sample.histogram;
        s.Set("count", JsonValue::Int(h.count));
        s.Set("sum_seconds", JsonValue::Double(h.sum_seconds));
        s.Set("p50", JsonValue::Double(h.Quantile(0.50)));
        s.Set("p95", JsonValue::Double(h.Quantile(0.95)));
        s.Set("p99", JsonValue::Double(h.Quantile(0.99)));
        // Raw (non-cumulative) buckets; `le` as a string because JSON
        // has no +Inf. Empty buckets are skipped to keep scrapes small.
        JsonValue buckets = JsonValue::MakeArray();
        for (size_t i = 0; i < h.counts.size(); ++i) {
          if (h.counts[i] == 0) continue;
          JsonValue b = JsonValue::MakeObject();
          const double bound = h.upper_bounds[i];
          b.Set("le", JsonValue::Str(std::isinf(bound)
                                         ? "+Inf"
                                         : StrFormat("%.17g", bound)));
          b.Set("count", JsonValue::Int(h.counts[i]));
          buckets.Append(std::move(b));
        }
        s.Set("buckets", std::move(buckets));
      } else if (sample.value == std::floor(sample.value) &&
                 std::fabs(sample.value) < 1e15) {
        s.Set("value",
              JsonValue::Int(static_cast<int64_t>(sample.value)));
      } else {
        s.Set("value", JsonValue::Double(sample.value));
      }
      samples.Append(std::move(s));
    }
    f.Set("samples", std::move(samples));
    families.Append(std::move(f));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("families", std::move(families));
  return out;
}

// ---- JSON -> commands ---------------------------------------------------

namespace {

Status ExpectObject(const JsonValue& v, const char* what) {
  if (!v.is_object()) {
    return Status::InvalidArgument(StrFormat("%s must be a JSON object",
                                             what));
  }
  return Status::Ok();
}

/// Applies the "options" override object onto `options`. Strict: unknown
/// keys and wrong types are errors, never silently dropped.
Status ApplyOptionOverrides(const JsonValue& overrides,
                            HypDbOptions* options) {
  HYPDB_RETURN_IF_ERROR(ExpectObject(overrides, "\"options\""));
  for (const auto& [key, value] : overrides.members()) {
    if (key == "alpha" && value.is_number()) {
      options->alpha = value.number_value();
    } else if (key == "discover_mediators" && value.is_bool()) {
      options->discover_mediators = value.bool_value();
    } else if (key == "compute_significance" && value.is_bool()) {
      options->compute_significance = value.bool_value();
    } else if (key == "apply_fd_filter" && value.is_bool()) {
      options->apply_fd_filter = value.bool_value();
    } else if (key == "seed" && value.is_int()) {
      options->seed = static_cast<uint64_t>(value.int_value());
    } else if (key == "scan_threads" && value.is_int()) {
      options->engine.scan_threads = static_cast<int>(value.int_value());
    } else if (key == "scan_morsel_rows" && value.is_int()) {
      options->engine.scan_morsel_rows = value.int_value();
    } else if (key == "scan_simd" && value.is_bool()) {
      options->engine.scan_simd = value.bool_value();
    } else if (key == "direct_reference" && value.is_string()) {
      options->direct_reference = value.string_value();
    } else if (key == "materialization" && value.is_string()) {
      HYPDB_ASSIGN_OR_RETURN(
          options->engine.materialization,
          ParseMaterializationMode(value.string_value()));
    } else {
      return Status::InvalidArgument(
          "unknown or mistyped analysis option \"" + key + "\"");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<WireAnalyzeRequest> AnalyzeRequestFromJson(
    const JsonValue& v, const HypDbOptions& base_options) {
  HYPDB_RETURN_IF_ERROR(ExpectObject(v, "analyze request"));
  WireAnalyzeRequest out;
  bool saw_dataset = false;
  bool saw_sql = false;
  for (const auto& [key, value] : v.members()) {
    if (key == "cmd") continue;  // line-JSON envelope member
    if (key == "dataset" && value.is_string()) {
      out.request.dataset = value.string_value();
      saw_dataset = true;
    } else if (key == "sql" && value.is_string()) {
      out.request.sql = value.string_value();
      saw_sql = true;
    } else if (key == "options") {
      HypDbOptions options = base_options;
      HYPDB_RETURN_IF_ERROR(ApplyOptionOverrides(value, &options));
      out.request.options = options;
    } else if (key == "deadline_seconds" && value.is_number()) {
      out.submit.deadline_seconds = value.number_value();
    } else if (key == "trace_level" && value.is_int()) {
      const int64_t level = value.int_value();
      if (level < 0 || level > 2) {
        return Status::InvalidArgument(
            "trace_level must be 0 (off), 1 (stages/kernel/cache) or 2 "
            "(deep)");
      }
      out.submit.trace_level = static_cast<int>(level);
    } else {
      return Status::InvalidArgument(
          "unknown or mistyped analyze-request member \"" + key + "\"");
    }
  }
  if (!saw_dataset || !saw_sql) {
    return Status::InvalidArgument(
        "analyze request requires string members \"dataset\" and \"sql\"");
  }
  return out;
}

StatusOr<RegisterCommand> RegisterCommandFromJson(const JsonValue& v) {
  HYPDB_RETURN_IF_ERROR(ExpectObject(v, "register request"));
  RegisterCommand out;
  for (const auto& [key, value] : v.members()) {
    if (key == "cmd") continue;  // line-JSON envelope member
    if (key == "name" && value.is_string()) {
      out.name = value.string_value();
    } else if (key == "csv" && value.is_string()) {
      out.csv_path = value.string_value();
    } else if (key == "generator" && value.is_string()) {
      out.generator = value.string_value();
    } else {
      return Status::InvalidArgument(
          "unknown or mistyped register member \"" + key + "\"");
    }
  }
  if (out.name.empty()) {
    return Status::InvalidArgument(
        "register request requires a non-empty \"name\"");
  }
  if (out.csv_path.empty() == out.generator.empty()) {
    return Status::InvalidArgument(
        "register request requires exactly one of \"csv\" or \"generator\"");
  }
  return out;
}

StatusOr<AppendCommand> AppendCommandFromJson(const JsonValue& v) {
  HYPDB_RETURN_IF_ERROR(ExpectObject(v, "append request"));
  AppendCommand out;
  bool saw_rows = false;
  for (const auto& [key, value] : v.members()) {
    if (key == "cmd") continue;  // line-JSON envelope member
    if (key == "name" && value.is_string()) {
      out.name = value.string_value();
    } else if (key == "rows" && value.is_array()) {
      saw_rows = true;
      out.rows.reserve(value.array().size());
      for (const JsonValue& row : value.array()) {
        if (!row.is_array()) {
          return Status::InvalidArgument(
              "\"rows\" must be an array of rows, each an array of string "
              "labels in schema column order");
        }
        std::vector<std::string> labels;
        labels.reserve(row.array().size());
        for (const JsonValue& label : row.array()) {
          if (!label.is_string()) {
            return Status::InvalidArgument(
                "row labels must be strings (dictionary codes are assigned "
                "server-side)");
          }
          labels.push_back(label.string_value());
        }
        out.rows.push_back(std::move(labels));
      }
    } else {
      return Status::InvalidArgument(
          "unknown or mistyped append member \"" + key + "\"");
    }
  }
  if (!saw_rows) {
    return Status::InvalidArgument(
        "append request requires a \"rows\" array");
  }
  return out;
}

}  // namespace net
}  // namespace hypdb
