#include "engine/groupby_kernel.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "engine/groupby_simd.h"
#include "util/trace.h"

namespace hypdb {
namespace {

// splitmix64 finalizer — enough mixing for packed keys, cheap enough for
// the per-row hot loop.
inline uint64_t HashKey(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Open-addressing (linear probe) key -> count map. Keys are tuple codes,
// always < 2^62, so ~0 serves as the empty sentinel.
class OpenHashCounter {
 public:
  explicit OpenHashCounter(size_t expected) {
    size_t cap = 64;
    while (cap < expected * 2) cap <<= 1;
    keys_.assign(cap, kEmpty);
    counts_.assign(cap, 0);
  }

  void Add(uint64_t key, int64_t count) {
    AddHashed(key, HashKey(key), count);
  }

  void AddHashed(uint64_t key, uint64_t hash, int64_t count) {
    size_t mask = keys_.size() - 1;
    size_t i = hash & mask;
    for (;;) {
      if (keys_[i] == key) {
        counts_[i] += count;
        return;
      }
      if (keys_[i] == kEmpty) {
        keys_[i] = key;
        counts_[i] = count;
        if (++size_ * 10 > keys_.size() * 7) Grow();
        return;
      }
      i = (i + 1) & mask;
    }
  }

  /// Inserts a batch of (key, precomputed hash) with +1 each, prefetching
  /// the probe window a few entries ahead — hash aggregation over large
  /// domains is bound by the random bucket access, not the arithmetic.
  void AddBatch(const uint64_t* keys, const uint64_t* hashes, int64_t n) {
    constexpr int64_t kAhead = 16;
    for (int64_t i = 0; i < n; ++i) {
      if (i + kAhead < n) {
        const size_t j = hashes[i + kAhead] & (keys_.size() - 1);
        __builtin_prefetch(&keys_[j], 0, 1);
        __builtin_prefetch(&counts_[j], 1, 1);
      }
      AddHashed(keys[i], hashes[i], 1);
    }
  }

  /// Grows capacity up front so `expected` entries insert without any
  /// intermediate rehash (merge targets are sized from the sum of the
  /// partial counters' sizes — an upper bound on distinct keys).
  void Reserve(size_t expected) {
    size_t cap = keys_.size();
    while (expected * 10 > cap * 7) cap <<= 1;
    if (cap != keys_.size()) Rehash(cap);
  }

  size_t size() const { return size_; }

  /// Appends the occupied (key, count) pairs, unsorted.
  void Drain(std::vector<uint64_t>* keys, std::vector<int64_t>* counts) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) {
        keys->push_back(keys_[i]);
        counts->push_back(counts_[i]);
      }
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) fn(keys_[i], counts_[i]);
    }
  }

  void MergeInto(OpenHashCounter* other) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) other->Add(keys_[i], counts_[i]);
    }
  }

 private:
  static constexpr uint64_t kEmpty = ~0ull;

  void Grow() { Rehash(keys_.size() * 2); }

  void Rehash(size_t cap) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int64_t> old_counts = std::move(counts_);
    keys_.assign(cap, kEmpty);
    counts_.assign(cap, 0);
    size_t mask = keys_.size() - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      size_t j = HashKey(old_keys[i]) & mask;
      while (keys_[j] != kEmpty) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      counts_[j] = old_counts[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<int64_t> counts_;
  size_t size_ = 0;
};

// Resolves options.num_threads against the machine and the row count
// (shared by the reference and vectorized paths so their parallel
// cut-over points agree).
int ResolveThreads(const GroupByKernelOptions& options, int64_t n) {
  int threads = options.num_threads;
  if (threads == 0) {
    // 0 = "use the machine": hardware_concurrency, floored at 1 because
    // the standard allows it to return 0 when undetectable.
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  if (threads > 1 && n < threads * options.parallel_min_rows) {
    threads = static_cast<int>(std::max<int64_t>(
        1, n / std::max<int64_t>(options.parallel_min_rows, 1)));
  }
  return std::max(threads, 1);
}

// ---- reference kernel ------------------------------------------------------
//
// The pre-vectorization implementation, kept verbatim: a mixed-radix
// multiply-add key loop over fixed-partition threads. It is the baseline
// the kernel benchmark measures speedups against and the cross-check the
// property test sweeps the new kernels over.

// Pre-resolved scan state: raw code pointers + codec strides, so the inner
// loop never touches Column or TableView.
struct RowEncoder {
  std::vector<const int32_t*> codes;
  std::vector<uint64_t> strides;
  const int64_t* ids = nullptr;  // null = contiguous physical rows

  uint64_t Key(int64_t i) const {
    const int64_t r = ids != nullptr ? ids[i] : i;
    uint64_t key = 0;
    for (size_t j = 0; j < codes.size(); ++j) {
      key += static_cast<uint64_t>(codes[j][r]) * strides[j];
    }
    return key;
  }
};

// Splits [0, n) into `parts` contiguous chunks; returns boundaries.
std::vector<int64_t> ChunkBounds(int64_t n, int parts) {
  std::vector<int64_t> bounds(parts + 1, 0);
  for (int p = 0; p <= parts; ++p) bounds[p] = n * p / parts;
  return bounds;
}

StatusOr<GroupCounts> ReferenceScanCounts(const TableView& view,
                                          const std::vector<int>& cols,
                                          const GroupByKernelOptions& options) {
  GroupCounts out;
  HYPDB_ASSIGN_OR_RETURN(out.codec, TupleCodec::Create(view.table(), cols));
  const int64_t n = view.NumRows();
  out.total = n;

  RowEncoder enc;
  enc.codes.reserve(cols.size());
  for (int c : cols) enc.codes.push_back(view.table().column(c).codes().data());
  enc.strides = out.codec.strides();
  enc.ids = view.row_ids() != nullptr ? view.row_ids()->data() : nullptr;

  const int threads = ResolveThreads(options, n);

  const uint64_t domain = out.codec.Domain();
  const bool dense =
      domain <= 1u << 20 &&
      domain <= static_cast<uint64_t>(std::max<int64_t>(n * 4, 1024));

  if (dense) {
    std::vector<int64_t> totals(domain, 0);
    if (threads <= 1) {
      for (int64_t i = 0; i < n; ++i) ++totals[enc.Key(i)];
    } else {
      std::vector<int64_t> bounds = ChunkBounds(n, threads);
      std::vector<std::vector<int64_t>> partial(
          threads, std::vector<int64_t>(domain, 0));
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          std::vector<int64_t>& local = partial[t];
          for (int64_t i = bounds[t]; i < bounds[t + 1]; ++i) {
            ++local[enc.Key(i)];
          }
        });
      }
      for (auto& w : workers) w.join();
      for (int t = 0; t < threads; ++t) {
        for (uint64_t k = 0; k < domain; ++k) totals[k] += partial[t][k];
      }
    }
    for (uint64_t k = 0; k < domain; ++k) {
      if (totals[k] > 0) {
        out.keys.push_back(k);
        out.counts.push_back(totals[k]);
      }
    }
    return out;
  }

  const size_t expected =
      static_cast<size_t>(std::min<int64_t>(n, 1 << 16));
  OpenHashCounter agg(expected);
  if (threads <= 1) {
    for (int64_t i = 0; i < n; ++i) agg.Add(enc.Key(i), 1);
  } else {
    std::vector<int64_t> bounds = ChunkBounds(n, threads);
    std::vector<OpenHashCounter> partial(
        threads, OpenHashCounter(expected / threads + 64));
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        OpenHashCounter& local = partial[t];
        for (int64_t i = bounds[t]; i < bounds[t + 1]; ++i) {
          local.Add(enc.Key(i), 1);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (const OpenHashCounter& p : partial) p.MergeInto(&agg);
  }
  out.keys.reserve(agg.size());
  out.counts.reserve(agg.size());
  agg.Drain(&out.keys, &out.counts);
  SortCountsByKey(&out.keys, &out.counts);
  return out;
}

// ---- vectorized kernel -----------------------------------------------------

// Per-call scan state for the bit-packed kernels: the first
// kMaxSpecializedArity columns land in PackedColumns (the layout the
// specialized/SIMD kernels consume); the full vectors serve generic
// arities and the mixed-radix fallback.
struct ScanShape {
  PackedColumns packed;
  std::vector<const int32_t*> codes;
  std::vector<int> shifts;
  std::vector<uint64_t> strides;
  const int64_t* ids = nullptr;
  int arity = 0;
  // Packed-key domain when bit-packing applies, UINT64_MAX otherwise —
  // the tiny-domain kernel test reads this.
  uint64_t packed_domain = ~uint64_t{0};
};

ScanShape ResolveShape(const TableView& view, const std::vector<int>& cols,
                       const TupleCodec& codec) {
  ScanShape s;
  s.arity = static_cast<int>(cols.size());
  s.codes.reserve(cols.size());
  for (int c : cols) s.codes.push_back(view.table().column(c).codes().data());
  s.shifts = codec.shifts();
  s.strides = codec.strides();
  s.ids = view.row_ids() != nullptr ? view.row_ids()->data() : nullptr;
  if (codec.CanBitPack()) s.packed_domain = codec.PackedDomain();
  for (int j = 0; j < std::min(s.arity, kMaxSpecializedArity); ++j) {
    s.packed.codes[j] = s.codes[j];
    s.packed.shifts[j] = s.shifts[j];
  }
  return s;
}

// Scalar twins of the SIMD kernels (same signatures, same table layout):
// the always-compiled fallback for SIMD-less builds and CPUs.

template <int A>
void DenseAccumulateScalar(const PackedColumns& cols, int64_t begin,
                           int64_t end, uint32_t* counts) {
  for (int64_t i = begin; i < end; ++i) {
    uint64_t key = static_cast<uint32_t>(cols.codes[0][i]);
    if constexpr (A >= 2) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[1][i]))
             << cols.shifts[1];
    }
    if constexpr (A >= 3) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[2][i]))
             << cols.shifts[2];
    }
    if constexpr (A >= 4) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[3][i]))
             << cols.shifts[3];
    }
    ++counts[key];
  }
}

template <int A>
void PackKeysScalar(const PackedColumns& cols, int64_t begin, int64_t end,
                    uint64_t* out) {
  for (int64_t i = begin; i < end; ++i, ++out) {
    uint64_t key = static_cast<uint32_t>(cols.codes[0][i]);
    if constexpr (A >= 2) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[1][i]))
             << cols.shifts[1];
    }
    if constexpr (A >= 3) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[2][i]))
             << cols.shifts[2];
    }
    if constexpr (A >= 4) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[3][i]))
             << cols.shifts[3];
    }
    *out = key;
  }
}

constexpr GroupBySimdKernels kScalarKernels = {
    {nullptr, &DenseAccumulateScalar<1>, &DenseAccumulateScalar<2>,
     &DenseAccumulateScalar<3>, &DenseAccumulateScalar<4>},
    {nullptr, &PackKeysScalar<1>, &PackKeysScalar<2>, &PackKeysScalar<3>,
     &PackKeysScalar<4>},
};

// The AVX2 table when compiled in AND supported by this CPU, else null.
const GroupBySimdKernels* RuntimeSimdTable() {
  static const GroupBySimdKernels* table = [] {
    const GroupBySimdKernels* t = nullptr;
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2")) t = Avx2KernelTable();
#endif
    return t;
  }();
  return table;
}

// Specialized scalar kernels for row_ids indirection (filtered views):
// the gather dominates, so these stay scalar — morsel parallelism is the
// lever there — but the arity unrolls and packed shifts still apply.
template <int A>
void DenseAccumulateIds(const PackedColumns& cols, const int64_t* ids,
                        int64_t begin, int64_t end, uint32_t* counts) {
  for (int64_t i = begin; i < end; ++i) {
    const int64_t r = ids[i];
    uint64_t key = static_cast<uint32_t>(cols.codes[0][r]);
    if constexpr (A >= 2) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[1][r]))
             << cols.shifts[1];
    }
    if constexpr (A >= 3) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[2][r]))
             << cols.shifts[2];
    }
    if constexpr (A >= 4) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[3][r]))
             << cols.shifts[3];
    }
    ++counts[key];
  }
}

template <int A>
void PackKeysIds(const PackedColumns& cols, const int64_t* ids,
                 int64_t begin, int64_t end, uint64_t* out) {
  for (int64_t i = begin; i < end; ++i, ++out) {
    const int64_t r = ids[i];
    uint64_t key = static_cast<uint32_t>(cols.codes[0][r]);
    if constexpr (A >= 2) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[1][r]))
             << cols.shifts[1];
    }
    if constexpr (A >= 3) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[2][r]))
             << cols.shifts[2];
    }
    if constexpr (A >= 4) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[3][r]))
             << cols.shifts[3];
    }
    *out = key;
  }
}

// Generic (arity > kMaxSpecializedArity) packed-key loops.
void DenseAccumulateGeneric(const ScanShape& s, int64_t begin, int64_t end,
                            uint32_t* counts) {
  for (int64_t i = begin; i < end; ++i) {
    const int64_t r = s.ids != nullptr ? s.ids[i] : i;
    uint64_t key = 0;
    for (int j = 0; j < s.arity; ++j) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(s.codes[j][r]))
             << s.shifts[j];
    }
    ++counts[key];
  }
}

void PackKeysGeneric(const ScanShape& s, int64_t begin, int64_t end,
                     uint64_t* out) {
  for (int64_t i = begin; i < end; ++i, ++out) {
    const int64_t r = s.ids != nullptr ? s.ids[i] : i;
    uint64_t key = 0;
    for (int j = 0; j < s.arity; ++j) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(s.codes[j][r]))
             << s.shifts[j];
    }
    *out = key;
  }
}

// Mixed-radix keys for domains whose packed width exceeds 62 bits (the
// bit-pack fast path does not apply; keys must stay canonical).
void MixedRadixKeys(const ScanShape& s, int64_t begin, int64_t end,
                    uint64_t* out) {
  for (int64_t i = begin; i < end; ++i, ++out) {
    const int64_t r = s.ids != nullptr ? s.ids[i] : i;
    uint64_t key = 0;
    for (int j = 0; j < s.arity; ++j) {
      key += static_cast<uint64_t>(s.codes[j][r]) * s.strides[j];
    }
    *out = key;
  }
}

// Dense accumulation over one morsel, dispatched by (indirection, arity,
// SIMD availability).
void AccumulateDenseMorsel(const ScanShape& s, const GroupBySimdKernels* simd,
                           int64_t begin, int64_t end, uint32_t* counts) {
  if (s.arity > kMaxSpecializedArity) {
    DenseAccumulateGeneric(s, begin, end, counts);
    return;
  }
  if (s.ids != nullptr) {
    switch (s.arity) {
      case 1: DenseAccumulateIds<1>(s.packed, s.ids, begin, end, counts); break;
      case 2: DenseAccumulateIds<2>(s.packed, s.ids, begin, end, counts); break;
      case 3: DenseAccumulateIds<3>(s.packed, s.ids, begin, end, counts); break;
      default: DenseAccumulateIds<4>(s.packed, s.ids, begin, end, counts);
    }
    return;
  }
  const GroupBySimdKernels& table = simd != nullptr ? *simd : kScalarKernels;
  if (s.packed_domain <= kTinyDomainMax &&
      table.dense_accumulate_tiny[s.arity] != nullptr) {
    table.dense_accumulate_tiny[s.arity](s.packed, begin, end, counts);
    return;
  }
  table.dense_accumulate[s.arity](s.packed, begin, end, counts);
}

// Packed keys for one batch, dispatched the same way.
void PackKeysBatch(const ScanShape& s, const GroupBySimdKernels* simd,
                   bool packable, int64_t begin, int64_t end, uint64_t* out) {
  if (!packable) {
    MixedRadixKeys(s, begin, end, out);
    return;
  }
  if (s.arity > kMaxSpecializedArity) {
    PackKeysGeneric(s, begin, end, out);
    return;
  }
  if (s.ids != nullptr) {
    switch (s.arity) {
      case 1: PackKeysIds<1>(s.packed, s.ids, begin, end, out); break;
      case 2: PackKeysIds<2>(s.packed, s.ids, begin, end, out); break;
      case 3: PackKeysIds<3>(s.packed, s.ids, begin, end, out); break;
      default: PackKeysIds<4>(s.packed, s.ids, begin, end, out);
    }
    return;
  }
  const GroupBySimdKernels& table = simd != nullptr ? *simd : kScalarKernels;
  table.pack_keys[s.arity](s.packed, begin, end, out);
}

// Hash aggregation over one morsel: keys are packed in vectorized batches,
// hashed, then probed with the bucket for key i+16 prefetched — the
// "vectorized linear-probe batch" shape.
void HashAccumulateMorsel(const ScanShape& s, const GroupBySimdKernels* simd,
                          bool packable, int64_t begin, int64_t end,
                          OpenHashCounter* counter) {
  constexpr int64_t kBatch = 1024;
  uint64_t keys[kBatch];
  uint64_t hashes[kBatch];
  for (int64_t b = begin; b < end; b += kBatch) {
    const int64_t m = std::min(kBatch, end - b);
    PackKeysBatch(s, simd, packable, b, b + m, keys);
    for (int64_t i = 0; i < m; ++i) hashes[i] = HashKey(keys[i]);
    counter->AddBatch(keys, hashes, m);
  }
}

// Process-wide morsel dispatch count, surfaced as
// hypdb_engine_morsels_total. Per-morsel relaxed add: the cursor
// fetch_add on the same cache-line cadence already dominates.
std::atomic<int64_t> g_morsels_dispatched{0};

// Morsel-driven scheduling: an atomic cursor hands out contiguous row
// ranges; `work(worker, begin, end)` runs on `threads` workers (worker 0
// is the calling thread). Skewed per-row costs (filtered views, cold
// pages) balance automatically — no fixed partition to get stuck behind.
template <typename Work>
void RunMorsels(int64_t n, int64_t morsel, int threads, Work&& work) {
  std::atomic<int64_t> cursor{0};
  // Captured by value into the spawned workers: trace attribution (and
  // the per-morsel deep-level instants) follows the request across the
  // thread boundary. Worker 0 runs on the calling thread, which already
  // carries the context; re-installing the same one is harmless.
  const TraceContext trace_ctx = CurrentTraceContext();
  auto loop = [&, trace_ctx](int t) {
    TraceContextScope trace_scope(trace_ctx);
    for (;;) {
      const int64_t begin = cursor.fetch_add(morsel,
                                             std::memory_order_relaxed);
      if (begin >= n) break;
      g_morsels_dispatched.fetch_add(1, std::memory_order_relaxed);
      TraceInstant(TraceEventKind::kMorselBatch, 2,
                   static_cast<uint64_t>(begin),
                   static_cast<uint64_t>(std::min(begin + morsel, n) -
                                         begin));
      work(t, begin, std::min(begin + morsel, n));
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (int t = 1; t < threads; ++t) workers.emplace_back(loop, t);
  loop(0);
  for (auto& w : workers) w.join();
}

// Sums per-worker dense partials into one int64 array, range-parallel:
// each merge worker owns a contiguous key range and sums every partial
// over it (partials in fixed index order, so each cell's addition
// sequence is deterministic — and integer addition is exact regardless).
// This replaces the serial O(threads x domain) merge. Partials are the
// accumulate kernels' uint32 arrays; the merge widens to int64.
std::vector<int64_t> MergeDensePartials(
    const std::vector<std::vector<uint32_t>>& partials, uint64_t pdomain,
    int threads) {
  std::vector<const std::vector<uint32_t>*> used;
  for (const auto& p : partials) {
    if (!p.empty()) used.push_back(&p);
  }
  std::vector<int64_t> totals(pdomain, 0);
  if (used.empty()) return totals;
  const int mergers = static_cast<int>(std::min<uint64_t>(
      static_cast<uint64_t>(threads), pdomain / 4096 + 1));
  auto merge_range = [&](uint64_t lo, uint64_t hi) {
    for (const std::vector<uint32_t>* p : used) {
      const uint32_t* src = p->data();
      for (uint64_t k = lo; k < hi; ++k) totals[k] += src[k];
    }
  };
  if (mergers <= 1) {
    merge_range(0, pdomain);
    return totals;
  }
  std::vector<std::thread> workers;
  workers.reserve(mergers - 1);
  for (int t = 1; t < mergers; ++t) {
    workers.emplace_back(merge_range, pdomain * t / mergers,
                         pdomain * (t + 1) / mergers);
  }
  merge_range(0, pdomain / mergers);
  for (auto& w : workers) w.join();
  return totals;
}

// Emits the non-empty cells of a packed dense accumulator (uint32 from a
// single worker, int64 after a merge). Packed keys enumerate tuples in
// the same lexicographic order as mixed-radix keys, so the output is
// sorted by construction.
template <typename CountVec>
void DrainDense(const TupleCodec& codec, const CountVec& totals,
                GroupCounts* out) {
  for (uint64_t p = 0; p < totals.size(); ++p) {
    if (totals[p] > 0) {
      out->keys.push_back(codec.PackedToKey(p));
      out->counts.push_back(totals[p]);
    }
  }
}

}  // namespace

bool GroupByKernelSimdActive() { return RuntimeSimdTable() != nullptr; }

int64_t GroupByMorselsDispatched() {
  return g_morsels_dispatched.load(std::memory_order_relaxed);
}

StatusOr<GroupCounts> ScanCounts(const TableView& view,
                                 const std::vector<int>& cols,
                                 const GroupByKernelOptions& options) {
  if (options.mode == GroupByKernelMode::kReference) {
    TraceSpanScope span(
        TraceEventKind::kKernelScan, 1,
        static_cast<uint64_t>(TraceKernelTier::kReference),
        static_cast<uint64_t>(view.NumRows()));
    return ReferenceScanCounts(view, cols, options);
  }

  GroupCounts out;
  HYPDB_ASSIGN_OR_RETURN(out.codec, TupleCodec::Create(view.table(), cols));
  const int64_t n = view.NumRows();
  out.total = n;

  if (cols.empty()) {
    if (n > 0) {
      out.keys.push_back(0);
      out.counts.push_back(n);
    }
    return out;
  }

  const ScanShape shape = ResolveShape(view, cols, out.codec);
  const GroupBySimdKernels* simd =
      options.use_simd ? RuntimeSimdTable() : nullptr;
  // One span per scan, tagged with the tier that actually ran (arg0) and
  // the rows aggregated (arg1); deep-level morsel instants nest inside.
  TraceSpanScope scan_span(
      TraceEventKind::kKernelScan, 1,
      static_cast<uint64_t>(simd != nullptr ? TraceKernelTier::kSimd
                                            : TraceKernelTier::kScalar),
      static_cast<uint64_t>(n));
  const int threads = ResolveThreads(options, n);
  const int64_t morsel = options.morsel_rows > 0
                             ? std::max<int64_t>(64, options.morsel_rows)
                             : int64_t{1} << 14;

  const bool packable = out.codec.CanBitPack();
  const uint64_t pdomain = packable ? out.codec.PackedDomain() : 0;
  // Dense radix counting when the padded key space is small in absolute
  // terms and relative to the scan (the drain walks all of it). The row
  // bound keeps the kernels' uint32 accumulator cells (at most one
  // increment per row) from overflowing; scans past it — beyond any
  // in-memory table this engine holds — use the int64 hash path.
  const bool dense =
      packable && pdomain <= uint64_t{1} << 21 &&
      pdomain <= static_cast<uint64_t>(std::max<int64_t>(8 * n, 2048)) &&
      n < int64_t{1} << 31;

  if (dense) {
    if (threads <= 1) {
      std::vector<uint32_t> totals(pdomain, 0);
      AccumulateDenseMorsel(shape, simd, 0, n, totals.data());
      DrainDense(out.codec, totals, &out);
      return out;
    }
    // Per-worker dense accumulators only while their combined footprint
    // stays proportionate to the scan; a large domain touched by few rows
    // aggregates per-worker into hash counters instead (same dense merge
    // target, none of the threads x domain memory blow-up).
    const bool worker_dense =
        static_cast<uint64_t>(threads) * pdomain <=
        static_cast<uint64_t>(std::max<int64_t>(
            std::min<int64_t>(8 * n, int64_t{1} << 24), 1 << 16));
    std::vector<int64_t> totals;
    if (worker_dense) {
      std::vector<std::vector<uint32_t>> partial(threads);
      RunMorsels(n, morsel, threads, [&](int t, int64_t b, int64_t e) {
        // Allocated lazily on the worker's first morsel: workers that
        // never get work never pay for (or zero) a domain-sized array.
        if (partial[t].empty()) partial[t].assign(pdomain, 0);
        AccumulateDenseMorsel(shape, simd, b, e, partial[t].data());
      });
      totals = MergeDensePartials(partial, pdomain, threads);
    } else {
      std::vector<OpenHashCounter> partial;
      partial.reserve(threads);
      const size_t per_worker =
          static_cast<size_t>(std::min<int64_t>(n / threads + 64, 1 << 16));
      for (int t = 0; t < threads; ++t) partial.emplace_back(per_worker);
      RunMorsels(n, morsel, threads, [&](int t, int64_t b, int64_t e) {
        HashAccumulateMorsel(shape, simd, /*packable=*/true, b, e,
                             &partial[t]);
      });
      totals.assign(pdomain, 0);
      for (const OpenHashCounter& p : partial) {
        p.ForEach([&](uint64_t key, int64_t count) { totals[key] += count; });
      }
    }
    DrainDense(out.codec, totals, &out);
    return out;
  }

  // Hash path: packed keys when they fit 62 bits, canonical mixed-radix
  // keys otherwise.
  const size_t expected =
      static_cast<size_t>(std::min<int64_t>(n, 1 << 16));
  OpenHashCounter agg(expected);
  if (threads <= 1) {
    HashAccumulateMorsel(shape, simd, packable, 0, n, &agg);
  } else {
    std::vector<OpenHashCounter> partial;
    partial.reserve(threads);
    const size_t per_worker =
        static_cast<size_t>(std::min<int64_t>(n / threads + 64, 1 << 16));
    for (int t = 0; t < threads; ++t) partial.emplace_back(per_worker);
    RunMorsels(n, morsel, threads, [&](int t, int64_t b, int64_t e) {
      HashAccumulateMorsel(shape, simd, packable, b, e, &partial[t]);
    });
    // Pre-size the merge target from the partials' combined size — an
    // upper bound on distinct keys — so the merge never rehashes (the
    // old expected/threads sizing forced repeated Grow() storms on
    // high-cardinality scans).
    size_t combined = 0;
    for (const OpenHashCounter& p : partial) combined += p.size();
    agg.Reserve(combined);
    for (const OpenHashCounter& p : partial) p.MergeInto(&agg);
  }
  out.keys.reserve(agg.size());
  out.counts.reserve(agg.size());
  agg.Drain(&out.keys, &out.counts);
  if (packable) {
    for (uint64_t& key : out.keys) key = out.codec.PackedToKey(key);
  }
  SortCountsByKey(&out.keys, &out.counts);
  return out;
}

}  // namespace hypdb
