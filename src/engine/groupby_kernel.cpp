#include "engine/groupby_kernel.h"

#include <algorithm>
#include <thread>

namespace hypdb {
namespace {

// splitmix64 finalizer — enough mixing for mixed-radix keys, cheap enough
// for the per-row hot loop.
inline uint64_t HashKey(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Open-addressing (linear probe) key -> count map. Keys are tuple codes,
// always < 2^62, so ~0 serves as the empty sentinel.
class OpenHashCounter {
 public:
  explicit OpenHashCounter(size_t expected) {
    size_t cap = 64;
    while (cap < expected * 2) cap <<= 1;
    keys_.assign(cap, kEmpty);
    counts_.assign(cap, 0);
  }

  void Add(uint64_t key, int64_t count) {
    size_t mask = keys_.size() - 1;
    size_t i = HashKey(key) & mask;
    for (;;) {
      if (keys_[i] == key) {
        counts_[i] += count;
        return;
      }
      if (keys_[i] == kEmpty) {
        keys_[i] = key;
        counts_[i] = count;
        if (++size_ * 10 > keys_.size() * 7) Grow();
        return;
      }
      i = (i + 1) & mask;
    }
  }

  size_t size() const { return size_; }

  /// Appends the occupied (key, count) pairs, unsorted.
  void Drain(std::vector<uint64_t>* keys, std::vector<int64_t>* counts) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) {
        keys->push_back(keys_[i]);
        counts->push_back(counts_[i]);
      }
    }
  }

  void MergeInto(OpenHashCounter* other) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) other->Add(keys_[i], counts_[i]);
    }
  }

 private:
  static constexpr uint64_t kEmpty = ~0ull;

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int64_t> old_counts = std::move(counts_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    counts_.assign(old_counts.size() * 2, 0);
    size_t mask = keys_.size() - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      size_t j = HashKey(old_keys[i]) & mask;
      while (keys_[j] != kEmpty) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      counts_[j] = old_counts[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<int64_t> counts_;
  size_t size_ = 0;
};

// Pre-resolved scan state: raw code pointers + codec strides, so the inner
// loop never touches Column or TableView.
struct RowEncoder {
  std::vector<const int32_t*> codes;
  std::vector<uint64_t> strides;
  const int64_t* ids = nullptr;  // null = contiguous physical rows

  uint64_t Key(int64_t i) const {
    const int64_t r = ids != nullptr ? ids[i] : i;
    uint64_t key = 0;
    for (size_t j = 0; j < codes.size(); ++j) {
      key += static_cast<uint64_t>(codes[j][r]) * strides[j];
    }
    return key;
  }
};

// Splits [0, n) into `parts` contiguous chunks; returns boundaries.
std::vector<int64_t> ChunkBounds(int64_t n, int parts) {
  std::vector<int64_t> bounds(parts + 1, 0);
  for (int p = 0; p <= parts; ++p) bounds[p] = n * p / parts;
  return bounds;
}

}  // namespace

StatusOr<GroupCounts> ScanCounts(const TableView& view,
                                 const std::vector<int>& cols,
                                 const GroupByKernelOptions& options) {
  GroupCounts out;
  HYPDB_ASSIGN_OR_RETURN(out.codec, TupleCodec::Create(view.table(), cols));
  const int64_t n = view.NumRows();
  out.total = n;

  RowEncoder enc;
  enc.codes.reserve(cols.size());
  for (int c : cols) enc.codes.push_back(view.table().column(c).codes().data());
  enc.strides = out.codec.strides();
  enc.ids = view.row_ids() != nullptr ? view.row_ids()->data() : nullptr;

  int threads = options.num_threads;
  if (threads == 0) {
    // 0 = "use the machine": hardware_concurrency, floored at 1 because
    // the standard allows it to return 0 when undetectable.
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  if (threads > 1 && n < threads * options.parallel_min_rows) {
    threads = static_cast<int>(std::max<int64_t>(
        1, n / std::max<int64_t>(options.parallel_min_rows, 1)));
  }
  threads = std::max(threads, 1);

  const uint64_t domain = out.codec.Domain();
  const bool dense =
      domain <= 1u << 20 &&
      domain <= static_cast<uint64_t>(std::max<int64_t>(n * 4, 1024));

  if (dense) {
    std::vector<int64_t> totals(domain, 0);
    if (threads <= 1) {
      for (int64_t i = 0; i < n; ++i) ++totals[enc.Key(i)];
    } else {
      std::vector<int64_t> bounds = ChunkBounds(n, threads);
      std::vector<std::vector<int64_t>> partial(
          threads, std::vector<int64_t>(domain, 0));
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          std::vector<int64_t>& local = partial[t];
          for (int64_t i = bounds[t]; i < bounds[t + 1]; ++i) {
            ++local[enc.Key(i)];
          }
        });
      }
      for (auto& w : workers) w.join();
      for (int t = 0; t < threads; ++t) {
        for (uint64_t k = 0; k < domain; ++k) totals[k] += partial[t][k];
      }
    }
    for (uint64_t k = 0; k < domain; ++k) {
      if (totals[k] > 0) {
        out.keys.push_back(k);
        out.counts.push_back(totals[k]);
      }
    }
    return out;
  }

  const size_t expected =
      static_cast<size_t>(std::min<int64_t>(n, 1 << 16));
  OpenHashCounter agg(expected);
  if (threads <= 1) {
    for (int64_t i = 0; i < n; ++i) agg.Add(enc.Key(i), 1);
  } else {
    std::vector<int64_t> bounds = ChunkBounds(n, threads);
    std::vector<OpenHashCounter> partial(
        threads, OpenHashCounter(expected / threads + 64));
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        OpenHashCounter& local = partial[t];
        for (int64_t i = bounds[t]; i < bounds[t + 1]; ++i) {
          local.Add(enc.Key(i), 1);
        }
      });
    }
    for (auto& w : workers) w.join();
    for (const OpenHashCounter& p : partial) p.MergeInto(&agg);
  }
  out.keys.reserve(agg.size());
  out.counts.reserve(agg.size());
  agg.Drain(&out.keys, &out.counts);
  SortCountsByKey(&out.keys, &out.counts);
  return out;
}

}  // namespace hypdb
