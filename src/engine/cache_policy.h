// CachePolicy: the pluggable materialization cost model behind
// CachingCountEngine and the predicate-slicing admission guard.
//
// PR 5 hard-wired two decisions into the caching layer: evict
// oldest-first, and admit a shared S ∪ P materialization only when
// min(domain, rows) fits the cell budget. Both are blind — the first to
// reuse and rebuild cost, the second to sparsity (a domain product says
// nothing about how many cells a summary actually has). This header
// extracts both decisions into a policy object so the engine mechanics
// (entry bookkeeping, pinning, delta patching) stay fixed while the
// *economics* — what is worth keeping, what is worth building — are
// swappable:
//
//  * OldestFirstCachePolicy ("static") reproduces the historical
//    behavior bit-for-bit: retention score = admission sequence (oldest
//    evicted first), admission by the conservative min(domain, rows)
//    bound. The default everywhere, so existing digests, scan counts and
//    tests are untouched.
//  * CostBenefitCachePolicy ("adaptive") ranks entries by
//    benefit-per-cell — (1 + uses) × measured rebuild seconds / cells —
//    so a small, hot, expensive-to-rebuild summary outlives a large
//    cold one regardless of age, and admits a materialization whenever
//    its *observed* cell count (from a cached superset or an installed
//    cube lattice) fits the budget, even when the domain-product bound
//    does not.
//
// Policies are stateless and const; one instance may serve any number of
// engines concurrently. Determinism: scores depend only on entry
// statistics, and ties are broken by admission sequence in the engine,
// so equal workloads evict identically run-to-run (wall-clock rebuild
// times perturb scores, but never the *values* of any answer — counts
// are exact integers whatever is cached).

#ifndef HYPDB_ENGINE_CACHE_POLICY_H_
#define HYPDB_ENGINE_CACHE_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/statusor.h"

namespace hypdb {

/// Which materialization policy an engine stack runs. Threaded
/// end-to-end: MiEngineOptions::materialization → DatasetRegistry /
/// service stacks → wire key `materialization` → `hypdb_cli
/// --materialization=`.
enum class MaterializationMode {
  kStatic,    // oldest-first eviction, domain-bound admission (historic)
  kAdaptive,  // benefit-per-cell eviction, observed-cell admission,
              // background cube advisor, batch union planning
};

const char* MaterializationModeName(MaterializationMode mode);

/// Parses "static" / "adaptive"; InvalidArgument otherwise (the wire
/// layer maps that to HTTP 400).
StatusOr<MaterializationMode> ParseMaterializationMode(
    const std::string& name);

/// What the policy sees of one cache entry when ranking evictions.
struct CacheEntryView {
  /// Groups held by the entry (the budget currency).
  int64_t cells = 0;
  /// Times the entry answered a query: exact hits, marginalizations
  /// derived from it, and delta patches that kept it alive.
  int64_t uses = 0;
  /// Measured seconds it took to build the summary (base scan, cube
  /// lookup or superset projection) — what eviction would throw away.
  double rebuild_seconds = 0.0;
  /// Monotone admission sequence number (first insertion; survives
  /// in-place replacement). The deterministic tie-break.
  uint64_t sequence = 0;
  bool pinned = false;
};

/// Cache residency snapshot of an engine stack (per-dataset aggregation
/// feeds /healthz, the REPL `datasets` command and the hypdb_cache_*
/// metric family).
struct CacheOccupancy {
  int64_t cached_cells = 0;
  int64_t pinned_cells = 0;
  /// Sum of the cell budgets of the stacked caches reporting above.
  int64_t budget_cells = 0;
  int64_t entries = 0;

  CacheOccupancy& operator+=(const CacheOccupancy& o) {
    cached_cells += o.cached_cells;
    pinned_cells += o.pinned_cells;
    budget_cells += o.budget_cells;
    entries += o.entries;
    return *this;
  }
};

/// The materialization cost model. Implementations must be stateless
/// (const methods, no mutation) — one instance is shared across engines
/// and threads.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  /// "static" / "adaptive" — the knob value that selects this policy.
  virtual const char* name() const = 0;

  /// Retention value of an entry; when the cache is over budget, unpinned
  /// entries are evicted in ascending score order (ties: lowest sequence
  /// first). Pinned entries are never offered.
  virtual double RetentionScore(const CacheEntryView& entry) const = 0;

  /// Whether a prospective shared materialization is worth admitting
  /// under `budget_cells`. `bound_cells` is the conservative
  /// min(domain, rows) upper bound; `observed_cells` is an actual
  /// measured cell count (or bound from a cached superset / cube
  /// lattice) when one is known, -1 otherwise. A refusal routes the
  /// query to its fallback scan instead of thrashing the shared cache.
  virtual bool AdmitMaterialization(int64_t bound_cells,
                                    int64_t observed_cells,
                                    int64_t budget_cells) const = 0;
};

/// The historical PR 5 behavior (see the header comment).
class OldestFirstCachePolicy final : public CachePolicy {
 public:
  const char* name() const override { return "static"; }
  double RetentionScore(const CacheEntryView& entry) const override;
  bool AdmitMaterialization(int64_t bound_cells, int64_t observed_cells,
                            int64_t budget_cells) const override;
};

/// Benefit-per-cell retention, observed-cell admission (see the header
/// comment).
class CostBenefitCachePolicy final : public CachePolicy {
 public:
  const char* name() const override { return "adaptive"; }
  double RetentionScore(const CacheEntryView& entry) const override;
  bool AdmitMaterialization(int64_t bound_cells, int64_t observed_cells,
                            int64_t budget_cells) const override;
};

/// The shared policy instance for `mode` (policies are stateless, so one
/// per mode serves the whole process).
std::shared_ptr<const CachePolicy> MakeCachePolicy(MaterializationMode mode);

}  // namespace hypdb

#endif  // HYPDB_ENGINE_CACHE_POLICY_H_
