// CachingCountEngine: subset-keyed count cache with marginalization.
//
// The CD algorithm issues thousands of CI tests whose contingency counts
// overlap heavily (paper Sec. 6, Fig. 6c). This engine remembers every
// GROUP BY summary it has produced, keyed by the *set* of columns, and
// answers a query for S by (in order of preference):
//  1. returning the cached S summary (cache hit);
//  2. marginalizing the smallest cached S' ⊇ S summary — summing a few
//     thousand cells instead of re-scanning millions of rows. "Smallest"
//     is a deterministic total order: fewest groups, then fewest columns,
//     then lexicographically smallest column set — so given equal cache
//     contents the same source is chosen run-to-run and the stats /
//     digest trail is reproducible (see MarginalizationSource);
//  3. delegating to the wrapped engine (a scan or a cube lookup) and
//     caching the result.
// Prefetch(S') materializes a superset summary once and pins it, which is
// exactly the paper's "materializing contingency tables" optimization.
// Cached cells are bounded; when the unpinned set exceeds the budget,
// entries are evicted in ascending CachePolicy::RetentionScore order
// (ties: lowest admission sequence). The default OldestFirstCachePolicy
// makes that exactly the historical oldest-first behavior; the adaptive
// CostBenefitCachePolicy ranks by benefit-per-cell instead, using the
// per-entry use counts and measured rebuild times this engine tracks.
// Pinned cells live outside the budget: the focus summary is the working
// set every marginalization derives from, so it must never force the
// derived entries out.
//
// Thread safety: all public methods may be called concurrently (the
// service layer shares one engine per subpopulation shard across worker
// threads). The cache mutex is released around delegated base scans, so
// concurrent misses scan in parallel; a racing duplicate insert is
// reconciled by Insert(). Counts are exact integers, so results are
// bit-identical regardless of interleaving.

#ifndef HYPDB_ENGINE_CACHING_COUNT_ENGINE_H_
#define HYPDB_ENGINE_CACHING_COUNT_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/cache_policy.h"
#include "engine/count_engine.h"

namespace hypdb {

struct CachingCountEngineOptions {
  /// Derive counts for S from a cached superset instead of delegating.
  bool marginalize_supersets = true;
  /// Budget on the total number of cached groups across *unpinned*
  /// entries; unpinned entries are evicted in policy order when
  /// exceeded. Pinned (prefetched) entries are exempt — see the header
  /// comment.
  int64_t max_cached_cells = int64_t{1} << 22;
  /// Eviction/retention policy; null selects the static
  /// OldestFirstCachePolicy (the historical behavior).
  std::shared_ptr<const CachePolicy> policy;
  /// Record per-key query demand for TakeDemandProfile() — what the
  /// registry's cube advisor harvests. Off by default (no map growth on
  /// stacks nobody advises).
  bool track_demand = false;
};

class CachingCountEngine : public CountEngine {
 public:
  explicit CachingCountEngine(std::shared_ptr<CountEngine> base,
                              CachingCountEngineOptions options = {});

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override;

  /// Materializes (and pins) the summary over `cols` so subsequent subset
  /// queries marginalize it. Propagates base-engine errors (e.g. domain
  /// overflow) — callers treat that as a missed optimization.
  Status Prefetch(const std::vector<int>& cols) override;

  int64_t NumRows() const override { return base_->NumRows(); }

  int64_t PopulationVersion() const override {
    return base_->PopulationVersion();
  }

  /// Deltas come from storage, not from this cache; forwarded so stacked
  /// caching layers can patch through.
  StatusOr<GroupCounts> CountsDelta(const std::vector<int>& cols,
                                    int64_t from_version,
                                    int64_t to_version) override {
    return base_->CountsDelta(cols, from_version, to_version);
  }

  /// The exact cells of a cached entry over `cols`, the smallest cached
  /// superset's cells (a true upper bound), or whatever the base stack
  /// has observed (an installed cube lattice knows every subset's cells).
  /// -1 when nothing here or below has observed `cols`.
  int64_t ObservedCellBound(const std::vector<int>& cols) const override;

  /// This cache's residency plus any caching layer below it.
  CacheOccupancy CacheUse() const override;

  /// This layer's counters plus the base engine's.
  CountEngineStats stats() const override;
  void ResetStats() override;

  /// The cached superset a query for `cols` would marginalize from right
  /// now, or empty when it would not marginalize (exact entry cached, no
  /// superset cached, or marginalization disabled). Introspection for
  /// tests pinning the deterministic tie-break; does not touch stats.
  std::vector<int> MarginalizationSource(const std::vector<int>& cols) const;

  /// Per-key external query counts since the last call, cleared on
  /// return (empty unless options.track_demand). The cube advisor's
  /// input: which column sets this engine is being asked for, how often.
  std::map<std::vector<int>, int64_t> TakeDemandProfile();

  /// Cells currently held (memory proxy), and entry count.
  int64_t cached_cells() const;
  /// Cells held by pinned entries (exempt from the eviction budget).
  int64_t pinned_cells() const;
  int num_entries() const;

  /// The active policy (never null; defaults to oldest-first).
  const CachePolicy& policy() const { return *policy_; }

  CountEngine& base() { return *base_; }

 private:
  /// Summaries are immutable once cached (replacement swaps the pointer,
  /// never mutates), so readers project/copy OUTSIDE the lock from a
  /// shared_ptr grabbed under it — a cache hit holds mu_ for a map
  /// lookup, not for copying a multi-million-cell summary.
  struct Entry {
    std::shared_ptr<const GroupCounts> counts;  // codec order: any
                                                // permutation of the key
    bool pinned = false;
    /// Base PopulationVersion the summary includes rows through. Kept
    /// explicitly — GroupCounts::total is NOT a valid watermark for
    /// filtered populations (the matching-row count lags the storage
    /// watermark). A query at a newer version patches the entry via
    /// base CountsDelta instead of invalidating it.
    int64_t version = 0;
    /// Times this entry answered a query (hit, marginalization source,
    /// post-patch serve) — the policy's reuse signal.
    int64_t uses = 0;
    /// Measured seconds the summary took to build (base scan or superset
    /// projection); replacement keeps the max, so a cheap delta patch
    /// never erases the original scan cost eviction would re-incur.
    double rebuild_seconds = 0.0;
    /// Monotone admission order; assigned at first insertion, preserved
    /// across in-place replacement — the deterministic eviction
    /// tie-break (and the whole order, under the static policy).
    uint64_t sequence = 0;
  };

  /// The best cached strict superset of `sorted` to marginalize from
  /// under the deterministic order (fewest groups, fewest columns,
  /// lexicographically smallest key), or cache_.end(). Requires mu_ held.
  std::map<std::vector<int>, Entry>::const_iterator BestSupersetLocked(
      const std::vector<int>& sorted) const;

  /// Inserts under the sorted key, then evicts to budget. Reconciles a
  /// pre-existing entry under the same key (concurrent double-miss):
  /// accounting is adjusted and an existing pin, use count and sequence
  /// are preserved. Requires mu_ held.
  void Insert(std::vector<int> sorted,
              std::shared_ptr<const GroupCounts> counts, bool pinned,
              int64_t version, double build_seconds);
  void EvictToBudget();

  /// Brings a stale entry (grabbed under the lock) current by merging a
  /// base CountsDelta over [entry_version, version_now) and re-inserting
  /// the patched summary. On success returns the patched summary; when
  /// the base cannot produce deltas (Unimplemented — static engines) or
  /// the delta fails, drops the stale entry and returns null so the
  /// caller falls back to a cold recompute.
  std::shared_ptr<const GroupCounts> PatchEntry(
      const std::vector<int>& key,
      std::shared_ptr<const GroupCounts> stale_counts, int64_t entry_version,
      int64_t version_now);

  /// Bumps the use counter of the entry at `key` if it is still cached
  /// with the expected payload-compatible version. Requires mu_ held.
  void RecordUseLocked(const std::vector<int>& key);

  std::shared_ptr<CountEngine> base_;
  CachingCountEngineOptions options_;
  std::shared_ptr<const CachePolicy> policy_;  // never null

  mutable std::mutex mu_;
  std::map<std::vector<int>, Entry> cache_;
  std::vector<int> pinned_key_;  // the single pinned focus (sorted)
  std::map<std::vector<int>, int64_t> demand_;  // when track_demand
  int64_t cached_cells_ = 0;
  int64_t pinned_cells_ = 0;
  uint64_t next_sequence_ = 0;
  CountEngineStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_ENGINE_CACHING_COUNT_ENGINE_H_
