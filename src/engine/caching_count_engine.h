// CachingCountEngine: subset-keyed count cache with marginalization.
//
// The CD algorithm issues thousands of CI tests whose contingency counts
// overlap heavily (paper Sec. 6, Fig. 6c). This engine remembers every
// GROUP BY summary it has produced, keyed by the *set* of columns, and
// answers a query for S by (in order of preference):
//  1. returning the cached S summary (cache hit);
//  2. marginalizing the smallest cached S' ⊇ S summary — summing a few
//     thousand cells instead of re-scanning millions of rows;
//  3. delegating to the wrapped engine (a scan or a cube lookup) and
//     caching the result.
// Prefetch(S') materializes a superset summary once and pins it, which is
// exactly the paper's "materializing contingency tables" optimization.
// Cached cells are bounded; unpinned entries are evicted oldest-first.

#ifndef HYPDB_ENGINE_CACHING_COUNT_ENGINE_H_
#define HYPDB_ENGINE_CACHING_COUNT_ENGINE_H_

#include <list>
#include <map>
#include <memory>
#include <vector>

#include "engine/count_engine.h"

namespace hypdb {

struct CachingCountEngineOptions {
  /// Derive counts for S from a cached superset instead of delegating.
  bool marginalize_supersets = true;
  /// Budget on the total number of cached groups across entries; unpinned
  /// entries are evicted oldest-first when exceeded.
  int64_t max_cached_cells = int64_t{1} << 22;
};

class CachingCountEngine : public CountEngine {
 public:
  explicit CachingCountEngine(std::shared_ptr<CountEngine> base,
                              CachingCountEngineOptions options = {});

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override;

  /// Materializes (and pins) the summary over `cols` so subsequent subset
  /// queries marginalize it. Propagates base-engine errors (e.g. domain
  /// overflow) — callers treat that as a missed optimization.
  Status Prefetch(const std::vector<int>& cols) override;

  int64_t NumRows() const override { return base_->NumRows(); }

  /// This layer's counters plus the base engine's.
  CountEngineStats stats() const override;
  void ResetStats() override;

  /// Cells currently held (memory proxy), and entry count.
  int64_t cached_cells() const { return cached_cells_; }
  int num_entries() const { return static_cast<int>(cache_.size()); }

  CountEngine& base() { return *base_; }

 private:
  struct Entry {
    GroupCounts counts;  // codec order may be any permutation of the key
    bool pinned = false;
  };

  /// Inserts under the sorted key, then evicts to budget.
  void Insert(std::vector<int> sorted, GroupCounts counts, bool pinned);
  void EvictToBudget();

  std::shared_ptr<CountEngine> base_;
  CachingCountEngineOptions options_;
  std::map<std::vector<int>, Entry> cache_;
  std::list<std::vector<int>> age_;  // insertion order, oldest first
  std::vector<int> pinned_key_;      // the single pinned focus (sorted)
  int64_t cached_cells_ = 0;
  CountEngineStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_ENGINE_CACHING_COUNT_ENGINE_H_
