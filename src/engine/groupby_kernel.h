// Packed-tuple group-by counting kernel.
//
// The hot loop of every HypDB statistic is count(*) GROUP BY over a column
// subset (paper Sec. 6). This kernel does that one job fast:
//  * per-column code pointers are resolved once, so the inner loop is a
//    mixed-radix dot product over raw int32 arrays (no virtual calls, no
//    per-row column lookups);
//  * small domains aggregate into a dense array (radix counting), large
//    domains into an open-addressing hash table — both avoid the
//    node-per-group cost of std::unordered_map;
//  * large populations can be scanned by multiple threads, each with a
//    private accumulator, merged at the end. Results are bit-identical to
//    the sequential scan (counts are exact integers).

#ifndef HYPDB_ENGINE_GROUPBY_KERNEL_H_
#define HYPDB_ENGINE_GROUPBY_KERNEL_H_

#include "dataframe/group_by.h"
#include "dataframe/view.h"
#include "util/statusor.h"

namespace hypdb {

struct GroupByKernelOptions {
  /// Worker threads for the scan; 1 scans sequentially, 0 resolves to
  /// std::thread::hardware_concurrency() (the production default — see
  /// MiEngineOptions::scan_threads).
  int num_threads = 1;
  /// Minimum rows per worker — below num_threads * this, scan sequentially
  /// (thread startup would dominate).
  int64_t parallel_min_rows = 1 << 16;
};

/// count(*) GROUP BY `cols` over `view`. Key/count arrays come back sorted
/// by key; the codec columns are exactly `cols` in the given order.
/// Identical results to the naive scan for any thread count.
StatusOr<GroupCounts> ScanCounts(const TableView& view,
                                 const std::vector<int>& cols,
                                 const GroupByKernelOptions& options = {});

}  // namespace hypdb

#endif  // HYPDB_ENGINE_GROUPBY_KERNEL_H_
