// Packed-tuple group-by counting kernel.
//
// The hot loop of every HypDB statistic is count(*) GROUP BY over a column
// subset (paper Sec. 6). This kernel does that one job fast:
//  * multi-column keys are bit-packed: per-column codes are fused into one
//    machine word with shifts/ors (TupleCodec::shifts()) instead of
//    per-column multiply-adds, and specialized kernels are dispatched by
//    (arity, domain class, row indirection);
//  * the dense-radix path (small padded domains) and the key-packing step
//    of the hash path run as SIMD inner loops (AVX2, detected at compile
//    time AND at runtime) with scalar twins that are always compiled —
//    builds without SIMD run the same algorithm and produce bit-identical
//    results;
//  * small domains aggregate into a dense array (radix counting), large
//    domains into an open-addressing hash table probed in prefetched
//    batches — both avoid the node-per-group cost of std::unordered_map;
//  * parallel scans are morsel-driven: an atomic cursor hands small
//    contiguous row ranges to a worker pool, so skewed filtered views
//    (row_ids indirection) parallelize as well as full scans; per-worker
//    partial accumulators merge range-parallel for dense domains.
//
// The non-negotiable invariant: GroupCounts are bit-identical for every
// (kernel mode, SIMD on/off, thread count, morsel size) combination —
// counts are exact integers, and tests/kernel_property_test.cpp sweeps
// the whole configuration space against a naive reference.

#ifndef HYPDB_ENGINE_GROUPBY_KERNEL_H_
#define HYPDB_ENGINE_GROUPBY_KERNEL_H_

#include "dataframe/group_by.h"
#include "dataframe/view.h"
#include "util/statusor.h"

namespace hypdb {

/// Kernel implementation selector. kAuto dispatches the specialized
/// bit-packed kernels; kReference forces the pre-vectorization scalar
/// kernel (mixed-radix key loop, fixed-partition threading) kept as the
/// comparison baseline for benchmarks and property tests.
enum class GroupByKernelMode {
  kAuto = 0,
  kReference = 1,
};

struct GroupByKernelOptions {
  /// Worker threads for the scan; 1 scans sequentially, 0 resolves to
  /// std::thread::hardware_concurrency() (the production default — see
  /// MiEngineOptions::scan_threads).
  int num_threads = 1;
  /// Minimum rows per worker — below num_threads * this, scan sequentially
  /// (thread startup would dominate).
  int64_t parallel_min_rows = 1 << 16;
  /// Rows per morsel: the contiguous range an atomic cursor hands a
  /// worker at a time. Small enough to even out skew, large enough to
  /// amortize the cursor bump; values < 1 fall back to the default.
  int64_t morsel_rows = 1 << 14;
  /// Use the SIMD (AVX2) inner loops when compiled in and supported by
  /// the CPU; the scalar fallback is bit-identical either way.
  bool use_simd = true;
  GroupByKernelMode mode = GroupByKernelMode::kAuto;
};

/// count(*) GROUP BY `cols` over `view`. Key/count arrays come back sorted
/// by key; the codec columns are exactly `cols` in the given order.
/// Identical results for every options combination.
StatusOr<GroupCounts> ScanCounts(const TableView& view,
                                 const std::vector<int>& cols,
                                 const GroupByKernelOptions& options = {});

/// True when the AVX2 kernels are compiled in AND the running CPU
/// supports them — i.e. `use_simd = true` actually changes the inner
/// loop. Benchmarks gate SIMD speedup assertions on this.
bool GroupByKernelSimdActive();

/// Process-wide count of morsels dispatched by parallel scans since
/// startup (monotone; serial scans dispatch none). Observability only —
/// surfaced as hypdb_engine_morsels_total.
int64_t GroupByMorselsDispatched();

}  // namespace hypdb

#endif  // HYPDB_ENGINE_GROUPBY_KERNEL_H_
