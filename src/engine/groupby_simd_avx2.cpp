// AVX2 group-by kernels — the only translation unit compiled with -mavx2
// (CMake sets the flag and HYPDB_SIMD_AVX2 together, and only when
// HYPDB_ENABLE_SIMD is ON and the compiler supports it). Nothing here
// runs unless the dispatcher in groupby_kernel.cpp verified AVX2 at
// runtime first.

#include "engine/groupby_simd.h"

#if defined(HYPDB_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace hypdb {
namespace {

// counts[packed_key] += 1 over [begin, end). Keys for 16 rows are fused
// with vpslld/vpor into a spilled lane buffer read back as eight 64-bit
// pairs (halving the reload count), and the spill is double-buffered so
// the scalar increments of block k read a buffer stored a full iteration
// earlier — hiding the store-to-load forwarding latency that serializes
// a naive spill-then-reload loop. The increments themselves run scalar,
// so duplicate keys inside one vector never lose updates.
template <int A>
void DenseAccumulateAvx2(const PackedColumns& cols, int64_t begin,
                         int64_t end, uint32_t* counts) {
  __m128i sh[kMaxSpecializedArity];
  for (int j = 1; j < A; ++j) sh[j] = _mm_cvtsi32_si128(cols.shifts[j]);
  // 16 packed 32-bit keys per block, viewed as 8 pairs; two buffers.
  alignas(64) uint64_t lane[2][8];
  const auto fuse16 = [&](int64_t at, uint64_t* dst) {
    for (int v = 0; v < 2; ++v) {
      __m256i key = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cols.codes[0] + at + 8 * v));
      for (int j = 1; j < A; ++j) {
        const __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cols.codes[j] + at + 8 * v));
        key = _mm256_or_si256(key, _mm256_sll_epi32(c, sh[j]));
      }
      _mm256_store_si256(reinterpret_cast<__m256i*>(dst + 4 * v), key);
    }
  };
  const auto bump8 = [counts](const uint64_t* pairs) {
    for (int k = 0; k < 8; ++k) {
      const uint64_t pair = pairs[k];
      ++counts[static_cast<uint32_t>(pair)];
      ++counts[pair >> 32];
    }
  };
  int64_t i = begin;
  if (end - begin >= 16) {
    fuse16(begin, lane[0]);
    int buf = 0;
    for (i = begin + 16; i + 16 <= end; i += 16) {
      fuse16(i, lane[buf ^ 1]);
      bump8(lane[buf]);
      buf ^= 1;
    }
    bump8(lane[buf]);
  }
  for (; i < end; ++i) {
    uint64_t key = static_cast<uint32_t>(cols.codes[0][i]);
    for (int j = 1; j < A; ++j) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[j][i]))
             << cols.shifts[j];
    }
    ++counts[key];
  }
}

// Tiny-domain histogram (packed domain <= kTinyDomainMax): one byte-
// counter vector per group cell, held entirely in registers. Per 32-row
// block the packed keys are fused, narrowed to bytes (the in-lane
// permutation packus introduces is harmless — addition commutes), and
// every cell's counter absorbs a vpcmpeqb/vpsubb pair. No per-row memory
// RMW at all, which roughly doubles throughput over the spill-and-bump
// kernel above on this shape. Byte lanes saturate after 255 blocks, so
// counters flush into 64-bit accumulators (vpsadbw) on that cadence.
template <int A>
void DenseAccumulateTinyAvx2(const PackedColumns& cols, int64_t begin,
                             int64_t end, uint32_t* counts) {
  constexpr int kCells = static_cast<int>(kTinyDomainMax);
  __m128i sh[kMaxSpecializedArity];
  for (int j = 1; j < A; ++j) sh[j] = _mm_cvtsi32_si128(cols.shifts[j]);
  alignas(32) uint8_t vals[kCells][32];
  for (int v = 0; v < kCells; ++v) {
    for (int l = 0; l < 32; ++l) vals[v][l] = static_cast<uint8_t>(v);
  }
  __m256i cnt[kCells], acc[kCells];
  for (int v = 0; v < kCells; ++v) cnt[v] = acc[v] = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  int pending = 0;
  const auto flush = [&] {
    for (int v = 0; v < kCells; ++v) {
      acc[v] = _mm256_add_epi64(acc[v], _mm256_sad_epu8(cnt[v], zero));
      cnt[v] = _mm256_setzero_si256();
    }
    pending = 0;
  };
  // Fuses one 8-row vector of packed keys. Kept as four explicit calls
  // per block (not a loop over a local array) so the keys live in
  // registers — GCC rolls the array form and round-trips every vector
  // through the stack, costing ~20%.
  const auto fuse8 = [&](int64_t at) {
    __m256i key = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cols.codes[0] + at));
    for (int j = 1; j < A; ++j) {
      const __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cols.codes[j] + at));
      key = _mm256_or_si256(key, _mm256_sll_epi32(c, sh[j]));
    }
    return key;
  };
  int64_t i = begin;
  for (; i + 32 <= end; i += 32) {
    const __m256i k0 = fuse8(i);
    const __m256i k1 = fuse8(i + 8);
    const __m256i k2 = fuse8(i + 16);
    const __m256i k3 = fuse8(i + 24);
    const __m256i bytes = _mm256_packus_epi16(_mm256_packus_epi32(k0, k1),
                                              _mm256_packus_epi32(k2, k3));
    for (int v = 0; v < kCells; ++v) {
      cnt[v] = _mm256_sub_epi8(
          cnt[v], _mm256_cmpeq_epi8(
                      bytes, *reinterpret_cast<const __m256i*>(vals[v])));
    }
    if (++pending == 255) flush();
  }
  flush();
  for (int v = 0; v < kCells; ++v) {
    alignas(32) uint64_t q[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(q), acc[v]);
    const uint64_t total = q[0] + q[1] + q[2] + q[3];
    // counts[] is sized to the actual packed domain, which may be below
    // kCells; those cells can never match a key, so skipping zero totals
    // keeps the write in bounds.
    if (total != 0) counts[v] += static_cast<uint32_t>(total);
  }
  for (; i < end; ++i) {
    uint64_t key = static_cast<uint32_t>(cols.codes[0][i]);
    for (int j = 1; j < A; ++j) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[j][i]))
             << cols.shifts[j];
    }
    ++counts[key];
  }
}

// 64-bit packed keys for [begin, end), 4 rows per vector (the hash path's
// packed width may exceed 32 bits).
template <int A>
void PackKeysAvx2(const PackedColumns& cols, int64_t begin, int64_t end,
                  uint64_t* out) {
  __m128i sh[kMaxSpecializedArity];
  for (int j = 1; j < A; ++j) sh[j] = _mm_cvtsi32_si128(cols.shifts[j]);
  int64_t i = begin;
  for (; i + 4 <= end; i += 4, out += 4) {
    __m256i key = _mm256_cvtepu32_epi64(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(cols.codes[0] + i)));
    for (int j = 1; j < A; ++j) {
      const __m256i c = _mm256_cvtepu32_epi64(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cols.codes[j] + i)));
      key = _mm256_or_si256(key, _mm256_sll_epi64(c, sh[j]));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), key);
  }
  for (; i < end; ++i, ++out) {
    uint64_t key = static_cast<uint32_t>(cols.codes[0][i]);
    for (int j = 1; j < A; ++j) {
      key |= static_cast<uint64_t>(static_cast<uint32_t>(cols.codes[j][i]))
             << cols.shifts[j];
    }
    *out = key;
  }
}

// Constant-initialized (no runtime static constructor): this TU is built
// with -mavx2, so any code that runs unconditionally at startup — which
// a dynamic initializer would — could fault on a CPU without AVX2.
constexpr GroupBySimdKernels kAvx2Kernels = {
    {nullptr, &DenseAccumulateAvx2<1>, &DenseAccumulateAvx2<2>,
     &DenseAccumulateAvx2<3>, &DenseAccumulateAvx2<4>},
    {nullptr, &PackKeysAvx2<1>, &PackKeysAvx2<2>, &PackKeysAvx2<3>,
     &PackKeysAvx2<4>},
    {nullptr, &DenseAccumulateTinyAvx2<1>, &DenseAccumulateTinyAvx2<2>,
     &DenseAccumulateTinyAvx2<3>, &DenseAccumulateTinyAvx2<4>},
};

}  // namespace

const GroupBySimdKernels* Avx2KernelTable() { return &kAvx2Kernels; }

}  // namespace hypdb

#else  // !HYPDB_SIMD_AVX2

namespace hypdb {

const GroupBySimdKernels* Avx2KernelTable() { return nullptr; }

}  // namespace hypdb

#endif
