#include "engine/predicate_slicing_count_engine.h"

#include <algorithm>
#include <limits>

#include "util/trace.h"

namespace hypdb {

PredicateSlicingCountEngine::PredicateSlicingCountEngine(
    std::shared_ptr<CountEngine> parent,
    std::vector<SlicePredicate> predicates, TableView filtered_view,
    GroupByKernelOptions fallback_kernel, int64_t parent_cache_budget,
    std::shared_ptr<CountEngine> population,
    std::shared_ptr<const CachePolicy> policy)
    : parent_(std::move(parent)),
      predicates_(std::move(predicates)),
      view_(std::move(filtered_view)),
      population_(std::move(population)),
      fallback_(population_ ? population_
                            : std::make_shared<ViewCountProvider>(
                                  view_, fallback_kernel)),
      parent_cache_budget_(parent_cache_budget),
      policy_(policy != nullptr
                  ? std::move(policy)
                  : MakeCachePolicy(MaterializationMode::kStatic)) {
  std::sort(predicates_.begin(), predicates_.end(),
            [](const SlicePredicate& a, const SlicePredicate& b) {
              return a.col < b.col;
            });
}

std::vector<int> PredicateSlicingCountEngine::SupersetFor(
    const std::vector<int>& sorted) const {
  std::vector<int> superset = sorted;
  for (const SlicePredicate& p : predicates_) superset.push_back(p.col);
  return SortedUniqueColumns(std::move(superset));
}

GroupCounts PredicateSlicingCountEngine::Slice(
    const GroupCounts& parent_counts, const std::vector<int>& cols) const {
  const std::vector<int>& have = parent_counts.codec.cols();
  auto position_of = [&have](int col) {
    return static_cast<int>(std::find(have.begin(), have.end(), col) -
                            have.begin());
  };
  std::vector<std::pair<int, int32_t>> slots;  // (position, required code)
  slots.reserve(predicates_.size());
  for (const SlicePredicate& p : predicates_) {
    slots.emplace_back(position_of(p.col), p.code);
  }
  std::vector<int> keep;  // positions of the requested cols, their order
  keep.reserve(cols.size());
  for (int c : cols) keep.push_back(position_of(c));

  GroupCounts out;
  // Project the *parent's* codec (cols ⊆ superset, so this cannot
  // overflow): its cardinalities are current as of the parent's
  // population version, which keeps sliced keys bit-identical to a cold
  // scan even after appends grow the dictionaries — the frozen view's
  // codec would go stale.
  out.codec = parent_counts.codec.Project(keep);
  std::vector<int32_t> codes(keep.size());
  for (size_t g = 0; g < parent_counts.keys.size(); ++g) {
    const uint64_t key = parent_counts.keys[g];
    bool match = true;
    for (const auto& [pos, code] : slots) {
      if (parent_counts.codec.DecodeAt(key, pos) != code) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    for (size_t j = 0; j < keep.size(); ++j) {
      codes[j] = parent_counts.codec.DecodeAt(key, keep[j]);
    }
    out.keys.push_back(out.codec.EncodeCodes(codes));
    out.counts.push_back(parent_counts.counts[g]);
    // Every population row lands in exactly one matching group, so the
    // direct-scan convention (total = rows aggregated) is the sum.
    out.total += parent_counts.counts[g];
  }
  // Distinct matching groups agree on every predicate column and the
  // superset is cols ∪ pred-cols, so re-encoding over cols is injective —
  // sorting (never summing) restores the GroupCounts key invariant.
  SortCountsByKey(&out.keys, &out.counts);
  return out;
}

bool PredicateSlicingCountEngine::OverParentBudget(
    const std::vector<int>& superset) const {
  if (parent_cache_budget_ <= 0) return false;
  // min(domain, full-table rows) is an upper bound on the summary's
  // group count — a heuristic, not a proof: it cannot see sparsity. What
  // refusal prevents is the pathological inverse: a summary certain to
  // blow the parent's budget is evicted on insert and re-scanned from
  // the full table per query, strictly worse than scanning the filtered
  // view. The admission policy decides what to charge: the static policy
  // only sees this blind bound, the adaptive policy prefers the parent's
  // *observed* cell bound (a cached superset entry or an installed cube
  // lattice) when one exists, admitting sparse supersets the bound would
  // refuse.
  StatusOr<TupleCodec> codec = TupleCodec::Create(view_.table(), superset);
  const uint64_t bound =
      codec.ok() ? std::min<uint64_t>(
                       codec->Domain(),
                       static_cast<uint64_t>(parent_->NumRows()))
                 : std::numeric_limits<uint64_t>::max();
  const int64_t bound_cells =
      bound > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())
          ? std::numeric_limits<int64_t>::max()
          : static_cast<int64_t>(bound);
  const int64_t observed = parent_->ObservedCellBound(superset);
  return !policy_->AdmitMaterialization(bound_cells, observed,
                                        parent_cache_budget_);
}

StatusOr<GroupCounts> PredicateSlicingCountEngine::Counts(
    const std::vector<int>& cols) {
  // Every path below answers exactly one external query; attribution
  // order relative to the work does not matter for the totals.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
  }
  std::vector<int> sorted = SortedUniqueColumns(cols);
  if (sorted.size() != cols.size()) {
    // Duplicate columns — never issued by the stats layer; scan the
    // filtered view rather than reason about repeated digits.
    TraceInstant(TraceEventKind::kSliceFallback, 1, cols.size());
    return fallback_->Counts(cols);
  }
  const std::vector<int> superset = SupersetFor(sorted);
  if (OverParentBudget(superset)) {
    TraceInstant(TraceEventKind::kSliceFallback, 1, cols.size(),
                 superset.size());
    return fallback_->Counts(cols);
  }
  StatusOr<GroupCounts> parent_counts = parent_->Counts(superset);
  if (!parent_counts.ok()) {
    // Typically domain overflow on S ∪ P over the full table; the plain
    // S scan of the filtered view may still fit (or report its own
    // error, exactly as the isolated stack would).
    TraceInstant(TraceEventKind::kSliceFallback, 1, cols.size(),
                 superset.size());
    return fallback_->Counts(cols);
  }
  GroupCounts sliced = Slice(*parent_counts, cols);
  TraceInstant(TraceEventKind::kSliceServe, 1, cols.size(),
               sliced.NumGroups());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.predicate_slices;
  return sliced;
}

Status PredicateSlicingCountEngine::Prefetch(const std::vector<int>& cols) {
  const std::vector<int> superset =
      SupersetFor(SortedUniqueColumns(cols));
  // Mirror the Counts() budget guard: materializing (and pinning!) a
  // summary in the shared parent that Counts() will then refuse to use
  // would be pure dead weight — and would repoint the parent's single
  // pinned focus away from whatever a sibling shard pinned.
  if (OverParentBudget(superset)) return Status::Ok();
  return parent_->Prefetch(superset);
}

CountEngineStats PredicateSlicingCountEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CountEngineStats total = stats_;
  total += fallback_->stats();
  // Fallback calls were issued on behalf of the same external queries.
  total.queries = stats_.queries;
  return total;
}

void PredicateSlicingCountEngine::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = {};
  fallback_->ResetStats();
  // The shared parent is deliberately left alone — it serves other
  // shards whose accounting must survive this one's reset.
}

}  // namespace hypdb
