// CountEngine: the single source of contingency counts for the pipeline.
//
// Every statistic in HypDB reduces to count(*) GROUP BY over a column
// subset (paper Sec. 6), and the thousands of CI tests issued by the CD
// algorithm share most of their counts. CountEngine is the interface those
// counts flow through; implementations form a small hierarchy:
//  * ViewCountProvider   — scans a TableView with the packed-tuple kernel
//                          (optionally multi-threaded); the ground truth.
//  * CubeCountProvider   — answers from a pre-computed OLAP data cube
//                          (src/cube), the Fig. 6(d)/8(b) configuration.
//  * CachingCountEngine  — wraps any engine with a subset-keyed cache plus
//                          marginalization: counts for S ⊆ S' derive from
//                          a cached S' summary instead of re-scanning
//                          (src/engine/caching_count_engine.h).
//  * PredicateSlicingCountEngine — answers counts over a conjunctive
//                          equality subpopulation by slicing a shared
//                          full-table engine's S ∪ P summary at P = v
//                          (src/engine/predicate_slicing_count_engine.h).
// Instrumentation (scans, cache hits, marginalizations) flows up the stack
// into DiscoveryReport / HypDbReport — the Fig. 6(c) metrics.

#ifndef HYPDB_ENGINE_COUNT_ENGINE_H_
#define HYPDB_ENGINE_COUNT_ENGINE_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "dataframe/group_by.h"
#include "dataframe/view.h"
#include "engine/cache_policy.h"
#include "engine/groupby_kernel.h"
#include "util/statusor.h"

namespace hypdb {

/// Counters an engine stack accumulates while answering Counts() calls.
/// Summing a wrapper's own counters with its base engine's is well defined
/// because each work field is incremented by exactly one layer kind:
/// `scans` by view scanners, `cube_hits`/`fallback_calls` by cube
/// adapters, `cache_hits`/`marginalizations`/`evictions` by caching
/// layers, `predicate_slices` by predicate-slicing layers
/// (src/engine/predicate_slicing_count_engine.h). `queries` is the
/// exception — wrappers report their own count (each external query
/// once), not the sum.
struct CountEngineStats {
  /// External Counts() calls answered by the reporting engine.
  int64_t queries = 0;
  /// Full data scans performed (the Fig. 6c cost driver).
  int64_t scans = 0;
  /// Queries answered from an exact cached entry.
  int64_t cache_hits = 0;
  /// Queries derived by marginalizing a cached superset summary.
  int64_t marginalizations = 0;
  /// Queries over a filtered subpopulation answered by slicing a shared
  /// full-table superset summary at the subpopulation's predicate values
  /// (cross-shard reuse — the contingency-table sharing of Sec. 6 applied
  /// across WHERE clauses).
  int64_t predicate_slices = 0;
  /// Queries answered by cube-cell lookup.
  int64_t cube_hits = 0;
  /// Cube misses delegated to a fallback provider.
  int64_t fallback_calls = 0;
  /// Cache entries dropped under memory pressure.
  int64_t evictions = 0;
  /// Stale cached summaries brought current by merging a CountsDelta()
  /// over the appended suffix instead of rescanning from scratch
  /// (incremented by caching layers).
  int64_t delta_patches = 0;
  /// Chunks the chunked store actually scanned (full or partial;
  /// incremented by chunked scan providers).
  int64_t chunk_scans = 0;
  /// Chunks a delta scan skipped because they lie entirely below the
  /// requested watermark — the rows delta maintenance never re-reads.
  int64_t chunks_skipped = 0;
  /// Rows read by chunked scans (full scans and delta suffixes alike);
  /// with chunks_skipped this quantifies what incremental ingest saves.
  int64_t rows_scanned = 0;

  CountEngineStats& operator+=(const CountEngineStats& o) {
    queries += o.queries;
    scans += o.scans;
    cache_hits += o.cache_hits;
    marginalizations += o.marginalizations;
    predicate_slices += o.predicate_slices;
    cube_hits += o.cube_hits;
    fallback_calls += o.fallback_calls;
    evictions += o.evictions;
    delta_patches += o.delta_patches;
    chunk_scans += o.chunk_scans;
    chunks_skipped += o.chunks_skipped;
    rows_scanned += o.rows_scanned;
    return *this;
  }

  CountEngineStats operator-(const CountEngineStats& o) const {
    CountEngineStats d = *this;
    d.queries -= o.queries;
    d.scans -= o.scans;
    d.cache_hits -= o.cache_hits;
    d.marginalizations -= o.marginalizations;
    d.predicate_slices -= o.predicate_slices;
    d.cube_hits -= o.cube_hits;
    d.fallback_calls -= o.fallback_calls;
    d.evictions -= o.evictions;
    d.delta_patches -= o.delta_patches;
    d.chunk_scans -= o.chunk_scans;
    d.chunks_skipped -= o.chunks_skipped;
    d.rows_scanned -= o.rows_scanned;
    return d;
  }
};

/// Canonical cache/superset key for a column list: sorted ascending,
/// duplicates removed. Every engine layer that keys on column *sets*
/// (caching, slicing) must canonicalize the same way.
inline std::vector<int> SortedUniqueColumns(std::vector<int> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

/// Source of group-by counts over a fixed row population.
class CountEngine {
 public:
  virtual ~CountEngine() = default;

  /// count(*) GROUP BY `cols` over this engine's population. `cols` may be
  /// in any order; the result codec preserves that order. Columns must be
  /// distinct.
  virtual StatusOr<GroupCounts> Counts(const std::vector<int>& cols) = 0;

  /// Number of rows in the population.
  virtual int64_t NumRows() const = 0;

  /// Hints that upcoming queries touch only subsets of `cols`; caching
  /// engines respond by materializing the superset summary once (the
  /// paper's "materializing contingency tables", Sec. 6). Default no-op.
  virtual Status Prefetch(const std::vector<int>& cols) {
    (void)cols;
    return Status::Ok();
  }

  /// Monotone version of this engine's population: a cached summary
  /// computed at version v stays exact as long as PopulationVersion()
  /// == v. Engines over growing storage return the underlying row
  /// watermark; static engines inherit this default (NumRows() never
  /// changes, so any constant works).
  virtual int64_t PopulationVersion() const { return NumRows(); }

  /// count(*) GROUP BY `cols` over only the rows appended between
  /// population versions `from_version` (exclusive of prior rows) and
  /// `to_version`. A caching layer patches a stale summary by merging
  /// this delta instead of rescanning everything. Engines that cannot
  /// enumerate their suffix return Unimplemented, which callers treat
  /// as "recompute from scratch".
  virtual StatusOr<GroupCounts> CountsDelta(const std::vector<int>& cols,
                                            int64_t from_version,
                                            int64_t to_version) {
    (void)cols;
    (void)from_version;
    (void)to_version;
    return Status::Unimplemented("engine does not support delta counts");
  }

  /// An upper bound on the number of groups a summary over `cols` would
  /// actually have, when something in this stack has OBSERVED the data
  /// well enough to know one — a caching layer holding `cols` (or a
  /// superset of it), or an installed cube lattice covering it. -1 when
  /// nothing has; callers then fall back to the blind min(domain, rows)
  /// bound. Feeds CachePolicy::AdmitMaterialization, which is how the
  /// adaptive policy admits sparse supersets whose domain product lies.
  virtual int64_t ObservedCellBound(const std::vector<int>& cols) const {
    (void)cols;
    return -1;
  }

  /// Cache residency of this stack (cells/pins/budget/entries), summed
  /// across stacked caching layers. Zero for engines that cache nothing.
  virtual CacheOccupancy CacheUse() const { return {}; }

  /// Accumulated instrumentation, including any wrapped engines'.
  virtual CountEngineStats stats() const { return {}; }
  virtual void ResetStats() {}
};

/// Legacy name from before the engine unification; the cube adapter and
/// older call sites still use it.
using CountProvider = CountEngine;

/// Scans a TableView via the packed-tuple kernel (the default engine).
/// Concurrent Counts() calls are safe: the scan reads immutable column
/// data and the counters are mutex-guarded (the service layer shares one
/// provider per subpopulation shard across worker threads).
class ViewCountProvider : public CountEngine {
 public:
  explicit ViewCountProvider(TableView view, GroupByKernelOptions kernel = {})
      : view_(std::move(view)), kernel_(kernel) {}

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override {
    StatusOr<GroupCounts> counts = ScanCounts(view_, cols, kernel_);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    // Count the scan only when one actually happened — domain overflow
    // fails in codec construction before any data is read.
    if (counts.ok()) ++stats_.scans;
    return counts;
  }

  int64_t NumRows() const override { return view_.NumRows(); }

  CountEngineStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = {};
  }

  /// Number of data scans performed (instrumentation for Fig. 6c).
  int64_t num_scans() const { return stats().scans; }

  const TableView& view() const { return view_; }

 private:
  TableView view_;
  GroupByKernelOptions kernel_;
  mutable std::mutex mu_;
  CountEngineStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_ENGINE_COUNT_ENGINE_H_
