#include "engine/caching_count_engine.h"

#include <algorithm>

namespace hypdb {
namespace {

std::vector<int> SortedUnique(std::vector<int> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

// True iff `sub` ⊆ `super`, both sorted ascending.
bool IsSubset(const std::vector<int>& sub, const std::vector<int>& super) {
  size_t j = 0;
  for (int c : sub) {
    while (j < super.size() && super[j] < c) ++j;
    if (j == super.size() || super[j] != c) return false;
    ++j;
  }
  return true;
}

}  // namespace

CachingCountEngine::CachingCountEngine(std::shared_ptr<CountEngine> base,
                                       CachingCountEngineOptions options)
    : base_(std::move(base)), options_(options) {}

StatusOr<GroupCounts> CachingCountEngine::Counts(
    const std::vector<int>& cols) {
  ++stats_.queries;
  std::vector<int> sorted = SortedUnique(cols);
  if (sorted.size() != cols.size()) {
    // Duplicate columns — rare and never issued by the stats layer; bypass
    // the cache rather than reason about repeated digits.
    return base_->Counts(cols);
  }

  auto exact = cache_.find(sorted);
  if (exact != cache_.end()) {
    ++stats_.cache_hits;
    return ProjectOnto(exact->second.counts, cols);
  }

  if (options_.marginalize_supersets) {
    // Smallest cached superset wins: fewer groups to sum.
    const Entry* best = nullptr;
    for (const auto& [key, entry] : cache_) {
      if (key.size() <= sorted.size() || !IsSubset(sorted, key)) continue;
      if (best == nullptr ||
          entry.counts.NumGroups() < best->counts.NumGroups()) {
        best = &entry;
      }
    }
    if (best != nullptr) {
      ++stats_.marginalizations;
      GroupCounts derived = ProjectOnto(best->counts, cols);
      Insert(std::move(sorted), derived, /*pinned=*/false);
      return derived;
    }
  }

  HYPDB_ASSIGN_OR_RETURN(GroupCounts fresh, base_->Counts(cols));
  Insert(std::move(sorted), fresh, /*pinned=*/false);
  return fresh;
}

Status CachingCountEngine::Prefetch(const std::vector<int>& cols) {
  std::vector<int> sorted = SortedUnique(cols);
  // One pinned focus at a time: release the previous one so repeated
  // Focus() hints (one per discovery phase) cannot accumulate unbounded
  // pinned summaries that defeat the cell budget.
  if (!pinned_key_.empty() && pinned_key_ != sorted) {
    auto prev = cache_.find(pinned_key_);
    if (prev != cache_.end()) prev->second.pinned = false;
  }
  pinned_key_ = sorted;
  auto it = cache_.find(sorted);
  if (it != cache_.end()) {
    it->second.pinned = true;
    return Status::Ok();
  }
  HYPDB_ASSIGN_OR_RETURN(GroupCounts counts, base_->Counts(sorted));
  Insert(std::move(sorted), std::move(counts), /*pinned=*/true);
  return Status::Ok();
}

void CachingCountEngine::Insert(std::vector<int> sorted, GroupCounts counts,
                                bool pinned) {
  cached_cells_ += counts.NumGroups();
  Entry entry;
  entry.counts = std::move(counts);
  entry.pinned = pinned;
  age_.push_back(sorted);
  cache_.insert_or_assign(std::move(sorted), std::move(entry));
  EvictToBudget();
}

void CachingCountEngine::EvictToBudget() {
  auto it = age_.begin();
  while (cached_cells_ > options_.max_cached_cells && it != age_.end()) {
    auto found = cache_.find(*it);
    if (found == cache_.end() || found->second.pinned) {
      ++it;  // already evicted under a newer age entry, or pinned
      continue;
    }
    cached_cells_ -= found->second.counts.NumGroups();
    cache_.erase(found);
    ++stats_.evictions;
    it = age_.erase(it);
  }
}

CountEngineStats CachingCountEngine::stats() const {
  CountEngineStats total = stats_;
  total += base_->stats();
  // Base-engine calls were all issued by this layer on behalf of the same
  // external queries; only count each external query once.
  total.queries = stats_.queries;
  return total;
}

void CachingCountEngine::ResetStats() {
  stats_ = {};
  base_->ResetStats();
}

}  // namespace hypdb
