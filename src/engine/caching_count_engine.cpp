#include "engine/caching_count_engine.h"

#include <algorithm>

#include "util/stopwatch.h"
#include "util/trace.h"

namespace hypdb {
namespace {

// True iff `sub` ⊆ `super`, both sorted ascending.
bool IsSubset(const std::vector<int>& sub, const std::vector<int>& super) {
  size_t j = 0;
  for (int c : sub) {
    while (j < super.size() && super[j] < c) ++j;
    if (j == super.size() || super[j] != c) return false;
    ++j;
  }
  return true;
}

}  // namespace

CachingCountEngine::CachingCountEngine(std::shared_ptr<CountEngine> base,
                                       CachingCountEngineOptions options)
    : base_(std::move(base)),
      options_(std::move(options)),
      policy_(options_.policy != nullptr
                  ? options_.policy
                  : MakeCachePolicy(MaterializationMode::kStatic)) {}

StatusOr<GroupCounts> CachingCountEngine::Counts(
    const std::vector<int>& cols) {
  std::vector<int> sorted = SortedUniqueColumns(cols);
  if (sorted.size() != cols.size()) {
    // Duplicate columns — rare and never issued by the stats layer; bypass
    // the cache rather than reason about repeated digits. The delegated
    // scan runs outside the lock like any other miss.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.queries;
    }
    return base_->Counts(cols);
  }

  // A summary is reusable only at the population version it was computed
  // at; entries behind `version_now` are patched (never served stale).
  const int64_t version_now = base_->PopulationVersion();

  // Under the lock: bookkeeping and a pointer grab only. Projection,
  // marginalization, patching and scans all run outside it (entries are
  // immutable, so a grabbed shared_ptr stays valid past eviction).
  std::shared_ptr<const GroupCounts> source;
  bool derive = false;
  bool stale = false;
  int64_t source_version = 0;
  std::vector<int> source_key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    if (options_.track_demand) ++demand_[sorted];

    auto exact = cache_.find(sorted);
    if (exact != cache_.end()) {
      source = exact->second.counts;
      source_key = sorted;
      source_version = exact->second.version;
      stale = source_version != version_now;
      if (!stale) {
        ++stats_.cache_hits;
        ++exact->second.uses;
      }
    } else if (options_.marginalize_supersets) {
      auto best = BestSupersetLocked(sorted);
      if (best != cache_.end()) {
        source = best->second.counts;
        source_key = best->first;
        source_version = best->second.version;
        derive = true;
        stale = source_version != version_now;
        if (!stale) {
          ++stats_.marginalizations;
          RecordUseLocked(source_key);
        }
      }
    }
  }

  if (source != nullptr && stale) {
    source = PatchEntry(source_key, std::move(source), source_version,
                        version_now);
    if (source != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      if (derive) {
        ++stats_.marginalizations;
      } else {
        ++stats_.cache_hits;
      }
      RecordUseLocked(source_key);
    } else {
      derive = false;  // patch impossible — recompute cold below
    }
  }

  if (source != nullptr) {
    // Outside the lock: the ring write is lock-free but there is no
    // reason to hold mu_ across it. arg0 = columns, arg1 = source cells.
    TraceInstant(derive ? TraceEventKind::kCacheMarginalize
                        : TraceEventKind::kCacheHit,
                 1, cols.size(), source->NumGroups());
    Stopwatch project;
    GroupCounts result = ProjectOnto(*source, cols);
    if (derive) {
      // A derived entry's rebuild cost is the projection, not a scan —
      // the policy correctly values it below its source.
      const double build_seconds = project.ElapsedSeconds();
      std::lock_guard<std::mutex> lock(mu_);
      Insert(std::move(sorted),
             std::make_shared<const GroupCounts>(result),
             /*pinned=*/false, version_now, build_seconds);
    }
    return result;
  }

  // Miss: delegate outside the lock so concurrent misses scan in
  // parallel. A racing thread may insert the same key meanwhile; Insert
  // reconciles the duplicate (counts are identical either way).
  TraceInstant(TraceEventKind::kCacheMiss, 1, cols.size());
  Stopwatch build;
  HYPDB_ASSIGN_OR_RETURN(GroupCounts fresh, base_->Counts(cols));
  const double build_seconds = build.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  Insert(std::move(sorted), std::make_shared<const GroupCounts>(fresh),
         /*pinned=*/false, version_now, build_seconds);
  return fresh;
}

std::shared_ptr<const GroupCounts> CachingCountEngine::PatchEntry(
    const std::vector<int>& key,
    std::shared_ptr<const GroupCounts> stale_counts, int64_t entry_version,
    int64_t version_now) {
  TraceSpanScope span(TraceEventKind::kDeltaPatch, 1,
                      static_cast<uint64_t>(version_now - entry_version),
                      key.size());
  Stopwatch patch;
  StatusOr<GroupCounts> delta =
      base_->CountsDelta(key, entry_version, version_now);
  if (!delta.ok()) {
    // No delta source (static base — Unimplemented) or the suffix scan
    // failed: the stale summary is useless, drop it so the recompute's
    // insert starts clean. Not an eviction — nothing was under pressure.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.version == entry_version) {
      cached_cells_ -= it->second.counts->NumGroups();
      if (it->second.pinned) {
        pinned_cells_ -= it->second.counts->NumGroups();
      }
      cache_.erase(it);
    }
    return nullptr;
  }
  // The delta's codec carries the current dictionary cardinalities, so
  // merging onto it re-keys the older summary exactly — bit-identical to
  // a cold scan of the grown population.
  auto patched = std::make_shared<const GroupCounts>(
      MergeGroupCounts(*stale_counts, *delta, delta->codec));
  const double patch_seconds = patch.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.delta_patches;
  // Insert keeps max(existing rebuild, patch time): the patch kept the
  // entry alive, but evicting it would still cost the original scan.
  Insert(key, patched, /*pinned=*/false, version_now, patch_seconds);
  return patched;
}

Status CachingCountEngine::Prefetch(const std::vector<int>& cols) {
  std::vector<int> sorted = SortedUniqueColumns(cols);
  const int64_t version_now = base_->PopulationVersion();
  std::shared_ptr<const GroupCounts> stale_counts;
  int64_t stale_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One pinned focus at a time: release the previous one so repeated
    // Focus() hints (one per discovery phase) cannot accumulate unbounded
    // pinned summaries that defeat the cell budget.
    if (!pinned_key_.empty() && pinned_key_ != sorted) {
      auto prev = cache_.find(pinned_key_);
      if (prev != cache_.end() && prev->second.pinned) {
        prev->second.pinned = false;
        pinned_cells_ -= prev->second.counts->NumGroups();
      }
    }
    pinned_key_ = sorted;
    auto it = cache_.find(sorted);
    if (it != cache_.end()) {
      if (it->second.version == version_now) {
        if (!it->second.pinned) {
          it->second.pinned = true;
          pinned_cells_ += it->second.counts->NumGroups();
        }
        EvictToBudget();  // the focus just left the budgeted set
        return Status::Ok();
      }
      // Stale focus: patch it outside the lock rather than rescanning —
      // the focus superset is the largest summary in the cache, exactly
      // the one delta maintenance is for.
      stale_counts = it->second.counts;
      stale_version = it->second.version;
    }
  }
  if (stale_counts != nullptr) {
    std::shared_ptr<const GroupCounts> patched =
        PatchEntry(sorted, std::move(stale_counts), stale_version,
                   version_now);
    if (patched != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(sorted);
      if (it != cache_.end() && pinned_key_ == sorted &&
          !it->second.pinned) {
        it->second.pinned = true;
        pinned_cells_ += it->second.counts->NumGroups();
      }
      EvictToBudget();
      return Status::Ok();
    }
    // Patch impossible — fall through to the cold path.
  }
  // Pass the hint down the stack first (best-effort): a slicing base
  // forwards it to the *shared parent*, which materializes-and-pins the
  // S ∪ P superset once for every sibling shard — the Counts() below
  // then slices a parent cache hit instead of triggering its own scan.
  // For scanner/cube bases Prefetch is a no-op and nothing changes. An
  // error here is a missed optimization only; Counts() still answers
  // (e.g. via the slicer's filtered-view fallback on codec overflow).
  (void)base_->Prefetch(sorted);
  Stopwatch build;
  HYPDB_ASSIGN_OR_RETURN(GroupCounts counts, base_->Counts(sorted));
  const double build_seconds = build.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  // A concurrent Prefetch may have repointed the focus while we scanned;
  // only pin if this key is still the focus.
  const bool still_focus = pinned_key_ == sorted;
  TraceInstant(TraceEventKind::kCachePrefetch, 1, counts.NumGroups(),
               still_focus ? 1 : 0);
  Insert(std::move(sorted),
         std::make_shared<const GroupCounts>(std::move(counts)),
         /*pinned=*/still_focus, version_now, build_seconds);
  return Status::Ok();
}

std::map<std::vector<int>, CachingCountEngine::Entry>::const_iterator
CachingCountEngine::BestSupersetLocked(
    const std::vector<int>& sorted) const {
  // Deterministic total order so stats and digest trails reproduce
  // run-to-run given equal cache contents: fewest groups (cheapest sum),
  // then fewest columns (cheapest decode), then the lexicographically
  // smallest column set. The map iterates keys ascending, so strict
  // comparisons make the lexicographic tie-break implicit.
  auto best = cache_.end();
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    const std::vector<int>& key = it->first;
    if (key.size() <= sorted.size() || !IsSubset(sorted, key)) continue;
    if (best == cache_.end() ||
        it->second.counts->NumGroups() < best->second.counts->NumGroups() ||
        (it->second.counts->NumGroups() ==
             best->second.counts->NumGroups() &&
         key.size() < best->first.size())) {
      best = it;
    }
  }
  return best;
}

std::vector<int> CachingCountEngine::MarginalizationSource(
    const std::vector<int>& cols) const {
  std::vector<int> sorted = SortedUniqueColumns(cols);
  // Mirror Counts(): duplicate-column queries bypass the cache entirely,
  // so they never marginalize anything.
  if (sorted.size() != cols.size()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.marginalize_supersets) return {};
  if (cache_.find(sorted) != cache_.end()) return {};
  auto best = BestSupersetLocked(sorted);
  return best == cache_.end() ? std::vector<int>{} : best->first;
}

int64_t CachingCountEngine::ObservedCellBound(
    const std::vector<int>& cols) const {
  std::vector<int> sorted = SortedUniqueColumns(cols);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto exact = cache_.find(sorted);
    if (exact != cache_.end()) return exact->second.counts->NumGroups();
    // Any cached superset's cell count bounds the subset's: projecting
    // can only merge groups. Take the tightest.
    int64_t best = -1;
    for (const auto& [key, entry] : cache_) {
      if (key.size() < sorted.size() || !IsSubset(sorted, key)) continue;
      const int64_t cells = entry.counts->NumGroups();
      if (best < 0 || cells < best) best = cells;
    }
    if (best >= 0) return best;
  }
  // Nothing cached here — maybe the base has observed it (an installed
  // cube lattice knows every covered subset's cells). Outside mu_: the
  // lock order is this-cache → base, but there is no reason to hold it.
  return base_->ObservedCellBound(sorted);
}

CacheOccupancy CachingCountEngine::CacheUse() const {
  CacheOccupancy use;
  {
    std::lock_guard<std::mutex> lock(mu_);
    use.cached_cells = cached_cells_;
    use.pinned_cells = pinned_cells_;
    use.budget_cells = options_.max_cached_cells;
    use.entries = static_cast<int64_t>(cache_.size());
  }
  use += base_->CacheUse();
  return use;
}

std::map<std::vector<int>, int64_t> CachingCountEngine::TakeDemandProfile() {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::vector<int>, int64_t> out;
  out.swap(demand_);
  return out;
}

void CachingCountEngine::RecordUseLocked(const std::vector<int>& key) {
  auto it = cache_.find(key);
  if (it != cache_.end()) ++it->second.uses;
}

void CachingCountEngine::Insert(std::vector<int> sorted,
                                std::shared_ptr<const GroupCounts> counts,
                                bool pinned, int64_t version,
                                double build_seconds) {
  int64_t uses = 0;
  double rebuild_seconds = build_seconds;
  uint64_t sequence = next_sequence_;
  auto existing = cache_.find(sorted);
  if (existing != cache_.end()) {
    // Concurrent double-miss (or Prefetch racing Counts, or a delta
    // patch): replace the payload, fix the accounting, and never drop an
    // existing pin. The entry keeps its identity for the policy — use
    // count, admission sequence, and the larger of the rebuild costs.
    cached_cells_ -= existing->second.counts->NumGroups();
    if (existing->second.pinned) {
      pinned_cells_ -= existing->second.counts->NumGroups();
      pinned = true;
    }
    uses = existing->second.uses;
    rebuild_seconds = std::max(existing->second.rebuild_seconds,
                               build_seconds);
    sequence = existing->second.sequence;
  } else {
    ++next_sequence_;
  }
  cached_cells_ += counts->NumGroups();
  if (pinned) pinned_cells_ += counts->NumGroups();
  Entry entry;
  entry.counts = std::move(counts);
  entry.pinned = pinned;
  entry.version = version;
  entry.uses = uses;
  entry.rebuild_seconds = rebuild_seconds;
  entry.sequence = sequence;
  cache_.insert_or_assign(std::move(sorted), std::move(entry));
  EvictToBudget();
}

void CachingCountEngine::EvictToBudget() {
  // Pinned cells are exempt: the budget bounds the evictable set, so a
  // large pinned focus cannot starve every derived summary out of the
  // cache (it used to — see the eviction regression test).
  if (cached_cells_ - pinned_cells_ <= options_.max_cached_cells) return;
  // Rank the unpinned entries by the policy: lowest retention score goes
  // first, admission sequence breaks ties deterministically. Under the
  // static policy the score IS the sequence, so this is exactly the
  // historical oldest-first walk.
  struct Candidate {
    double score;
    uint64_t sequence;
    const std::vector<int>* key;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(cache_.size());
  for (const auto& [key, entry] : cache_) {
    if (entry.pinned) continue;
    CacheEntryView view;
    view.cells = entry.counts->NumGroups();
    view.uses = entry.uses;
    view.rebuild_seconds = entry.rebuild_seconds;
    view.sequence = entry.sequence;
    view.pinned = false;
    candidates.push_back(
        Candidate{policy_->RetentionScore(view), entry.sequence, &key});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.sequence < b.sequence;
            });
  int64_t evicted_entries = 0;
  int64_t evicted_cells = 0;
  for (const Candidate& victim : candidates) {
    if (cached_cells_ - pinned_cells_ <= options_.max_cached_cells) break;
    auto found = cache_.find(*victim.key);
    cached_cells_ -= found->second.counts->NumGroups();
    evicted_cells += found->second.counts->NumGroups();
    ++evicted_entries;
    cache_.erase(found);
    ++stats_.evictions;
  }
  if (evicted_entries > 0) {
    TraceInstant(TraceEventKind::kCacheEvict, 1,
                 static_cast<uint64_t>(evicted_cells),
                 static_cast<uint64_t>(evicted_entries));
  }
}

CountEngineStats CachingCountEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CountEngineStats total = stats_;
  total += base_->stats();
  // Base-engine calls were all issued by this layer on behalf of the same
  // external queries; only count each external query once.
  total.queries = stats_.queries;
  return total;
}

void CachingCountEngine::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = {};
  base_->ResetStats();
}

int64_t CachingCountEngine::cached_cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_cells_;
}

int64_t CachingCountEngine::pinned_cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_cells_;
}

int CachingCountEngine::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cache_.size());
}

}  // namespace hypdb
