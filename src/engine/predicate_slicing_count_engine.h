// PredicateSlicingCountEngine: cross-shard count reuse for filtered
// subpopulations.
//
// The paper's cost model (Sec. 6, Fig. 6c) is "every statistic is a
// count(*) GROUP BY, so share the counts". The service's shard pool used
// to stop that sharing at the WHERE clause: each subpopulation owned an
// isolated engine, so four queries over four departments re-scanned the
// same table four times. This engine closes that gap for the common case
// of a *conjunction of equality predicates* P = v (single-value IN terms,
// e.g. every per-context engine Γ_i = C ∧ X = x_i): counts over columns S
// of the filtered view are exactly the P = v slice of the full-table
// count(*) GROUP BY S ∪ P,
//
//   count_{σ_{P=v}(D)}(S = s)  =  count_D(S = s, P = v),
//
// so the engine asks a *shared, dataset-wide parent* (normally a
// CachingCountEngine over the full table) for the S ∪ P summary — computed
// once, cached, and sliced at different predicate values by every
// subpopulation shard of the dataset — and derives the filtered answer by
// selecting the groups whose predicate components equal v and re-encoding
// them over S. This is the paper's contingency-table materialization
// argument applied across WHERE clauses; the same count-sharing trick
// underpins explanation mining in Youngmann & Salimi, "On Explaining
// Confounding Bias" (2022).
//
// Fallback rules (the engine is *always* bit-identical to a direct scan
// of the filtered view):
//  * non-equality predicates (multi-value IN terms, values absent from
//    the dictionary) never reach this engine — DatasetRegistry builds the
//    classic isolated stack for those signatures;
//  * a query with duplicate columns, or one the parent cannot answer
//    (e.g. the full-table S ∪ P codec would overflow while the filtered
//    scan still fits), falls back to a private ViewCountProvider scan of
//    the filtered view.
//
// Stats: `predicate_slices` counts queries answered by slicing. stats()
// reports this layer plus its private fallback scanner only — the parent
// is shared across shards, so its work is accounted once by whoever owns
// it (DatasetRegistry::EngineStats), never summed into each shard.
//
// Thread safety: all public methods may be called concurrently. The
// parent and fallback engines are thread-safe, the view and predicates
// are immutable, and the slicing computation is pure; only the counters
// take this engine's mutex.

#ifndef HYPDB_ENGINE_PREDICATE_SLICING_COUNT_ENGINE_H_
#define HYPDB_ENGINE_PREDICATE_SLICING_COUNT_ENGINE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "engine/count_engine.h"

namespace hypdb {

/// One equality conjunct of a subpopulation: column `col` = code `code`.
struct SlicePredicate {
  int col = -1;
  int32_t code = -1;
};

class PredicateSlicingCountEngine : public CountEngine {
 public:
  /// `parent` answers full-table counts (shared across shards);
  /// `predicates` is the non-empty equality conjunction defining the
  /// subpopulation; `filtered_view` is the matching row subset (used for
  /// NumRows and fallback scans, and to name the table for codecs).
  /// `fallback_kernel` configures the private fallback scanner.
  /// `parent_cache_budget` is the parent's cached-cell budget when known
  /// (0 = unlimited): a query whose S ∪ P summary the admission policy
  /// refuses under that budget is answered by the fallback scanner
  /// instead, because an over-budget summary is evicted on insert and
  /// every slice would re-scan the full table, strictly worse than the
  /// isolated stack this engine replaces. Admission goes through
  /// `policy` (CachePolicy::AdmitMaterialization; null = the static
  /// policy): the static policy charges the conservative
  /// min(domain, full-table rows) bound — it cannot see sparsity, so
  /// sparse supersets whose actual summary would fit are refused too —
  /// while the adaptive policy charges the parent's *observed* cell
  /// bound (ObservedCellBound: a cached superset entry or an installed
  /// cube lattice) whenever one exists.
  ///
  /// `population`, when set, is a *live* source for the subpopulation
  /// over growing storage (a FilteredPopulationProvider): it replaces
  /// the frozen view for NumRows() and fallback scans, carries the
  /// delta protocol (PopulationVersion / CountsDelta), and keeps this
  /// shard current as the dataset ingests — the shared parent's patched
  /// summaries then slice to current answers automatically. Without it
  /// the engine behaves exactly as before over the fixed view.
  PredicateSlicingCountEngine(
      std::shared_ptr<CountEngine> parent,
      std::vector<SlicePredicate> predicates, TableView filtered_view,
      GroupByKernelOptions fallback_kernel = {},
      int64_t parent_cache_budget = 0,
      std::shared_ptr<CountEngine> population = nullptr,
      std::shared_ptr<const CachePolicy> policy = nullptr);

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override;

  /// Forwards the hint to the parent over S ∪ P, so one shared
  /// materialization serves every shard whose predicates live on the
  /// same columns (contexts of one query differ only in the value).
  /// Subject to the same parent-budget guard as Counts(): a superset the
  /// slicer would refuse to use is not materialized (no-op, Ok).
  Status Prefetch(const std::vector<int>& cols) override;

  int64_t NumRows() const override {
    return population_ ? population_->NumRows() : view_.NumRows();
  }

  /// With a live population: the storage watermark, so caching layers
  /// above this shard can version their entries. Frozen shards keep the
  /// default (their population never changes).
  int64_t PopulationVersion() const override {
    return population_ ? population_->PopulationVersion() : NumRows();
  }

  /// Forwarded to the live population (the delta is a plain filtered
  /// scan of the appended suffix); Unimplemented for frozen shards.
  StatusOr<GroupCounts> CountsDelta(const std::vector<int>& cols,
                                    int64_t from_version,
                                    int64_t to_version) override {
    if (!population_) {
      return Status::Unimplemented("frozen shard has no delta source");
    }
    return population_->CountsDelta(cols, from_version, to_version);
  }

  /// This layer plus the private fallback scanner. Deliberately excludes
  /// the shared parent — see the header comment.
  CountEngineStats stats() const override;
  void ResetStats() override;

 private:
  /// Sorted union of `sorted` (sorted unique query columns) and the
  /// predicate columns.
  std::vector<int> SupersetFor(const std::vector<int>& sorted) const;

  /// True when the admission policy refuses to materialize `superset` in
  /// the parent's cache (see the constructor comment; always false when
  /// the budget is unknown).
  bool OverParentBudget(const std::vector<int>& superset) const;

  /// Selects the P = v groups of `parent_counts` (a summary over
  /// SupersetFor(cols)) and re-encodes them over `cols` in the requested
  /// order. Infallible: the codec over a subset of a representable
  /// superset always fits.
  GroupCounts Slice(const GroupCounts& parent_counts,
                    const std::vector<int>& cols) const;

  std::shared_ptr<CountEngine> parent_;
  std::vector<SlicePredicate> predicates_;  // sorted by col, unique
  TableView view_;
  std::shared_ptr<CountEngine> population_;  // live source; null = frozen
  std::shared_ptr<CountEngine> fallback_;
  int64_t parent_cache_budget_ = 0;          // 0 = unlimited
  std::shared_ptr<const CachePolicy> policy_;  // never null

  mutable std::mutex mu_;
  CountEngineStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_ENGINE_PREDICATE_SLICING_COUNT_ENGINE_H_
