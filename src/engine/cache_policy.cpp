#include "engine/cache_policy.h"

#include <algorithm>

namespace hypdb {

const char* MaterializationModeName(MaterializationMode mode) {
  switch (mode) {
    case MaterializationMode::kStatic:
      return "static";
    case MaterializationMode::kAdaptive:
      return "adaptive";
  }
  return "static";
}

StatusOr<MaterializationMode> ParseMaterializationMode(
    const std::string& name) {
  if (name == "static") return MaterializationMode::kStatic;
  if (name == "adaptive") return MaterializationMode::kAdaptive;
  return Status::InvalidArgument(
      "unknown materialization mode \"" + name +
      "\" (expected \"static\" or \"adaptive\")");
}

double OldestFirstCachePolicy::RetentionScore(
    const CacheEntryView& entry) const {
  // Score = admission sequence: the oldest entry has the lowest score,
  // so ascending-score eviction IS oldest-first — bit-for-bit the
  // historical age-list behavior.
  return static_cast<double>(entry.sequence);
}

bool OldestFirstCachePolicy::AdmitMaterialization(
    int64_t bound_cells, int64_t observed_cells, int64_t budget_cells) const {
  (void)observed_cells;  // the static policy cannot see sparsity
  if (budget_cells <= 0) return true;  // unlimited
  return bound_cells <= budget_cells;
}

double CostBenefitCachePolicy::RetentionScore(
    const CacheEntryView& entry) const {
  // Benefit-per-cell: what eviction throws away (measured rebuild cost,
  // amplified by demonstrated reuse) per unit of budget the entry
  // occupies. The +1 keeps never-yet-reused entries comparable, and the
  // rebuild floor keeps sub-resolution timings from zeroing a hot
  // entry's score.
  const double rebuild = std::max(entry.rebuild_seconds, 1e-9);
  const double cells = static_cast<double>(std::max<int64_t>(entry.cells, 1));
  return static_cast<double>(entry.uses + 1) * rebuild / cells;
}

bool CostBenefitCachePolicy::AdmitMaterialization(
    int64_t bound_cells, int64_t observed_cells, int64_t budget_cells) const {
  if (budget_cells <= 0) return true;  // unlimited
  // Charge what the summary actually costs when that is known — a cached
  // superset or an installed cube lattice bounds the real cell count —
  // and only fall back to the blind domain-product bound when nothing
  // has observed the data yet.
  if (observed_cells >= 0) return observed_cells <= budget_cells;
  return bound_cells <= budget_cells;
}

std::shared_ptr<const CachePolicy> MakeCachePolicy(MaterializationMode mode) {
  static const std::shared_ptr<const CachePolicy> kStatic =
      std::make_shared<OldestFirstCachePolicy>();
  static const std::shared_ptr<const CachePolicy> kAdaptive =
      std::make_shared<CostBenefitCachePolicy>();
  return mode == MaterializationMode::kAdaptive ? kAdaptive : kStatic;
}

}  // namespace hypdb
