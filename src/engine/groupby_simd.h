// SIMD kernel table for the group-by scan.
//
// groupby_kernel.cpp owns dispatch: it resolves this table once per
// process (compile-time availability here, runtime CPU detection there)
// and falls back to scalar twins of every entry — the scalar path is
// always compiled and always tested, so a build with
// HYPDB_ENABLE_SIMD=OFF (or a non-x86 toolchain) runs the same algorithm
// and produces bit-identical GroupCounts.
//
// The AVX2 implementations live in groupby_simd_avx2.cpp, the one
// translation unit compiled with -mavx2.

#ifndef HYPDB_ENGINE_GROUPBY_SIMD_H_
#define HYPDB_ENGINE_GROUPBY_SIMD_H_

#include <cstdint>

namespace hypdb {

/// Specialized kernels cover arities 1..kMaxSpecializedArity (the shapes
/// entropy/CMI estimation issues constantly); wider tuples run the
/// generic scalar loop.
inline constexpr int kMaxSpecializedArity = 4;

/// Packed domains up to this size qualify for the in-register histogram
/// kernel: one byte-counter vector per group cell, updated with
/// compare/subtract — no per-row memory traffic at all. 16 cells covers
/// the small contingency tables bias queries revolve around (Gender x
/// AgeBand and the like) while keeping one AVX2 register per cell.
inline constexpr uint64_t kTinyDomainMax = 16;

/// Raw scan inputs resolved once per ScanCounts call: per-column code
/// pointers plus packed-key shift amounts, in codec (stride) order —
/// shifts[0] is always 0.
struct PackedColumns {
  const int32_t* codes[kMaxSpecializedArity] = {};
  int shifts[kMaxSpecializedArity] = {};
};

/// Dense radix accumulation over contiguous physical rows [begin, end):
/// ++counts[packed_key(r)]. Key computation is vectorized; the
/// scatter-increment runs scalar per lane, which keeps duplicate keys
/// within a vector conflict-safe. Packed keys are < 2^31 on the dense
/// path (dispatch bound), so lanes are 32-bit. Accumulators are uint32
/// — half the cache footprint of int64, decisive for L1-resident count
/// arrays — and the dispatcher guarantees fewer than 2^31 increments
/// per array, so cells cannot overflow.
using DenseAccumulateFn = void (*)(const PackedColumns& cols, int64_t begin,
                                   int64_t end, uint32_t* counts);

/// Packs the keys of contiguous physical rows [begin, end) into
/// out[0..end-begin). 64-bit keys: the hash path's packed width may
/// reach 62 bits.
using PackKeysFn = void (*)(const PackedColumns& cols, int64_t begin,
                            int64_t end, uint64_t* out);

/// Kernel table indexed by arity (index 0 unused).
struct GroupBySimdKernels {
  DenseAccumulateFn dense_accumulate[kMaxSpecializedArity + 1] = {};
  PackKeysFn pack_keys[kMaxSpecializedArity + 1] = {};
  /// Optional tiny-domain variant, used when the packed domain is at
  /// most kTinyDomainMax; null entries fall back to dense_accumulate
  /// (the scalar table leaves them null — a scalar per-row bump is
  /// already optimal there, and counts are identical either way).
  DenseAccumulateFn dense_accumulate_tiny[kMaxSpecializedArity + 1] = {};
};

/// The AVX2 kernel table, or null when the binary was built without it.
/// Callers must still check the CPU at runtime before using the table.
const GroupBySimdKernels* Avx2KernelTable();

}  // namespace hypdb

#endif  // HYPDB_ENGINE_GROUPBY_SIMD_H_
