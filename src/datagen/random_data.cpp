#include "datagen/random_data.h"

#include "graph/random_dag.h"

namespace hypdb {

StatusOr<RandomDataset> GenerateRandomDataset(const RandomDataOptions& options,
                                              Rng& rng) {
  RandomDagOptions dag_options;
  dag_options.num_nodes = options.num_nodes;
  dag_options.expected_degree = options.expected_degree;

  RandomDataset out;
  out.dag = RandomErdosRenyiDag(dag_options, rng);

  std::vector<int32_t> cards(options.num_nodes);
  for (int v = 0; v < options.num_nodes; ++v) {
    cards[v] = static_cast<int32_t>(rng.UniformInt(options.min_categories,
                                                   options.max_categories));
  }
  HYPDB_ASSIGN_OR_RETURN(
      out.net, BayesNet::Random(out.dag, cards, options.dirichlet_alpha, rng));
  HYPDB_ASSIGN_OR_RETURN(out.table, out.net.Sample(options.num_rows, rng));
  return out;
}

}  // namespace hypdb
