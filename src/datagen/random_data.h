// RandomData: the paper's synthetic quality-benchmark pipeline
// (Sec. 7.1): Erdős-Rényi DAGs → random categorical CPTs (catnet
// equivalent) → ancestral samples, with the ground-truth DAG retained
// for F1 scoring.

#ifndef HYPDB_DATAGEN_RANDOM_DATA_H_
#define HYPDB_DATAGEN_RANDOM_DATA_H_

#include "bn/bayes_net.h"
#include "dataframe/table.h"
#include "graph/dag.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace hypdb {

struct RandomDataOptions {
  int num_nodes = 8;           // paper: 8 / 16 / 32
  double expected_degree = 3.0;
  int min_categories = 2;      // paper sweeps 2-20
  int max_categories = 4;
  /// Dirichlet concentration of CPT rows; small = skewed rows = strong,
  /// learnable dependencies.
  double dirichlet_alpha = 0.5;
  int64_t num_rows = 10000;    // paper sweeps 10k-1M+
};

struct RandomDataset {
  Dag dag;        // ground truth
  BayesNet net;
  Table table;    // columns "X0".."Xn-1", labels "0".."card-1"
};

StatusOr<RandomDataset> GenerateRandomDataset(const RandomDataOptions& options,
                                              Rng& rng);

}  // namespace hypdb

#endif  // HYPDB_DATAGEN_RANDOM_DATA_H_
