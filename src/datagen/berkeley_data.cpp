#include "datagen/berkeley_data.h"

#include <vector>

#include "util/rng.h"

namespace hypdb {
namespace {

struct Cell {
  const char* gender;
  const char* department;
  int admitted;
  int rejected;
};

// Bickel et al. (1975), Table 1: the six largest departments.
constexpr Cell kCells[] = {
    {"Male", "A", 512, 313},   {"Female", "A", 89, 19},
    {"Male", "B", 353, 207},   {"Female", "B", 17, 8},
    {"Male", "C", 120, 205},   {"Female", "C", 202, 391},
    {"Male", "D", 138, 279},   {"Female", "D", 131, 244},
    {"Male", "E", 53, 138},    {"Female", "E", 94, 299},
    {"Male", "F", 22, 351},    {"Female", "F", 24, 317},
};

}  // namespace

StatusOr<Table> GenerateBerkeleyData(const BerkeleyDataOptions& options) {
  struct Row {
    const char* gender;
    const char* department;
    int accepted;
  };
  std::vector<Row> rows;
  for (const Cell& cell : kCells) {
    for (int i = 0; i < cell.admitted; ++i) {
      rows.push_back({cell.gender, cell.department, 1});
    }
    for (int i = 0; i < cell.rejected; ++i) {
      rows.push_back({cell.gender, cell.department, 0});
    }
  }
  if (options.shuffle) {
    Rng rng(options.seed);
    rng.Shuffle(&rows);
  }

  ColumnBuilder gender_b("Gender");
  ColumnBuilder dept_b("Department");
  ColumnBuilder accepted_b("Accepted");
  accepted_b.RegisterLabel("0");
  accepted_b.RegisterLabel("1");
  for (const Row& row : rows) {
    gender_b.Append(row.gender);
    dept_b.Append(row.department);
    accepted_b.AppendCode(row.accepted);
  }

  Table table;
  HYPDB_RETURN_IF_ERROR(table.AddColumn(gender_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(dept_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(accepted_b.Finish()));
  return table;
}

}  // namespace hypdb
