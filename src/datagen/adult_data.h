// Synthetic AdultData (UCI census income — paper Sec. 7.3, Fig. 3 top).
//
// The generator encodes the causal story HypDB uncovers in the real UCI
// extract: Gender is a root; its large marginal association with Income
// (≈0.11 vs ≈0.30) flows almost entirely through MaritalStatus (the
// adjusted-gross-income inconsistency the paper reports — married filers
// report household income) and secondarily through Education and
// HoursPerWeek, with only a small direct Gender → Income edge. Also
// includes EducationNum (bijective FD of Education) and Fnlwgt
// (key-like), exercising the Sec. 4 dropping rules.

#ifndef HYPDB_DATAGEN_ADULT_DATA_H_
#define HYPDB_DATAGEN_ADULT_DATA_H_

#include "dataframe/table.h"
#include "util/statusor.h"

namespace hypdb {

struct AdultDataOptions {
  int64_t num_rows = 48842;  // UCI row count
  uint64_t seed = 1994;
};

/// 15 columns: Age, Workclass, Fnlwgt, Education, EducationNum,
/// MaritalStatus, Occupation, Relationship, Race, Gender, CapitalGain,
/// CapitalLoss, HoursPerWeek, NativeCountry, Income.
StatusOr<Table> GenerateAdultData(const AdultDataOptions& options = {});

}  // namespace hypdb

#endif  // HYPDB_DATAGEN_ADULT_DATA_H_
