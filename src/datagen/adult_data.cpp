#include "datagen/adult_data.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.h"

namespace hypdb {
namespace {

constexpr const char* kAges[5] = {"17-25", "26-35", "36-45", "46-60", "60+"};
constexpr double kAgeProbs[5] = {0.18, 0.26, 0.24, 0.22, 0.10};

constexpr const char* kEducation[5] = {"HS-grad", "SomeCollege", "Bachelors",
                                       "Masters", "Doctorate"};
constexpr int kEducationNum[5] = {9, 10, 13, 14, 16};
constexpr double kEduProbsMale[5] = {0.32, 0.28, 0.25, 0.11, 0.04};
constexpr double kEduProbsFemale[5] = {0.36, 0.32, 0.22, 0.08, 0.02};
constexpr double kEduIncomeBonus[5] = {0.0, 0.02, 0.09, 0.16, 0.22};

constexpr const char* kMarital[3] = {"Married", "Single", "Divorced"};
constexpr const char* kOccupations[5] = {"Service", "Admin", "BlueCollar",
                                         "Professional", "Managerial"};
constexpr const char* kHours[3] = {"<35", "35-45", ">45"};
constexpr const char* kWorkclass[4] = {"Private", "SelfEmp", "Gov",
                                       "Unemployed"};
constexpr const char* kRace[3] = {"White", "Black", "Other"};
constexpr const char* kCountry[3] = {"US", "Mexico", "Other"};
constexpr const char* kCapital[3] = {"none", "small", "large"};

}  // namespace

StatusOr<Table> GenerateAdultData(const AdultDataOptions& options) {
  Rng rng(options.seed);

  ColumnBuilder age_b("Age");
  ColumnBuilder workclass_b("Workclass");
  ColumnBuilder fnlwgt_b("Fnlwgt");
  ColumnBuilder edu_b("Education");
  ColumnBuilder edunum_b("EducationNum");
  ColumnBuilder marital_b("MaritalStatus");
  ColumnBuilder occ_b("Occupation");
  ColumnBuilder rel_b("Relationship");
  ColumnBuilder race_b("Race");
  ColumnBuilder gender_b("Gender");
  ColumnBuilder capgain_b("CapitalGain");
  ColumnBuilder caploss_b("CapitalLoss");
  ColumnBuilder hours_b("HoursPerWeek");
  ColumnBuilder country_b("NativeCountry");
  ColumnBuilder income_b("Income");
  income_b.RegisterLabel("0");
  income_b.RegisterLabel("1");

  for (int64_t row = 0; row < options.num_rows; ++row) {
    const bool male = rng.Bernoulli(0.67);
    const int age = rng.WeightedIndex(
        std::vector<double>(kAgeProbs, kAgeProbs + 5));

    // Gender → Education.
    const double* edu_probs = male ? kEduProbsMale : kEduProbsFemale;
    const int edu =
        rng.WeightedIndex(std::vector<double>(edu_probs, edu_probs + 5));

    // Gender, Age → MaritalStatus. The UCI quirk the paper surfaces:
    // "Married" is recorded far more often for men.
    double p_married = (male ? 0.52 : 0.12) +
                       (age >= 2 ? 0.14 : age == 1 ? 0.06 : -0.06);
    p_married = std::clamp(p_married, 0.02, 0.95);
    int marital;
    if (rng.Bernoulli(p_married)) {
      marital = 0;  // Married
    } else {
      marital = rng.Bernoulli(male ? 0.25 : 0.40) ? 2 : 1;  // Divorced/Single
    }

    // Education, Gender → Occupation.
    std::vector<double> occ_probs;
    if (edu >= 3) {
      occ_probs = {0.05, 0.10, 0.05, 0.45, 0.35};
    } else if (edu == 2) {
      occ_probs = {0.10, 0.25, 0.15, 0.30, 0.20};
    } else if (male) {
      occ_probs = {0.15, 0.15, 0.45, 0.15, 0.10};
    } else {
      occ_probs = {0.30, 0.40, 0.10, 0.12, 0.08};
    }
    const int occ = rng.WeightedIndex(occ_probs);

    // Gender → HoursPerWeek.
    std::vector<double> hours_probs =
        male ? std::vector<double>{0.13, 0.55, 0.32}
             : std::vector<double>{0.30, 0.56, 0.14};
    const int hours = rng.WeightedIndex(hours_probs);

    // Education → CapitalGain (mildly).
    std::vector<double> cap_probs = edu >= 2
                                        ? std::vector<double>{0.88, 0.08, 0.04}
                                        : std::vector<double>{0.95, 0.04, 0.01};
    const int capgain = rng.WeightedIndex(cap_probs);
    const int caploss = rng.WeightedIndex({0.95, 0.04, 0.01});

    // Income: dominated by MaritalStatus (the household-income
    // inconsistency), then Education; only a small direct Gender edge.
    double p = 0.03;
    if (marital == 0) p += 0.30;
    p += kEduIncomeBonus[edu];
    if (hours == 2) p += 0.06;
    if (capgain == 2) p += 0.30;
    if (capgain == 1) p += 0.10;
    if (occ >= 3) p += 0.03;
    p += (age == 2 || age == 3) ? 0.03 : 0.0;
    if (male) p += 0.015;  // direct effect
    p = std::clamp(p, 0.005, 0.97);
    const bool income = rng.Bernoulli(p);

    // Relationship follows MaritalStatus with noise but carries no
    // extra gender signal (a gender-deterministic Husband/Wife coding
    // would dominate every explanation, hiding the MaritalStatus story
    // the paper tells).
    const char* relationship;
    if (marital == 0) {
      relationship = rng.Bernoulli(0.9) ? "Spouse" : "NotInFamily";
    } else {
      relationship = rng.Bernoulli(0.85) ? "NotInFamily" : "Unmarried";
    }

    age_b.Append(kAges[age]);
    workclass_b.Append(
        kWorkclass[rng.WeightedIndex({0.70, 0.12, 0.13, 0.05})]);
    fnlwgt_b.Append(std::to_string(100000 + rng.NextBounded(800000)));
    edu_b.Append(kEducation[edu]);
    edunum_b.Append(std::to_string(kEducationNum[edu]));
    marital_b.Append(kMarital[marital]);
    occ_b.Append(kOccupations[occ]);
    rel_b.Append(relationship);
    race_b.Append(kRace[rng.WeightedIndex({0.85, 0.10, 0.05})]);
    gender_b.Append(male ? "Male" : "Female");
    capgain_b.Append(kCapital[capgain]);
    caploss_b.Append(kCapital[caploss]);
    hours_b.Append(kHours[hours]);
    country_b.Append(kCountry[rng.WeightedIndex({0.90, 0.06, 0.04})]);
    income_b.AppendCode(income ? 1 : 0);
  }

  Table table;
  HYPDB_RETURN_IF_ERROR(table.AddColumn(age_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(workclass_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(fnlwgt_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(edu_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(edunum_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(marital_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(occ_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(rel_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(race_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(gender_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(capgain_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(caploss_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(hours_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(country_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(income_b.Finish()));
  return table;
}

}  // namespace hypdb
