#include "datagen/cancer_data.h"

#include "util/rng.h"

namespace hypdb {
namespace {

// One CPT row: probability of {value 0, value 1}.
std::vector<double> P1(double p_true) { return {1.0 - p_true, p_true}; }

Cpt RootCpt(double p_true) {
  Cpt cpt;
  cpt.card = 2;
  cpt.rows = {P1(p_true)};
  return cpt;
}

// Binary node with ordered parents; p[config] = Pr(node = 1 | config),
// configs in mixed-radix order with the FIRST parent as the
// lowest-order digit.
Cpt BinaryCpt(std::vector<int> parents, std::vector<double> p_true) {
  Cpt cpt;
  cpt.card = 2;
  cpt.parents = std::move(parents);
  cpt.parent_cards.assign(cpt.parents.size(), 2);
  cpt.rows.reserve(p_true.size());
  for (double p : p_true) cpt.rows.push_back(P1(p));
  return cpt;
}

}  // namespace

Dag LucasDag() {
  Dag dag(kLucasNodeCount);
  dag.AddEdge(kAnxiety, kSmoking);
  dag.AddEdge(kPeerPressure, kSmoking);
  dag.AddEdge(kSmoking, kYellowFingers);
  dag.AddEdge(kSmoking, kLungCancer);
  dag.AddEdge(kGenetics, kLungCancer);
  dag.AddEdge(kGenetics, kAttentionDisorder);
  dag.AddEdge(kAllergy, kCoughing);
  dag.AddEdge(kLungCancer, kCoughing);
  dag.AddEdge(kLungCancer, kFatigue);
  dag.AddEdge(kCoughing, kFatigue);
  dag.AddEdge(kAttentionDisorder, kCarAccident);
  dag.AddEdge(kFatigue, kCarAccident);
  return dag;
}

StatusOr<BayesNet> LucasNetwork() {
  Dag dag = LucasDag();
  std::vector<Cpt> cpts(kLucasNodeCount);
  cpts[kAnxiety] = RootCpt(0.64);
  cpts[kPeerPressure] = RootCpt(0.33);
  // Parents listed in DAG insertion order: (Anxiety, Peer_Pressure).
  // Config order: (A=0,P=0), (A=1,P=0), (A=0,P=1), (A=1,P=1).
  cpts[kSmoking] =
      BinaryCpt({kAnxiety, kPeerPressure}, {0.43, 0.74, 0.86, 0.92});
  cpts[kYellowFingers] = BinaryCpt({kSmoking}, {0.23, 0.95});
  cpts[kGenetics] = RootCpt(0.15);
  // (Smoking, Genetics).
  cpts[kLungCancer] =
      BinaryCpt({kSmoking, kGenetics}, {0.23, 0.86, 0.83, 0.99});
  cpts[kAttentionDisorder] = BinaryCpt({kGenetics}, {0.28, 0.68});
  cpts[kAllergy] = RootCpt(0.33);
  // (Allergy, Lung_Cancer).
  cpts[kCoughing] =
      BinaryCpt({kAllergy, kLungCancer}, {0.13, 0.64, 0.85, 0.97});
  // (Lung_Cancer, Coughing).
  cpts[kFatigue] =
      BinaryCpt({kLungCancer, kCoughing}, {0.35, 0.70, 0.80, 0.95});
  // (Attention_Disorder, Fatigue).
  cpts[kCarAccident] =
      BinaryCpt({kAttentionDisorder, kFatigue}, {0.43, 0.78, 0.70, 0.97});
  cpts[kBornEvenDay] = RootCpt(0.5);
  return BayesNet::FromCpts(dag, std::move(cpts));
}

StatusOr<Table> GenerateCancerData(const CancerDataOptions& options) {
  HYPDB_ASSIGN_OR_RETURN(BayesNet net, LucasNetwork());
  Rng rng(options.seed);
  return net.Sample(options.num_rows, rng,
                    {"Anxiety", "Peer_Pressure", "Smoking", "Yellow_Fingers",
                     "Genetics", "Lung_Cancer", "Attention_Disorder",
                     "Allergy", "Coughing", "Fatigue", "Car_Accident",
                     "Born_an_Even_Day"});
}

}  // namespace hypdb
