// Synthetic FlightData (paper Sec. 7.1, Ex. 1.1).
//
// The DoT on-time performance extract the paper uses is not available
// offline; this generator produces a causal replica calibrated to the
// phenomena Fig. 1 reports:
//  * Simpson's paradox between AA and UA at {COS, MFE, MTJ, ROC}: UA has
//    the lower delay rate at *every* airport, yet AA has the lower
//    aggregate rate, because AA concentrates on the low-delay airports
//    (Airport → Carrier and Airport → Delayed confounding);
//  * Year is a secondary confounder (smaller responsibility than
//    Airport);
//  * AirportWAC is a bijective FD of Airport, and Id / FlightNum /
//    TailNum are key-like — exercising the Sec. 4 dropping rules;
//  * dozens of independent noise columns pad the schema to the paper's
//    101 attributes.

#ifndef HYPDB_DATAGEN_FLIGHT_DATA_H_
#define HYPDB_DATAGEN_FLIGHT_DATA_H_

#include "dataframe/table.h"
#include "util/statusor.h"

namespace hypdb {

struct FlightDataOptions {
  int64_t num_rows = 50000;
  /// Independent noise columns appended to reach the paper's width
  /// (core schema has 15 columns; 86 noise columns give 101).
  int num_noise_columns = 86;
  uint64_t seed = 2018;
};

StatusOr<Table> GenerateFlightData(const FlightDataOptions& options = {});

}  // namespace hypdb

#endif  // HYPDB_DATAGEN_FLIGHT_DATA_H_
