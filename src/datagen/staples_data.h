// Synthetic StaplesData (WSJ online-pricing investigation — paper
// Sec. 7.3, Fig. 3 bottom).
//
// Causal model of the reported mechanism: Income → Distance → Price,
// with NO direct Income → Price edge. Customers with low income tend to
// live far from competitors' stores; the pricing algorithm discounts
// near competitors. The headline finding HypDB must reproduce: a
// significant (if small) total effect of Income on Price and a *null*
// direct effect — discrimination is real but unintended.

#ifndef HYPDB_DATAGEN_STAPLES_DATA_H_
#define HYPDB_DATAGEN_STAPLES_DATA_H_

#include "dataframe/table.h"
#include "util/statusor.h"

namespace hypdb {

struct StaplesDataOptions {
  int64_t num_rows = 988871;  // Table 1 size
  uint64_t seed = 2012;
};

/// 6 columns: Income {0 = low, 1 = high}, Distance {Near, Far},
/// Price {0 = discounted, 1 = high}, State, Urban, SessionId (key-like).
StatusOr<Table> GenerateStaplesData(const StaplesDataOptions& options = {});

}  // namespace hypdb

#endif  // HYPDB_DATAGEN_STAPLES_DATA_H_
