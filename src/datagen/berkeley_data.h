// BerkeleyData: the 1973 UC Berkeley graduate admissions data
// (Bickel, Hammel & O'Connell 1975 — paper Sec. 7.3, Fig. 4 top).
//
// Unlike the other datasets this one is *not* synthetic: the published
// per-(gender, department) applicant/admit counts are public-domain
// aggregates, replayed here row by row. Marginally men are admitted at
// 0.445 vs women at 0.304; conditioning on Department shrinks — and in
// the rewritten query reverses — the gap, because women applied to the
// competitive departments.

#ifndef HYPDB_DATAGEN_BERKELEY_DATA_H_
#define HYPDB_DATAGEN_BERKELEY_DATA_H_

#include "dataframe/table.h"
#include "util/statusor.h"

namespace hypdb {

struct BerkeleyDataOptions {
  /// Shuffle the emitted rows (cosmetic; statistics are unaffected).
  bool shuffle = true;
  uint64_t seed = 1973;
};

/// Columns: Gender {Female, Male}, Department {A..F}, Accepted {0, 1}.
StatusOr<Table> GenerateBerkeleyData(const BerkeleyDataOptions& options = {});

}  // namespace hypdb

#endif  // HYPDB_DATAGEN_BERKELEY_DATA_H_
