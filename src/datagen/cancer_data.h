// CancerData: the LUCAS lung-cancer simulator (Guyon 2009) — the paper's
// ground-truth dataset (Sec. 7.3, Fig. 4 bottom, Fig. 7).
//
// The causal DAG of Fig. 7, encoded verbatim as a Bayesian network over
// 12 binary attributes. Edges:
//   Anxiety -> Smoking;  Peer_Pressure -> Smoking;
//   Smoking -> Yellow_Fingers;  Smoking -> Lung_Cancer;
//   Genetics -> Lung_Cancer;  Genetics -> Attention_Disorder;
//   Allergy -> Coughing;  Lung_Cancer -> Coughing;
//   Lung_Cancer -> Fatigue;  Coughing -> Fatigue;
//   Attention_Disorder -> Car_Accident;  Fatigue -> Car_Accident;
//   Born_an_Even_Day isolated.
//
// There is no edge Lung_Cancer → Car_Accident: the query of Fig. 4
// (avg(Car_Accident) GROUP BY Lung_Cancer) must show a significant total
// effect (via Fatigue) and a null direct effect.

#ifndef HYPDB_DATAGEN_CANCER_DATA_H_
#define HYPDB_DATAGEN_CANCER_DATA_H_

#include "bn/bayes_net.h"
#include "dataframe/table.h"
#include "graph/dag.h"
#include "util/statusor.h"

namespace hypdb {

/// Node ids of the LUCAS DAG (indices into the generated table).
enum LucasNode {
  kAnxiety = 0,
  kPeerPressure,
  kSmoking,
  kYellowFingers,
  kGenetics,
  kLungCancer,
  kAttentionDisorder,
  kAllergy,
  kCoughing,
  kFatigue,
  kCarAccident,
  kBornEvenDay,
  kLucasNodeCount,
};

/// The Fig. 7 DAG.
Dag LucasDag();

/// The LUCAS Bayesian network (Fig. 7 structure, CPTs close to the
/// published generator).
StatusOr<BayesNet> LucasNetwork();

struct CancerDataOptions {
  int64_t num_rows = 2000;  // Table 1 size
  uint64_t seed = 2009;
};

StatusOr<Table> GenerateCancerData(const CancerDataOptions& options = {});

}  // namespace hypdb

#endif  // HYPDB_DATAGEN_CANCER_DATA_H_
