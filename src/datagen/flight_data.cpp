#include "datagen/flight_data.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"

namespace hypdb {
namespace {

struct AirportSpec {
  const char* code;
  double traffic;     // relative share of flights
  double base_delay;  // delay probability before adjustments
  // Carrier mix at this airport: AA, UA, DL, WN, AS, B6.
  double carrier_mix[6];
};

constexpr const char* kCarriers[6] = {"AA", "UA", "DL", "WN", "AS", "B6"};

// The four Ex. 1.1 airports plus background traffic. AA concentrates on
// the low-delay airports (COS, MFE), UA on the high-delay ones (ROC,
// MTJ) — the Fig. 1(b)/(c) marginals.
constexpr AirportSpec kAirports[] = {
    {"COS", 1.2, 0.10, {0.52, 0.08, 0.10, 0.10, 0.10, 0.10}},
    {"MFE", 1.0, 0.07, {0.56, 0.06, 0.10, 0.10, 0.09, 0.09}},
    {"MTJ", 0.8, 0.28, {0.18, 0.42, 0.10, 0.10, 0.10, 0.10}},
    {"ROC", 1.4, 0.44, {0.08, 0.56, 0.09, 0.09, 0.09, 0.09}},
    {"SEA", 2.0, 0.20, {0.15, 0.15, 0.20, 0.15, 0.25, 0.10}},
    {"DEN", 2.2, 0.24, {0.20, 0.25, 0.15, 0.20, 0.10, 0.10}},
    {"ORD", 2.5, 0.30, {0.25, 0.30, 0.15, 0.15, 0.05, 0.10}},
    {"PHX", 1.8, 0.16, {0.22, 0.18, 0.15, 0.25, 0.10, 0.10}},
    {"BOS", 1.6, 0.26, {0.18, 0.22, 0.20, 0.10, 0.10, 0.20}},
    {"SJC", 1.2, 0.14, {0.15, 0.20, 0.15, 0.25, 0.15, 0.10}},
    {"AUS", 1.1, 0.18, {0.25, 0.15, 0.15, 0.25, 0.10, 0.10}},
    {"PDX", 1.0, 0.15, {0.12, 0.18, 0.18, 0.17, 0.25, 0.10}},
};
constexpr int kNumAirports = sizeof(kAirports) / sizeof(kAirports[0]);

// Per-carrier adjustment to the *inbound late-arrival* rate: at any
// fixed airport AA is worse than UA, but entirely through this mediator
// (Fig. 1: the total effect favors UA while the direct effect shows no
// significant difference).
constexpr double kCarrierArrAdj[6] = {+0.10, -0.10, 0.0, +0.05, -0.05, +0.08};

// Year is a secondary confounder (Fig. 1d ranks it after Airport): 2015
// was a bad year for delays AND UA flew relatively more in it. Year and
// Airport are both parents of Carrier — non-adjacent, so the CD
// identifiability assumption (Sec. 4) holds for the treatment.
constexpr int kYears[3] = {2015, 2016, 2017};
constexpr double kYearDelayAdj[3] = {+0.03, 0.0, -0.02};
// Year's direct effect on the inbound late-arrival rate (strong enough
// that the Year -> ArrDelayed edge is detectable; without it phase I of
// CD mistakes the child ArrDelayed for a co-parent, see below).
constexpr double kYearArrAdj[3] = {+0.05, 0.0, -0.04};
// Carrier-mix multiplier per (carrier, year): UA over-represented early,
// AA late.
constexpr double kYearBoost[6][3] = {
    {0.55, 1.0, 1.45},  // AA
    {1.45, 1.0, 0.55},  // UA
    {1.0, 1.0, 1.0},    // DL
    {1.0, 1.0, 1.0},    // WN
    {1.0, 1.0, 1.0},    // AS
    {1.0, 1.0, 1.0},    // B6
};

constexpr const char* kDepTimes[4] = {"morning", "afternoon", "evening",
                                      "night"};
constexpr double kDepTimeAdj[4] = {-0.03, 0.0, +0.05, +0.02};

}  // namespace

StatusOr<Table> GenerateFlightData(const FlightDataOptions& options) {
  Rng rng(options.seed);
  const int64_t n = options.num_rows;

  ColumnBuilder year_b("Year");
  ColumnBuilder quarter_b("Quarter");
  ColumnBuilder month_b("Month");
  ColumnBuilder day_b("DayofMonth");
  ColumnBuilder dow_b("DayOfWeek");
  ColumnBuilder airport_b("Airport");
  ColumnBuilder wac_b("AirportWAC");
  ColumnBuilder dest_b("Dest");
  ColumnBuilder carrier_b("Carrier");
  ColumnBuilder deptime_b("DepTimeBlk");
  ColumnBuilder delayed_b("Delayed");
  ColumnBuilder arr_delayed_b("ArrDelayed");
  ColumnBuilder id_b("Id");
  ColumnBuilder flightnum_b("FlightNum");
  ColumnBuilder tailnum_b("TailNum");
  // Pin 0/1 order for the outcome columns.
  delayed_b.RegisterLabel("0");
  delayed_b.RegisterLabel("1");
  arr_delayed_b.RegisterLabel("0");
  arr_delayed_b.RegisterLabel("1");

  std::vector<ColumnBuilder> noise;
  noise.reserve(options.num_noise_columns);
  std::vector<int> noise_cards;
  for (int i = 0; i < options.num_noise_columns; ++i) {
    noise.emplace_back("Aux" + std::to_string(i));
    noise_cards.push_back(2 + static_cast<int>(rng.NextBounded(6)));
  }

  std::vector<double> traffic(kNumAirports);
  for (int a = 0; a < kNumAirports; ++a) traffic[a] = kAirports[a].traffic;

  for (int64_t row = 0; row < n; ++row) {
    const int a = rng.WeightedIndex(traffic);
    const AirportSpec& airport = kAirports[a];

    const int y = static_cast<int>(rng.NextBounded(3));
    // The year effect on the carrier mix is stronger at high-delay
    // airports (exponent varies by airport). The variation matters: a
    // purely multiplicative boost would factorize P(carrier|airport,year)
    // and make Airport ⊥ Year | Carrier exactly — erasing the collider
    // footprint the CD algorithm (and Prop. 4.1) relies on.
    const double exponent = 0.4 + 2.0 * airport.base_delay;
    std::vector<double> mix(6);
    for (int c = 0; c < 6; ++c) {
      mix[c] = airport.carrier_mix[c] * std::pow(kYearBoost[c][y], exponent);
    }
    const int c = rng.WeightedIndex(mix);

    const int month = 1 + static_cast<int>(rng.NextBounded(12));
    const int quarter = (month - 1) / 3 + 1;
    const int day = 1 + static_cast<int>(rng.NextBounded(28));
    const int dow = 1 + static_cast<int>(rng.NextBounded(7));
    const int deptime = static_cast<int>(rng.NextBounded(4));
    int dest = static_cast<int>(rng.NextBounded(kNumAirports - 1));
    if (dest >= a) ++dest;

    // A late inbound aircraft is a strong *cause* of departure delay
    // (the paper lists ArrDelay among the mediating variables); the
    // carriers differ only here. Year and Airport also act on the
    // inbound rate directly — without those edges the weak
    // ArrDelayed-Year dependence (child-through-treatment only) is below
    // test power and phase I of CD would mistake the child for a parent.
    // The airport term dominates the carrier adjustment on purpose: at
    // the four focus airports the carrier mix anti-correlates with the
    // base delay, and a weaker airport term would cancel against it,
    // leaving ArrDelayed unfaithfully independent of Airport in the
    // queried subpopulation.
    const bool arr_delayed = rng.Bernoulli(std::clamp(
        0.05 + 0.85 * airport.base_delay + kCarrierArrAdj[c] +
            kYearArrAdj[y],
        0.01, 0.95));
    double p = 0.6 * airport.base_delay +
               kYearDelayAdj[y] + kDepTimeAdj[deptime] +
               (arr_delayed ? 0.40 : 0.0) +
               0.01 * ((month >= 11 || month <= 1) ? 1 : 0);
    p = std::clamp(p, 0.01, 0.95);
    const bool delayed = rng.Bernoulli(p);

    year_b.Append(std::to_string(kYears[y]));
    quarter_b.Append("Q" + std::to_string(quarter));
    month_b.Append(std::to_string(month));
    day_b.Append(std::to_string(day));
    dow_b.Append(std::to_string(dow));
    airport_b.Append(airport.code);
    wac_b.Append("W" + std::to_string(100 + a));  // bijective with Airport
    dest_b.Append(kAirports[dest].code);
    carrier_b.Append(kCarriers[c]);
    deptime_b.Append(kDepTimes[deptime]);
    delayed_b.AppendCode(delayed ? 1 : 0);
    arr_delayed_b.AppendCode(arr_delayed ? 1 : 0);
    id_b.Append(std::to_string(row));  // key
    flightnum_b.Append(std::to_string(1000 + rng.NextBounded(5000)));
    tailnum_b.Append("N" + std::to_string(rng.NextBounded(3000)));
    for (int i = 0; i < options.num_noise_columns; ++i) {
      noise[i].Append("v" +
                      std::to_string(rng.NextBounded(noise_cards[i])));
    }
  }

  Table table;
  HYPDB_RETURN_IF_ERROR(table.AddColumn(year_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(quarter_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(month_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(day_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(dow_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(airport_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(wac_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(dest_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(carrier_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(deptime_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(delayed_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(arr_delayed_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(id_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(flightnum_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(tailnum_b.Finish()));
  for (auto& b : noise) {
    HYPDB_RETURN_IF_ERROR(table.AddColumn(b.Finish()));
  }
  return table;
}

}  // namespace hypdb
