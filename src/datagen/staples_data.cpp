#include "datagen/staples_data.h"

#include "util/rng.h"

namespace hypdb {

StatusOr<Table> GenerateStaplesData(const StaplesDataOptions& options) {
  Rng rng(options.seed);

  ColumnBuilder income_b("Income");
  ColumnBuilder distance_b("Distance");
  ColumnBuilder price_b("Price");
  ColumnBuilder state_b("State");
  ColumnBuilder urban_b("Urban");
  ColumnBuilder session_b("SessionId");
  income_b.RegisterLabel("0");
  income_b.RegisterLabel("1");
  price_b.RegisterLabel("0");
  price_b.RegisterLabel("1");

  static const char* kStates[8] = {"CA", "TX", "NY", "FL",
                                   "WA", "IL", "MA", "OH"};

  for (int64_t row = 0; row < options.num_rows; ++row) {
    const bool high_income = rng.Bernoulli(0.45);
    const bool urban = rng.Bernoulli(high_income ? 0.72 : 0.45);
    // Income (and urbanity) → Distance to a competitor's store.
    double p_far = high_income ? 0.28 : 0.62;
    p_far += urban ? -0.10 : 0.10;
    const bool far = rng.Bernoulli(p_far);
    // Distance → Price; NO direct income edge.
    const bool high_price = rng.Bernoulli(far ? 0.092 : 0.021);

    income_b.AppendCode(high_income ? 1 : 0);
    distance_b.Append(far ? "Far" : "Near");
    price_b.AppendCode(high_price ? 1 : 0);
    state_b.Append(kStates[rng.NextBounded(8)]);
    urban_b.Append(urban ? "yes" : "no");
    session_b.Append("s" + std::to_string(row));
  }

  Table table;
  HYPDB_RETURN_IF_ERROR(table.AddColumn(income_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(distance_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(price_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(state_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(urban_b.Finish()));
  HYPDB_RETURN_IF_ERROR(table.AddColumn(session_b.Finish()));
  return table;
}

}  // namespace hypdb
