#include "cube/data_cube.h"

#include <algorithm>
#include <bit>

namespace hypdb {
namespace {

// Positions (within a parent cuboid's columns) that survive in `mask`,
// where `parent_mask` lists the parent's dims.
std::vector<int> KeepPositions(uint32_t parent_mask, uint32_t mask) {
  std::vector<int> keep;
  int pos = 0;
  for (uint32_t bit = 1; bit <= parent_mask; bit <<= 1) {
    if (parent_mask & bit) {
      if (mask & bit) keep.push_back(pos);
      ++pos;
    }
    if (bit == 0) break;
  }
  return keep;
}

}  // namespace

StatusOr<DataCube> DataCube::Build(const TableView& view,
                                   std::vector<int> dims, int max_dims) {
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  if (static_cast<int>(dims.size()) > max_dims) {
    return Status::InvalidArgument(
        "cube limited to " + std::to_string(max_dims) + " dimensions, got " +
        std::to_string(dims.size()));
  }

  DataCube cube;
  cube.dims_ = dims;
  cube.num_rows_ = view.NumRows();
  const int k = static_cast<int>(dims.size());
  const uint32_t full = k == 32 ? ~0u : (1u << k) - 1;

  // One scan for the finest cuboid.
  HYPDB_ASSIGN_OR_RETURN(GroupCounts finest, CountBy(view, dims));
  cube.total_cells_ += finest.NumGroups();
  cube.cells_.emplace(full, std::move(finest));

  // Remaining cuboids by decreasing arity; each marginalizes its parent
  // (mask + lowest missing bit), which is already materialized.
  std::vector<uint32_t> masks;
  for (uint32_t m = 0; m < full; ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    int pa = std::popcount(a);
    int pb = std::popcount(b);
    return pa != pb ? pa > pb : a < b;
  });
  for (uint32_t mask : masks) {
    uint32_t missing = full & ~mask;
    uint32_t parent = mask | (missing & (~missing + 1));  // add lowest bit
    const GroupCounts& parent_counts = cube.cells_.at(parent);
    GroupCounts marginal =
        MarginalizeOnto(parent_counts, KeepPositions(parent, mask));
    cube.total_cells_ += marginal.NumGroups();
    cube.cells_.emplace(mask, std::move(marginal));
  }
  return cube;
}

StatusOr<GroupCounts> DataCube::Counts(const std::vector<int>& cols) const {
  uint32_t mask = 0;
  for (int c : cols) {
    auto it = std::lower_bound(dims_.begin(), dims_.end(), c);
    if (it == dims_.end() || *it != c) {
      return Status::NotFound("column " + std::to_string(c) +
                              " not in cube dimensions");
    }
    mask |= 1u << (it - dims_.begin());
  }
  // The cuboid is stored in sorted-dims order; honor the CountEngine
  // contract that the result codec follows the requested order.
  return ProjectOnto(cells_.at(mask), cols);
}

int64_t DataCube::CellsFor(const std::vector<int>& cols) const {
  uint32_t mask = 0;
  for (int c : cols) {
    auto it = std::lower_bound(dims_.begin(), dims_.end(), c);
    if (it == dims_.end() || *it != c) return -1;
    mask |= 1u << (it - dims_.begin());
  }
  return cells_.at(mask).NumGroups();
}

StatusOr<GroupCounts> CubeCountProvider::Counts(
    const std::vector<int>& cols) {
  ++stats_.queries;
  StatusOr<GroupCounts> from_cube = cube_->Counts(cols);
  if (from_cube.ok()) {
    ++stats_.cube_hits;
    return from_cube;
  }
  if (fallback_ != nullptr) {
    ++stats_.fallback_calls;
    return fallback_->Counts(cols);
  }
  return from_cube.status();
}

CountEngineStats CubeCountProvider::stats() const {
  CountEngineStats total = stats_;
  if (fallback_ != nullptr) {
    total += fallback_->stats();
    // Fallback calls were issued by this adapter for the same external
    // queries; only count each query once.
    total.queries = stats_.queries;
  }
  return total;
}

void CubeCountProvider::ResetStats() {
  stats_ = {};
  if (fallback_ != nullptr) fallback_->ResetStats();
}

}  // namespace hypdb
