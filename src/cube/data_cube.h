// OLAP data cube: pre-computed count(*) GROUP BY for every subset of a
// dimension set (paper Sec. 6, Fig. 6d/8b).
//
// Contingency tables with their marginals are exactly OLAP data cubes
// with a COUNT measure. With a cube available, HypDB answers every
// entropy / support query by lookup instead of scanning the data; the
// cube lattice is computed bottom-up, each marginal from its smallest
// already-computed parent, so the data itself is scanned exactly once.
// Like the PostgreSQL cube operator the paper uses, the dimension count
// is capped (default 12).

#ifndef HYPDB_CUBE_DATA_CUBE_H_
#define HYPDB_CUBE_DATA_CUBE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dataframe/group_by.h"
#include "dataframe/view.h"
#include "stats/count_provider.h"
#include "util/statusor.h"

namespace hypdb {

class DataCube {
 public:
  /// Materializes the full cube over `dims` (table column indices).
  /// Fails when |dims| exceeds `max_dims` or the finest cell domain
  /// overflows.
  static StatusOr<DataCube> Build(const TableView& view,
                                  std::vector<int> dims, int max_dims = 12);

  /// Counts grouped by `cols`, which must be a subset of dims().
  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) const;

  const std::vector<int>& dims() const { return dims_; }
  int64_t NumRows() const { return num_rows_; }

  /// Total materialized cells across the lattice (memory proxy).
  int64_t TotalCells() const { return total_cells_; }
  /// Number of group-bys materialized (2^|dims|).
  int NumCuboids() const { return static_cast<int>(cells_.size()); }

 private:
  DataCube() = default;

  std::vector<int> dims_;                  // sorted
  std::map<uint32_t, GroupCounts> cells_;  // mask over dims_ -> counts
  int64_t num_rows_ = 0;
  int64_t total_cells_ = 0;
};

/// CountProvider view of a cube. Queries outside the cube's dimension set
/// fail unless a fallback provider is supplied.
class CubeCountProvider : public CountProvider {
 public:
  explicit CubeCountProvider(
      std::shared_ptr<const DataCube> cube,
      std::shared_ptr<CountProvider> fallback = nullptr)
      : cube_(std::move(cube)), fallback_(std::move(fallback)) {}

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override;

  int64_t NumRows() const override { return cube_->NumRows(); }

  int64_t cube_hits() const { return cube_hits_; }
  int64_t fallback_calls() const { return fallback_calls_; }

 private:
  std::shared_ptr<const DataCube> cube_;
  std::shared_ptr<CountProvider> fallback_;
  int64_t cube_hits_ = 0;
  int64_t fallback_calls_ = 0;
};

}  // namespace hypdb

#endif  // HYPDB_CUBE_DATA_CUBE_H_
