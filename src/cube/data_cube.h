// OLAP data cube: pre-computed count(*) GROUP BY for every subset of a
// dimension set (paper Sec. 6, Fig. 6d/8b).
//
// Contingency tables with their marginals are exactly OLAP data cubes
// with a COUNT measure. With a cube available, HypDB answers every
// entropy / support query by lookup instead of scanning the data; the
// cube lattice is computed bottom-up, each marginal from its smallest
// already-computed parent, so the data itself is scanned exactly once.
// Like the PostgreSQL cube operator the paper uses, the dimension count
// is capped (default 12).

#ifndef HYPDB_CUBE_DATA_CUBE_H_
#define HYPDB_CUBE_DATA_CUBE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dataframe/group_by.h"
#include "dataframe/view.h"
#include "engine/count_engine.h"
#include "util/statusor.h"

namespace hypdb {

class DataCube {
 public:
  /// Materializes the full cube over `dims` (table column indices).
  /// Fails when |dims| exceeds `max_dims` or the finest cell domain
  /// overflows.
  static StatusOr<DataCube> Build(const TableView& view,
                                  std::vector<int> dims, int max_dims = 12);

  /// Counts grouped by `cols`, which must be a subset of dims().
  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) const;

  /// Exact cell count of the cuboid over `cols` without materializing a
  /// projection, or -1 when `cols` is not a subset of dims(). The
  /// observed-cell source behind adaptive cache admission: every covered
  /// subset's true sparsity is a map lookup here.
  int64_t CellsFor(const std::vector<int>& cols) const;

  const std::vector<int>& dims() const { return dims_; }
  int64_t NumRows() const { return num_rows_; }

  /// Total materialized cells across the lattice (memory proxy).
  int64_t TotalCells() const { return total_cells_; }
  /// Number of group-bys materialized (2^|dims|).
  int NumCuboids() const { return static_cast<int>(cells_.size()); }

 private:
  DataCube() = default;

  std::vector<int> dims_;                  // sorted
  std::map<uint32_t, GroupCounts> cells_;  // mask over dims_ -> counts
  int64_t num_rows_ = 0;
  int64_t total_cells_ = 0;
};

/// CountEngine view of a cube. Queries outside the cube's dimension set
/// fail unless a fallback engine is supplied.
class CubeCountProvider : public CountEngine {
 public:
  explicit CubeCountProvider(
      std::shared_ptr<const DataCube> cube,
      std::shared_ptr<CountEngine> fallback = nullptr)
      : cube_(std::move(cube)), fallback_(std::move(fallback)) {}

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override;

  int64_t NumRows() const override { return cube_->NumRows(); }

  /// This adapter's counters plus the fallback engine's (if any).
  CountEngineStats stats() const override;
  void ResetStats() override;

  int64_t cube_hits() const { return stats_.cube_hits; }
  int64_t fallback_calls() const { return stats_.fallback_calls; }

 private:
  std::shared_ptr<const DataCube> cube_;
  std::shared_ptr<CountEngine> fallback_;
  CountEngineStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_CUBE_DATA_CUBE_H_
