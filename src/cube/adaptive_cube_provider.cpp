#include "cube/adaptive_cube_provider.h"

#include <utility>

namespace hypdb {

AdaptiveCubeProvider::AdaptiveCubeProvider(std::shared_ptr<CountEngine> base)
    : base_(std::move(base)) {}

std::shared_ptr<const AdaptiveCubeProvider::Installed>
AdaptiveCubeProvider::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return installed_;
}

StatusOr<GroupCounts> AdaptiveCubeProvider::Counts(
    const std::vector<int>& cols) {
  std::shared_ptr<const Installed> snap = Snapshot();
  if (snap != nullptr) {
    // Serve from the lattice only when it is *current*: built at the
    // base's present population version (requests hold the dataset read
    // lease, so the version cannot move under them) and covering the
    // requested columns. Duplicate columns bypass, like every cache
    // layer.
    std::vector<int> sorted = SortedUniqueColumns(cols);
    if (sorted.size() == cols.size() &&
        snap->watermark == base_->PopulationVersion() &&
        snap->cube->CellsFor(sorted) >= 0) {
      StatusOr<GroupCounts> from_cube = snap->cube->Counts(cols);
      if (from_cube.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.queries;
        ++stats_.cube_hits;
        return from_cube;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.queries;
      // A cube is installed but could not serve (uncovered columns or
      // stale watermark) — the Fig. 6d fallback accounting.
      ++stats_.fallback_calls;
    }
    return base_->Counts(cols);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
  }
  return base_->Counts(cols);
}

int64_t AdaptiveCubeProvider::ObservedCellBound(
    const std::vector<int>& cols) const {
  std::shared_ptr<const Installed> snap = Snapshot();
  if (snap != nullptr && snap->watermark == base_->PopulationVersion()) {
    const int64_t cells = snap->cube->CellsFor(SortedUniqueColumns(cols));
    if (cells >= 0) return cells;
  }
  return base_->ObservedCellBound(cols);
}

CountEngineStats AdaptiveCubeProvider::stats() const {
  CountEngineStats total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = stats_;
  }
  total += base_->stats();
  // Base calls were issued on behalf of the same external queries.
  std::lock_guard<std::mutex> lock(mu_);
  total.queries = stats_.queries;
  return total;
}

void AdaptiveCubeProvider::ResetStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = {};
  }
  base_->ResetStats();
}

void AdaptiveCubeProvider::InstallCube(std::shared_ptr<const DataCube> cube,
                                       int64_t watermark) {
  auto installed = std::make_shared<const Installed>(
      Installed{std::move(cube), watermark});
  std::lock_guard<std::mutex> lock(mu_);
  installed_ = std::move(installed);
}

void AdaptiveCubeProvider::DropCube() {
  std::lock_guard<std::mutex> lock(mu_);
  installed_.reset();
}

bool AdaptiveCubeProvider::HasCube() const { return Snapshot() != nullptr; }

int64_t AdaptiveCubeProvider::CubeWatermark() const {
  std::shared_ptr<const Installed> snap = Snapshot();
  return snap != nullptr ? snap->watermark : -1;
}

int64_t AdaptiveCubeProvider::CubeCells() const {
  std::shared_ptr<const Installed> snap = Snapshot();
  return snap != nullptr ? snap->cube->TotalCells() : 0;
}

std::vector<int> AdaptiveCubeProvider::CubeDims() const {
  std::shared_ptr<const Installed> snap = Snapshot();
  return snap != nullptr ? snap->cube->dims() : std::vector<int>{};
}

}  // namespace hypdb
