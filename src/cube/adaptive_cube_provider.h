// AdaptiveCubeProvider: a hot-swappable cube layer for growing datasets.
//
// CubeCountProvider (Fig. 6d) is a static configuration: build the cube
// up front, answer from it forever. This provider makes the cube a
// *runtime decision*: it wraps a live base engine (the registry's
// ChunkedCountProvider) and holds an optional DataCube installed by the
// dataset registry's advisor. A query over a subset of the cube's
// dimensions is answered from the lattice — no scan at all — when the
// cube is current (built at the base's present population version);
// anything else (uncovered columns, stale cube, no cube) delegates to
// the base untouched.
//
// Staleness is handled by construction, not invalidation: the installed
// cube carries the watermark it was built at, and every query compares
// it against the live base's PopulationVersion(). An append makes the
// cube silently inert (bit-identity is never at risk); the advisor
// observes the mismatch on its next pass and demotes (drops) or rebuilds
// it. Installation and demotion are O(1) pointer swaps — the build
// itself happens outside any engine lock, on the advisor's thread.
//
// The provider is also an observed-cell oracle: a current cube knows the
// exact cell count of every covered subset (DataCube::CellsFor), which
// feeds CachePolicy::AdmitMaterialization through the ObservedCellBound
// chain — how the adaptive policy admits sparse S ∪ P summaries whose
// domain-product bound looks too big.
//
// Thread safety: all public methods may be called concurrently. The
// installed cube is an immutable snapshot behind a mutex-guarded
// shared_ptr; Counts grabs the pointer under the lock and serves outside
// it.

#ifndef HYPDB_CUBE_ADAPTIVE_CUBE_PROVIDER_H_
#define HYPDB_CUBE_ADAPTIVE_CUBE_PROVIDER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "cube/data_cube.h"
#include "engine/count_engine.h"

namespace hypdb {

class AdaptiveCubeProvider : public CountEngine {
 public:
  explicit AdaptiveCubeProvider(std::shared_ptr<CountEngine> base);

  StatusOr<GroupCounts> Counts(const std::vector<int>& cols) override;

  int64_t NumRows() const override { return base_->NumRows(); }

  Status Prefetch(const std::vector<int>& cols) override {
    return base_->Prefetch(cols);
  }

  int64_t PopulationVersion() const override {
    return base_->PopulationVersion();
  }

  /// Deltas always come from the base (the cube has no suffix notion).
  StatusOr<GroupCounts> CountsDelta(const std::vector<int>& cols,
                                    int64_t from_version,
                                    int64_t to_version) override {
    return base_->CountsDelta(cols, from_version, to_version);
  }

  /// A current cube knows the exact cells of every covered subset.
  int64_t ObservedCellBound(const std::vector<int>& cols) const override;

  /// This adapter's counters (cube_hits; fallback_calls for delegated
  /// queries while a cube is installed) plus the base engine's.
  CountEngineStats stats() const override;
  void ResetStats() override;

  /// Installs `cube` as the serving lattice for queries at population
  /// version `watermark`. Replaces any previous cube.
  void InstallCube(std::shared_ptr<const DataCube> cube, int64_t watermark);
  /// Drops the installed cube (demotion). No-op when none is installed.
  void DropCube();

  bool HasCube() const;
  /// Watermark the installed cube was built at, or -1 when none.
  int64_t CubeWatermark() const;
  /// Total lattice cells of the installed cube (memory proxy), 0 if none.
  int64_t CubeCells() const;
  /// Sorted dimensions of the installed cube; empty when none.
  std::vector<int> CubeDims() const;

 private:
  struct Installed {
    std::shared_ptr<const DataCube> cube;
    int64_t watermark = 0;
  };

  /// The installed snapshot, or null. Takes mu_.
  std::shared_ptr<const Installed> Snapshot() const;

  std::shared_ptr<CountEngine> base_;
  mutable std::mutex mu_;
  std::shared_ptr<const Installed> installed_;
  CountEngineStats stats_;
};

}  // namespace hypdb

#endif  // HYPDB_CUBE_ADAPTIVE_CUBE_PROVIDER_H_
