// Bounding the total effect when the parents of the treatment are not
// identifiable (paper Sec. 4, left as future work there):
//
//   "one can learn MB(T) from data, and then set Z = {U,V}, Z = {U},
//    Z = {V} and Z = ∅, i.e., all subsets of MB(T) − {Y}, to infer a
//    bound on the effect."
//
// When the two-nonadjacent-parents assumption fails (Markov-equivalent
// structures), the true PA_T is *some* subset of MB(T) − {Y}. Computing
// the adjustment-formula estimate under every admissible subset yields
// an interval that contains the estimate the (unknowable) correct
// adjustment set would give.

#ifndef HYPDB_CORE_EFFECT_BOUNDS_H_
#define HYPDB_CORE_EFFECT_BOUNDS_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "util/statusor.h"

namespace hypdb {

struct EffectBoundsOptions {
  /// Cap on |Z'| (-1 = up to the full candidate set).
  int max_subset_size = -1;
  /// Enumeration guard: stop after this many subsets (reported via
  /// `truncated`).
  int max_subsets = 512;
};

/// Adjusted difference under one candidate adjustment set.
struct SubsetEffect {
  std::vector<std::string> adjustment_set;   // attribute names
  std::vector<double> diffs;                 // per outcome, t1 - t0
  int64_t blocks_used = 0;
};

/// The effect interval over all evaluated adjustment sets.
struct EffectBounds {
  std::string t0;  // smaller treatment label
  std::string t1;  // larger treatment label
  /// Per outcome: the range of adjusted differences (t1 - t0).
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<SubsetEffect> subsets;  // every evaluated candidate
  bool truncated = false;

  /// True when the interval for `outcome` excludes 0 — the effect's
  /// direction is identified despite the ambiguous adjustment set.
  bool SignIdentified(int outcome) const {
    return lower[outcome] > 0.0 || upper[outcome] < 0.0;
  }
};

/// Evaluates the adjustment formula under every subset of `candidates`
/// (column indices; typically MB(T) minus the outcomes) over the bound
/// query's population. The treatment must be binary in the population.
StatusOr<EffectBounds> BoundTotalEffect(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<int>& candidates,
    const EffectBoundsOptions& options = {});

}  // namespace hypdb

#endif  // HYPDB_CORE_EFFECT_BOUNDS_H_
