#include "core/rewriter.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "dataframe/group_by.h"
#include "stats/mi_engine.h"

namespace hypdb {

// Observed treatment codes in a view, with their labels, sorted by label.
StatusOr<std::vector<std::pair<int32_t, std::string>>> TreatmentsIn(
    const TableView& view, int treatment) {
  HYPDB_ASSIGN_OR_RETURN(GroupCounts counts, CountBy(view, {treatment}));
  const Column& col = view.table().column(treatment);
  std::vector<std::pair<int32_t, std::string>> out;
  for (uint64_t key : counts.keys) {
    int32_t code = static_cast<int32_t>(key);
    out.emplace_back(code, col.dict().Label(code));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

namespace {

// The adjustment formula (Eq. 2) with exact matching over one context.
Status ComputeTotal(
    const TableView& ctx, int treatment, const std::vector<int>& covariates,
    const std::vector<int>& outcomes,
    const std::vector<std::pair<int32_t, std::string>>& treatments,
    ContextRewrite* out) {
  const int num_outcomes = static_cast<int>(outcomes.size());
  const int num_treatments = static_cast<int>(treatments.size());
  std::map<int32_t, int> t_slot;
  for (int i = 0; i < num_treatments; ++i) {
    t_slot[treatments[i].first] = i;
  }

  // Blocks: avg(Y...) GROUP BY T, Z (Listing 2 "Blocks").
  std::vector<int> cols = {treatment};
  cols.insert(cols.end(), covariates.begin(), covariates.end());
  HYPDB_ASSIGN_OR_RETURN(GroupedAverages blocks,
                         AverageBy(ctx, cols, outcomes));

  // Bucket the (t, z) cells by block key z.
  std::vector<int> z_positions;
  for (size_t i = 1; i < cols.size(); ++i) {
    z_positions.push_back(static_cast<int>(i));
  }
  TupleCodec z_codec = blocks.codec.Project(z_positions);
  struct Block {
    int64_t rows = 0;
    std::vector<int64_t> t_rows;
    std::vector<std::vector<double>> t_means;  // [treatment][outcome]
    std::vector<bool> present;
  };
  std::unordered_map<uint64_t, Block> block_of;
  std::vector<int32_t> z_codes(z_positions.size());
  for (int g = 0; g < blocks.NumGroups(); ++g) {
    int32_t t_code = blocks.codec.DecodeAt(blocks.keys[g], 0);
    auto slot_it = t_slot.find(t_code);
    if (slot_it == t_slot.end()) continue;
    for (size_t i = 0; i < z_positions.size(); ++i) {
      z_codes[i] = blocks.codec.DecodeAt(blocks.keys[g], z_positions[i]);
    }
    Block& block = block_of[z_codec.EncodeCodes(z_codes)];
    if (block.present.empty()) {
      block.present.assign(num_treatments, false);
      block.t_rows.assign(num_treatments, 0);
      block.t_means.assign(num_treatments,
                           std::vector<double>(num_outcomes, 0.0));
    }
    block.rows += blocks.counts[g];
    block.present[slot_it->second] = true;
    block.t_rows[slot_it->second] = blocks.counts[g];
    block.t_means[slot_it->second] = blocks.means[g];
  }

  // Exact matching: keep blocks where every compared treatment occurs
  // (HAVING count(DISTINCT T) = k); weights renormalized over survivors.
  out->blocks_seen = static_cast<int64_t>(block_of.size());
  int64_t surviving_rows = 0;
  for (const auto& [key, block] : block_of) {
    bool full = std::all_of(block.present.begin(), block.present.end(),
                            [](bool b) { return b; });
    if (full) {
      ++out->blocks_used;
      surviving_rows += block.rows;
    }
  }

  out->total.clear();
  for (int i = 0; i < num_treatments; ++i) {
    AdjustedGroup group;
    group.treatment_label = treatments[i].second;
    group.means.assign(num_outcomes, 0.0);
    out->total.push_back(std::move(group));
  }
  if (surviving_rows == 0) return Status::Ok();  // overlap failed everywhere

  for (const auto& [key, block] : block_of) {
    bool full = std::all_of(block.present.begin(), block.present.end(),
                            [](bool b) { return b; });
    if (!full) continue;
    double w = static_cast<double>(block.rows) /
               static_cast<double>(surviving_rows);
    for (int i = 0; i < num_treatments; ++i) {
      out->total[i].rows += block.t_rows[i];
      for (int o = 0; o < num_outcomes; ++o) {
        out->total[i].means[o] += w * block.t_means[i][o];
      }
    }
  }
  return Status::Ok();
}

// The mediator formula (Eq. 3) over one context, binary treatment.
Status ComputeDirect(
    const TableView& ctx, int treatment, const std::vector<int>& covariates,
    const std::vector<int>& mediators, const std::vector<int>& outcomes,
    const std::vector<std::pair<int32_t, std::string>>& treatments,
    int reference_slot, ContextRewrite* out) {
  const int num_outcomes = static_cast<int>(outcomes.size());
  const int32_t ref_code = treatments[reference_slot].first;

  // E[Y | T = t, M = m] for every observed (t, m).
  std::vector<int> tm_cols = {treatment};
  tm_cols.insert(tm_cols.end(), mediators.begin(), mediators.end());
  HYPDB_ASSIGN_OR_RETURN(GroupedAverages tm, AverageBy(ctx, tm_cols, outcomes));
  std::vector<int> m_positions;
  for (size_t i = 1; i < tm_cols.size(); ++i) {
    m_positions.push_back(static_cast<int>(i));
  }
  TupleCodec m_codec = tm.codec.Project(m_positions);
  // mean_of[t_code] : m_key -> means.
  std::map<int32_t, std::unordered_map<uint64_t, const std::vector<double>*>>
      mean_of;
  std::vector<int32_t> m_codes(m_positions.size());
  for (int g = 0; g < tm.NumGroups(); ++g) {
    int32_t t_code = tm.codec.DecodeAt(tm.keys[g], 0);
    for (size_t i = 0; i < m_positions.size(); ++i) {
      m_codes[i] = tm.codec.DecodeAt(tm.keys[g], m_positions[i]);
    }
    mean_of[t_code][m_codec.EncodeCodes(m_codes)] = &tm.means[g];
  }

  // Joint counts over (T, M..., Z...) for Pr(m | t_ref, z) and Pr(z).
  std::vector<int> tmz_cols = tm_cols;
  tmz_cols.insert(tmz_cols.end(), covariates.begin(), covariates.end());
  HYPDB_ASSIGN_OR_RETURN(GroupCounts tmz, CountBy(ctx, tmz_cols));
  std::vector<int> z_positions;
  for (size_t i = tm_cols.size(); i < tmz_cols.size(); ++i) {
    z_positions.push_back(static_cast<int>(i));
  }
  std::vector<int> m_positions2;
  for (size_t i = 1; i < tm_cols.size(); ++i) {
    m_positions2.push_back(static_cast<int>(i));
  }
  TupleCodec z_codec = tmz.codec.Project(z_positions);
  TupleCodec m_codec2 = tmz.codec.Project(m_positions2);

  std::unordered_map<uint64_t, int64_t> z_count;          // all treatments
  std::unordered_map<uint64_t, int64_t> ref_z_count;      // T = ref
  struct Term {
    uint64_t z_key, m_key;
    int64_t ref_zm_count;
  };
  std::vector<Term> terms;
  std::vector<int32_t> codes;
  for (size_t g = 0; g < tmz.keys.size(); ++g) {
    uint64_t key = tmz.keys[g];
    codes.assign(z_positions.size(), 0);
    for (size_t i = 0; i < z_positions.size(); ++i) {
      codes[i] = tmz.codec.DecodeAt(key, z_positions[i]);
    }
    uint64_t z_key = z_codec.EncodeCodes(codes);
    z_count[z_key] += tmz.counts[g];
    int32_t t_code = tmz.codec.DecodeAt(key, 0);
    if (t_code != ref_code) continue;
    ref_z_count[z_key] += tmz.counts[g];
    codes.assign(m_positions2.size(), 0);
    for (size_t i = 0; i < m_positions2.size(); ++i) {
      codes[i] = tmz.codec.DecodeAt(key, m_positions2[i]);
    }
    terms.push_back(Term{z_key, m_codec2.EncodeCodes(codes),
                         tmz.counts[g]});
  }

  // Σ_{z,m} E[Y|t,m] · Pr(m|t_ref,z) · Pr(z), skipping (z,m) terms where
  // either counterfactual mean is unobserved (the exact-matching analog)
  // and renormalizing the weights over the used terms.
  const double n = static_cast<double>(ctx.NumRows());
  out->direct_blocks_seen = static_cast<int64_t>(terms.size());
  out->direct.clear();
  for (const auto& [code, label] : treatments) {
    AdjustedGroup group;
    group.treatment_label = label;
    group.means.assign(num_outcomes, 0.0);
    out->direct.push_back(std::move(group));
  }

  double used_weight = 0.0;
  std::vector<std::vector<double>> sums(
      treatments.size(), std::vector<double>(num_outcomes, 0.0));
  for (const Term& term : terms) {
    bool usable = true;
    for (const auto& [code, label] : treatments) {
      auto it = mean_of.find(code);
      if (it == mean_of.end() || it->second.count(term.m_key) == 0) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    ++out->direct_blocks_used;
    double pr_z = static_cast<double>(z_count[term.z_key]) / n;
    double pr_m_given =
        static_cast<double>(term.ref_zm_count) /
        static_cast<double>(ref_z_count[term.z_key]);
    double w = pr_z * pr_m_given;
    used_weight += w;
    for (size_t i = 0; i < treatments.size(); ++i) {
      const std::vector<double>& means =
          *mean_of[treatments[i].first][term.m_key];
      for (int o = 0; o < num_outcomes; ++o) {
        sums[i][o] += w * means[o];
      }
    }
  }
  if (used_weight > 0.0) {
    for (size_t i = 0; i < treatments.size(); ++i) {
      for (int o = 0; o < num_outcomes; ++o) {
        out->direct[i].means[o] = sums[i][o] / used_weight;
      }
      out->direct[i].rows = out->direct_blocks_used;
    }
  }
  out->has_direct = true;
  out->direct_reference = treatments[reference_slot].second;
  return Status::Ok();
}

}  // namespace

double ContextRewrite::Difference(const std::string& t1,
                                  const std::string& t0, int outcome_idx,
                                  bool total_effect) const {
  const std::vector<AdjustedGroup>& groups = total_effect ? total : direct;
  const AdjustedGroup* g1 = nullptr;
  const AdjustedGroup* g0 = nullptr;
  for (const auto& g : groups) {
    if (g.treatment_label == t1) g1 = &g;
    if (g.treatment_label == t0) g0 = &g;
  }
  if (g1 == nullptr || g0 == nullptr) return std::nan("");
  return g1->means[outcome_idx] - g0->means[outcome_idx];
}

StatusOr<ContextRewrite> RewriteContextAndEstimate(
    const TablePtr& table, const BoundQuery& bound, const Context& ctx,
    const std::vector<std::pair<int32_t, std::string>>& treatments,
    const std::vector<int>& covariates, const std::vector<int>& mediators,
    const RewriterOptions& options, uint64_t sig_seed,
    const std::shared_ptr<CountEngine>& engine,
    CountEngineStats* count_stats) {
  (void)table;
  ContextRewrite rewrite;
  rewrite.context_labels = ctx.labels;
  rewrite.rows = ctx.view.NumRows();

  if (treatments.size() < 2) {
    // Nothing to compare in this context; report it empty.
    return rewrite;
  }

  HYPDB_RETURN_IF_ERROR(ComputeTotal(ctx.view, bound.treatment, covariates,
                                     bound.outcomes, treatments, &rewrite));

  if (options.compute_direct && treatments.size() == 2) {
    int reference_slot = static_cast<int>(treatments.size()) - 1;
    if (!options.direct_reference.empty()) {
      for (size_t i = 0; i < treatments.size(); ++i) {
        if (treatments[i].second == options.direct_reference) {
          reference_slot = static_cast<int>(i);
        }
      }
    }
    HYPDB_RETURN_IF_ERROR(
        ComputeDirect(ctx.view, bound.treatment, covariates, mediators,
                      bound.outcomes, treatments, reference_slot, &rewrite));
  }

  if (options.compute_significance) {
    MiEngine mi = engine != nullptr
                      ? MiEngine(ctx.view, engine, options.engine,
                                 /*wrap_provider=*/false)
                      : MiEngine(ctx.view, options.engine);
    const CountEngineStats stats_before = mi.count_engine().stats();
    CiTester tester(&mi, options.ci, sig_seed);
    for (int y : bound.outcomes) {
      std::vector<int> z_total;
      for (int c : covariates) {
        if (c != y) z_total.push_back(c);
      }
      std::vector<int> z_direct = z_total;
      for (int m : mediators) {
        if (m != y &&
            std::find(z_direct.begin(), z_direct.end(), m) ==
                z_direct.end()) {
          z_direct.push_back(m);
        }
      }
      HYPDB_ASSIGN_OR_RETURN(
          CiResult plain, tester.TestSets({bound.treatment}, {y}, {}));
      rewrite.plain_sig.push_back(plain);
      HYPDB_ASSIGN_OR_RETURN(
          CiResult total_sig,
          tester.TestSets({bound.treatment}, {y}, z_total));
      rewrite.total_sig.push_back(total_sig);
      if (rewrite.has_direct) {
        HYPDB_ASSIGN_OR_RETURN(
            CiResult direct_sig,
            tester.TestSets({bound.treatment}, {y}, z_direct));
        rewrite.direct_sig.push_back(direct_sig);
      }
    }
    if (count_stats != nullptr) {
      *count_stats += mi.count_engine().stats() - stats_before;
    }
  }
  return rewrite;
}

StatusOr<std::vector<ContextRewrite>> RewriteAndEstimate(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<int>& covariates, const std::vector<int>& mediators,
    const RewriterOptions& options, CountEngineStats* count_stats) {
  HYPDB_ASSIGN_OR_RETURN(std::vector<Context> contexts,
                         SplitContexts(table, bound));
  std::vector<ContextRewrite> out;
  // Seed bookkeeping: only contexts with something to compare construct a
  // significance tester, so only they consume a seed — RewriteContext-
  // AndEstimate callers must hand each context the same value.
  uint64_t seed = options.seed;
  for (const Context& ctx : contexts) {
    HYPDB_ASSIGN_OR_RETURN(auto treatments,
                           TreatmentsIn(ctx.view, bound.treatment));
    const uint64_t ctx_seed = seed;
    if (treatments.size() >= 2) ++seed;
    HYPDB_ASSIGN_OR_RETURN(
        ContextRewrite rewrite,
        RewriteContextAndEstimate(table, bound, ctx, treatments, covariates,
                                  mediators, options, ctx_seed, nullptr,
                                  count_stats));
    out.push_back(std::move(rewrite));
  }
  return out;
}

}  // namespace hypdb
