// The OLAP query class HypDB analyzes (paper Listing 1):
//
//   SELECT T, X, avg(Y1), ..., avg(Ye)
//   FROM D
//   WHERE C
//   GROUP BY T, X
//
// The first group-by attribute is the treatment T whose causal effect on
// the outcomes the analyst intends to measure; the remaining group-by
// attributes X carve the data into contexts Γ_i = C ∧ (X = x_i); C is a
// conjunction of IN-lists.

#ifndef HYPDB_CORE_QUERY_H_
#define HYPDB_CORE_QUERY_H_

#include <string>
#include <utility>
#include <vector>

#include "dataframe/table.h"
#include "dataframe/view.h"
#include "util/statusor.h"

namespace hypdb {

struct AggQuery {
  std::string table_name = "D";
  /// Treatment attribute T (first GROUP BY column).
  std::string treatment;
  /// Additional grouping attributes X (contexts).
  std::vector<std::string> grouping;
  /// avg() outcome attributes Y1..Ye (labels must be numeric, e.g. 0/1).
  std::vector<std::string> outcomes;
  /// WHERE: conjunction of `attr IN {values}` terms.
  std::vector<std::pair<std::string, std::vector<std::string>>> where;

  /// Renders the Listing-1 SQL text of this query.
  std::string ToSql() const;
};

/// One group of the plain query answer: a treatment value within one
/// context, with its row count and outcome averages.
struct GroupAnswer {
  std::string treatment_label;
  int64_t count = 0;
  std::vector<double> averages;  // one per outcome
};

/// Answers within one context (one X-cell; a single anonymous context
/// when the query has no extra grouping attributes).
struct ContextAnswer {
  std::vector<std::string> context_labels;  // aligned with query.grouping
  std::vector<GroupAnswer> groups;          // sorted by treatment label

  /// Difference avg(Y_o | t1) - avg(Y_o | t0) between two labeled groups;
  /// NaN when either group is missing.
  double Difference(const std::string& t1, const std::string& t0,
                    int outcome_idx) const;
};

/// The full plain-query result (the biased answers of Listing 1).
struct QueryAnswers {
  std::vector<std::string> outcome_names;
  std::vector<ContextAnswer> contexts;
};

/// Resolved column indices of a query against a table.
struct BoundQuery {
  int treatment = -1;
  std::vector<int> grouping;
  std::vector<int> outcomes;
  TableView population;  // WHERE-filtered view over the full table

  /// Labels of the treatment values present in the population, sorted.
  std::vector<std::string> treatment_labels;
};

/// Validates `query` against `table` and applies the WHERE clause.
StatusOr<BoundQuery> BindQuery(const TablePtr& table, const AggQuery& query);

/// One context Γ_i = C ∧ (X = x_i): its labels and its rows.
struct Context {
  std::vector<std::string> labels;  // aligned with query.grouping
  TableView view;
};

/// Splits the bound population into contexts by the grouping attributes
/// (a single anonymous context when there are none). Contexts are sorted
/// by their group key.
StatusOr<std::vector<Context>> SplitContexts(const TablePtr& table,
                                             const BoundQuery& bound);

/// Evaluates the plain (biased) group-by-average query.
StatusOr<QueryAnswers> EvaluatePlainQuery(const TablePtr& table,
                                          const AggQuery& query);

}  // namespace hypdb

#endif  // HYPDB_CORE_QUERY_H_
