// Bias removal by query rewriting (paper Sec. 3.3, Listing 2).
//
// Total effect: the adjustment formula (Eq. 2). The context is
// partitioned into blocks homogeneous on the covariates Z; per-block
// group-by-T averages are re-aggregated with the block probabilities as
// weights. Blocks missing one of the compared treatments are discarded —
// exact matching, SQL's HAVING count(DISTINCT T) = k — and the weights
// are renormalized over the surviving blocks (Overlap, Assumption 2.1).
//
// Direct effect: the mediator formula (Eq. 3) with Z = PA_T and
// M = PA_Y − {T}. Both counterfactual means are estimated:
//   E[Y(t)] with M held at the reference group's mediator distribution:
//   Σ_{z,m} E[Y | t, m] · Pr(m | t_ref, z) · Pr(z)
// so NDE = mean(t_ref) - mean(t_other) answers "would the outcome gap
// persist if the other group kept the reference group's mediators?"
// (gender discrimination's legal standard, Sec. 8).
//
// Significance of the rewritten answers: the difference is zero iff
// I(T;Y|Z) = 0 (total) / I(T;Y|Z∪M) = 0 (direct) — tested with the
// configured CI test (Sec. 7.1 uses MIT with 1000 permutations).

#ifndef HYPDB_CORE_REWRITER_H_
#define HYPDB_CORE_REWRITER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/query.h"
#include "stats/ci_test.h"
#include "util/statusor.h"

namespace hypdb {

/// Re-aggregated answer for one treatment group.
struct AdjustedGroup {
  std::string treatment_label;
  std::vector<double> means;  // per outcome
  int64_t rows = 0;           // rows contributing (surviving blocks)
};

/// Rewritten answers for one context.
struct ContextRewrite {
  std::vector<std::string> context_labels;
  int64_t rows = 0;

  /// Adjustment-formula answers, one per treatment value in the context.
  std::vector<AdjustedGroup> total;
  /// Exact-matching bookkeeping: covariate blocks seen / surviving.
  int64_t blocks_seen = 0;
  int64_t blocks_used = 0;

  /// Mediator-formula answers (binary treatment only).
  bool has_direct = false;
  std::vector<AdjustedGroup> direct;
  std::string direct_reference;  // the group whose mediators are held
  int64_t direct_blocks_seen = 0;
  int64_t direct_blocks_used = 0;

  /// Per-outcome significance: plain I(T;Y), total I(T;Y|Z), direct
  /// I(T;Y|Z∪M).
  std::vector<CiResult> plain_sig;
  std::vector<CiResult> total_sig;
  std::vector<CiResult> direct_sig;

  /// Difference of adjusted means between two labeled groups (NaN when a
  /// group is missing). `which` selects total (true) or direct (false).
  double Difference(const std::string& t1, const std::string& t0,
                    int outcome_idx, bool total_effect = true) const;
};

struct RewriterOptions {
  CiOptions ci;
  uint64_t seed = 0x5EED;
  bool compute_direct = true;
  /// Reference group for the mediator formula; empty = the
  /// lexicographically largest treatment label.
  std::string direct_reference;
  bool compute_significance = true;
  /// Count-engine configuration for the significance tests.
  MiEngineOptions engine;
};

/// Rewrites the bound query w.r.t. `covariates` (total effect) and
/// `mediators` (direct effect) and evaluates it per context. When
/// `count_stats` is non-null, the significance tests' count-engine work
/// is accumulated into it.
StatusOr<std::vector<ContextRewrite>> RewriteAndEstimate(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<int>& covariates, const std::vector<int>& mediators,
    const RewriterOptions& options, CountEngineStats* count_stats = nullptr);

/// Observed treatment (code, label) pairs in a view, sorted by label —
/// the per-context treatment inventory the rewrite formulas compare.
/// Exposed so stage-at-a-time callers (core/analysis_session.h) can
/// reproduce the rewrite seed bookkeeping exactly: within one query, the
/// i-th context with >= 2 treatments consumes significance seed
/// options.seed + i.
StatusOr<std::vector<std::pair<int32_t, std::string>>> TreatmentsIn(
    const TableView& view, int treatment);

/// One context of RewriteAndEstimate, independently invokable.
/// `treatments` must be TreatmentsIn(ctx.view) and `sig_seed` the seed
/// the whole-query loop would hand this context (see TreatmentsIn) —
/// given those, the result is bit-identical to the batch path. When
/// `engine` is non-null the significance tests route their counts
/// through it (it must aggregate exactly ctx.view's rows) instead of a
/// private engine; only the stats delta over the call is accumulated.
StatusOr<ContextRewrite> RewriteContextAndEstimate(
    const TablePtr& table, const BoundQuery& bound, const Context& ctx,
    const std::vector<std::pair<int32_t, std::string>>& treatments,
    const std::vector<int>& covariates, const std::vector<int>& mediators,
    const RewriterOptions& options, uint64_t sig_seed,
    const std::shared_ptr<CountEngine>& engine = nullptr,
    CountEngineStats* count_stats = nullptr);

}  // namespace hypdb

#endif  // HYPDB_CORE_REWRITER_H_
