#include "core/sql_printer.h"

#include "util/string_util.h"

namespace hypdb {
namespace {

std::string WhereClause(const AggQuery& query) {
  if (query.where.empty()) return "";
  std::vector<std::string> terms;
  for (const auto& [attr, values] : query.where) {
    std::vector<std::string> quoted;
    for (const auto& v : values) quoted.push_back("'" + v + "'");
    terms.push_back(attr + " IN (" + Join(quoted, ", ") + ")");
  }
  return "  WHERE " + Join(terms, " AND ") + "\n";
}

std::vector<std::string> AvgAliases(const AggQuery& query) {
  std::vector<std::string> aliases;
  for (size_t i = 0; i < query.outcomes.size(); ++i) {
    aliases.push_back("avg(" + query.outcomes[i] + ") AS Avg" +
                      std::to_string(i + 1));
  }
  return aliases;
}

std::vector<std::string> Prefixed(const std::string& prefix,
                                  const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (const auto& n : names) out.push_back(prefix + n);
  return out;
}

}  // namespace

std::string RewrittenTotalSql(const AggQuery& query,
                              const std::vector<std::string>& covariates) {
  // Grouping attributes X ride along with Z (Listing 2 groups Blocks by
  // T, Z, X and Weights by Z, X).
  std::vector<std::string> zx = covariates;
  zx.insert(zx.end(), query.grouping.begin(), query.grouping.end());
  std::string zx_list = Join(zx, ", ");
  std::vector<std::string> select_blocks = {query.treatment};
  if (!zx.empty()) select_blocks.push_back(zx_list);
  std::vector<std::string> sums;
  for (size_t i = 0; i < query.outcomes.size(); ++i) {
    sums.push_back("sum(Avg" + std::to_string(i + 1) + " * W)");
  }

  std::string join_cond;
  {
    std::vector<std::string> eq;
    for (const auto& a : zx) {
      eq.push_back("Blocks." + a + " = Weights." + a);
    }
    join_cond = eq.empty() ? "1 = 1" : Join(eq, " AND\n      ");
  }

  std::string out_group = query.treatment;
  if (!query.grouping.empty()) {
    out_group += ", " + Join(query.grouping, ", ");
  }

  std::string sql;
  sql += "WITH Blocks AS (\n";
  sql += "  SELECT " + Join(select_blocks, ", ") + ",\n         " +
         Join(AvgAliases(query), ", ") + "\n";
  sql += "  FROM " + query.table_name + "\n";
  sql += WhereClause(query);
  sql += "  GROUP BY " + query.treatment +
         (zx.empty() ? "" : ", " + zx_list) + "\n";
  sql += "),\nWeights AS (\n";
  sql += "  SELECT " + (zx.empty() ? std::string("1 AS One") : zx_list) +
         ", count(*) * 1.0 / (SELECT count(*) FROM " + query.table_name +
         ") AS W\n";
  sql += "  FROM " + query.table_name + "\n";
  sql += WhereClause(query);
  if (!zx.empty()) sql += "  GROUP BY " + zx_list + "\n";
  sql += "  HAVING count(DISTINCT " + query.treatment + ") = 2\n";
  sql += ")\n";
  sql += "SELECT " + query.treatment +
         (query.grouping.empty() ? "" : ", " + Join(query.grouping, ", ")) +
         ", " + Join(sums, ", ") + "\n";
  sql += "FROM Blocks, Weights\n";
  sql += "WHERE " + join_cond + "\n";
  sql += "GROUP BY " + out_group;
  return sql;
}

std::string RewrittenDirectSql(const AggQuery& query,
                               const std::vector<std::string>& covariates,
                               const std::vector<std::string>& mediators,
                               const std::string& reference) {
  std::string m_list = Join(mediators, ", ");
  std::string z_list = Join(covariates, ", ");
  std::vector<std::string> sums;
  for (size_t i = 0; i < query.outcomes.size(); ++i) {
    sums.push_back("sum(Avg" + std::to_string(i + 1) + " * W)");
  }

  // Eq. 3: Σ_{z,m} E[Y|T,m] · Pr(m|T=ref,z) · Pr(z).
  std::string sql;
  sql += "WITH MBlocks AS (\n";
  sql += "  SELECT " + query.treatment +
         (mediators.empty() ? "" : ", " + m_list) + ",\n         " +
         Join(AvgAliases(query), ", ") + "\n";
  sql += "  FROM " + query.table_name + "\n";
  sql += WhereClause(query);
  sql += "  GROUP BY " + query.treatment +
         (mediators.empty() ? "" : ", " + m_list) + "\n";
  sql += "),\nMWeights AS (\n";
  sql += "  -- W = Pr(" + (mediators.empty() ? "()" : m_list) + " | " +
         query.treatment + " = '" + reference + "', " +
         (covariates.empty() ? "()" : z_list) + ") * Pr(" +
         (covariates.empty() ? "()" : z_list) + ")\n";
  sql += "  SELECT " + Join(mediators, ", ") +
         (mediators.empty() || covariates.empty() ? "" : ", ") + z_list +
         ", count(*) * 1.0 /\n";
  sql += "         (SELECT count(*) FROM " + query.table_name + " WHERE " +
         query.treatment + " = '" + reference + "') AS W\n";
  sql += "  FROM " + query.table_name + "\n";
  sql += "  WHERE " + query.treatment + " = '" + reference + "'\n";
  if (!mediators.empty() || !covariates.empty()) {
    sql += "  GROUP BY " + m_list +
           (mediators.empty() || covariates.empty() ? "" : ", ") + z_list +
           "\n";
  }
  sql += ")\n";
  sql += "SELECT MBlocks." + query.treatment + ", " + Join(sums, ", ") + "\n";
  sql += "FROM MBlocks, MWeights\n";
  if (!mediators.empty()) {
    std::vector<std::string> eq;
    for (const auto& m : mediators) {
      eq.push_back("MBlocks." + m + " = MWeights." + m);
    }
    sql += "WHERE " + Join(eq, " AND ") + "\n";
  }
  sql += "GROUP BY MBlocks." + query.treatment;
  return sql;
}

}  // namespace hypdb
