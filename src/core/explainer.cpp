#include "core/explainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dataframe/group_by.h"
#include "stats/mi_engine.h"

namespace hypdb {
namespace {

// κ(x, y) per Eq. 5 for every observed pair of the two codec columns of
// `counts` (position 0 = X, position 1 = Y).
std::unordered_map<uint64_t, double> ContributionMap(
    const GroupCounts& counts) {
  std::unordered_map<uint64_t, int64_t> x_margin;
  std::unordered_map<uint64_t, int64_t> y_margin;
  for (size_t g = 0; g < counts.keys.size(); ++g) {
    x_margin[counts.codec.DecodeAt(counts.keys[g], 0)] += counts.counts[g];
    y_margin[counts.codec.DecodeAt(counts.keys[g], 1)] += counts.counts[g];
  }
  const double n = static_cast<double>(counts.total);
  std::unordered_map<uint64_t, double> kappa;
  kappa.reserve(counts.keys.size());
  for (size_t g = 0; g < counts.keys.size(); ++g) {
    double p_xy = static_cast<double>(counts.counts[g]) / n;
    double p_x =
        static_cast<double>(x_margin[counts.codec.DecodeAt(counts.keys[g], 0)]) /
        n;
    double p_y =
        static_cast<double>(y_margin[counts.codec.DecodeAt(counts.keys[g], 1)]) /
        n;
    kappa[counts.keys[g]] = p_xy * std::log(p_xy / (p_x * p_y));
  }
  return kappa;
}

}  // namespace

StatusOr<std::vector<ExplanationTriple>> FineGrainedExplanations(
    CountEngine& engine, const Table& table, int t_col, int y_col,
    int z_col, int top_k) {
  // Observed triples first (Alg. 3 line 2): a caching engine then derives
  // both pairwise marginals from this summary without touching the data.
  HYPDB_ASSIGN_OR_RETURN(GroupCounts triples,
                         engine.Counts({t_col, y_col, z_col}));

  // Pairwise contributions.
  HYPDB_ASSIGN_OR_RETURN(GroupCounts tz, engine.Counts({t_col, z_col}));
  HYPDB_ASSIGN_OR_RETURN(GroupCounts yz, engine.Counts({y_col, z_col}));
  std::unordered_map<uint64_t, double> kappa_tz = ContributionMap(tz);
  std::unordered_map<uint64_t, double> kappa_yz = ContributionMap(yz);

  struct Scored {
    int32_t t, y, z;
    double k_tz, k_yz;
    int rank_t = 0, rank_y = 0;
  };
  std::vector<Scored> scored;
  scored.reserve(triples.keys.size());
  for (uint64_t key : triples.keys) {
    Scored s;
    s.t = triples.codec.DecodeAt(key, 0);
    s.y = triples.codec.DecodeAt(key, 1);
    s.z = triples.codec.DecodeAt(key, 2);
    s.k_tz = kappa_tz[tz.codec.EncodeCodes({s.t, s.z})];
    s.k_yz = kappa_yz[yz.codec.EncodeCodes({s.y, s.z})];
    scored.push_back(s);
  }

  // Two rankings by contribution, aggregated with Borda's method
  // (smaller rank sum = better).
  std::vector<int> order(scored.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return scored[a].k_tz > scored[b].k_tz;
  });
  for (size_t r = 0; r < order.size(); ++r) {
    scored[order[r]].rank_t = static_cast<int>(r);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return scored[a].k_yz > scored[b].k_yz;
  });
  for (size_t r = 0; r < order.size(); ++r) {
    scored[order[r]].rank_y = static_cast<int>(r);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    int sa = scored[a].rank_t + scored[a].rank_y;
    int sb = scored[b].rank_t + scored[b].rank_y;
    return sa != sb ? sa < sb : a < b;
  });

  const Column& t_column = table.column(t_col);
  const Column& y_column = table.column(y_col);
  const Column& z_column = table.column(z_col);
  std::vector<ExplanationTriple> out;
  for (size_t r = 0; r < order.size() && r < static_cast<size_t>(top_k);
       ++r) {
    const Scored& s = scored[order[r]];
    ExplanationTriple triple;
    triple.t_label = t_column.dict().Label(s.t);
    triple.y_label = y_column.dict().Label(s.y);
    triple.z_label = z_column.dict().Label(s.z);
    triple.kappa_tz = s.k_tz;
    triple.kappa_yz = s.k_yz;
    triple.borda_rank = static_cast<int>(r) + 1;
    out.push_back(std::move(triple));
  }
  return out;
}

StatusOr<std::vector<ExplanationTriple>> FineGrainedExplanations(
    const TableView& view, int t_col, int y_col, int z_col, int top_k) {
  // Caching wrapper so the pairwise marginals derive from the (T, Y, Z)
  // summary: one scan instead of three.
  CachingCountEngine engine(std::make_shared<ViewCountProvider>(view));
  return FineGrainedExplanations(engine, view.table(), t_col, y_col,
                                 z_col, top_k);
}

StatusOr<ContextExplanation> ExplainContext(
    const TablePtr& table, const BoundQuery& bound, const Context& ctx,
    const std::vector<int>& variables, const ExplainerOptions& options,
    const std::shared_ptr<CountEngine>& engine_in,
    CountEngineStats* count_stats) {
  if (options.outcome_index < 0 ||
      options.outcome_index >= static_cast<int>(bound.outcomes.size())) {
    return Status::OutOfRange("outcome_index out of range");
  }
  const int y_col = bound.outcomes[options.outcome_index];

  ContextExplanation expl;
  expl.context_labels = ctx.labels;

  // Coarse-grained responsibilities (Eq. 4). The same count engine
  // serves the fine-grained triples below. A caller-provided engine is
  // used as-is (it already caches and may persist across stages).
  MiEngine engine = engine_in != nullptr
                        ? MiEngine(ctx.view, engine_in, options.engine,
                                   /*wrap_provider=*/false)
                        : MiEngine(ctx.view, options.engine);
  const CountEngineStats stats_before = engine.count_engine().stats();
  std::vector<double> numerators(variables.size(), 0.0);
  HYPDB_ASSIGN_OR_RETURN(double i_full,
                         engine.MiSets({bound.treatment}, variables, {}));
  double denom = 0.0;
  for (size_t i = 0; i < variables.size(); ++i) {
    HYPDB_ASSIGN_OR_RETURN(
        double i_given,
        engine.MiSets({bound.treatment}, variables, {variables[i]}));
    numerators[i] = std::max(0.0, i_full - i_given);
    denom += numerators[i];
  }
  for (size_t i = 0; i < variables.size(); ++i) {
    Responsibility r;
    r.attribute = table->column(variables[i]).name();
    r.column = variables[i];
    r.rho = denom > 0.0 ? numerators[i] / denom : 0.0;
    expl.coarse.push_back(std::move(r));
  }
  std::sort(expl.coarse.begin(), expl.coarse.end(),
            [](const Responsibility& a, const Responsibility& b) {
              return a.rho != b.rho ? a.rho > b.rho
                                    : a.attribute < b.attribute;
            });

  // Fine-grained for the top covariates.
  int fine_count = std::min<int>(options.fine_covariates,
                                 static_cast<int>(expl.coarse.size()));
  for (int i = 0; i < fine_count; ++i) {
    if (expl.coarse[i].rho <= 0.0) break;
    FineGrained fine;
    fine.covariate = expl.coarse[i].attribute;
    fine.column = expl.coarse[i].column;
    HYPDB_ASSIGN_OR_RETURN(
        fine.top,
        FineGrainedExplanations(engine.count_engine(), *table,
                                bound.treatment, y_col, fine.column,
                                options.top_k));
    expl.fine.push_back(std::move(fine));
  }
  if (count_stats != nullptr) {
    *count_stats += engine.count_engine().stats() - stats_before;
  }
  return expl;
}

StatusOr<std::vector<ContextExplanation>> ExplainBias(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<int>& variables, const ExplainerOptions& options,
    CountEngineStats* count_stats) {
  HYPDB_ASSIGN_OR_RETURN(std::vector<Context> contexts,
                         SplitContexts(table, bound));
  if (options.outcome_index < 0 ||
      options.outcome_index >= static_cast<int>(bound.outcomes.size())) {
    return Status::OutOfRange("outcome_index out of range");
  }
  std::vector<ContextExplanation> out;
  for (const Context& ctx : contexts) {
    HYPDB_ASSIGN_OR_RETURN(
        ContextExplanation expl,
        ExplainContext(table, bound, ctx, variables, options, nullptr,
                       count_stats));
    out.push_back(std::move(expl));
  }
  return out;
}

}  // namespace hypdb
