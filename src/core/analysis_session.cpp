#include "core/analysis_session.h"

#include <algorithm>

#include "causal/ci_oracle.h"
#include "core/sql_printer.h"
#include "engine/caching_count_engine.h"
#include "stats/mi_engine.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace hypdb {
namespace {

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

std::vector<std::string> Names(const TablePtr& table,
                               const std::vector<int>& cols) {
  std::vector<std::string> out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(table->column(c).name());
  return out;
}

// A session-private per-context engine, built exactly the way MiEngine
// builds its default engine (so routing stages through a persisted
// engine instead of per-stage rebuilds preserves the materialization
// ablation semantics: no caching layer appears that the one-shot
// configuration would not have had).
std::shared_ptr<CountEngine> MakePrivateEngine(const TableView& view,
                                               const MiEngineOptions& o) {
  std::shared_ptr<CountEngine> base =
      std::make_shared<ViewCountProvider>(view, ScanKernelOptions(o));
  if (!o.materialize_focus) return base;
  CachingCountEngineOptions caching;
  caching.max_cached_cells = o.max_cached_cells;
  return std::make_shared<CachingCountEngine>(std::move(base), caching);
}

}  // namespace

const char* AnalysisStageName(AnalysisStage stage) {
  switch (stage) {
    case AnalysisStage::kAnswers: return "answers";
    case AnalysisStage::kDiscover: return "discover";
    case AnalysisStage::kDetect: return "detect";
    case AnalysisStage::kExplain: return "explain";
    case AnalysisStage::kRewrite: return "rewrite";
  }
  return "unknown";
}

StatusOr<AnalysisStage> ParseAnalysisStage(const std::string& name) {
  for (int s = 0; s < kNumAnalysisStages; ++s) {
    AnalysisStage stage = static_cast<AnalysisStage>(s);
    if (name == AnalysisStageName(stage)) return stage;
  }
  return Status::InvalidArgument(
      "unknown stage '" + name +
      "' (expected answers|discover|detect|explain|rewrite)");
}

std::string ResolveDirectReference(const HypDbOptions& options,
                                   const BoundQuery& bound) {
  if (!options.direct_reference.empty()) return options.direct_reference;
  if (!bound.treatment_labels.empty()) return bound.treatment_labels.back();
  return "";
}

AnalysisSession::AnalysisSession(TablePtr table, AggQuery query,
                                 HypDbOptions options, SessionHooks hooks)
    : table_(std::move(table)), query_(std::move(query)),
      options_(std::move(options)), hooks_(std::move(hooks)) {}

StatusOr<std::unique_ptr<AnalysisSession>> AnalysisSession::Create(
    TablePtr table, AggQuery query, HypDbOptions options,
    SessionHooks hooks) {
  std::unique_ptr<AnalysisSession> session(new AnalysisSession(
      std::move(table), std::move(query), std::move(options),
      std::move(hooks)));
  {
    // Binding scans (treatment-label enumeration) are engine work too;
    // the kBind span keeps them nested under a stage in the trace.
    TraceSpanScope span(TraceEventKind::kStage, 1,
                        static_cast<uint64_t>(TraceStage::kBind));
    HYPDB_ASSIGN_OR_RETURN(session->bound_,
                           BindQuery(session->table_, session->query_));
  }
  session->direct_reference_ =
      ResolveDirectReference(session->options_, session->bound_);
  session->sql_plain_ = session->query_.ToSql();
  return session;
}

Status AnalysisSession::CheckCancel(const char* stage) {
  if (cancel_check_ && cancel_check_()) {
    return Status::Cancelled(std::string("session cancelled before the ") +
                             stage + " stage");
  }
  return Status::Ok();
}

Status AnalysisSession::EnsureContexts() {
  if (contexts_split_) return Status::Ok();
  // Context splitting runs ahead of whichever stage needed it, outside
  // that stage's span; the treatment-inventory scans below are engine
  // work, so the bind span gives them a stage parent in the trace.
  TraceSpanScope span(TraceEventKind::kStage, 1,
                      static_cast<uint64_t>(TraceStage::kBind));
  HYPDB_ASSIGN_OR_RETURN(contexts_, SplitContexts(table_, bound_));
  const size_t n = contexts_.size();

  // Per-context WHERE conjunction: the query's WHERE plus one IN-term
  // per grouping attribute — the handle the service renders into its
  // canonical shard signature.
  context_wheres_.reserve(n);
  for (const Context& ctx : contexts_) {
    auto where = query_.where;
    for (size_t g = 0; g < query_.grouping.size() && g < ctx.labels.size();
         ++g) {
      where.emplace_back(query_.grouping[g],
                         std::vector<std::string>{ctx.labels[g]});
    }
    context_wheres_.push_back(std::move(where));
  }

  // Treatment inventories, and from them the rewrite significance-seed
  // assignment: the batch rewriter hands seed (base + i) to the i-th
  // context that has >= 2 treatments, so a per-context Rewrite must
  // reproduce that exact numbering whatever order contexts run in.
  context_treatments_.reserve(n);
  rewrite_seeds_.reserve(n);
  uint64_t seed = options_.seed ^ 0x9E50;
  for (const Context& ctx : contexts_) {
    HYPDB_ASSIGN_OR_RETURN(auto treatments,
                           TreatmentsIn(ctx.view, bound_.treatment));
    rewrite_seeds_.push_back(seed);
    if (treatments.size() >= 2) ++seed;
    context_treatments_.push_back(std::move(treatments));
  }

  context_engines_.assign(n, nullptr);
  explanations_.assign(n, ContextExplanation{});
  explain_done_.assign(n, 0);
  rewrites_.assign(n, ContextRewrite{});
  rewrite_done_.assign(n, 0);
  contexts_split_ = true;
  return Status::Ok();
}

StatusOr<std::shared_ptr<CountEngine>> AnalysisSession::ContextEngine(int i) {
  HYPDB_RETURN_IF_ERROR(EnsureContexts());
  std::shared_ptr<CountEngine>& engine = context_engines_[i];
  if (engine != nullptr) return engine;
  if (hooks_.context_engine_provider) {
    engine = hooks_.context_engine_provider(context_wheres_[i],
                                            contexts_[i].view);
  }
  if (engine == nullptr) {
    engine = MakePrivateEngine(contexts_[i].view, options_.engine);
  }
  return engine;
}

StatusOr<int> AnalysisSession::NumContexts() {
  HYPDB_RETURN_IF_ERROR(EnsureContexts());
  return static_cast<int>(contexts_.size());
}

Status AnalysisSession::ValidateContextIndex(int context) {
  HYPDB_RETURN_IF_ERROR(EnsureContexts());
  if (context < 0 || context >= static_cast<int>(contexts_.size())) {
    return Status::OutOfRange(
        "context " + std::to_string(context) + " out of range (query has " +
        std::to_string(contexts_.size()) + " contexts)");
  }
  return Status::Ok();
}

StatusOr<const QueryAnswers*> AnalysisSession::Answers() {
  StageState& st = stages_[static_cast<int>(AnalysisStage::kAnswers)];
  if (st.done) {
    ++st.reuses;
    return &answers_;
  }
  HYPDB_RETURN_IF_ERROR(CheckCancel("answers"));
  Stopwatch timer;
  TraceSpanScope span(TraceEventKind::kStage, 1,
                      static_cast<uint64_t>(TraceStage::kAnswers));
  HYPDB_ASSIGN_OR_RETURN(answers_, EvaluatePlainQuery(table_, query_));
  st.done = true;
  ++st.runs;
  st.seconds += timer.ElapsedSeconds();
  return &answers_;
}

StatusOr<DiscoveryReport> AnalysisSession::ComputeDiscovery() {
  Stopwatch timer;
  DiscoveryReport report;

  // Candidate attributes: everything except the treatment, minus logical
  // dependencies (Sec. 4). The treatment is pinned first so bijection
  // partners of T are dropped, never T itself.
  std::vector<int> filtered = {bound_.treatment};
  {
    std::vector<int> pool = {bound_.treatment};
    for (int c = 0; c < table_->NumColumns(); ++c) {
      if (c != bound_.treatment) pool.push_back(c);
    }
    if (options_.apply_fd_filter) {
      Rng rng(options_.seed ^ 0xFD);
      HYPDB_ASSIGN_OR_RETURN(
          FdFilterReport fd,
          FilterLogicalDependencies(bound_.population, pool, options_.fd,
                                    rng));
      filtered = fd.kept;
      for (const auto& [dropped, partner] : fd.dropped_fd) {
        report.dropped_fd.push_back(table_->column(dropped).name());
      }
      for (int dropped : fd.dropped_keys) {
        report.dropped_keys.push_back(table_->column(dropped).name());
      }
      if (!Contains(filtered, bound_.treatment)) {
        // The treatment itself looked key-like; discovery is meaningless.
        return Status::FailedPrecondition(
            "treatment attribute " + query_.treatment +
            " was classified as key-like");
      }
    } else {
      filtered = pool;
    }
  }

  std::vector<int> candidates;
  for (int c : filtered) {
    if (c != bound_.treatment) candidates.push_back(c);
  }

  // One count engine serves both discovery runs (PA_T and PA_Y): their
  // CI tests overlap heavily on the shared population. A service-provided
  // engine is used as-is (it already caches and may be shared across
  // concurrent queries); its stats are reported as a delta over this
  // call. The delta excludes work done before the call but NOT work other
  // queries do concurrently during it — with a shared engine the counters
  // are approximate attribution, never part of the bit-identity
  // invariant (report digests exclude count_stats for this reason).
  const bool external = hooks_.population_engine != nullptr;
  MiEngine engine =
      external ? MiEngine(bound_.population, hooks_.population_engine,
                          options_.engine, /*wrap_provider=*/false)
               : MiEngine(bound_.population, options_.engine);
  const CountEngineStats stats_before =
      external ? engine.count_engine().stats() : CountEngineStats{};
  CiTester tester(&engine, options_.ci, options_.seed);
  DataCiOracle oracle(&tester, options_.alpha);

  // Z = PA_T (Alg. 1); outcomes never enter the covariate set.
  HYPDB_ASSIGN_OR_RETURN(
      CdResult cd_t,
      DiscoverParents(oracle, bound_.treatment, candidates, options_.cd,
                      bound_.outcomes));
  report.covariates_fell_back = cd_t.fell_back_to_blanket;
  report.treatment_blanket_cols = cd_t.markov_blanket;
  for (int p : cd_t.parents) {
    if (!Contains(bound_.outcomes, p)) report.covariate_cols.push_back(p);
  }

  // M = PA_Y − {T} for the primary outcome.
  if (options_.discover_mediators) {
    const int y = bound_.outcomes[0];
    std::vector<int> y_candidates;
    for (int c : filtered) {
      if (c != y) y_candidates.push_back(c);
    }
    HYPDB_ASSIGN_OR_RETURN(
        CdResult cd_y,
        DiscoverParents(oracle, y, y_candidates, options_.cd,
                        {bound_.treatment}));
    report.mediators_fell_back = cd_y.fell_back_to_blanket;
    for (int p : cd_y.parents) {
      if (p != bound_.treatment && !Contains(bound_.outcomes, p)) {
        report.mediator_cols.push_back(p);
      }
    }
  }

  report.covariates = Names(table_, report.covariate_cols);
  report.mediators = Names(table_, report.mediator_cols);
  report.tests_used = oracle.num_tests();
  report.count_stats = engine.count_engine().stats() - stats_before;
  report.seconds = timer.ElapsedSeconds();
  return report;
}

StatusOr<const DiscoveryReport*> AnalysisSession::Discover() {
  StageState& st = stages_[static_cast<int>(AnalysisStage::kDiscover)];
  if (st.done) {
    ++st.reuses;
    return &discovery_;
  }
  HYPDB_RETURN_IF_ERROR(CheckCancel("discover"));
  Stopwatch timer;
  // The stage span wraps whichever path runs — cache hit, coalesced
  // wait, or the full computation — so discovery-cache and CI-test
  // events nest inside it.
  TraceSpanScope span(TraceEventKind::kStage, 1,
                      static_cast<uint64_t>(TraceStage::kDiscover));
  if (hooks_.reuse_discovery.has_value()) {
    discovery_ = *hooks_.reuse_discovery;
  } else if (hooks_.discovery_interceptor) {
    HYPDB_ASSIGN_OR_RETURN(
        discovery_,
        hooks_.discovery_interceptor([this] { return ComputeDiscovery(); }));
  } else {
    HYPDB_ASSIGN_OR_RETURN(discovery_, ComputeDiscovery());
  }

  // The rewritten SQL texts derive from discovery + the reference group
  // resolved at bind time, so they become available here — analysts can
  // inspect the Listing-2 rewrite before paying for its evaluation.
  sql_total_ = RewrittenTotalSql(query_, discovery_.covariates);
  if (options_.discover_mediators) {
    sql_direct_ = RewrittenDirectSql(query_, discovery_.covariates,
                                     discovery_.mediators,
                                     direct_reference_);
  }
  st.done = true;
  ++st.runs;
  st.seconds += timer.ElapsedSeconds();
  return &discovery_;
}

StatusOr<const std::vector<ContextBias>*> AnalysisSession::Detect() {
  StageState& st = stages_[static_cast<int>(AnalysisStage::kDetect)];
  if (st.done) {
    ++st.reuses;
    return &bias_;
  }
  HYPDB_RETURN_IF_ERROR(Discover().status());
  HYPDB_RETURN_IF_ERROR(EnsureContexts());
  HYPDB_RETURN_IF_ERROR(CheckCancel("detect"));
  Stopwatch timer;
  TraceSpanScope span(TraceEventKind::kStage, 1,
                      static_cast<uint64_t>(TraceStage::kDetect),
                      contexts_.size());
  for (size_t i = 0; i < contexts_.size(); ++i) {
    HYPDB_RETURN_IF_ERROR(ContextEngine(static_cast<int>(i)).status());
  }
  DetectorOptions det;
  det.ci = options_.ci;
  det.alpha = options_.alpha;
  det.seed = options_.seed ^ 0xDE7EC7;
  det.engine = options_.engine;
  const std::vector<int>* mediators =
      options_.discover_mediators ? &discovery_.mediator_cols : nullptr;
  HYPDB_ASSIGN_OR_RETURN(
      bias_, DetectBias(table_, bound_, contexts_,
                        discovery_.covariate_cols, mediators, det,
                        &context_engines_, &pipeline_stats_));
  st.done = true;
  ++st.runs;
  st.seconds += timer.ElapsedSeconds();
  return &bias_;
}

Status AnalysisSession::ExplainOne(int i) {
  if (explain_done_[i]) return Status::Ok();
  StageState& st = stages_[static_cast<int>(AnalysisStage::kExplain)];
  Stopwatch timer;
  TraceSpanScope span(TraceEventKind::kStage, 1,
                      static_cast<uint64_t>(TraceStage::kExplain),
                      static_cast<uint64_t>(i));
  std::vector<int> v = discovery_.covariate_cols;
  for (int m : discovery_.mediator_cols) {
    if (!Contains(v, m)) v.push_back(m);
  }
  std::sort(v.begin(), v.end());
  ExplainerOptions explain = options_.explain;
  explain.engine = options_.engine;
  HYPDB_ASSIGN_OR_RETURN(std::shared_ptr<CountEngine> engine,
                         ContextEngine(i));
  HYPDB_ASSIGN_OR_RETURN(
      explanations_[i],
      ExplainContext(table_, bound_, contexts_[i], v, explain, engine,
                     &pipeline_stats_));
  explain_done_[i] = 1;
  ++st.runs;
  st.seconds += timer.ElapsedSeconds();
  st.done = std::all_of(explain_done_.begin(), explain_done_.end(),
                        [](char d) { return d != 0; });
  return Status::Ok();
}

StatusOr<const std::vector<ContextExplanation>*> AnalysisSession::Explain() {
  StageState& st = stages_[static_cast<int>(AnalysisStage::kExplain)];
  if (st.done) {
    ++st.reuses;
    return &explanations_;
  }
  HYPDB_RETURN_IF_ERROR(Discover().status());
  HYPDB_RETURN_IF_ERROR(EnsureContexts());
  HYPDB_RETURN_IF_ERROR(CheckCancel("explain"));
  for (size_t i = 0; i < contexts_.size(); ++i) {
    HYPDB_RETURN_IF_ERROR(ExplainOne(static_cast<int>(i)));
  }
  if (contexts_.empty()) st.done = true;
  return &explanations_;
}

StatusOr<const ContextExplanation*> AnalysisSession::Explain(int context) {
  HYPDB_RETURN_IF_ERROR(Discover().status());
  HYPDB_RETURN_IF_ERROR(ValidateContextIndex(context));
  StageState& st = stages_[static_cast<int>(AnalysisStage::kExplain)];
  if (explain_done_[context]) {
    ++st.reuses;
    return &explanations_[context];
  }
  HYPDB_RETURN_IF_ERROR(CheckCancel("explain"));
  HYPDB_RETURN_IF_ERROR(ExplainOne(context));
  return &explanations_[context];
}

Status AnalysisSession::RewriteOne(int i) {
  if (rewrite_done_[i]) return Status::Ok();
  StageState& st = stages_[static_cast<int>(AnalysisStage::kRewrite)];
  Stopwatch timer;
  TraceSpanScope span(TraceEventKind::kStage, 1,
                      static_cast<uint64_t>(TraceStage::kRewrite),
                      static_cast<uint64_t>(i));
  RewriterOptions rw;
  rw.ci = options_.ci;
  rw.seed = options_.seed ^ 0x9E50;
  rw.compute_direct = options_.discover_mediators;
  rw.direct_reference = direct_reference_;
  rw.compute_significance = options_.compute_significance;
  rw.engine = options_.engine;
  HYPDB_ASSIGN_OR_RETURN(std::shared_ptr<CountEngine> engine,
                         ContextEngine(i));
  HYPDB_ASSIGN_OR_RETURN(
      rewrites_[i],
      RewriteContextAndEstimate(table_, bound_, contexts_[i],
                                context_treatments_[i],
                                discovery_.covariate_cols,
                                discovery_.mediator_cols, rw,
                                rewrite_seeds_[i], engine,
                                &pipeline_stats_));
  rewrite_done_[i] = 1;
  ++st.runs;
  st.seconds += timer.ElapsedSeconds();
  st.done = std::all_of(rewrite_done_.begin(), rewrite_done_.end(),
                        [](char d) { return d != 0; });
  return Status::Ok();
}

StatusOr<const std::vector<ContextRewrite>*> AnalysisSession::Rewrite() {
  StageState& st = stages_[static_cast<int>(AnalysisStage::kRewrite)];
  if (st.done) {
    ++st.reuses;
    return &rewrites_;
  }
  HYPDB_RETURN_IF_ERROR(Discover().status());
  HYPDB_RETURN_IF_ERROR(EnsureContexts());
  HYPDB_RETURN_IF_ERROR(CheckCancel("rewrite"));
  for (size_t i = 0; i < contexts_.size(); ++i) {
    HYPDB_RETURN_IF_ERROR(RewriteOne(static_cast<int>(i)));
  }
  if (contexts_.empty()) st.done = true;
  return &rewrites_;
}

StatusOr<const ContextRewrite*> AnalysisSession::Rewrite(int context) {
  HYPDB_RETURN_IF_ERROR(Discover().status());
  HYPDB_RETURN_IF_ERROR(ValidateContextIndex(context));
  StageState& st = stages_[static_cast<int>(AnalysisStage::kRewrite)];
  if (rewrite_done_[context]) {
    ++st.reuses;
    return &rewrites_[context];
  }
  HYPDB_RETURN_IF_ERROR(CheckCancel("rewrite"));
  HYPDB_RETURN_IF_ERROR(RewriteOne(context));
  return &rewrites_[context];
}

bool AnalysisSession::complete() const {
  for (const StageState& st : stages_) {
    if (!st.done) return false;
  }
  return true;
}

HypDbReport AnalysisSession::Snapshot() const {
  HypDbReport report;
  report.query = query_;
  report.sql_plain = sql_plain_;
  const auto& st = stages_;
  if (st[static_cast<int>(AnalysisStage::kAnswers)].done) {
    report.plain = answers_;
  }
  if (st[static_cast<int>(AnalysisStage::kDiscover)].done) {
    report.discovery = discovery_;
    report.sql_total = sql_total_;
    report.sql_direct = sql_direct_;
  }
  if (st[static_cast<int>(AnalysisStage::kDetect)].done) {
    report.bias = bias_;
  }
  if (st[static_cast<int>(AnalysisStage::kExplain)].done) {
    report.explanations = explanations_;
  }
  if (st[static_cast<int>(AnalysisStage::kRewrite)].done) {
    report.rewrites = rewrites_;
  }
  report.detect_seconds =
      st[static_cast<int>(AnalysisStage::kDetect)].seconds;
  report.explain_seconds =
      st[static_cast<int>(AnalysisStage::kExplain)].seconds;
  report.resolve_seconds =
      st[static_cast<int>(AnalysisStage::kRewrite)].seconds;
  report.count_stats = discovery_.count_stats;
  report.count_stats += pipeline_stats_;
  return report;
}

StatusOr<HypDbReport> AnalysisSession::Report() {
  HYPDB_RETURN_IF_ERROR(Answers().status());
  HYPDB_RETURN_IF_ERROR(Discover().status());
  HYPDB_RETURN_IF_ERROR(Detect().status());
  HYPDB_RETURN_IF_ERROR(Explain().status());
  HYPDB_RETURN_IF_ERROR(Rewrite().status());
  return Snapshot();
}

}  // namespace hypdb
