// Bias detection (paper Sec. 3.1, Def. 3.1 / Prop. 3.2).
//
// A query is *balanced* w.r.t. a variable set V in context Γ iff
// T ⊥ V | Γ, i.e. I(T;V|Γ) = 0: the groups being compared then have the
// same covariate distribution and the naive group-by difference is an
// unbiased effect estimate. Detection tests that null per context —
// against the covariates Z for total effect, against Z ∪ M for direct
// effect.

#ifndef HYPDB_CORE_DETECTOR_H_
#define HYPDB_CORE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/query.h"
#include "stats/ci_test.h"
#include "util/statusor.h"

namespace hypdb {

/// Result of one balance test (one context, one variable set).
struct BalanceTest {
  std::vector<std::string> variables;  // V, by name
  CiResult ci;
  bool biased = false;  // null rejected at alpha (raw p-value)

  /// Benjamini-Hochberg adjusted p-value across all balance tests of the
  /// query (every context × {total, direct}) — the Sec. 8 extension for
  /// controlling the false-discovery rate over simultaneous tests.
  double p_adjusted = 1.0;
  /// Null rejected at alpha using the adjusted p-value.
  bool biased_fdr = false;

  double mutual_information() const { return ci.statistic; }
};

/// Bias verdict for one context.
struct ContextBias {
  std::vector<std::string> context_labels;
  int64_t rows = 0;
  BalanceTest total;   // V = Z
  BalanceTest direct;  // V = Z ∪ M (only when mediators were requested)
  bool has_direct = false;
};

struct DetectorOptions {
  CiOptions ci;
  double alpha = 0.01;
  uint64_t seed = 0xB1A5;
  /// Count-engine configuration for the per-context estimators.
  MiEngineOptions engine;
};

/// Tests balance of the bound query w.r.t. covariates (and, when
/// `mediators` is non-null, covariates ∪ mediators) in every context.
/// When `count_stats` is non-null, the count-engine work of all contexts
/// is accumulated into it (Fig. 6c accounting).
StatusOr<std::vector<ContextBias>> DetectBias(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<int>& covariates, const std::vector<int>* mediators,
    const DetectorOptions& options, CountEngineStats* count_stats = nullptr);

/// Same, over pre-split contexts (`contexts` must be SplitContexts of
/// `bound`). When `context_engines` is non-null it is aligned with
/// `contexts`; a non-null entry routes that context's counts through the
/// shared engine (which must aggregate exactly that context's rows)
/// instead of a private one, and only the stats delta of the call is
/// accumulated. Detection is one whole-query stage — the FDR adjustment
/// spans every context — which is why there is no per-context variant.
StatusOr<std::vector<ContextBias>> DetectBias(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<Context>& contexts,
    const std::vector<int>& covariates, const std::vector<int>* mediators,
    const DetectorOptions& options,
    const std::vector<std::shared_ptr<CountEngine>>* context_engines,
    CountEngineStats* count_stats = nullptr);

}  // namespace hypdb

#endif  // HYPDB_CORE_DETECTOR_H_
