// Bias explanations (paper Sec. 3.2).
//
// Coarse-grained: each variable Z ∈ V gets a degree of responsibility
// (Eq. 4)
//     ρ_Z = [I(T;V|Γ) - I(T;V|Z,Γ)] / Σ_{V∈V} [I(T;V|Γ) - I(T;V|V,Γ)],
// the normalized share of the dependence I(T;V|Γ) > 0 that conditioning
// on Z alone removes (each numerator is ≥ 0 by submodularity).
//
// Fine-grained (Alg. 3, FGE): for a covariate Z, triples
// (t, y, z) ∈ Π_{TYZ}(σ_Γ D) are ranked by their contribution (Eq. 5)
//     κ(x,y) = Pr(x,y)·ln( Pr(x,y) / (Pr(x)Pr(y)) )
// to I(T;Z) and to I(Y;Z); the two rankings are combined with Borda's
// method and the top-k triples are reported — these are the ground-level
// confounding relationships (e.g. (UA, ROC, Delayed=1) in Fig. 1d).

#ifndef HYPDB_CORE_EXPLAINER_H_
#define HYPDB_CORE_EXPLAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/query.h"
#include "stats/mi_engine.h"
#include "util/statusor.h"

namespace hypdb {

/// Coarse-grained entry: a covariate/mediator and its responsibility.
struct Responsibility {
  std::string attribute;
  int column = -1;
  double rho = 0.0;
};

/// One fine-grained explanation triple.
struct ExplanationTriple {
  std::string t_label;
  std::string y_label;
  std::string z_label;
  double kappa_tz = 0.0;  // contribution of (t, z) to I(T;Z)
  double kappa_yz = 0.0;  // contribution of (y, z) to I(Y;Z)
  int borda_rank = 0;     // 1 = best
};

/// Fine-grained explanations for one covariate.
struct FineGrained {
  std::string covariate;
  int column = -1;
  std::vector<ExplanationTriple> top;  // borda-ranked, best first
};

/// Explanations for one context.
struct ContextExplanation {
  std::vector<std::string> context_labels;
  std::vector<Responsibility> coarse;  // sorted by rho, descending
  std::vector<FineGrained> fine;       // for the top covariates
};

struct ExplainerOptions {
  /// Number of top triples per covariate (paper figures show top-2/3).
  int top_k = 3;
  /// Fine-grained explanations are produced for this many of the
  /// highest-responsibility variables.
  int fine_covariates = 2;
  /// Outcome used for the Y side of fine-grained triples.
  int outcome_index = 0;
  /// Count-engine configuration for the per-context estimators.
  MiEngineOptions engine;
};

/// Explains the bias of the bound query w.r.t. V = covariates ∪ mediators
/// in every context. When `count_stats` is non-null, the count-engine
/// work of all contexts is accumulated into it.
StatusOr<std::vector<ContextExplanation>> ExplainBias(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<int>& variables, const ExplainerOptions& options,
    CountEngineStats* count_stats = nullptr);

/// One context of ExplainBias, independently invokable (explanations are
/// deterministic and context-local, so any subset/order of contexts
/// reproduces the batch results bit-identically). When `engine` is
/// non-null the estimators route counts through it (it must aggregate
/// exactly ctx.view's rows) instead of a private engine; only the stats
/// delta over the call is accumulated.
StatusOr<ContextExplanation> ExplainContext(
    const TablePtr& table, const BoundQuery& bound, const Context& ctx,
    const std::vector<int>& variables, const ExplainerOptions& options,
    const std::shared_ptr<CountEngine>& engine = nullptr,
    CountEngineStats* count_stats = nullptr);

/// Alg. 3 over engine-served counts: top-k triples for covariate `z_col`.
/// The (T, Y, Z) summary is queried first so the pairwise marginals can
/// derive from it when the engine caches.
StatusOr<std::vector<ExplanationTriple>> FineGrainedExplanations(
    CountEngine& engine, const Table& table, int t_col, int y_col,
    int z_col, int top_k);

/// Alg. 3 on one view (scan-backed convenience wrapper).
StatusOr<std::vector<ExplanationTriple>> FineGrainedExplanations(
    const TableView& view, int t_col, int y_col, int z_col, int top_k);

}  // namespace hypdb

#endif  // HYPDB_CORE_EXPLAINER_H_
