#include "core/effect_bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "causal/subsets.h"
#include "core/rewriter.h"

namespace hypdb {

StatusOr<EffectBounds> BoundTotalEffect(const TablePtr& table,
                                        const BoundQuery& bound,
                                        const std::vector<int>& candidates,
                                        const EffectBoundsOptions& options) {
  if (bound.treatment_labels.size() != 2) {
    return Status::FailedPrecondition(
        "effect bounds require a binary treatment in the population");
  }
  for (int c : candidates) {
    if (c == bound.treatment ||
        std::find(bound.outcomes.begin(), bound.outcomes.end(), c) !=
            bound.outcomes.end()) {
      return Status::InvalidArgument(
          "candidate adjustment attributes must exclude the treatment and "
          "the outcomes");
    }
  }

  EffectBounds bounds;
  bounds.t0 = bound.treatment_labels[0];
  bounds.t1 = bound.treatment_labels[1];
  const int num_outcomes = static_cast<int>(bound.outcomes.size());
  bounds.lower.assign(num_outcomes, std::numeric_limits<double>::infinity());
  bounds.upper.assign(num_outcomes,
                      -std::numeric_limits<double>::infinity());

  // The rewriter operates per context; bounds are computed over the full
  // population (one anonymous context).
  BoundQuery flat = bound;
  flat.grouping.clear();

  RewriterOptions rewrite_options;
  rewrite_options.compute_direct = false;
  rewrite_options.compute_significance = false;

  int evaluated = 0;
  HYPDB_ASSIGN_OR_RETURN(
      bool stopped,
      ForEachSubset(
          candidates, options.max_subset_size,
          [&](const std::vector<int>& subset) -> StatusOr<bool> {
            if (evaluated >= options.max_subsets) {
              bounds.truncated = true;
              return true;  // stop enumeration
            }
            ++evaluated;
            HYPDB_ASSIGN_OR_RETURN(
                std::vector<ContextRewrite> rewrites,
                RewriteAndEstimate(table, flat, subset, {},
                                   rewrite_options));
            if (rewrites.empty() || rewrites[0].total.size() != 2) {
              return false;  // overlap failed entirely; skip
            }
            SubsetEffect effect;
            for (int col : subset) {
              effect.adjustment_set.push_back(table->column(col).name());
            }
            effect.blocks_used = rewrites[0].blocks_used;
            if (effect.blocks_used == 0) return false;  // nothing matched
            for (int o = 0; o < num_outcomes; ++o) {
              double diff =
                  rewrites[0].Difference(bounds.t1, bounds.t0, o, true);
              if (std::isnan(diff)) return false;
              effect.diffs.push_back(diff);
              bounds.lower[o] = std::min(bounds.lower[o], diff);
              bounds.upper[o] = std::max(bounds.upper[o], diff);
            }
            bounds.subsets.push_back(std::move(effect));
            return false;
          }));
  (void)stopped;

  if (bounds.subsets.empty()) {
    return Status::FailedPrecondition(
        "no adjustment subset satisfied overlap");
  }
  return bounds;
}

}  // namespace hypdb
