#include "core/hypdb.h"

#include <algorithm>
#include <cmath>

#include "core/analysis_session.h"
#include "core/sql_parser.h"
#include "util/string_util.h"

namespace hypdb {
namespace {

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

SessionHooks ToSessionHooks(const AnalyzeHooks& hooks) {
  SessionHooks out;
  out.population_engine = hooks.population_engine;
  if (hooks.reuse_discovery != nullptr) {
    out.reuse_discovery = *hooks.reuse_discovery;
  }
  return out;
}

}  // namespace

bool HypDbReport::AnyBias() const {
  for (const auto& b : bias) {
    if (b.total.biased || (b.has_direct && b.direct.biased)) return true;
  }
  return false;
}

HypDb::HypDb(TablePtr table, HypDbOptions options)
    : table_(std::move(table)), options_(std::move(options)) {}

StatusOr<QueryAnswers> HypDb::Answers(const AggQuery& query) const {
  return EvaluatePlainQuery(table_, query);
}

StatusOr<DiscoveryReport> HypDb::Discover(const AggQuery& query) const {
  return Discover(query, nullptr);
}

StatusOr<DiscoveryReport> HypDb::Discover(
    const AggQuery& query,
    const std::shared_ptr<CountEngine>& population_engine) const {
  // One implementation: the session's discovery stage (the FD filter +
  // two CD runs) over a throwaway session.
  SessionHooks hooks;
  hooks.population_engine = population_engine;
  HYPDB_ASSIGN_OR_RETURN(
      std::unique_ptr<AnalysisSession> session,
      AnalysisSession::Create(table_, query, options_, std::move(hooks)));
  HYPDB_ASSIGN_OR_RETURN(const DiscoveryReport* report, session->Discover());
  return *report;
}

StatusOr<EffectBounds> HypDb::BoundEffects(
    const AggQuery& query, const EffectBoundsOptions& options) const {
  HYPDB_ASSIGN_OR_RETURN(BoundQuery bound, BindQuery(table_, query));
  HYPDB_ASSIGN_OR_RETURN(DiscoveryReport discovery, Discover(query));
  std::vector<int> candidates;
  for (int c : discovery.treatment_blanket_cols) {
    if (!Contains(bound.outcomes, c)) candidates.push_back(c);
  }
  return BoundTotalEffect(table_, bound, candidates, options);
}

StatusOr<HypDbReport> HypDb::Analyze(const AggQuery& query) {
  return Analyze(query, AnalyzeHooks{});
}

StatusOr<HypDbReport> HypDb::Analyze(const AggQuery& query,
                                     const AnalyzeHooks& hooks) {
  // The one-shot pipeline is a composition of the session stages in
  // canonical order — Report() runs answers, discovery, detection,
  // explanation and resolution over one set of persisted intermediate
  // state, so the staged and one-shot paths are the same code and their
  // reports bit-identical by construction.
  HYPDB_ASSIGN_OR_RETURN(
      std::unique_ptr<AnalysisSession> session,
      AnalysisSession::Create(table_, query, options_,
                              ToSessionHooks(hooks)));
  return session->Report();
}

StatusOr<HypDbReport> HypDb::AnalyzeSql(const std::string& sql) {
  HYPDB_ASSIGN_OR_RETURN(AggQuery query, ParseAggQuery(sql));
  return Analyze(query);
}

namespace {

std::string ContextHeading(const std::vector<std::string>& grouping,
                           const std::vector<std::string>& labels) {
  if (labels.empty()) return "";
  std::vector<std::string> parts;
  for (size_t i = 0; i < labels.size(); ++i) {
    parts.push_back((i < grouping.size() ? grouping[i] : "?") + "=" +
                    labels[i]);
  }
  return " [" + Join(parts, ", ") + "]";
}

std::string FormatP(const CiResult& r) {
  if (r.p_value < 0.001) return "<0.001";
  if (r.p_low != r.p_high) {
    return StrFormat("(%.3f, %.3f)", r.p_low, r.p_high);
  }
  return StrFormat("%.3f", r.p_value);
}

}  // namespace

std::string RenderReport(const HypDbReport& report) {
  std::string out;
  out += "=== HypDB report ===\n";
  out += "SQL query:\n" + report.sql_plain + "\n\n";

  out += "-- Discovery --\n";
  out += "covariates (Z): " + Join(report.discovery.covariates, ", ") +
         (report.discovery.covariates_fell_back ? "  [fallback: MB(T)]"
                                                : "") +
         "\n";
  out += "mediators  (M): " + Join(report.discovery.mediators, ", ") +
         (report.discovery.mediators_fell_back ? "  [fallback: MB(Y)]" : "") +
         "\n";
  if (!report.discovery.dropped_fd.empty()) {
    out += "dropped (FD): " + Join(report.discovery.dropped_fd, ", ") + "\n";
  }
  if (!report.discovery.dropped_keys.empty()) {
    out += "dropped (key-like): " + Join(report.discovery.dropped_keys, ", ") +
           "\n";
  }

  for (size_t c = 0; c < report.plain.contexts.size(); ++c) {
    const ContextAnswer& ctx = report.plain.contexts[c];
    out += "\n-- Context" +
           ContextHeading(report.query.grouping, ctx.context_labels) +
           " --\n";
    const ContextBias* bias = c < report.bias.size() ? &report.bias[c]
                                                     : nullptr;
    if (bias != nullptr) {
      out += StrFormat("bias (total): %s  I=%.4f  p=%s\n",
                       bias->total.biased ? "BIASED" : "unbiased",
                       bias->total.ci.statistic,
                       FormatP(bias->total.ci).c_str());
      if (bias->has_direct) {
        out += StrFormat("bias (direct): %s  I=%.4f  p=%s\n",
                         bias->direct.biased ? "BIASED" : "unbiased",
                         bias->direct.ci.statistic,
                         FormatP(bias->direct.ci).c_str());
      }
    }

    const ContextRewrite* rw =
        c < report.rewrites.size() ? &report.rewrites[c] : nullptr;
    for (size_t o = 0; o < report.plain.outcome_names.size(); ++o) {
      out += "outcome avg(" + report.plain.outcome_names[o] + "):\n";
      out += StrFormat("  %-14s %12s %14s %15s\n", "group", "SQL answer",
                       "total effect", "direct effect");
      for (const GroupAnswer& g : ctx.groups) {
        std::string total = "-";
        std::string direct = "-";
        if (rw != nullptr) {
          for (const auto& ag : rw->total) {
            if (ag.treatment_label == g.treatment_label) {
              total = StrFormat("%.4f", ag.means[o]);
            }
          }
          for (const auto& ag : rw->direct) {
            if (ag.treatment_label == g.treatment_label) {
              direct = StrFormat("%.4f", ag.means[o]);
            }
          }
        }
        out += StrFormat("  %-14s %12.4f %14s %15s\n",
                         g.treatment_label.c_str(), g.averages[o],
                         total.c_str(), direct.c_str());
      }
      if (rw != nullptr && ctx.groups.size() == 2) {
        const std::string& t0 = ctx.groups[0].treatment_label;
        const std::string& t1 = ctx.groups[1].treatment_label;
        double plain_diff = ctx.Difference(t1, t0, static_cast<int>(o));
        double total_diff = rw->Difference(t1, t0, static_cast<int>(o), true);
        double direct_diff =
            rw->has_direct ? rw->Difference(t1, t0, static_cast<int>(o), false)
                           : std::nan("");
        out += StrFormat("  %-14s %12.4f %14.4f %15.4f\n", "diff", plain_diff,
                         total_diff, direct_diff);
        if (o < rw->plain_sig.size()) {
          std::string p_plain = FormatP(rw->plain_sig[o]);
          std::string p_total =
              o < rw->total_sig.size() ? FormatP(rw->total_sig[o]) : "-";
          std::string p_direct =
              o < rw->direct_sig.size() ? FormatP(rw->direct_sig[o]) : "-";
          out += StrFormat("  %-14s %12s %14s %15s\n", "p-value",
                           p_plain.c_str(), p_total.c_str(),
                           p_direct.c_str());
        }
      }
    }

    const ContextExplanation* expl =
        c < report.explanations.size() ? &report.explanations[c] : nullptr;
    if (expl != nullptr && !expl->coarse.empty()) {
      out += "coarse-grained explanations (responsibility):\n";
      for (const auto& r : expl->coarse) {
        if (r.rho <= 0.0) continue;
        out += StrFormat("  %-20s %.3f\n", r.attribute.c_str(), r.rho);
      }
      for (const auto& fine : expl->fine) {
        out += "fine-grained for " + fine.covariate + ":\n";
        for (const auto& t : fine.top) {
          out += StrFormat("  #%d  (T=%s, Y=%s, %s=%s)  k_tz=%.4f k_yz=%.4f\n",
                           t.borda_rank, t.t_label.c_str(), t.y_label.c_str(),
                           fine.covariate.c_str(), t.z_label.c_str(),
                           t.kappa_tz, t.kappa_yz);
        }
      }
    }
  }

  out += "\n-- Rewritten query (total effect, Listing 2) --\n" +
         report.sql_total + "\n";
  if (!report.sql_direct.empty()) {
    out += "\n-- Rewritten query (direct effect, Eq. 3) --\n" +
           report.sql_direct + "\n";
  }
  out += StrFormat(
      "\ntimings: discovery %.3fs, detect %.3fs, explain %.3fs, resolve "
      "%.3fs\n",
      report.discovery.seconds, report.detect_seconds, report.explain_seconds,
      report.resolve_seconds);
  const CountEngineStats& cs = report.count_stats;
  out += StrFormat("count engine: %lld queries, %lld scans",
                   static_cast<long long>(cs.queries),
                   static_cast<long long>(cs.scans));
  out += StrFormat(", %lld cache hits, %lld marginalized",
                   static_cast<long long>(cs.cache_hits),
                   static_cast<long long>(cs.marginalizations));
  if (cs.predicate_slices > 0) {
    out += StrFormat(", %lld sliced",
                     static_cast<long long>(cs.predicate_slices));
  }
  if (cs.cube_hits > 0) {
    out += StrFormat(", %lld cube hits",
                     static_cast<long long>(cs.cube_hits));
  }
  out += "\n";
  return out;
}

}  // namespace hypdb
