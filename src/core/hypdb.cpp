#include "core/hypdb.h"

#include <algorithm>
#include <cmath>

#include "causal/ci_oracle.h"
#include "core/sql_parser.h"
#include "core/sql_printer.h"
#include "stats/mi_engine.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace hypdb {
namespace {

std::vector<std::string> Names(const TablePtr& table,
                               const std::vector<int>& cols) {
  std::vector<std::string> out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(table->column(c).name());
  return out;
}

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

bool HypDbReport::AnyBias() const {
  for (const auto& b : bias) {
    if (b.total.biased || (b.has_direct && b.direct.biased)) return true;
  }
  return false;
}

HypDb::HypDb(TablePtr table, HypDbOptions options)
    : table_(std::move(table)), options_(std::move(options)) {}

StatusOr<QueryAnswers> HypDb::Answers(const AggQuery& query) const {
  return EvaluatePlainQuery(table_, query);
}

StatusOr<DiscoveryReport> HypDb::Discover(const AggQuery& query) const {
  return Discover(query, nullptr);
}

StatusOr<DiscoveryReport> HypDb::Discover(
    const AggQuery& query,
    const std::shared_ptr<CountEngine>& population_engine) const {
  Stopwatch timer;
  HYPDB_ASSIGN_OR_RETURN(BoundQuery bound, BindQuery(table_, query));
  DiscoveryReport report;

  // Candidate attributes: everything except the treatment, minus logical
  // dependencies (Sec. 4). The treatment is pinned first so bijection
  // partners of T are dropped, never T itself.
  std::vector<int> filtered = {bound.treatment};
  {
    std::vector<int> pool = {bound.treatment};
    for (int c = 0; c < table_->NumColumns(); ++c) {
      if (c != bound.treatment) pool.push_back(c);
    }
    if (options_.apply_fd_filter) {
      Rng rng(options_.seed ^ 0xFD);
      HYPDB_ASSIGN_OR_RETURN(
          FdFilterReport fd,
          FilterLogicalDependencies(bound.population, pool, options_.fd,
                                    rng));
      filtered = fd.kept;
      for (const auto& [dropped, partner] : fd.dropped_fd) {
        report.dropped_fd.push_back(table_->column(dropped).name());
      }
      for (int dropped : fd.dropped_keys) {
        report.dropped_keys.push_back(table_->column(dropped).name());
      }
      if (!Contains(filtered, bound.treatment)) {
        // The treatment itself looked key-like; discovery is meaningless.
        return Status::FailedPrecondition(
            "treatment attribute " + query.treatment +
            " was classified as key-like");
      }
    } else {
      filtered = pool;
    }
  }

  std::vector<int> candidates;
  for (int c : filtered) {
    if (c != bound.treatment) candidates.push_back(c);
  }

  // One count engine serves both discovery runs (PA_T and PA_Y): their
  // CI tests overlap heavily on the shared population. A service-provided
  // engine is used as-is (it already caches and may be shared across
  // concurrent queries); its stats are reported as a delta over this
  // call. The delta excludes work done before the call but NOT work other
  // queries do concurrently during it — with a shared engine the counters
  // are approximate attribution, never part of the bit-identity
  // invariant (report digests exclude count_stats for this reason).
  const bool external = population_engine != nullptr;
  MiEngine engine =
      external ? MiEngine(bound.population, population_engine,
                          options_.engine, /*wrap_provider=*/false)
               : MiEngine(bound.population, options_.engine);
  const CountEngineStats stats_before =
      external ? engine.count_engine().stats() : CountEngineStats{};
  CiTester tester(&engine, options_.ci, options_.seed);
  DataCiOracle oracle(&tester, options_.alpha);

  // Z = PA_T (Alg. 1); outcomes never enter the covariate set.
  HYPDB_ASSIGN_OR_RETURN(
      CdResult cd_t,
      DiscoverParents(oracle, bound.treatment, candidates, options_.cd,
                      bound.outcomes));
  report.covariates_fell_back = cd_t.fell_back_to_blanket;
  report.treatment_blanket_cols = cd_t.markov_blanket;
  for (int p : cd_t.parents) {
    if (!Contains(bound.outcomes, p)) report.covariate_cols.push_back(p);
  }

  // M = PA_Y − {T} for the primary outcome.
  if (options_.discover_mediators) {
    const int y = bound.outcomes[0];
    std::vector<int> y_candidates;
    for (int c : filtered) {
      if (c != y) y_candidates.push_back(c);
    }
    HYPDB_ASSIGN_OR_RETURN(
        CdResult cd_y,
        DiscoverParents(oracle, y, y_candidates, options_.cd,
                        {bound.treatment}));
    report.mediators_fell_back = cd_y.fell_back_to_blanket;
    for (int p : cd_y.parents) {
      if (p != bound.treatment && !Contains(bound.outcomes, p)) {
        report.mediator_cols.push_back(p);
      }
    }
  }

  report.covariates = Names(table_, report.covariate_cols);
  report.mediators = Names(table_, report.mediator_cols);
  report.tests_used = oracle.num_tests();
  report.count_stats = engine.count_engine().stats() - stats_before;
  report.seconds = timer.ElapsedSeconds();
  return report;
}

StatusOr<EffectBounds> HypDb::BoundEffects(
    const AggQuery& query, const EffectBoundsOptions& options) const {
  HYPDB_ASSIGN_OR_RETURN(BoundQuery bound, BindQuery(table_, query));
  HYPDB_ASSIGN_OR_RETURN(DiscoveryReport discovery, Discover(query));
  std::vector<int> candidates;
  for (int c : discovery.treatment_blanket_cols) {
    if (!Contains(bound.outcomes, c)) candidates.push_back(c);
  }
  return BoundTotalEffect(table_, bound, candidates, options);
}

StatusOr<HypDbReport> HypDb::Analyze(const AggQuery& query) {
  return Analyze(query, AnalyzeHooks{});
}

StatusOr<HypDbReport> HypDb::Analyze(const AggQuery& query,
                                     const AnalyzeHooks& hooks) {
  HypDbReport report;
  report.query = query;
  report.sql_plain = query.ToSql();

  HYPDB_ASSIGN_OR_RETURN(BoundQuery bound, BindQuery(table_, query));
  HYPDB_ASSIGN_OR_RETURN(report.plain, EvaluatePlainQuery(table_, query));
  if (hooks.reuse_discovery != nullptr) {
    report.discovery = *hooks.reuse_discovery;
  } else {
    HYPDB_ASSIGN_OR_RETURN(report.discovery,
                           Discover(query, hooks.population_engine));
  }

  // --- Detection (Sec. 3.1). Discovery time is reported separately; the
  // paper's "Det." column covers the balance tests.
  Stopwatch timer;
  report.count_stats = report.discovery.count_stats;
  DetectorOptions det;
  det.ci = options_.ci;
  det.alpha = options_.alpha;
  det.seed = options_.seed ^ 0xDE7EC7;
  det.engine = options_.engine;
  const std::vector<int>* mediators =
      options_.discover_mediators ? &report.discovery.mediator_cols : nullptr;
  HYPDB_ASSIGN_OR_RETURN(
      report.bias, DetectBias(table_, bound, report.discovery.covariate_cols,
                              mediators, det, &report.count_stats));
  report.detect_seconds = timer.ElapsedSeconds();

  // --- Explanation (Sec. 3.2) over V = Z ∪ M.
  timer.Restart();
  std::vector<int> v = report.discovery.covariate_cols;
  for (int m : report.discovery.mediator_cols) {
    if (!Contains(v, m)) v.push_back(m);
  }
  std::sort(v.begin(), v.end());
  ExplainerOptions explain = options_.explain;
  explain.engine = options_.engine;
  HYPDB_ASSIGN_OR_RETURN(
      report.explanations,
      ExplainBias(table_, bound, v, explain, &report.count_stats));
  report.explain_seconds = timer.ElapsedSeconds();

  // --- Resolution (Sec. 3.3).
  timer.Restart();
  RewriterOptions rw;
  rw.ci = options_.ci;
  rw.seed = options_.seed ^ 0x9E50;
  rw.compute_direct = options_.discover_mediators;
  rw.direct_reference = options_.direct_reference;
  rw.compute_significance = options_.compute_significance;
  rw.engine = options_.engine;
  HYPDB_ASSIGN_OR_RETURN(
      report.rewrites,
      RewriteAndEstimate(table_, bound, report.discovery.covariate_cols,
                         report.discovery.mediator_cols, rw,
                         &report.count_stats));
  report.resolve_seconds = timer.ElapsedSeconds();

  report.sql_total = RewrittenTotalSql(query, report.discovery.covariates);
  if (options_.discover_mediators) {
    std::string reference = options_.direct_reference;
    if (reference.empty() && !bound.treatment_labels.empty()) {
      reference = bound.treatment_labels.back();
    }
    report.sql_direct = RewrittenDirectSql(
        query, report.discovery.covariates, report.discovery.mediators,
        reference);
  }
  return report;
}

StatusOr<HypDbReport> HypDb::AnalyzeSql(const std::string& sql) {
  HYPDB_ASSIGN_OR_RETURN(AggQuery query, ParseAggQuery(sql));
  return Analyze(query);
}

namespace {

std::string ContextHeading(const std::vector<std::string>& grouping,
                           const std::vector<std::string>& labels) {
  if (labels.empty()) return "";
  std::vector<std::string> parts;
  for (size_t i = 0; i < labels.size(); ++i) {
    parts.push_back((i < grouping.size() ? grouping[i] : "?") + "=" +
                    labels[i]);
  }
  return " [" + Join(parts, ", ") + "]";
}

std::string FormatP(const CiResult& r) {
  if (r.p_value < 0.001) return "<0.001";
  if (r.p_low != r.p_high) {
    return StrFormat("(%.3f, %.3f)", r.p_low, r.p_high);
  }
  return StrFormat("%.3f", r.p_value);
}

}  // namespace

std::string RenderReport(const HypDbReport& report) {
  std::string out;
  out += "=== HypDB report ===\n";
  out += "SQL query:\n" + report.sql_plain + "\n\n";

  out += "-- Discovery --\n";
  out += "covariates (Z): " + Join(report.discovery.covariates, ", ") +
         (report.discovery.covariates_fell_back ? "  [fallback: MB(T)]"
                                                : "") +
         "\n";
  out += "mediators  (M): " + Join(report.discovery.mediators, ", ") +
         (report.discovery.mediators_fell_back ? "  [fallback: MB(Y)]" : "") +
         "\n";
  if (!report.discovery.dropped_fd.empty()) {
    out += "dropped (FD): " + Join(report.discovery.dropped_fd, ", ") + "\n";
  }
  if (!report.discovery.dropped_keys.empty()) {
    out += "dropped (key-like): " + Join(report.discovery.dropped_keys, ", ") +
           "\n";
  }

  for (size_t c = 0; c < report.plain.contexts.size(); ++c) {
    const ContextAnswer& ctx = report.plain.contexts[c];
    out += "\n-- Context" +
           ContextHeading(report.query.grouping, ctx.context_labels) +
           " --\n";
    const ContextBias* bias = c < report.bias.size() ? &report.bias[c]
                                                     : nullptr;
    if (bias != nullptr) {
      out += StrFormat("bias (total): %s  I=%.4f  p=%s\n",
                       bias->total.biased ? "BIASED" : "unbiased",
                       bias->total.ci.statistic,
                       FormatP(bias->total.ci).c_str());
      if (bias->has_direct) {
        out += StrFormat("bias (direct): %s  I=%.4f  p=%s\n",
                         bias->direct.biased ? "BIASED" : "unbiased",
                         bias->direct.ci.statistic,
                         FormatP(bias->direct.ci).c_str());
      }
    }

    const ContextRewrite* rw =
        c < report.rewrites.size() ? &report.rewrites[c] : nullptr;
    for (size_t o = 0; o < report.plain.outcome_names.size(); ++o) {
      out += "outcome avg(" + report.plain.outcome_names[o] + "):\n";
      out += StrFormat("  %-14s %12s %14s %15s\n", "group", "SQL answer",
                       "total effect", "direct effect");
      for (const GroupAnswer& g : ctx.groups) {
        std::string total = "-";
        std::string direct = "-";
        if (rw != nullptr) {
          for (const auto& ag : rw->total) {
            if (ag.treatment_label == g.treatment_label) {
              total = StrFormat("%.4f", ag.means[o]);
            }
          }
          for (const auto& ag : rw->direct) {
            if (ag.treatment_label == g.treatment_label) {
              direct = StrFormat("%.4f", ag.means[o]);
            }
          }
        }
        out += StrFormat("  %-14s %12.4f %14s %15s\n",
                         g.treatment_label.c_str(), g.averages[o],
                         total.c_str(), direct.c_str());
      }
      if (rw != nullptr && ctx.groups.size() == 2) {
        const std::string& t0 = ctx.groups[0].treatment_label;
        const std::string& t1 = ctx.groups[1].treatment_label;
        double plain_diff = ctx.Difference(t1, t0, static_cast<int>(o));
        double total_diff = rw->Difference(t1, t0, static_cast<int>(o), true);
        double direct_diff =
            rw->has_direct ? rw->Difference(t1, t0, static_cast<int>(o), false)
                           : std::nan("");
        out += StrFormat("  %-14s %12.4f %14.4f %15.4f\n", "diff", plain_diff,
                         total_diff, direct_diff);
        if (o < rw->plain_sig.size()) {
          std::string p_plain = FormatP(rw->plain_sig[o]);
          std::string p_total =
              o < rw->total_sig.size() ? FormatP(rw->total_sig[o]) : "-";
          std::string p_direct =
              o < rw->direct_sig.size() ? FormatP(rw->direct_sig[o]) : "-";
          out += StrFormat("  %-14s %12s %14s %15s\n", "p-value",
                           p_plain.c_str(), p_total.c_str(),
                           p_direct.c_str());
        }
      }
    }

    const ContextExplanation* expl =
        c < report.explanations.size() ? &report.explanations[c] : nullptr;
    if (expl != nullptr && !expl->coarse.empty()) {
      out += "coarse-grained explanations (responsibility):\n";
      for (const auto& r : expl->coarse) {
        if (r.rho <= 0.0) continue;
        out += StrFormat("  %-20s %.3f\n", r.attribute.c_str(), r.rho);
      }
      for (const auto& fine : expl->fine) {
        out += "fine-grained for " + fine.covariate + ":\n";
        for (const auto& t : fine.top) {
          out += StrFormat("  #%d  (T=%s, Y=%s, %s=%s)  k_tz=%.4f k_yz=%.4f\n",
                           t.borda_rank, t.t_label.c_str(), t.y_label.c_str(),
                           fine.covariate.c_str(), t.z_label.c_str(),
                           t.kappa_tz, t.kappa_yz);
        }
      }
    }
  }

  out += "\n-- Rewritten query (total effect, Listing 2) --\n" +
         report.sql_total + "\n";
  if (!report.sql_direct.empty()) {
    out += "\n-- Rewritten query (direct effect, Eq. 3) --\n" +
           report.sql_direct + "\n";
  }
  out += StrFormat(
      "\ntimings: discovery %.3fs, detect %.3fs, explain %.3fs, resolve "
      "%.3fs\n",
      report.discovery.seconds, report.detect_seconds, report.explain_seconds,
      report.resolve_seconds);
  const CountEngineStats& cs = report.count_stats;
  out += StrFormat("count engine: %lld queries, %lld scans",
                   static_cast<long long>(cs.queries),
                   static_cast<long long>(cs.scans));
  out += StrFormat(", %lld cache hits, %lld marginalized",
                   static_cast<long long>(cs.cache_hits),
                   static_cast<long long>(cs.marginalizations));
  if (cs.cube_hits > 0) {
    out += StrFormat(", %lld cube hits",
                     static_cast<long long>(cs.cube_hits));
  }
  out += "\n";
  return out;
}

}  // namespace hypdb
