#include "core/sql_parser.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace hypdb {
namespace {

enum class TokenType { kIdent, kString, kSymbol, kEnd };

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // identifiers are kept verbatim; Upper() compares
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    current_.pos = pos_;
    if (pos_ >= input_.size()) {
      current_ = {TokenType::kEnd, "", pos_};
      return;
    }
    char c = input_[pos_];
    if (c == '\'' || c == '"') {
      char quote = c;
      std::string text;
      ++pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) {
        text += input_[pos_++];
      }
      if (pos_ < input_.size()) ++pos_;  // closing quote
      current_ = {TokenType::kString, text, current_.pos};
      return;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.') {
      std::string text;
      while (pos_ < input_.size()) {
        char d = input_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '.') {
          text += d;
          ++pos_;
        } else {
          break;
        }
      }
      current_ = {TokenType::kIdent, text, current_.pos};
      return;
    }
    current_ = {TokenType::kSymbol, std::string(1, c), current_.pos};
    ++pos_;
  }

  const std::string& input_;
  size_t pos_ = 0;
  Token current_;
};

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

class Parser {
 public:
  explicit Parser(const std::string& sql) : lexer_(sql) {}

  StatusOr<AggQuery> Parse() {
    AggQuery query;

    HYPDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    // Select list: plain attributes (must reappear in GROUP BY) and
    // avg(...) outcomes.
    std::vector<std::string> plain;
    for (;;) {
      HYPDB_ASSIGN_OR_RETURN(Token t, ExpectIdent("select item"));
      if (Upper(t.text) == "AVG") {
        HYPDB_RETURN_IF_ERROR(ExpectSymbol("("));
        HYPDB_ASSIGN_OR_RETURN(Token y, ExpectIdent("avg() attribute"));
        HYPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        query.outcomes.push_back(y.text);
      } else {
        plain.push_back(t.text);
      }
      if (!ConsumeSymbol(",")) break;
    }

    HYPDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    HYPDB_ASSIGN_OR_RETURN(Token table, ExpectIdent("table name"));
    query.table_name = table.text;

    if (PeekKeyword("WHERE")) {
      lexer_.Take();
      for (;;) {
        HYPDB_ASSIGN_OR_RETURN(Token attr, ExpectIdent("WHERE attribute"));
        std::vector<std::string> values;
        if (PeekKeyword("IN")) {
          lexer_.Take();
          HYPDB_RETURN_IF_ERROR(ExpectSymbol("("));
          for (;;) {
            HYPDB_ASSIGN_OR_RETURN(std::string v, ExpectValue());
            values.push_back(v);
            if (!ConsumeSymbol(",")) break;
          }
          HYPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        } else {
          HYPDB_RETURN_IF_ERROR(ExpectSymbol("="));
          HYPDB_ASSIGN_OR_RETURN(std::string v, ExpectValue());
          values.push_back(v);
        }
        query.where.emplace_back(attr.text, std::move(values));
        if (!PeekKeyword("AND")) break;
        lexer_.Take();
      }
    }

    HYPDB_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
    HYPDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    std::vector<std::string> group_by;
    for (;;) {
      HYPDB_ASSIGN_OR_RETURN(Token g, ExpectIdent("GROUP BY attribute"));
      group_by.push_back(g.text);
      if (!ConsumeSymbol(",")) break;
    }
    if (lexer_.Peek().type != TokenType::kEnd &&
        !(lexer_.Peek().type == TokenType::kSymbol &&
          lexer_.Peek().text == ";")) {
      return ErrorHere("unexpected trailing input");
    }

    // The first GROUP BY attribute is the treatment; the rest are
    // context attributes.
    query.treatment = group_by.front();
    query.grouping.assign(group_by.begin() + 1, group_by.end());

    // Every plain select item must be grouped.
    for (const auto& p : plain) {
      if (std::find(group_by.begin(), group_by.end(), p) == group_by.end()) {
        return Status::InvalidArgument(
            "select attribute '" + p +
            "' does not appear in GROUP BY (Listing-1 queries are "
            "group-by-average)");
      }
    }
    if (query.outcomes.empty()) {
      return Status::InvalidArgument("query has no avg() outcome");
    }
    return query;
  }

 private:
  Status ErrorHere(const std::string& message) {
    return Status::InvalidArgument(
        message + " at position " + std::to_string(lexer_.Peek().pos));
  }

  bool PeekKeyword(const std::string& kw) {
    return lexer_.Peek().type == TokenType::kIdent &&
           Upper(lexer_.Peek().text) == kw;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return ErrorHere("expected " + kw);
    lexer_.Take();
    return Status::Ok();
  }

  StatusOr<Token> ExpectIdent(const std::string& what) {
    if (lexer_.Peek().type != TokenType::kIdent) {
      return ErrorHere("expected " + what);
    }
    return lexer_.Take();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (lexer_.Peek().type != TokenType::kSymbol ||
        lexer_.Peek().text != sym) {
      return ErrorHere("expected '" + sym + "'");
    }
    lexer_.Take();
    return Status::Ok();
  }

  bool ConsumeSymbol(const std::string& sym) {
    if (lexer_.Peek().type == TokenType::kSymbol &&
        lexer_.Peek().text == sym) {
      lexer_.Take();
      return true;
    }
    return false;
  }

  /// A WHERE value: quoted string or bare identifier/number.
  StatusOr<std::string> ExpectValue() {
    if (lexer_.Peek().type == TokenType::kString ||
        lexer_.Peek().type == TokenType::kIdent) {
      return lexer_.Take().text;
    }
    return ErrorHere("expected a value");
  }

  Lexer lexer_;
};

}  // namespace

StatusOr<AggQuery> ParseAggQuery(const std::string& sql) {
  Parser parser(sql);
  return parser.Parse();
}

}  // namespace hypdb
