// HypDb: the system facade — detect, explain, and resolve bias in
// group-by-average OLAP queries (the paper's end-to-end pipeline).
//
// Pipeline of Analyze():
//  1. bind + evaluate the plain query (the potentially-biased answers);
//  2. drop logical dependencies (FDs, key-like attributes — Sec. 4);
//  3. discover covariates Z = PA_T and mediators M = PA_Y − {T} with the
//     CD algorithm on the WHERE-subpopulation (Alg. 1);
//  4. detect bias per context: test T ⊥ Z | Γ and T ⊥ Z∪M | Γ (Def. 3.1);
//  5. explain: responsibilities (Eq. 4) + fine-grained triples (Alg. 3);
//  6. resolve: rewrite per Listing 2 / Eq. 3 and re-estimate, with
//     significance tests on the rewritten answers.

#ifndef HYPDB_CORE_HYPDB_H_
#define HYPDB_CORE_HYPDB_H_

#include <memory>
#include <string>
#include <vector>

#include "causal/cd_algorithm.h"
#include "causal/fd_filter.h"
#include "core/detector.h"
#include "core/explainer.h"
#include "core/query.h"
#include "core/effect_bounds.h"
#include "core/rewriter.h"
#include "stats/ci_test.h"
#include "util/statusor.h"

namespace hypdb {

struct HypDbOptions {
  /// Independence-test configuration shared by discovery, detection and
  /// significance testing. Default: HyMIT (Sec. 6).
  CiOptions ci;
  /// Count-engine configuration (caching, marginalization, scan threads)
  /// shared by every stage that reads contingency counts.
  MiEngineOptions engine;
  /// Significance level for all tests (Sec. 7.3 uses 0.01).
  double alpha = 0.01;
  CdOptions cd;
  FdFilterOptions fd;
  bool apply_fd_filter = true;
  /// Discover PA_Y and compute direct effects.
  bool discover_mediators = true;
  ExplainerOptions explain;
  /// Reference group for the mediator formula (empty = largest label).
  std::string direct_reference;
  bool compute_significance = true;
  uint64_t seed = 0xC0FFEE;
};

/// Covariate/mediator discovery outcome.
struct DiscoveryReport {
  std::vector<int> covariate_cols;
  std::vector<int> mediator_cols;
  /// MB(T) as learned (for the effect-bounds extension).
  std::vector<int> treatment_blanket_cols;
  std::vector<std::string> covariates;
  std::vector<std::string> mediators;
  bool covariates_fell_back = false;
  bool mediators_fell_back = false;
  /// Attributes removed before discovery (Sec. 4).
  std::vector<std::string> dropped_fd;
  std::vector<std::string> dropped_keys;
  int64_t tests_used = 0;
  /// Count-engine work of the discovery stage (Fig. 6c accounting).
  CountEngineStats count_stats;
  double seconds = 0.0;
};

/// Hooks the service layer (src/service) threads into Analyze() to share
/// work across concurrent queries. Both members are optional; a
/// default-constructed AnalyzeHooks reproduces the one-shot behavior.
struct AnalyzeHooks {
  /// Count engine aggregating exactly the rows of the bound WHERE
  /// population. When set, discovery routes its counts through it instead
  /// of a private engine, so concurrent queries on the same subpopulation
  /// share cached contingency summaries. Must be thread-safe when shared
  /// (CachingCountEngine over ViewCountProvider is).
  std::shared_ptr<CountEngine> population_engine;
  /// When set, steps 2-3 (FD filtering + CD discovery) are skipped and
  /// this report is reused verbatim — the DiscoveryCache path. The caller
  /// guarantees it was produced for the same table, treatment, outcomes
  /// and subpopulation under equivalent options.
  const DiscoveryReport* reuse_discovery = nullptr;
};

/// Everything HypDB has to say about one query (Fig. 1/3/4 reports).
struct HypDbReport {
  AggQuery query;
  QueryAnswers plain;
  DiscoveryReport discovery;
  std::vector<ContextBias> bias;
  std::vector<ContextExplanation> explanations;
  std::vector<ContextRewrite> rewrites;
  std::string sql_plain;
  std::string sql_total;
  std::string sql_direct;
  double detect_seconds = 0.0;
  double explain_seconds = 0.0;
  double resolve_seconds = 0.0;
  /// Aggregate count-engine work across discovery, detection, explanation
  /// and resolution (scans vs cache hits vs marginalizations — Fig. 6c).
  CountEngineStats count_stats;

  /// True when any context is biased w.r.t. the covariates.
  bool AnyBias() const;
};

class HypDb {
 public:
  explicit HypDb(TablePtr table, HypDbOptions options = {});

  const TablePtr& table() const { return table_; }
  const HypDbOptions& options() const { return options_; }

  /// Full pipeline.
  StatusOr<HypDbReport> Analyze(const AggQuery& query);
  /// Full pipeline with service-layer hooks (shared population engine
  /// and/or a cached discovery to reuse).
  StatusOr<HypDbReport> Analyze(const AggQuery& query,
                                const AnalyzeHooks& hooks);
  /// Full pipeline from Listing-1 SQL text.
  StatusOr<HypDbReport> AnalyzeSql(const std::string& sql);

  /// The plain (biased) query answers only.
  StatusOr<QueryAnswers> Answers(const AggQuery& query) const;

  /// Steps 2-3 only: logical-dependency filtering + CD discovery.
  StatusOr<DiscoveryReport> Discover(const AggQuery& query) const;
  /// Discovery routing counts through `population_engine` (may be null =
  /// private engine). The engine must aggregate the bound WHERE
  /// population; its stats delta over the call is reported.
  StatusOr<DiscoveryReport> Discover(
      const AggQuery& query,
      const std::shared_ptr<CountEngine>& population_engine) const;

  /// The Sec. 4 future-work extension: when the parents of T are not
  /// identifiable, evaluate the adjustment formula under every subset of
  /// MB(T) − outcomes and return the resulting effect interval.
  StatusOr<EffectBounds> BoundEffects(
      const AggQuery& query, const EffectBoundsOptions& options = {}) const;

 private:
  TablePtr table_;
  HypDbOptions options_;
};

/// Human-readable rendering of a report (the Fig. 3/4 layout).
std::string RenderReport(const HypDbReport& report);

}  // namespace hypdb

#endif  // HYPDB_CORE_HYPDB_H_
