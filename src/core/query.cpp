#include "core/query.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "dataframe/group_by.h"
#include "dataframe/predicate.h"
#include "util/string_util.h"

namespace hypdb {

std::string AggQuery::ToSql() const {
  std::vector<std::string> select;
  select.push_back(treatment);
  for (const auto& g : grouping) select.push_back(g);
  for (const auto& y : outcomes) select.push_back("avg(" + y + ")");
  std::string sql = "SELECT " + Join(select, ", ") + "\nFROM " + table_name;
  if (!where.empty()) {
    std::vector<std::string> terms;
    for (const auto& [attr, values] : where) {
      std::vector<std::string> quoted;
      for (const auto& v : values) quoted.push_back("'" + v + "'");
      terms.push_back(attr + " IN (" + Join(quoted, ", ") + ")");
    }
    sql += "\nWHERE " + Join(terms, " AND ");
  }
  std::vector<std::string> group = {treatment};
  for (const auto& g : grouping) group.push_back(g);
  sql += "\nGROUP BY " + Join(group, ", ");
  return sql;
}

double ContextAnswer::Difference(const std::string& t1, const std::string& t0,
                                 int outcome_idx) const {
  const GroupAnswer* g1 = nullptr;
  const GroupAnswer* g0 = nullptr;
  for (const auto& g : groups) {
    if (g.treatment_label == t1) g1 = &g;
    if (g.treatment_label == t0) g0 = &g;
  }
  if (g1 == nullptr || g0 == nullptr) return std::nan("");
  return g1->averages[outcome_idx] - g0->averages[outcome_idx];
}

StatusOr<BoundQuery> BindQuery(const TablePtr& table, const AggQuery& query) {
  BoundQuery bound;
  if (query.treatment.empty()) {
    return Status::InvalidArgument("query has no treatment attribute");
  }
  if (query.outcomes.empty()) {
    return Status::InvalidArgument("query has no avg() outcome");
  }
  HYPDB_ASSIGN_OR_RETURN(bound.treatment,
                         table->ColumnIndex(query.treatment));
  std::set<int> used = {bound.treatment};
  for (const auto& g : query.grouping) {
    HYPDB_ASSIGN_OR_RETURN(int col, table->ColumnIndex(g));
    if (!used.insert(col).second) {
      return Status::InvalidArgument("attribute " + g +
                                     " used twice in GROUP BY");
    }
    bound.grouping.push_back(col);
  }
  for (const auto& y : query.outcomes) {
    HYPDB_ASSIGN_OR_RETURN(int col, table->ColumnIndex(y));
    if (used.count(col) > 0) {
      return Status::InvalidArgument("outcome " + y +
                                     " also appears in GROUP BY");
    }
    if (!table->column(col).IsNumericLike()) {
      return Status::InvalidArgument("outcome " + y +
                                     " has non-numeric labels");
    }
    bound.outcomes.push_back(col);
  }

  HYPDB_ASSIGN_OR_RETURN(Predicate pred,
                         Predicate::FromInLists(*table, query.where));
  bound.population = TableView(table).Filter(pred);
  if (bound.population.NumRows() == 0) {
    return Status::FailedPrecondition("WHERE clause selects no rows");
  }

  // Treatment values present in the population.
  HYPDB_ASSIGN_OR_RETURN(GroupCounts t_counts,
                         CountBy(bound.population, {bound.treatment}));
  const Column& t_col = table->column(bound.treatment);
  for (uint64_t key : t_counts.keys) {
    bound.treatment_labels.push_back(
        t_col.dict().Label(static_cast<int32_t>(key)));
  }
  std::sort(bound.treatment_labels.begin(), bound.treatment_labels.end());
  return bound;
}

StatusOr<std::vector<Context>> SplitContexts(const TablePtr& table,
                                             const BoundQuery& bound) {
  std::vector<Context> contexts;
  if (bound.grouping.empty()) {
    contexts.push_back(Context{{}, bound.population});
    return contexts;
  }
  HYPDB_ASSIGN_OR_RETURN(GroupedRows groups,
                         CollectGroups(bound.population, bound.grouping));
  for (int g = 0; g < groups.NumGroups(); ++g) {
    Context ctx;
    for (size_t i = 0; i < bound.grouping.size(); ++i) {
      ctx.labels.push_back(table->column(bound.grouping[i])
                               .dict()
                               .Label(groups.codec.DecodeAt(groups.keys[g],
                                                            static_cast<int>(i))));
    }
    ctx.view = bound.population.WithRows(groups.rows[g]);
    contexts.push_back(std::move(ctx));
  }
  return contexts;
}

StatusOr<QueryAnswers> EvaluatePlainQuery(const TablePtr& table,
                                          const AggQuery& query) {
  HYPDB_ASSIGN_OR_RETURN(BoundQuery bound, BindQuery(table, query));

  std::vector<int> group_cols = {bound.treatment};
  group_cols.insert(group_cols.end(), bound.grouping.begin(),
                    bound.grouping.end());
  HYPDB_ASSIGN_OR_RETURN(
      GroupedAverages averages,
      AverageBy(bound.population, group_cols, bound.outcomes));

  QueryAnswers answers;
  answers.outcome_names = query.outcomes;

  // Split groups into contexts: the context key is everything but the
  // treatment digit (position 0 in the codec).
  std::vector<int> ctx_positions;
  for (size_t i = 1; i < group_cols.size(); ++i) {
    ctx_positions.push_back(static_cast<int>(i));
  }
  TupleCodec ctx_codec = averages.codec.Project(ctx_positions);
  std::map<uint64_t, size_t> ctx_index;
  const Column& t_col = table->column(bound.treatment);
  for (int g = 0; g < averages.NumGroups(); ++g) {
    std::vector<int32_t> codes(ctx_positions.size());
    for (size_t i = 0; i < ctx_positions.size(); ++i) {
      codes[i] = averages.codec.DecodeAt(averages.keys[g], ctx_positions[i]);
    }
    uint64_t ctx_key = ctx_codec.EncodeCodes(codes);
    auto [it, inserted] = ctx_index.emplace(ctx_key, answers.contexts.size());
    if (inserted) {
      ContextAnswer ctx;
      for (size_t i = 0; i < bound.grouping.size(); ++i) {
        ctx.context_labels.push_back(
            table->column(bound.grouping[i]).dict().Label(codes[i]));
      }
      answers.contexts.push_back(std::move(ctx));
    }
    GroupAnswer group;
    group.treatment_label =
        t_col.dict().Label(averages.codec.DecodeAt(averages.keys[g], 0));
    group.count = averages.counts[g];
    group.averages = averages.means[g];
    answers.contexts[it->second].groups.push_back(std::move(group));
  }
  for (auto& ctx : answers.contexts) {
    std::sort(ctx.groups.begin(), ctx.groups.end(),
              [](const GroupAnswer& a, const GroupAnswer& b) {
                return a.treatment_label < b.treatment_label;
              });
  }
  return answers;
}

}  // namespace hypdb
