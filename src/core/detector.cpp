#include "core/detector.h"

#include <algorithm>

#include "stats/mi_engine.h"
#include "stats/multiple_testing.h"

namespace hypdb {
namespace {

std::vector<std::string> ColumnNames(const TablePtr& table,
                                     const std::vector<int>& cols) {
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (int c : cols) names.push_back(table->column(c).name());
  return names;
}

// Balance test of T vs the compound V within one context view. Variables
// that are constant within the context (e.g. the grouping attributes)
// contribute nothing and are kept — the compound support compaction
// handles them.
StatusOr<BalanceTest> TestBalance(const TablePtr& table, CiTester& tester,
                                  int treatment, const std::vector<int>& v,
                                  double alpha) {
  BalanceTest test;
  test.variables = ColumnNames(table, v);
  if (v.empty()) {
    // Nothing to be unbalanced against.
    test.ci = CiResult{};
    test.biased = false;
    return test;
  }
  HYPDB_ASSIGN_OR_RETURN(test.ci, tester.TestSets({treatment}, v, {}));
  test.biased = !test.ci.IndependentAt(alpha);
  return test;
}

}  // namespace

StatusOr<std::vector<ContextBias>> DetectBias(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<int>& covariates, const std::vector<int>* mediators,
    const DetectorOptions& options, CountEngineStats* count_stats) {
  HYPDB_ASSIGN_OR_RETURN(std::vector<Context> contexts,
                         SplitContexts(table, bound));
  return DetectBias(table, bound, contexts, covariates, mediators, options,
                    nullptr, count_stats);
}

StatusOr<std::vector<ContextBias>> DetectBias(
    const TablePtr& table, const BoundQuery& bound,
    const std::vector<Context>& contexts,
    const std::vector<int>& covariates, const std::vector<int>* mediators,
    const DetectorOptions& options,
    const std::vector<std::shared_ptr<CountEngine>>* context_engines,
    CountEngineStats* count_stats) {
  std::vector<ContextBias> out;
  out.reserve(contexts.size());
  uint64_t seed = options.seed;
  for (size_t c = 0; c < contexts.size(); ++c) {
    const Context& ctx = contexts[c];
    ContextBias bias;
    bias.context_labels = ctx.labels;
    bias.rows = ctx.view.NumRows();

    // One count engine per context: the balance tests for total and
    // direct effect share most of their counts. A caller-provided engine
    // is used as-is (it already caches and may persist across stages).
    const std::shared_ptr<CountEngine> shared =
        context_engines != nullptr && c < context_engines->size()
            ? (*context_engines)[c]
            : nullptr;
    MiEngine engine = shared != nullptr
                          ? MiEngine(ctx.view, shared, options.engine,
                                     /*wrap_provider=*/false)
                          : MiEngine(ctx.view, options.engine);
    const CountEngineStats stats_before = engine.count_engine().stats();
    CiTester tester(&engine, options.ci, seed++);
    HYPDB_ASSIGN_OR_RETURN(
        bias.total, TestBalance(table, tester, bound.treatment, covariates,
                                options.alpha));
    if (mediators != nullptr) {
      std::vector<int> v = covariates;
      for (int m : *mediators) {
        if (std::find(v.begin(), v.end(), m) == v.end()) v.push_back(m);
      }
      std::sort(v.begin(), v.end());
      HYPDB_ASSIGN_OR_RETURN(
          bias.direct,
          TestBalance(table, tester, bound.treatment, v, options.alpha));
      bias.has_direct = true;
    }
    if (count_stats != nullptr) {
      *count_stats += engine.count_engine().stats() - stats_before;
    }
    out.push_back(std::move(bias));
  }

  // FDR adjustment across the whole family of balance tests (Sec. 8):
  // one query fires 1-2 tests per context; with many contexts the raw
  // per-test alpha inflates the discovery rate.
  std::vector<double> p_values;
  for (const ContextBias& bias : out) {
    if (!bias.total.variables.empty()) {
      p_values.push_back(bias.total.ci.p_value);
    }
    if (bias.has_direct) p_values.push_back(bias.direct.ci.p_value);
  }
  std::vector<double> adjusted = BenjaminiHochberg(p_values);
  size_t idx = 0;
  for (ContextBias& bias : out) {
    if (!bias.total.variables.empty()) {
      bias.total.p_adjusted = adjusted[idx++];
      bias.total.biased_fdr = bias.total.p_adjusted <= options.alpha;
    }
    if (bias.has_direct) {
      bias.direct.p_adjusted = adjusted[idx++];
      bias.direct.biased_fdr = bias.direct.p_adjusted <= options.alpha;
    }
  }
  return out;
}

}  // namespace hypdb
