// Parser for the Listing-1 OLAP dialect:
//
//   SELECT Carrier, avg(Delayed)
//   FROM FlightData
//   WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC')
//   GROUP BY Carrier
//
// Supported: identifiers and avg() in SELECT, one table in FROM, a
// conjunction of `attr IN (...)` / `attr = value` terms in WHERE, and a
// GROUP BY list whose first attribute is the treatment. Keywords are
// case-insensitive; values may be single-quoted, double-quoted, or bare.

#ifndef HYPDB_CORE_SQL_PARSER_H_
#define HYPDB_CORE_SQL_PARSER_H_

#include <string>

#include "core/query.h"
#include "util/statusor.h"

namespace hypdb {

/// Parses `sql` into an AggQuery. Returns InvalidArgument with a
/// position-annotated message on malformed input.
StatusOr<AggQuery> ParseAggQuery(const std::string& sql);

}  // namespace hypdb

#endif  // HYPDB_CORE_SQL_PARSER_H_
