// AnalysisSession: the paper's "think twice" loop as a first-class,
// stage-addressable object.
//
// The one-shot HypDb::Analyze() runs the whole pipeline — answers,
// discovery, detection, explanation, resolution — whether or not the
// analyst wants more than the first warning. The session decomposes it
// into independently invokable, idempotent stages over persisted state:
//
//   auto session = AnalysisSession::Create(table, query, options);
//   session->Answers();      // the plain (possibly biased) SQL answers
//   session->Discover();     // covariates Z / mediators M (CD algorithm)
//   session->Detect();       // per-context bias verdicts — first warning
//   session->Explain(1);     // drill into one context's explanation
//   session->Rewrite(1);     // …and its rewritten answers
//   session->Report();       // everything (runs whatever is missing)
//
// Each stage persists its result (and the intermediate state later
// stages need: the bound query, the resolved direct-effect reference
// group, the discovery report, the per-context views, treatment
// inventories and count engines), so repeated calls are
// no-ops and later stages reuse instead of recomputing. Prerequisites
// run automatically: Detect() on a fresh session binds and discovers
// first; Rewrite() does not force Detect() or Explain() — stages only
// depend on what they consume.
//
// The load-bearing invariant: a session that reaches every stage
// assembles a report bit-identical (service/report_digest.h) to one-shot
// HypDb::Analyze(), for EVERY order the stages were invoked in, with any
// subset invoked per-context first. Analyze() itself is now a thin
// composition of these stages, so the two paths cannot drift.
//
// Not thread-safe: callers (the service's SessionManager) serialize
// stage execution per session.

#ifndef HYPDB_CORE_ANALYSIS_SESSION_H_
#define HYPDB_CORE_ANALYSIS_SESSION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "core/explainer.h"
#include "core/hypdb.h"
#include "core/query.h"
#include "core/rewriter.h"
#include "util/statusor.h"

namespace hypdb {

/// The five pipeline stages, in canonical (one-shot) order.
enum class AnalysisStage {
  kAnswers = 0,
  kDiscover,
  kDetect,
  kExplain,
  kRewrite,
};
inline constexpr int kNumAnalysisStages = 5;

/// Stable lowercase stage name ("answers", "discover", ...).
const char* AnalysisStageName(AnalysisStage stage);
/// Inverse of AnalysisStageName; InvalidArgument on anything else.
StatusOr<AnalysisStage> ParseAnalysisStage(const std::string& name);

/// Hooks the service layer threads into a session to share work across
/// concurrent queries. All members optional; default-constructed hooks
/// reproduce the self-contained one-shot behavior.
struct SessionHooks {
  /// Count engine aggregating exactly the bound WHERE population; routes
  /// discovery counts (see AnalyzeHooks::population_engine).
  std::shared_ptr<CountEngine> population_engine;
  /// When set, the discovery stage reuses this report verbatim instead
  /// of computing (the DiscoveryCache hit path).
  std::optional<DiscoveryReport> reuse_discovery;
  /// When set, the discovery stage routes its computation through this
  /// wrapper (the DiscoveryCache lookup-or-compute path; `compute` runs
  /// the session's own discovery). Ignored when reuse_discovery is set.
  std::function<StatusOr<DiscoveryReport>(
      const std::function<StatusOr<DiscoveryReport>()>& compute)>
      discovery_interceptor;
  /// Maps a context's WHERE conjunction (the query's WHERE plus one
  /// `attr IN {label}` term per grouping attribute — the subpopulation
  /// Γ_i = C ∧ X = x_i) and its row view to a shared count engine; the
  /// service renders the terms with its canonical signature and serves
  /// the registry's per-context shard. A null return (or unset hook)
  /// falls back to a session-private engine. Either way the engine
  /// persists in the session and serves detection, explanation and
  /// resolution for that context.
  std::function<std::shared_ptr<CountEngine>(
      const std::vector<std::pair<std::string, std::vector<std::string>>>&
          context_where,
      const TableView& view)>
      context_engine_provider;
};

/// Per-stage bookkeeping: `runs` counts computations performed (one per
/// whole stage, or one per context for the per-context stages), `reuses`
/// counts calls fully served from persisted state.
struct StageState {
  bool done = false;
  int64_t runs = 0;
  int64_t reuses = 0;
  double seconds = 0.0;
};

class AnalysisSession {
 public:
  /// Binds `query` against `table` (errors surface here, not at the
  /// first stage) and resolves the direct-effect reference group once
  /// for the whole session.
  static StatusOr<std::unique_ptr<AnalysisSession>> Create(
      TablePtr table, AggQuery query, HypDbOptions options = {},
      SessionHooks hooks = {});

  const AggQuery& query() const { return query_; }
  const BoundQuery& bound() const { return bound_; }
  const HypDbOptions& options() const { return options_; }
  /// The reference group of the mediator formula, resolved once at bind
  /// time (options.direct_reference, or the lexicographically largest
  /// treatment label) so the staged and one-shot paths cannot disagree.
  const std::string& direct_reference() const { return direct_reference_; }

  // ---- stages ----------------------------------------------------------
  // Returned pointers live as long as the session and stay valid across
  // later stage calls.

  StatusOr<const QueryAnswers*> Answers();
  StatusOr<const DiscoveryReport*> Discover();
  StatusOr<const std::vector<ContextBias>*> Detect();
  /// All contexts (computing only those not already done per-context).
  StatusOr<const std::vector<ContextExplanation>*> Explain();
  /// One context (0-based index into the sorted context list).
  StatusOr<const ContextExplanation*> Explain(int context);
  StatusOr<const std::vector<ContextRewrite>*> Rewrite();
  StatusOr<const ContextRewrite*> Rewrite(int context);

  /// Runs every remaining stage (canonical order) and assembles the full
  /// report — bit-identical to one-shot HypDb::Analyze().
  StatusOr<HypDbReport> Report();

  /// Number of contexts of the bound query (splits them on first call).
  StatusOr<int> NumContexts();
  /// Contexts already split, without forcing the split: -1 before any
  /// context-consuming stage ran (const introspection path).
  int SplitContextCount() const {
    return contexts_split_ ? static_cast<int>(contexts_.size()) : -1;
  }

  /// Report of what has been computed so far: per-context stages are
  /// included only once every context is done, so the snapshot is always
  /// well-formed. Digest-comparable only when complete().
  HypDbReport Snapshot() const;
  /// True when every stage (and every context of the per-context
  /// stages) has run.
  bool complete() const;
  const StageState& stage_state(AnalysisStage stage) const {
    return stages_[static_cast<int>(stage)];
  }

  /// Cooperative cancellation: when set and returning true, the next
  /// stage computation (not reuse — persisted state always serves) fails
  /// with kCancelled before it starts. The session stays valid and
  /// resumable; clearing the check (empty function) resumes.
  void SetCancelCheck(std::function<bool()> check) {
    cancel_check_ = std::move(check);
  }

 private:
  AnalysisSession(TablePtr table, AggQuery query, HypDbOptions options,
                  SessionHooks hooks);

  Status CheckCancel(const char* stage);
  Status EnsureContexts();
  /// The persisted count engine of context `i` (provider-shared or
  /// session-private), created on first use.
  StatusOr<std::shared_ptr<CountEngine>> ContextEngine(int i);
  StatusOr<DiscoveryReport> ComputeDiscovery();
  Status ExplainOne(int i);
  Status RewriteOne(int i);
  Status ValidateContextIndex(int context);

  TablePtr table_;
  AggQuery query_;
  HypDbOptions options_;
  SessionHooks hooks_;

  // Bound-query state (Create).
  BoundQuery bound_;
  std::string direct_reference_;
  std::string sql_plain_;

  // Context state (EnsureContexts): views, per-context WHERE terms,
  // treatment inventories, significance-seed assignment, engines.
  bool contexts_split_ = false;
  std::vector<Context> contexts_;
  std::vector<std::vector<std::pair<std::string, std::vector<std::string>>>>
      context_wheres_;
  std::vector<std::vector<std::pair<int32_t, std::string>>>
      context_treatments_;
  std::vector<uint64_t> rewrite_seeds_;
  std::vector<std::shared_ptr<CountEngine>> context_engines_;

  // Stage results.
  QueryAnswers answers_;
  DiscoveryReport discovery_;
  std::vector<ContextBias> bias_;
  std::vector<ContextExplanation> explanations_;
  std::vector<char> explain_done_;
  std::vector<ContextRewrite> rewrites_;
  std::vector<char> rewrite_done_;
  std::string sql_total_;
  std::string sql_direct_;

  StageState stages_[kNumAnalysisStages];
  /// Count-engine work of detection + explanation + resolution (the
  /// discovery stage's work lives in discovery_.count_stats, matching
  /// the one-shot report layout).
  CountEngineStats pipeline_stats_;

  std::function<bool()> cancel_check_;
};

/// The session-wide reference-group resolution rule (also used for the
/// rewritten direct-effect SQL): `options.direct_reference` when set,
/// otherwise the lexicographically largest treatment label of the bound
/// population (empty when there are none).
std::string ResolveDirectReference(const HypDbOptions& options,
                                   const BoundQuery& bound);

}  // namespace hypdb

#endif  // HYPDB_CORE_ANALYSIS_SESSION_H_
