// Rendering of the rewritten queries as SQL text (paper Listing 2 / 3).
//
// HypDB's output is not just numbers: the rewritten query "shows what the
// analyst intended to examine". These printers emit the Listing-2-shaped
// WITH Blocks/Weights query for the total effect and the mediator-formula
// query for the direct effect, using the analyzed query's own attribute
// names.

#ifndef HYPDB_CORE_SQL_PRINTER_H_
#define HYPDB_CORE_SQL_PRINTER_H_

#include <string>
#include <vector>

#include "core/query.h"

namespace hypdb {

/// Listing-2 rewriting of `query` w.r.t. covariate names `covariates`.
std::string RewrittenTotalSql(const AggQuery& query,
                              const std::vector<std::string>& covariates);

/// Mediator-formula (Eq. 3) rewriting w.r.t. covariates and mediators;
/// `reference` is the treatment value whose mediator distribution is held
/// fixed.
std::string RewrittenDirectSql(const AggQuery& query,
                               const std::vector<std::string>& covariates,
                               const std::vector<std::string>& mediators,
                               const std::string& reference);

}  // namespace hypdb

#endif  // HYPDB_CORE_SQL_PRINTER_H_
