// d-separation (paper Appendix 10.1).
//
// X ⊥d Y | Z holds iff Z closes every open path between X and Y: chains
// and forks are blocked by conditioning, colliders are open only when the
// collider or one of its descendants is conditioned on (Berkson's
// paradox, Ex. 10.1). Under the Causal Markov + Faithfulness assumptions
// (Def. 10.2), d-separation coincides with conditional independence —
// that makes this routine the *ground-truth oracle* for testing the
// discovery algorithms on known DAGs.

#ifndef HYPDB_GRAPH_D_SEPARATION_H_
#define HYPDB_GRAPH_D_SEPARATION_H_

#include <vector>

#include "graph/dag.h"

namespace hypdb {

/// True iff every path between x and y is blocked by `given`. Implemented
/// with the linear-time reachability ("Bayes ball") algorithm.
bool DSeparated(const Dag& dag, int x, int y, const std::vector<int>& given);

/// Set version: true iff every x ∈ xs is d-separated from every y ∈ ys.
bool DSeparatedSets(const Dag& dag, const std::vector<int>& xs,
                    const std::vector<int>& ys,
                    const std::vector<int>& given);

}  // namespace hypdb

#endif  // HYPDB_GRAPH_D_SEPARATION_H_
