#include "graph/d_separation.h"

#include <deque>

namespace hypdb {
namespace {

// Reachability with direction tags (Koller & Friedman, Alg. 3.1). A node
// is visited "from below" (kUp: the trail arrives from one of its
// children) or "from above" (kDown: from one of its parents); the two
// directions expand differently at colliders.
enum Direction { kUp = 0, kDown = 1 };

}  // namespace

bool DSeparatedSets(const Dag& dag, const std::vector<int>& xs,
                    const std::vector<int>& ys,
                    const std::vector<int>& given) {
  const int n = dag.NumNodes();
  std::vector<bool> in_z(n, false);
  for (int z : given) in_z[z] = true;
  std::vector<bool> is_target(n, false);
  for (int y : ys) is_target[y] = true;

  // Colliders may pass the trail iff they are in Z or have a descendant
  // in Z, i.e. iff they are in Z ∪ ancestors(Z).
  std::vector<bool> z_or_ancestor = dag.AncestorsOf(given);
  for (int z : given) z_or_ancestor[z] = true;

  std::vector<bool> visited[2] = {std::vector<bool>(n, false),
                                  std::vector<bool>(n, false)};
  std::deque<std::pair<int, Direction>> queue;
  for (int x : xs) queue.emplace_back(x, kUp);

  while (!queue.empty()) {
    auto [node, dir] = queue.front();
    queue.pop_front();
    if (visited[dir][node]) continue;
    visited[dir][node] = true;

    if (!in_z[node] && is_target[node]) return false;  // active trail found

    if (dir == kUp) {
      // Arrived from a child: the trail may continue to parents (chain)
      // or to children (fork), unless blocked by conditioning.
      if (in_z[node]) continue;
      for (int p : dag.Parents(node)) queue.emplace_back(p, kUp);
      for (int c : dag.Children(node)) queue.emplace_back(c, kDown);
    } else {
      // Arrived from a parent.
      if (!in_z[node]) {
        for (int c : dag.Children(node)) queue.emplace_back(c, kDown);
      }
      if (z_or_ancestor[node]) {
        // Collider with (a descendant in) Z: the trail turns around.
        for (int p : dag.Parents(node)) queue.emplace_back(p, kUp);
      }
    }
  }
  return true;
}

bool DSeparated(const Dag& dag, int x, int y,
                const std::vector<int>& given) {
  return DSeparatedSets(dag, {x}, {y}, given);
}

}  // namespace hypdb
