// Random DAG generation (paper Sec. 7.1: Erdős-Rényi model).

#ifndef HYPDB_GRAPH_RANDOM_DAG_H_
#define HYPDB_GRAPH_RANDOM_DAG_H_

#include "graph/dag.h"
#include "util/rng.h"

namespace hypdb {

struct RandomDagOptions {
  int num_nodes = 8;
  /// Expected number of edges incident to a node (the paper's DAGs use
  /// expected edge counts in the 3-5 range).
  double expected_degree = 3.0;
};

/// Samples an Erdős-Rényi DAG: a random topological order of the nodes,
/// then each forward pair (i, j) becomes an edge independently with
/// probability expected_degree / (num_nodes - 1).
Dag RandomErdosRenyiDag(const RandomDagOptions& options, Rng& rng);

}  // namespace hypdb

#endif  // HYPDB_GRAPH_RANDOM_DAG_H_
