#include "graph/random_dag.h"

#include <algorithm>

namespace hypdb {

Dag RandomErdosRenyiDag(const RandomDagOptions& options, Rng& rng) {
  const int n = options.num_nodes;
  Dag dag(n);
  if (n <= 1) return dag;
  double p = options.expected_degree / static_cast<double>(n - 1);
  p = std::clamp(p, 0.0, 1.0);

  // Random causal order so node indices carry no structural information.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) dag.AddEdge(order[i], order[j]);
    }
  }
  return dag;
}

}  // namespace hypdb
