// Causal DAGs (paper Sec. 2, Appendix 10.1).
//
// Nodes are attribute indices 0..n-1 (aligned with table columns when the
// DAG describes a dataset). Edges point from cause to effect. The graph
// also derives the structures causal inference needs: parents, children,
// spouses (parents of children), Markov blankets, ancestors.

#ifndef HYPDB_GRAPH_DAG_H_
#define HYPDB_GRAPH_DAG_H_

#include <string>
#include <vector>

#include "util/statusor.h"

namespace hypdb {

/// Directed graph specialized for causal-DAG workloads. Edge insertion is
/// unchecked; callers that need acyclicity use IsAcyclic() or
/// TopologicalOrder().
class Dag {
 public:
  Dag() = default;
  explicit Dag(int num_nodes)
      : adj_(num_nodes, std::vector<bool>(num_nodes, false)),
        parents_(num_nodes),
        children_(num_nodes) {}

  int NumNodes() const { return static_cast<int>(adj_.size()); }
  int NumEdges() const { return num_edges_; }

  bool HasEdge(int from, int to) const { return adj_[from][to]; }
  /// Adds from -> to; no-op if present. Returns false if it was present.
  bool AddEdge(int from, int to);
  /// Removes from -> to; no-op if absent. Returns false if it was absent.
  bool RemoveEdge(int from, int to);

  const std::vector<int>& Parents(int node) const { return parents_[node]; }
  const std::vector<int>& Children(int node) const {
    return children_[node];
  }

  /// True if u and v are connected by an edge in either direction.
  bool Adjacent(int u, int v) const { return adj_[u][v] || adj_[v][u]; }

  /// Parents ∪ children ∪ parents-of-children (Prop. 2.5: the Markov
  /// boundary of `node` when the distribution is DAG-isomorphic). Sorted,
  /// excludes `node`.
  std::vector<int> MarkovBlanket(int node) const;

  /// Nodes with a directed path to any node in `of` (excluding `of`
  /// members unless reachable).
  std::vector<bool> AncestorsOf(const std::vector<int>& of) const;

  bool IsAcyclic() const;

  /// Topological order; error when cyclic.
  StatusOr<std::vector<int>> TopologicalOrder() const;

  /// Node count with ≥ k parents.
  int CountNodesWithMinParents(int k) const;

 private:
  std::vector<std::vector<bool>> adj_;
  std::vector<std::vector<int>> parents_;
  std::vector<std::vector<int>> children_;
  int num_edges_ = 0;
};

}  // namespace hypdb

#endif  // HYPDB_GRAPH_DAG_H_
