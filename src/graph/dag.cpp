#include "graph/dag.h"

#include <algorithm>
#include <deque>

namespace hypdb {

bool Dag::AddEdge(int from, int to) {
  if (adj_[from][to]) return false;
  adj_[from][to] = true;
  parents_[to].push_back(from);
  children_[from].push_back(to);
  ++num_edges_;
  return true;
}

bool Dag::RemoveEdge(int from, int to) {
  if (!adj_[from][to]) return false;
  adj_[from][to] = false;
  auto& p = parents_[to];
  p.erase(std::find(p.begin(), p.end(), from));
  auto& c = children_[from];
  c.erase(std::find(c.begin(), c.end(), to));
  --num_edges_;
  return true;
}

std::vector<int> Dag::MarkovBlanket(int node) const {
  std::vector<bool> in(NumNodes(), false);
  for (int p : parents_[node]) in[p] = true;
  for (int c : children_[node]) {
    in[c] = true;
    for (int sp : parents_[c]) in[sp] = true;
  }
  in[node] = false;
  std::vector<int> out;
  for (int i = 0; i < NumNodes(); ++i) {
    if (in[i]) out.push_back(i);
  }
  return out;
}

std::vector<bool> Dag::AncestorsOf(const std::vector<int>& of) const {
  std::vector<bool> visited(NumNodes(), false);
  std::deque<int> queue(of.begin(), of.end());
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (int p : parents_[node]) {
      if (!visited[p]) {
        visited[p] = true;
        queue.push_back(p);
      }
    }
  }
  return visited;
}

bool Dag::IsAcyclic() const { return TopologicalOrder().ok(); }

StatusOr<std::vector<int>> Dag::TopologicalOrder() const {
  const int n = NumNodes();
  std::vector<int> in_degree(n, 0);
  for (int v = 0; v < n; ++v) {
    in_degree[v] = static_cast<int>(parents_[v].size());
  }
  std::deque<int> ready;
  for (int v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (int c : children_[v]) {
      if (--in_degree[c] == 0) ready.push_back(c);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::FailedPrecondition("graph contains a cycle");
  }
  return order;
}

int Dag::CountNodesWithMinParents(int k) const {
  int count = 0;
  for (int v = 0; v < NumNodes(); ++v) {
    if (static_cast<int>(parents_[v].size()) >= k) ++count;
  }
  return count;
}

}  // namespace hypdb
