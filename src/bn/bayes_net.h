// Discrete Bayesian networks: CPTs, ancestral sampling, exact joints.
//
// This is the reproduction of the paper's RandomData pipeline (Sec. 7.1):
// the authors drew samples from random causal DAGs with the catnet R
// package; here the same machinery is built natively. A BayesNet pairs a
// DAG with one conditional probability table per node; Sample() performs
// ancestral (forward) sampling in topological order.

#ifndef HYPDB_BN_BAYES_NET_H_
#define HYPDB_BN_BAYES_NET_H_

#include <string>
#include <vector>

#include "dataframe/table.h"
#include "graph/dag.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace hypdb {

/// Conditional probability table of one node given its parents. Rows are
/// parent configurations in mixed-radix order (parents as listed, first
/// parent = lowest-order digit); each row holds a distribution over the
/// node's categories.
struct Cpt {
  std::vector<int> parents;        // node ids, fixed order
  std::vector<int32_t> parent_cards;
  int32_t card = 2;                // this node's category count
  std::vector<std::vector<double>> rows;  // rows[config][value]

  int64_t NumConfigs() const { return static_cast<int64_t>(rows.size()); }

  /// Row index for the given parent values (aligned with `parents`).
  int64_t ConfigIndex(const std::vector<int32_t>& parent_values) const;
};

/// A discrete Bayesian network over nodes 0..n-1.
class BayesNet {
 public:
  BayesNet() = default;

  /// Builds a network with uniform-random Dirichlet(alpha) CPT rows.
  /// `cards[i]` is node i's category count. Small alpha yields skewed,
  /// near-deterministic rows (strong dependencies); alpha = 1 is uniform
  /// over the simplex.
  static StatusOr<BayesNet> Random(const Dag& dag,
                                   const std::vector<int32_t>& cards,
                                   double alpha, Rng& rng);

  /// Builds a network from explicit CPTs (validated against `dag`).
  static StatusOr<BayesNet> FromCpts(const Dag& dag, std::vector<Cpt> cpts);

  const Dag& dag() const { return dag_; }
  int NumNodes() const { return dag_.NumNodes(); }
  const Cpt& cpt(int node) const { return cpts_[node]; }
  int32_t Cardinality(int node) const { return cpts_[node].card; }

  /// Draws `num_rows` joint samples; returns a table whose columns are
  /// `names` (default "X0".."Xn-1"). Category labels are "0", "1", ....
  StatusOr<Table> Sample(int64_t num_rows, Rng& rng,
                         std::vector<std::string> names = {}) const;

  /// Draws one joint sample into `values` (size n, codes per node).
  void SampleRow(Rng& rng, std::vector<int32_t>* values) const;

  /// Joint probability of a full assignment (for exactness tests).
  double JointProbability(const std::vector<int32_t>& values) const;

 private:
  Dag dag_;
  std::vector<Cpt> cpts_;
  std::vector<int> topo_order_;
};

}  // namespace hypdb

#endif  // HYPDB_BN_BAYES_NET_H_
