#include "bn/bayes_net.h"

namespace hypdb {

int64_t Cpt::ConfigIndex(const std::vector<int32_t>& parent_values) const {
  int64_t idx = 0;
  int64_t stride = 1;
  for (size_t i = 0; i < parents.size(); ++i) {
    idx += parent_values[i] * stride;
    stride *= parent_cards[i];
  }
  return idx;
}

StatusOr<BayesNet> BayesNet::Random(const Dag& dag,
                                    const std::vector<int32_t>& cards,
                                    double alpha, Rng& rng) {
  if (static_cast<int>(cards.size()) != dag.NumNodes()) {
    return Status::InvalidArgument("cards size != node count");
  }
  std::vector<Cpt> cpts(dag.NumNodes());
  for (int v = 0; v < dag.NumNodes(); ++v) {
    Cpt& cpt = cpts[v];
    cpt.card = cards[v];
    cpt.parents = dag.Parents(v);
    int64_t configs = 1;
    for (int p : cpt.parents) {
      cpt.parent_cards.push_back(cards[p]);
      configs *= cards[p];
      if (configs > (1 << 22)) {
        return Status::OutOfRange("CPT too large for node " +
                                  std::to_string(v));
      }
    }
    cpt.rows.reserve(configs);
    for (int64_t c = 0; c < configs; ++c) {
      cpt.rows.push_back(rng.Dirichlet(cpt.card, alpha));
    }
  }
  return FromCpts(dag, std::move(cpts));
}

StatusOr<BayesNet> BayesNet::FromCpts(const Dag& dag, std::vector<Cpt> cpts) {
  if (static_cast<int>(cpts.size()) != dag.NumNodes()) {
    return Status::InvalidArgument("cpts size != node count");
  }
  for (int v = 0; v < dag.NumNodes(); ++v) {
    const Cpt& cpt = cpts[v];
    if (cpt.parents != dag.Parents(v)) {
      return Status::InvalidArgument("CPT parents of node " +
                                     std::to_string(v) +
                                     " disagree with the DAG");
    }
    int64_t configs = 1;
    for (int32_t pc : cpt.parent_cards) configs *= pc;
    if (static_cast<int64_t>(cpt.rows.size()) != configs) {
      return Status::InvalidArgument("CPT of node " + std::to_string(v) +
                                     " has wrong row count");
    }
    for (const auto& row : cpt.rows) {
      if (static_cast<int32_t>(row.size()) != cpt.card) {
        return Status::InvalidArgument("CPT row width mismatch at node " +
                                       std::to_string(v));
      }
      double total = 0.0;
      for (double p : row) {
        if (p < 0.0) {
          return Status::InvalidArgument("negative CPT probability");
        }
        total += p;
      }
      if (total < 0.999 || total > 1.001) {
        return Status::InvalidArgument("CPT row of node " +
                                       std::to_string(v) +
                                       " does not sum to 1");
      }
    }
  }
  BayesNet net;
  net.dag_ = dag;
  net.cpts_ = std::move(cpts);
  HYPDB_ASSIGN_OR_RETURN(net.topo_order_, dag.TopologicalOrder());
  return net;
}

void BayesNet::SampleRow(Rng& rng, std::vector<int32_t>* values) const {
  values->assign(NumNodes(), 0);
  std::vector<int32_t> parent_values;
  for (int v : topo_order_) {
    const Cpt& cpt = cpts_[v];
    parent_values.clear();
    for (int p : cpt.parents) parent_values.push_back((*values)[p]);
    const std::vector<double>& row =
        cpt.rows[cpt.ConfigIndex(parent_values)];
    (*values)[v] = static_cast<int32_t>(rng.WeightedIndex(row));
  }
}

StatusOr<Table> BayesNet::Sample(int64_t num_rows, Rng& rng,
                                 std::vector<std::string> names) const {
  const int n = NumNodes();
  if (names.empty()) {
    for (int v = 0; v < n; ++v) names.push_back("X" + std::to_string(v));
  }
  if (static_cast<int>(names.size()) != n) {
    return Status::InvalidArgument("names size != node count");
  }

  std::vector<ColumnBuilder> builders;
  builders.reserve(n);
  for (int v = 0; v < n; ++v) {
    builders.emplace_back(names[v]);
    // Pin label order so code k corresponds to label "k".
    for (int32_t c = 0; c < cpts_[v].card; ++c) {
      builders[v].RegisterLabel(std::to_string(c));
    }
  }

  std::vector<int32_t> values;
  for (int64_t r = 0; r < num_rows; ++r) {
    SampleRow(rng, &values);
    for (int v = 0; v < n; ++v) builders[v].AppendCode(values[v]);
  }

  Table table;
  for (auto& b : builders) {
    HYPDB_RETURN_IF_ERROR(table.AddColumn(b.Finish()));
  }
  return table;
}

double BayesNet::JointProbability(const std::vector<int32_t>& values) const {
  double prob = 1.0;
  std::vector<int32_t> parent_values;
  for (int v = 0; v < NumNodes(); ++v) {
    const Cpt& cpt = cpts_[v];
    parent_values.clear();
    for (int p : cpt.parents) parent_values.push_back(values[p]);
    prob *= cpt.rows[cpt.ConfigIndex(parent_values)][values[v]];
  }
  return prob;
}

}  // namespace hypdb
