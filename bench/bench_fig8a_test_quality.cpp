// E15 — Fig. 8(a): accuracy of the optimized independence tests on
// sparse data. Ground truth comes from d-separation on random DAGs;
// each method classifies (x ⊥ y | z) queries and is scored with F1
// (positive class = dependent).

#include "bench_util.h"
#include "causal/eval.h"
#include "datagen/random_data.h"
#include "graph/d_separation.h"
#include "stats/ci_test.h"
#include "util/rng.h"

using namespace hypdb;
using namespace hypdb::bench;

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig8a_test_quality",
         "Fig. 8(a) — F1 of MIT / MIT(sampling) / HyMIT / chi2 on sparse "
         "data");

  const std::vector<CiMethod> methods = {
      CiMethod::kMit, CiMethod::kMitSampled, CiMethod::kHybrid,
      CiMethod::kGTest};
  const char* names[] = {"MIT", "MIT(sampling)", "HyMIT", "chi2"};

  Row({"rows", names[0], names[1], names[2], names[3]}, 15);

  Rng rng(88);
  for (int64_t rows : {2000, 10000, 40000}) {
    // Sparse regime: 8 categories per attribute.
    RandomDataOptions data_options;
    data_options.num_nodes = 8;
    data_options.expected_degree = 2.5;
    data_options.min_categories = 8;
    data_options.max_categories = 8;
    data_options.num_rows = static_cast<int64_t>(rows * scale);

    // Accumulate over a few datasets; same queries for every method.
    F1Stats stats[4];
    for (int rep = 0; rep < 3; ++rep) {
      auto ds = GenerateRandomDataset(data_options, rng);
      if (!ds.ok()) return 1;
      TablePtr table = std::make_shared<const Table>(std::move(ds->table));

      // Random CI queries labeled by d-separation.
      struct Query {
        int x, y;
        std::vector<int> z;
        bool dependent;
      };
      std::vector<Query> queries;
      Rng qrng(1000 + rep);
      for (int qi = 0; qi < 40; ++qi) {
        Query q;
        q.x = static_cast<int>(qrng.NextBounded(8));
        q.y = static_cast<int>(qrng.NextBounded(7));
        if (q.y >= q.x) ++q.y;
        for (int c = 0; c < 8; ++c) {
          if (c != q.x && c != q.y && qrng.Bernoulli(0.25)) {
            q.z.push_back(c);
          }
        }
        q.dependent = !DSeparated(ds->dag, q.x, q.y, q.z);
        queries.push_back(std::move(q));
      }

      for (size_t mi = 0; mi < methods.size(); ++mi) {
        MiEngine engine{TableView(table)};
        CiOptions options;
        options.method = methods[mi];
        options.permutations = 100;
        CiTester tester(&engine, options, 500 + rep);
        for (const Query& q : queries) {
          auto r = tester.Test(q.x, q.y, q.z);
          if (!r.ok()) continue;
          bool predicted_dependent = !r->IndependentAt(0.01);
          if (predicted_dependent && q.dependent) {
            ++stats[mi].true_positives;
          } else if (predicted_dependent && !q.dependent) {
            ++stats[mi].false_positives;
          } else if (!predicted_dependent && q.dependent) {
            ++stats[mi].false_negatives;
          }
        }
      }
    }

    Row({std::to_string(data_options.num_rows), Fmt("%.3f", stats[0].F1()),
         Fmt("%.3f", stats[1].F1()), Fmt("%.3f", stats[2].F1()),
         Fmt("%.3f", stats[3].F1())},
        15);
  }
  std::printf("\n(expected shape: the four tests are comparable, with the\n"
              " permutation-based ones at least matching chi2 on the\n"
              " smallest / sparsest samples)\n");
  return 0;
}
