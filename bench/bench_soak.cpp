// Open-loop soak: the full wire stack (HttpServer -> HypDbHandlers ->
// HypDbService -> engine) under fixed arrival rates, reporting latency
// quantiles per route — the paper's interactive-analysis claim as a
// service-level objective rather than a throughput number.
//
// Open-loop means requests are launched on a precomputed arrival
// schedule and latency is measured from the *scheduled* arrival, not
// from when a client thread got around to sending — so queueing delay
// under overload is measured instead of hidden (the coordinated-
// omission trap of closed-loop generators).
//
// The mix per 5 events: 2x POST /v1/analyze, 2x GET /v1/stats,
// 1x GET /healthz. Three correctness gates, any failure exits non-zero:
//  1. Every analyze response digest equals the serial cold reference.
//  2. No transport errors or non-2xx responses.
//  3. A final GET /metrics?format=json scrape must show
//     sum(hypdb_http_requests_total) == events issued — exact, because
//     handler counters are bumped after the scrape body is built, so
//     the scrape never counts itself.
//
// Usage: bench_soak [scale]   — scale multiplies the per-rate duration
// (default 1 => ~2s per rate). Results land in BENCH_soak.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/flight_data.h"
#include "net/client.h"
#include "net/http_server.h"
#include "net/hypdb_handlers.h"
#include "net/json.h"
#include "service/hypdb_service.h"
#include "service/report_digest.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

enum SoakRoute { kAnalyze, kStats, kHealthz, kNumSoakRoutes };
const char* const kSoakRouteNames[kNumSoakRoutes] = {"analyze", "stats",
                                                     "healthz"};

// 2x analyze, 2x stats, 1x healthz per 5 events — deterministic, so the
// schedule (and the final counter assertion) is exactly reproducible.
SoakRoute MixAt(int64_t i) {
  switch (i % 5) {
    case 0:
    case 3:
      return kAnalyze;
    case 1:
    case 4:
      return kStats;
    default:
      return kHealthz;
  }
}

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(q * (sorted.size() - 1));
  return sorted[rank];
}

struct RateResult {
  double rate = 0.0;
  int64_t events = 0;
  int64_t errors = 0;
  int64_t digest_mismatches = 0;
  std::vector<double> latency[kNumSoakRoutes];  // seconds, unsorted
};

RateResult RunRate(int port, double rate, double duration_seconds,
                   const std::string& analyze_body,
                   const std::string& expected_digest) {
  using Clock = std::chrono::steady_clock;
  RateResult result;
  result.rate = rate;
  result.events = std::max<int64_t>(1, static_cast<int64_t>(
                                           rate * duration_seconds));

  // One slot per event, written by whichever client thread ran it.
  std::vector<double> latency(result.events, 0.0);
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> mismatches{0};

  const int clients =
      std::min<int64_t>(std::min(8, 2 * EffectiveCores()), result.events);
  const auto start = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, rate] {
      net::HttpClient client("127.0.0.1", port);
      for (;;) {
        const int64_t i = next.fetch_add(1);
        if (i >= result.events) break;
        const auto scheduled =
            start + std::chrono::nanoseconds(
                        static_cast<int64_t>(1e9 * i / rate));
        std::this_thread::sleep_until(scheduled);
        const SoakRoute route = MixAt(i);
        StatusOr<net::HttpResult> reply =
            route == kAnalyze
                ? client.Request("POST", "/v1/analyze", analyze_body)
                : client.Request("GET", route == kStats ? "/v1/stats"
                                                        : "/healthz");
        // Latency from the scheduled arrival: includes time the event
        // waited for a connection or a worker — the open-loop point.
        latency[i] = std::chrono::duration<double>(Clock::now() - scheduled)
                         .count();
        if (!reply.ok() || reply->status != 200) {
          errors.fetch_add(1);
          continue;
        }
        if (route == kAnalyze) {
          auto parsed = net::ParseJson(reply->body);
          const net::JsonValue* digest =
              parsed.ok() ? parsed->Find("digest") : nullptr;
          if (digest == nullptr || !digest->is_string() ||
              digest->string_value() != expected_digest) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  result.errors = errors.load();
  result.digest_mismatches = mismatches.load();
  for (int64_t i = 0; i < result.events; ++i) {
    result.latency[MixAt(i)].push_back(latency[i]);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = ScaleArg(argc, argv);
  Header("bench_soak",
         "open-loop soak — per-route latency quantiles at fixed arrival "
         "rates over the real wire stack");

  FlightDataOptions data;
  data.num_rows = 8000;
  data.num_noise_columns = 2;
  auto generated = GenerateFlightData(data);
  if (!generated.ok()) {
    std::printf("datagen failed: %s\n",
                generated.status().ToString().c_str());
    return 1;
  }
  TablePtr table = MakeTable(std::move(*generated));

  const std::string sql =
      "SELECT Carrier, avg(Delayed) FROM flights "
      "WHERE Airport IN ('COS','MFE','MTJ','ROC') GROUP BY Carrier";

  // Serial cold reference: the digest every service answer must match.
  std::string expected_digest;
  {
    HypDb db(table, HypDbOptions{});
    auto report = db.AnalyzeSql(sql);
    if (!report.ok()) {
      std::printf("serial analyze failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    expected_digest = CanonicalReportDigest(*report);
  }

  HypDbServiceOptions service_options;
  HypDbService service(service_options);
  service.RegisterTable("flights", table);
  net::HypDbHandlers handlers(&service);
  net::HttpServer server(
      [&handlers](const net::HttpRequest& r) {
        return handlers.HandleHttp(r);
      },
      [&handlers](const std::string& line) {
        return handlers.HandleLine(line);
      });
  handlers.RegisterMetrics(&service.metrics_registry());
  server.RegisterMetrics(&service.metrics_registry());
  Status started = server.Start();
  if (!started.ok()) {
    std::printf("server start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  net::JsonValue analyze = net::JsonValue::MakeObject();
  analyze.Set("dataset", net::JsonValue::Str("flights"));
  analyze.Set("sql", net::JsonValue::Str(sql));
  const std::string analyze_body = net::SerializeJson(analyze);

  // Warm the discovery and contingency caches through the service API —
  // not over HTTP, so the exact-counter gate still accounts for every
  // wire event. The soak measures steady state, not the first cold
  // dependency discovery.
  {
    AnalyzeRequest warmup;
    warmup.dataset = "flights";
    warmup.sql = sql;
    auto report = service.Analyze(std::move(warmup));
    if (!report.ok()) {
      std::printf("warmup analyze failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("dataset: %lld rows, %d workers, %d effective cores\n\n",
              static_cast<long long>(table->NumRows()),
              service.num_workers(), EffectiveCores());

  const std::vector<double> rates = {50.0, 200.0};
  const double duration = 2.0 * scale;
  int64_t total_events = 0;
  int64_t total_errors = 0;
  int64_t total_mismatches = 0;

  Row({"rate/s", "route", "count", "p50 ms", "p95 ms", "p99 ms"}, 10);
  net::JsonValue rate_rows = net::JsonValue::MakeArray();
  for (double rate : rates) {
    RateResult result =
        RunRate(server.port(), rate, duration, analyze_body,
                expected_digest);
    total_events += result.events;
    total_errors += result.errors;
    total_mismatches += result.digest_mismatches;
    net::JsonValue row = net::JsonValue::MakeObject();
    row.Set("rate", net::JsonValue::Double(rate));
    row.Set("events", net::JsonValue::Int(result.events));
    row.Set("errors", net::JsonValue::Int(result.errors));
    row.Set("digest_mismatches",
            net::JsonValue::Int(result.digest_mismatches));
    net::JsonValue routes = net::JsonValue::MakeObject();
    for (int r = 0; r < kNumSoakRoutes; ++r) {
      std::vector<double>& lat = result.latency[r];
      std::sort(lat.begin(), lat.end());
      const double p50 = Quantile(lat, 0.50);
      const double p95 = Quantile(lat, 0.95);
      const double p99 = Quantile(lat, 0.99);
      Row({Fmt("%.0f", rate), kSoakRouteNames[r],
           std::to_string(lat.size()), Fmt("%.2f", p50 * 1e3),
           Fmt("%.2f", p95 * 1e3), Fmt("%.2f", p99 * 1e3)},
          10);
      net::JsonValue rj = net::JsonValue::MakeObject();
      rj.Set("count", net::JsonValue::Int(static_cast<int64_t>(lat.size())));
      rj.Set("p50_seconds", net::JsonValue::Double(p50));
      rj.Set("p95_seconds", net::JsonValue::Double(p95));
      rj.Set("p99_seconds", net::JsonValue::Double(p99));
      routes.Set(kSoakRouteNames[r], std::move(rj));
    }
    row.Set("routes", std::move(routes));
    rate_rows.Append(std::move(row));
  }

  // Gate 3: the scrape must account for exactly the events issued.
  int64_t counted = -1;
  {
    net::HttpClient client("127.0.0.1", server.port());
    auto scrape = client.Get("/metrics?format=json");
    if (scrape.ok()) {
      const net::JsonValue* families = scrape->Find("families");
      if (families != nullptr && families->is_array()) {
        counted = 0;
        for (const net::JsonValue& family : families->array()) {
          const net::JsonValue* name = family.Find("name");
          if (name == nullptr ||
              name->string_value() != "hypdb_http_requests_total") {
            continue;
          }
          for (const net::JsonValue& sample :
               family.Find("samples")->array()) {
            counted += sample.Find("value")->int_value();
          }
        }
      }
    }
  }
  server.Stop();
  const bool metrics_consistent = counted == total_events;
  std::printf("\nmetrics scrape: hypdb_http_requests_total sums to %lld "
              "for %lld issued events (%s)\n",
              static_cast<long long>(counted),
              static_cast<long long>(total_events),
              metrics_consistent ? "consistent" : "INCONSISTENT");

  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("scale", net::JsonValue::Double(scale));
  results.Set("rows", net::JsonValue::Int(table->NumRows()));
  results.Set("workers", net::JsonValue::Int(service.num_workers()));
  results.Set("duration_seconds", net::JsonValue::Double(duration));
  results.Set("rates", std::move(rate_rows));
  results.Set("events", net::JsonValue::Int(total_events));
  results.Set("errors", net::JsonValue::Int(total_errors));
  results.Set("digest_mismatches", net::JsonValue::Int(total_mismatches));
  results.Set("metrics_consistent", net::JsonValue::Bool(metrics_consistent));
  WriteBenchJson("soak", std::move(results));

  if (total_errors > 0 || total_mismatches > 0 || !metrics_consistent) {
    std::printf("FAIL: errors=%lld digest_mismatches=%lld metrics=%s\n",
                static_cast<long long>(total_errors),
                static_cast<long long>(total_mismatches),
                metrics_consistent ? "ok" : "inconsistent");
    return 1;
  }
  std::printf("PASS: digests identical, no errors, counters exact\n");
  return 0;
}
