// Shared machinery for the Sec. 7.4 quality benchmarks (Fig. 5b/5c/5d,
// Fig. 6a): run every discovery method over RandomData and score parent
// recovery with F1 against the ground-truth DAG.

#ifndef HYPDB_BENCH_QUALITY_COMMON_H_
#define HYPDB_BENCH_QUALITY_COMMON_H_

#include <string>
#include <vector>

#include "datagen/random_data.h"
#include "stats/ci_test.h"

namespace hypdb::bench {

enum class Learner {
  kCdHyMit,   // CD(HyMIT)
  kCdMit,     // CD(MIT with group sampling)
  kCdChi2,    // CD(χ²)
  kIambChi2,  // IAMB(χ²)  — structure via IAMB blankets
  kFgsChi2,   // FGS(χ²)   — structure via Grow-Shrink blankets
  kHcBde,     // HC(BDe)
  kHcAic,     // HC(AIC)
  kHcBic,     // HC(BIC)
};

const char* LearnerName(Learner learner);

struct QualitySetup {
  RandomDataOptions data;
  int reps = 2;
  int min_parents = 0;  // Fig. 5(c) uses 2
  int permutations = 100;
  uint64_t seed = 1;
};

struct QualityResult {
  Learner learner;
  double f1 = 0.0;
  double seconds = 0.0;
  /// Independence tests per node (constraint-based learners only).
  double tests_per_node = 0.0;
};

/// Runs every learner in `learners` over `reps` fresh datasets and
/// returns the averaged scores.
std::vector<QualityResult> RunQualityComparison(
    const QualitySetup& setup, const std::vector<Learner>& learners);

}  // namespace hypdb::bench

#endif  // HYPDB_BENCH_QUALITY_COMMON_H_
