// Service-layer throughput: queries/sec of HypDbService at 1, 4 and N
// worker threads on repeated same-dataset queries — the workload the
// service exists for (discovery reuse + shared contingency caches +
// genuinely parallel detection/explanation/resolution).
//
// Three phases:
//  1. Serial ground truth: a cold HypDb::Analyze per distinct query; its
//     CanonicalReportDigest is the bit-identity reference.
//  2. Correctness: every service report (any worker count) must digest
//     equal to the serial reference — work sharing is execution strategy
//     only. Violation exits non-zero.
//  3. Throughput: the same request mix runs through services with 1, 4
//     and EffectiveCores() workers; queries/sec are reported. When the
//     process can actually use >= 4 cores (affinity/cgroup-aware — see
//     bench_util.h), 4 workers must reach >= 2x the 1-worker rate (best
//     of 3 attempts, tolerating CI noise) or the binary exits non-zero.
//     On smaller machines the speedup assertion is skipped — the cores
//     to demonstrate it do not exist — and a note is printed.
//
// Usage: bench_service_throughput [scale] [--require-speedup]
//   scale              multiplies rows and request count (default 1)
//   --require-speedup  enforce the 2x gate regardless of core count

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/flight_data.h"
#include "service/hypdb_service.h"
#include "service/report_digest.h"
#include "util/stopwatch.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

struct Workload {
  std::string sql;
  std::string expected_digest;
};

// The request mix: repeated queries over one dataset, two sharing a
// subpopulation (one engine shard), one over the full table.
std::vector<Workload> MakeWorkloads() {
  return {
      {"SELECT Carrier, avg(Delayed) FROM flights "
       "WHERE Airport IN ('COS','MFE','MTJ','ROC') GROUP BY Carrier",
       ""},
      {"SELECT Carrier, avg(Delayed) FROM flights "
       "WHERE Airport IN ('COS','MFE','MTJ','ROC') AND "
       "Carrier IN ('AA','UA') GROUP BY Carrier",
       ""},
      {"SELECT Carrier, avg(Delayed) FROM flights GROUP BY Carrier", ""},
  };
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  int64_t digest_mismatches = 0;
  int64_t errors = 0;
  int64_t discovery_reused = 0;
};

// Pushes `requests` through a fresh service with `workers` workers via
// the async API (submit everything, then wait), checking digests.
RunResult RunService(const TablePtr& table,
                     const std::vector<Workload>& workloads, int workers,
                     int requests) {
  HypDbServiceOptions options;
  options.num_workers = workers;
  HypDbService service(options);
  service.RegisterTable("flights", table);

  RunResult result;
  Stopwatch timer;
  std::vector<uint64_t> tickets;
  std::vector<int> which;
  tickets.reserve(requests);
  for (int r = 0; r < requests; ++r) {
    const int w = r % static_cast<int>(workloads.size());
    which.push_back(w);
    AnalyzeRequest request;
    request.dataset = "flights";
    request.sql = workloads[w].sql;
    tickets.push_back(service.Submit(std::move(request)));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto report = service.Wait(tickets[i]);
    if (!report.ok()) {
      ++result.errors;
      continue;
    }
    if (report->stats.discovery_reused) ++result.discovery_reused;
    if (CanonicalReportDigest(report->report) !=
        workloads[which[i]].expected_digest) {
      ++result.digest_mismatches;
    }
  }
  result.seconds = timer.ElapsedSeconds();
  result.qps = requests / result.seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = ScaleArg(argc, argv);
  bool require_speedup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-speedup") == 0) {
      require_speedup = true;
    }
  }
  // Gate on cores the process can actually use (affinity + cgroup quota),
  // not hardware_concurrency — a 1-core CI slice of a 64-core host must
  // not be asked to demonstrate a 4-worker speedup.
  const unsigned cores = static_cast<unsigned>(EffectiveCores());
  const bool enforce = require_speedup || cores >= 4;

  Header("bench_service_throughput",
         "service layer — queries/sec at 1/4/N workers, reports "
         "bit-identical to serial");

  FlightDataOptions data;
  data.num_rows = static_cast<int64_t>(12000 * scale);
  data.num_noise_columns = 2;
  auto generated = GenerateFlightData(data);
  if (!generated.ok()) {
    std::printf("datagen failed: %s\n",
                generated.status().ToString().c_str());
    return 1;
  }
  TablePtr table = MakeTable(std::move(*generated));

  // Phase 1: serial ground truth (cold engine per query).
  std::vector<Workload> workloads = MakeWorkloads();
  double serial_seconds = 0.0;
  for (Workload& w : workloads) {
    HypDb db(table, HypDbOptions{});
    Stopwatch timer;
    auto report = db.AnalyzeSql(w.sql);
    serial_seconds += timer.ElapsedSeconds();
    if (!report.ok()) {
      std::printf("serial analyze failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    w.expected_digest = CanonicalReportDigest(*report);
  }
  std::printf("dataset: %lld rows; %zu distinct queries, serial cold "
              "total %.3fs\n\n",
              static_cast<long long>(table->NumRows()), workloads.size(),
              serial_seconds);

  const int requests = static_cast<int>(24 * scale);
  Row({"workers", "requests", "seconds", "qps", "reused", "identical"}, 11);

  // Phase 2+3: the same mix at increasing worker counts. Best-of-3 for
  // the two rates the gate compares, to damp scheduler noise.
  const int attempts = 3;
  double best_qps_1 = 0.0;
  double best_qps_4 = 0.0;
  bool all_identical = true;
  std::vector<int> worker_counts = {1, 4};
  if (cores > 4) worker_counts.push_back(static_cast<int>(cores));
  net::JsonValue runs = net::JsonValue::MakeArray();
  for (int workers : worker_counts) {
    RunResult best;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      RunResult run = RunService(table, workloads, workers, requests);
      if (run.digest_mismatches > 0 || run.errors > 0) {
        best = run;
        break;
      }
      if (run.qps > best.qps) best = run;
    }
    const bool identical = best.digest_mismatches == 0 && best.errors == 0;
    all_identical = all_identical && identical;
    if (workers == 1) best_qps_1 = best.qps;
    if (workers == 4) best_qps_4 = best.qps;
    Row({std::to_string(workers), std::to_string(requests),
         Fmt("%.3f", best.seconds), Fmt("%.2f", best.qps),
         std::to_string(best.discovery_reused),
         identical ? "yes" : "NO"},
        11);
    net::JsonValue row = net::JsonValue::MakeObject();
    row.Set("workers", net::JsonValue::Int(workers));
    row.Set("requests", net::JsonValue::Int(requests));
    row.Set("seconds", net::JsonValue::Double(best.seconds));
    row.Set("qps", net::JsonValue::Double(best.qps));
    row.Set("discovery_reused", net::JsonValue::Int(best.discovery_reused));
    row.Set("errors", net::JsonValue::Int(best.errors));
    row.Set("digest_mismatches",
            net::JsonValue::Int(best.digest_mismatches));
    runs.Append(std::move(row));
  }

  const double speedup = best_qps_1 > 0 ? best_qps_4 / best_qps_1 : 0.0;
  std::printf("\nspeedup (4 vs 1 workers): %.2fx on %u cores\n", speedup,
              cores);

  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("scale", net::JsonValue::Double(scale));
  results.Set("rows", net::JsonValue::Int(table->NumRows()));
  results.Set("serial_seconds", net::JsonValue::Double(serial_seconds));
  results.Set("runs", std::move(runs));
  results.Set("speedup_4_vs_1", net::JsonValue::Double(speedup));
  results.Set("identical", net::JsonValue::Bool(all_identical));
  results.Set("speedup_enforced", net::JsonValue::Bool(enforce));
  WriteBenchJson("service_throughput", std::move(results));

  if (!all_identical) {
    std::printf("FAIL: service reports diverged from serial execution\n");
    return 1;
  }
  if (enforce) {
    if (best_qps_4 < 2.0 * best_qps_1) {
      std::printf("FAIL: expected >= 2x queries/sec at 4 workers\n");
      return 1;
    }
    std::printf("PASS: >= 2x at 4 workers, reports bit-identical\n");
  } else {
    std::printf("PASS: reports bit-identical (speedup gate skipped: only "
                "%u core(s); pass --require-speedup to enforce)\n",
                cores);
  }
  return 0;
}
