// Staged-session latency: time-to-first-bias-verdict of the staged
// AnalysisSession vs the full one-shot analysis, on the adult workload
// (paper Sec. 7.3 / Fig. 3 top — the "think twice" query).
//
// The paper's interaction model shows the analyst the plain answers and
// a bias warning first; explanations and rewrites are drilled into on
// demand. The session API makes that warning cheap: Detect() runs only
// bind + discovery + the per-context balance tests, skipping the
// explanation and rewrite stages entirely. This bench measures both
// paths through the service (shared shards, discovery cache, scheduler)
// against a cold service each, and asserts:
//  1. staged time-to-first-verdict < full one-shot latency (strictly);
//  2. finishing the staged session yields a report digest bit-identical
//     to the one-shot analysis.
// Violation of either exits non-zero. Results land in
// BENCH_session_latency.json.
//
// Usage: bench_session_latency [scale]   (scale multiplies rows)

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/adult_data.h"
#include "service/hypdb_service.h"
#include "service/report_digest.h"
#include "util/stopwatch.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

constexpr char kSql[] =
    "SELECT Gender, avg(Income) FROM adult GROUP BY Gender";

TablePtr Adult(double scale) {
  AdultDataOptions options;
  options.num_rows = static_cast<int64_t>(options.num_rows * scale);
  auto table = GenerateAdultData(options);
  if (!table.ok()) {
    std::fprintf(stderr, "adult datagen failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  return MakeTable(std::move(*table));
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = ScaleArg(argc, argv);
  Header("bench_session_latency",
         "staged AnalysisSession: time-to-first-bias-verdict vs one-shot "
         "(adult workload, Sec. 7.3)");

  TablePtr adult = Adult(scale);

  // One-shot path: a cold service, full analysis.
  double oneshot_seconds = 0.0;
  std::string oneshot_digest;
  {
    HypDbService service;
    service.RegisterTable("adult", adult);
    Stopwatch timer;
    auto report = service.AnalyzeSql("adult", kSql);
    oneshot_seconds = timer.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "one-shot analyze failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    oneshot_digest = CanonicalReportDigest(report->report);
  }

  // Staged path: an equally cold service; the analyst's first verdict
  // is create + detect (discovery included). Then finish the session to
  // check bit-identity of the complete staged report.
  double staged_detect_seconds = 0.0;
  std::string staged_digest;
  bool staged_complete = false;
  {
    HypDbService service;
    service.RegisterTable("adult", adult);
    Stopwatch timer;
    auto info = service.CreateSession({"adult", kSql, {}});
    if (!info.ok()) {
      std::fprintf(stderr, "session create failed: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    auto detect = service.AdvanceSession(info->id, "detect");
    staged_detect_seconds = timer.ElapsedSeconds();
    if (!detect.ok()) {
      std::fprintf(stderr, "detect stage failed: %s\n",
                   detect.status().ToString().c_str());
      return 1;
    }
    auto finished = service.AdvanceSession(info->id, "report");
    if (!finished.ok()) {
      std::fprintf(stderr, "report stage failed: %s\n",
                   finished.status().ToString().c_str());
      return 1;
    }
    staged_complete = finished->stats.session_complete;
    staged_digest = CanonicalReportDigest(finished->report);
  }

  Row({"path", "seconds"});
  Row({"one-shot (full)", Fmt("%.3f", oneshot_seconds)});
  Row({"staged (detect)", Fmt("%.3f", staged_detect_seconds)});
  const double speedup =
      staged_detect_seconds > 0 ? oneshot_seconds / staged_detect_seconds
                                : 0.0;
  std::printf("time-to-first-bias-verdict speedup: %.2fx\n", speedup);

  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("sql", net::JsonValue::Str(kSql));
  results.Set("scale", net::JsonValue::Double(scale));
  results.Set("one_shot_seconds", net::JsonValue::Double(oneshot_seconds));
  results.Set("staged_detect_seconds",
              net::JsonValue::Double(staged_detect_seconds));
  results.Set("speedup", net::JsonValue::Double(speedup));
  results.Set("digest_match",
              net::JsonValue::Bool(staged_digest == oneshot_digest));
  WriteBenchJson("session_latency", std::move(results));

  if (!staged_complete || staged_digest != oneshot_digest) {
    std::fprintf(stderr,
                 "FAIL: staged session report is not bit-identical to the "
                 "one-shot analysis\n");
    return 1;
  }
  if (staged_detect_seconds >= oneshot_seconds) {
    std::fprintf(stderr,
                 "FAIL: staged time-to-first-verdict (%.3fs) is not below "
                 "the full one-shot latency (%.3fs)\n",
                 staged_detect_seconds, oneshot_seconds);
    return 1;
  }
  std::printf("OK: staged verdict %.2fx faster, digests bit-identical\n",
              speedup);
  return 0;
}
