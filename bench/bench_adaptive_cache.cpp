// Adaptive materialization gate: under a shifting workload and the same
// cache cell budget, the adaptive policy (benefit-per-cell eviction +
// background cube advisor) must do strictly fewer scans than the static
// oldest-first policy — including the scans the advisor spends building
// cubes — while every answer stays bit-identical.
//
// The workload alternates a small hot set of column pairs (queried every
// round) with a stream of cold wide one-shot triples whose summaries
// flood the cache. Oldest-first eviction lets the flood push the hot
// pairs out every round, so the static engine re-scans them forever; the
// adaptive policy keeps them resident (their benefit-per-cell dwarfs the
// flood's) and the advisor promotes the hot dimensions into a cube that
// serves them even when the cache cannot.
//
// Assertions (exits non-zero on violation):
//  * adaptive_scans + advisor_build_scans < static_scans, strictly,
//    under the same max_cached_cells;
//  * every group-count answer from both registries is bit-identical to
//    a direct scan of the same table;
//  * the advisor promoted at least one cube, and the promotion is
//    visible in the hypdb_cache_advisor_promotions_total metric;
//  * service-level reports under the adaptive configuration are
//    digest-identical to a cold serial HypDb.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/berkeley_data.h"
#include "engine/groupby_kernel.h"
#include "service/dataset_registry.h"
#include "service/hypdb_service.h"
#include "service/report_digest.h"
#include "util/metrics.h"
#include "util/rng.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

// 12 columns: c0..c2 narrow (the hot analysis dimensions), c3..c11 wide
// (the cold flood). Every cold triple bounds at 8^3 = 512 cells, just
// under the 600-cell budget, so each one is admitted and evicts.
TablePtr SyntheticTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  Table table;
  for (int c = 0; c < 12; ++c) {
    const int card = c < 3 ? 4 : 8;
    ColumnBuilder b("c" + std::to_string(c));
    for (int64_t r = 0; r < rows; ++r) {
      b.Append(std::to_string(rng.NextBounded(card)));
    }
    auto added = table.AddColumn(b.Finish());
    if (!added.ok()) std::abort();
  }
  return MakeTable(std::move(table));
}

bool SameCounts(const GroupCounts& a, const GroupCounts& b) {
  if (a.NumGroups() != b.NumGroups() || a.total != b.total) return false;
  for (int g = 0; g < a.NumGroups(); ++g) {
    if (a.keys[g] != b.keys[g] || a.counts[g] != b.counts[g]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = ScaleArg(argc, argv);
  const int64_t rows = static_cast<int64_t>(4000 * scale);
  const int kRounds = 8;
  const int64_t kBudget = 600;
  Header("bench_adaptive_cache",
         "Sec. 6 materialization economics under a shifting workload — "
         "cost-based retention + cube promotion vs oldest-first");

  TablePtr table = SyntheticTable(rows, 20260808);
  TableView view(table);

  // The hot sets every round re-demands, and the cold flood triples.
  const std::vector<std::vector<int>> hot = {{0, 1}, {1, 2}};
  std::vector<std::vector<int>> flood;
  for (int c = 3; c + 2 < 12; ++c) flood.push_back({c, c + 1, c + 2});

  auto make_registry = [&](MaterializationMode mode) {
    DatasetRegistryOptions options;
    options.engine.materialization = mode;
    options.engine.scan_threads = 1;
    options.engine.max_cached_cells = kBudget;
    // Background thread off; the bench drives AdvisorPass between
    // rounds so scan accounting is deterministic.
    return std::make_unique<DatasetRegistry>(options);
  };
  auto static_registry = make_registry(MaterializationMode::kStatic);
  auto adaptive_registry = make_registry(MaterializationMode::kAdaptive);
  const int64_t static_epoch = static_registry->Register("d", table);
  const int64_t adaptive_epoch = adaptive_registry->Register("d", table);

  auto static_engine =
      static_registry->ShardEngine("d", static_epoch, "", view);
  auto adaptive_engine =
      adaptive_registry->ShardEngine("d", adaptive_epoch, "", view);
  if (!static_engine.ok() || !adaptive_engine.ok()) {
    std::printf("shard engine construction failed\n");
    return 1;
  }

  bool counts_ok = true;
  auto run_round = [&](int round) {
    std::vector<std::vector<int>> sets;
    for (int rep = 0; rep < 3; ++rep) {
      for (const auto& h : hot) sets.push_back(h);
    }
    // Three cold one-shot triples per round, rotating through the flood.
    for (int k = 0; k < 3; ++k) {
      sets.push_back(flood[(round * 3 + k) % flood.size()]);
    }
    for (const auto& cols : sets) {
      auto from_static = (*static_engine)->Counts(cols);
      auto from_adaptive = (*adaptive_engine)->Counts(cols);
      auto direct = ScanCounts(view, cols);
      if (!from_static.ok() || !from_adaptive.ok() || !direct.ok()) {
        counts_ok = false;
        continue;
      }
      counts_ok &= SameCounts(*from_static, *direct);
      counts_ok &= SameCounts(*from_adaptive, *direct);
    }
  };

  for (int round = 0; round < kRounds; ++round) {
    run_round(round);
    adaptive_registry->AdvisorPass();
  }

  CountEngineStats static_stats;
  CountEngineStats adaptive_stats;
  if (auto s = static_registry->EngineStats("d"); s.ok()) static_stats = *s;
  if (auto s = adaptive_registry->EngineStats("d"); s.ok()) {
    adaptive_stats = *s;
  }
  const CubeAdvisorStats advisor = adaptive_registry->advisor_stats();
  const int64_t static_scans = static_stats.scans;
  const int64_t adaptive_scans = adaptive_stats.scans;
  const int64_t adaptive_total = adaptive_scans + advisor.build_scans;

  // ---- service-level A/B: digests vs cold serial, advisor metrics ----
  auto berkeley_table = GenerateBerkeleyData();
  if (!berkeley_table.ok()) {
    std::printf("berkeley generation failed\n");
    return 1;
  }
  TablePtr berkeley = MakeTable(std::move(*berkeley_table));
  const std::vector<std::string> sqls = {
      "SELECT Gender, avg(Accepted) FROM b GROUP BY Gender",
      "SELECT Gender, Department, avg(Accepted) FROM b GROUP BY Gender, "
      "Department",
  };
  std::vector<std::string> expected;
  for (const std::string& sql : sqls) {
    HypDb db(berkeley, HypDbOptions{});
    auto report = db.AnalyzeSql(sql);
    if (!report.ok()) {
      std::printf("cold serial analyze failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    expected.push_back(CanonicalReportDigest(*report));
  }

  HypDbServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.analysis.engine.materialization =
      MaterializationMode::kAdaptive;
  service_options.analysis.engine.max_cached_cells = kBudget;
  service_options.advisor_interval_seconds = 0;  // manual passes below
  // Recompute discovery every request: the CI test stream is the demand
  // signal the advisor watches, and a cached discovery would hide it.
  service_options.share_discovery = false;
  HypDbService service(service_options);
  service.RegisterTable("b", berkeley);

  bool digests_ok = true;
  for (int pass = 0; pass < 3; ++pass) {
    // Twice per pass: repeated answers re-query the shared parent engine
    // (discovery is cached, query answering is not), which is the demand
    // signal the advisor's min-demand threshold watches.
    for (int rep = 0; rep < 2; ++rep) {
      for (size_t i = 0; i < sqls.size(); ++i) {
        auto report = service.AnalyzeSql("b", sqls[i]);
        if (!report.ok()) {
          std::printf("service analyze failed: %s\n",
                      report.status().ToString().c_str());
          return 1;
        }
        digests_ok &= CanonicalReportDigest(report->report) == expected[i];
      }
    }
    service.registry().AdvisorPass();
  }
  const CubeAdvisorStats service_advisor = service.advisor_stats();
  const std::string metrics_text =
      RenderPrometheusText(service.metrics_registry().Snapshot());
  const bool promotions_visible =
      service_advisor.promotions > 0 &&
      metrics_text.find("hypdb_cache_advisor_promotions_total") !=
          std::string::npos &&
      metrics_text.find("hypdb_cache_advisor_promotions_total 0\n") ==
          std::string::npos;

  Row({"metric", "value"}, 28);
  Row({"rows", std::to_string(rows)}, 28);
  Row({"budget_cells", std::to_string(kBudget)}, 28);
  Row({"static_scans", std::to_string(static_scans)}, 28);
  Row({"adaptive_scans", std::to_string(adaptive_scans)}, 28);
  Row({"advisor_build_scans", std::to_string(advisor.build_scans)}, 28);
  Row({"adaptive_total_scans", std::to_string(adaptive_total)}, 28);
  Row({"static_evictions", std::to_string(static_stats.evictions)}, 28);
  Row({"adaptive_evictions", std::to_string(adaptive_stats.evictions)}, 28);
  Row({"cube_hits", std::to_string(adaptive_stats.cube_hits)}, 28);
  Row({"advisor_promotions", std::to_string(advisor.promotions)}, 28);
  Row({"advisor_demotions", std::to_string(advisor.demotions)}, 28);
  Row({"service_promotions",
       std::to_string(service_advisor.promotions)}, 28);

  const bool fewer_scans = adaptive_total < static_scans;
  const bool promoted = advisor.promotions > 0;
  std::printf("\ngates:\n");
  std::printf("  adaptive_total < static_scans : %s (%lld vs %lld)\n",
              fewer_scans ? "PASS" : "FAIL",
              static_cast<long long>(adaptive_total),
              static_cast<long long>(static_scans));
  std::printf("  counts bit-identical          : %s\n",
              counts_ok ? "PASS" : "FAIL");
  std::printf("  registry advisor promoted     : %s\n",
              promoted ? "PASS" : "FAIL");
  std::printf("  service digests identical     : %s\n",
              digests_ok ? "PASS" : "FAIL");
  std::printf("  promotions visible in metrics : %s\n",
              promotions_visible ? "PASS" : "FAIL");

  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("rows", net::JsonValue::Int(rows));
  results.Set("budget_cells", net::JsonValue::Int(kBudget));
  results.Set("static_scans", net::JsonValue::Int(static_scans));
  results.Set("adaptive_scans", net::JsonValue::Int(adaptive_scans));
  results.Set("advisor_build_scans",
              net::JsonValue::Int(advisor.build_scans));
  results.Set("adaptive_total_scans", net::JsonValue::Int(adaptive_total));
  results.Set("cube_hits", net::JsonValue::Int(adaptive_stats.cube_hits));
  results.Set("advisor_promotions",
              net::JsonValue::Int(advisor.promotions));
  results.Set("advisor_demotions", net::JsonValue::Int(advisor.demotions));
  results.Set("service_promotions",
              net::JsonValue::Int(service_advisor.promotions));
  results.Set("counts_identical", net::JsonValue::Bool(counts_ok));
  results.Set("digests_identical", net::JsonValue::Bool(digests_ok));
  results.Set("fewer_scans", net::JsonValue::Bool(fewer_scans));
  WriteBenchJson("adaptive_cache", results);

  return (fewer_scans && counts_ok && promoted && digests_ok &&
          promotions_visible)
             ? 0
             : 1;
}
