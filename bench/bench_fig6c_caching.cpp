// E13 — Fig. 6(c): efficacy of caching entropies and materializing
// contingency tables. The CD algorithm runs with each optimization
// toggled; "warm" repeats the run with the entropy cache already
// populated (the paper's "precomputed entropies" floor).

#include "bench_util.h"
#include "causal/cd_algorithm.h"
#include "causal/ci_oracle.h"
#include "datagen/random_data.h"
#include "util/stopwatch.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

double RunCdSeconds(const TablePtr& table, int target, bool cache,
                    bool materialize) {
  MiEngineOptions engine_options;
  engine_options.cache_entropies = cache;
  engine_options.materialize_focus = materialize;
  MiEngine engine(TableView(table), engine_options);
  CiOptions chi2;
  chi2.method = CiMethod::kGTest;
  CiTester tester(&engine, chi2, 11);
  DataCiOracle oracle(&tester, 0.01);
  std::vector<int> candidates;
  for (int c = 0; c < table->NumColumns(); ++c) {
    if (c != target) candidates.push_back(c);
  }
  Stopwatch timer;
  auto r = DiscoverParents(oracle, target, candidates);
  double seconds = timer.ElapsedSeconds();
  if (!r.ok()) return -1;
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig6c_caching",
         "Fig. 6(c) — CD runtime: plain vs +materialization vs +caching "
         "vs both vs warm cache");
  Row({"rows", "plain[s]", "+mat[s]", "+cache[s]", "both[s]", "warm[s]"},
      12);

  Rng rng(66);
  for (int64_t rows : {10000, 50000, 250000, 1000000}) {
    RandomDataOptions data_options;
    data_options.num_nodes = 10;
    data_options.expected_degree = 3.0;
    data_options.num_rows = static_cast<int64_t>(rows * scale);
    auto ds = GenerateRandomDataset(data_options, rng);
    if (!ds.ok()) return 1;
    TablePtr table = std::make_shared<const Table>(std::move(ds->table));
    const int target = 0;

    double plain = RunCdSeconds(table, target, false, false);
    double mat = RunCdSeconds(table, target, false, true);
    double cache = RunCdSeconds(table, target, true, false);

    // "both", then a warm re-run on the same engine (cache populated).
    MiEngineOptions engine_options;
    CiOptions chi2;
    chi2.method = CiMethod::kGTest;
    MiEngine engine(TableView(table), engine_options);
    CiTester tester(&engine, chi2, 11);
    DataCiOracle oracle(&tester, 0.01);
    std::vector<int> candidates;
    for (int c = 0; c < table->NumColumns(); ++c) {
      if (c != target) candidates.push_back(c);
    }
    Stopwatch timer;
    (void)DiscoverParents(oracle, target, candidates);
    double both = timer.ElapsedSeconds();
    timer.Restart();
    (void)DiscoverParents(oracle, target, candidates);
    double warm = timer.ElapsedSeconds();

    Row({std::to_string(data_options.num_rows), Fmt("%.3f", plain),
         Fmt("%.3f", mat), Fmt("%.3f", cache), Fmt("%.3f", both),
         Fmt("%.3f", warm)},
        12);
  }
  std::printf("\n(expected shape: plain > +mat, +cache > both >> warm;\n"
              " the gap widens with the row count because summaries stay\n"
              " small while scans grow linearly)\n");
  return 0;
}
