// E13 — Fig. 6(c): efficacy of caching entropies and materializing
// contingency tables, now measured through the CountEngine subsystem.
//
// Part 1 (timings): the CD algorithm runs with each optimization toggled;
// "warm" repeats the run with the caches already populated (the paper's
// "precomputed entropies" floor). Scan counts come from the engine stats.
//
// Part 2 (equivalence): the same fixed CI-test workload runs once against
// a bare scan engine and once against the caching engine. The caching
// engine must perform strictly fewer data scans while reproducing every
// p-value to 1e-9 — caching is a pure execution-strategy change, never a
// statistical one. Exits non-zero on violation.

#include <cmath>
#include <cstdlib>

#include "bench_util.h"
#include "causal/cd_algorithm.h"
#include "causal/ci_oracle.h"
#include "datagen/random_data.h"
#include "stats/ci_test.h"
#include "util/stopwatch.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

struct CdRun {
  double seconds = -1;
  int64_t scans = 0;
};

CdRun RunCd(const TablePtr& table, int target, bool cache,
            bool materialize) {
  MiEngineOptions engine_options;
  engine_options.cache_entropies = cache;
  engine_options.materialize_focus = materialize;
  MiEngine engine(TableView(table), engine_options);
  CiOptions chi2;
  chi2.method = CiMethod::kGTest;
  CiTester tester(&engine, chi2, 11);
  DataCiOracle oracle(&tester, 0.01);
  std::vector<int> candidates;
  for (int c = 0; c < table->NumColumns(); ++c) {
    if (c != target) candidates.push_back(c);
  }
  Stopwatch timer;
  auto r = DiscoverParents(oracle, target, candidates);
  CdRun run;
  run.seconds = r.ok() ? timer.ElapsedSeconds() : -1;
  run.scans = engine.count_engine().stats().scans;
  return run;
}

// Fixed CI-test workload: every pair, unconditional and one-variable
// conditioned. Returns false on any p-value divergence.
bool RunWorkload(MiEngine* engine, uint64_t seed,
                 std::vector<double>* p_values) {
  CiOptions hybrid;
  hybrid.permutations = 200;
  CiTester tester(engine, hybrid, seed);
  const int cols = 8;
  for (int x = 0; x < cols; ++x) {
    for (int y = x + 1; y < cols; ++y) {
      for (int variant = 0; variant < 2; ++variant) {
        std::vector<int> z;
        if (variant == 1) z.push_back((y + 1) % cols == x ? (y + 2) % cols
                                                          : (y + 1) % cols);
        if (!z.empty() && (z[0] == x || z[0] == y)) continue;
        auto r = tester.Test(x, y, z);
        if (!r.ok()) return false;
        p_values->push_back(r->p_value);
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig6c_caching",
         "Fig. 6(c) — CD runtime and data scans: plain vs +materialization "
         "vs +caching vs both vs warm");
  Row({"rows", "plain[s]", "+mat[s]", "+cache[s]", "both[s]", "warm[s]",
       "scans:plain", "scans:both"},
      12);

  Rng rng(66);
  for (int64_t rows : {10000, 50000, 250000, 1000000}) {
    RandomDataOptions data_options;
    data_options.num_nodes = 10;
    data_options.expected_degree = 3.0;
    data_options.num_rows = static_cast<int64_t>(rows * scale);
    auto ds = GenerateRandomDataset(data_options, rng);
    if (!ds.ok()) return 1;
    TablePtr table = std::make_shared<const Table>(std::move(ds->table));
    const int target = 0;

    CdRun plain = RunCd(table, target, false, false);
    CdRun mat = RunCd(table, target, false, true);
    CdRun cache = RunCd(table, target, true, false);

    // "both", then a warm re-run on the same engine (caches populated).
    MiEngineOptions engine_options;
    CiOptions chi2;
    chi2.method = CiMethod::kGTest;
    MiEngine engine(TableView(table), engine_options);
    CiTester tester(&engine, chi2, 11);
    DataCiOracle oracle(&tester, 0.01);
    std::vector<int> candidates;
    for (int c = 0; c < table->NumColumns(); ++c) {
      if (c != target) candidates.push_back(c);
    }
    Stopwatch timer;
    (void)DiscoverParents(oracle, target, candidates);
    double both = timer.ElapsedSeconds();
    int64_t both_scans = engine.count_engine().stats().scans;
    timer.Restart();
    (void)DiscoverParents(oracle, target, candidates);
    double warm = timer.ElapsedSeconds();

    Row({std::to_string(data_options.num_rows), Fmt("%.3f", plain.seconds),
         Fmt("%.3f", mat.seconds), Fmt("%.3f", cache.seconds),
         Fmt("%.3f", both), Fmt("%.3f", warm),
         std::to_string(plain.scans), std::to_string(both_scans)},
        12);
  }
  std::printf("\n(expected shape: plain > +mat, +cache > both >> warm;\n"
              " the gap widens with the row count because summaries stay\n"
              " small while scans grow linearly)\n");

  // ---- Equivalence check: caching must change scans, never p-values.
  std::printf("\n-- caching equivalence (fixed CI workload) --\n");
  RandomDataOptions eq_options;
  eq_options.num_nodes = 8;
  eq_options.expected_degree = 2.5;
  eq_options.num_rows = static_cast<int64_t>(20000 * scale);
  Rng eq_rng(99);
  auto eq_ds = GenerateRandomDataset(eq_options, eq_rng);
  if (!eq_ds.ok()) return 1;
  TablePtr eq_table = std::make_shared<const Table>(std::move(eq_ds->table));

  MiEngine scan_engine(TableView(eq_table),
                       MiEngineOptions{.cache_entropies = false,
                                       .materialize_focus = false});
  MiEngine cached_engine(TableView(eq_table), MiEngineOptions{});
  std::vector<double> p_scan;
  std::vector<double> p_cached;
  if (!RunWorkload(&scan_engine, 4242, &p_scan) ||
      !RunWorkload(&cached_engine, 4242, &p_cached) ||
      p_scan.size() != p_cached.size()) {
    std::printf("FAIL: workload did not complete identically\n");
    return 1;
  }
  double max_dp = 0.0;
  for (size_t i = 0; i < p_scan.size(); ++i) {
    max_dp = std::max(max_dp, std::fabs(p_scan[i] - p_cached[i]));
  }
  int64_t scans_bare = scan_engine.count_engine().stats().scans;
  CountEngineStats cached_stats = cached_engine.count_engine().stats();
  std::printf("tests: %zu   scans (bare): %lld   scans (caching): %lld   "
              "cache hits: %lld   marginalized: %lld\n",
              p_scan.size(), static_cast<long long>(scans_bare),
              static_cast<long long>(cached_stats.scans),
              static_cast<long long>(cached_stats.cache_hits),
              static_cast<long long>(cached_stats.marginalizations));
  std::printf("max |Δp| = %.3g\n", max_dp);

  bool fewer_scans = cached_stats.scans < scans_bare;
  bool same_p = max_dp <= 1e-9;

  // The machine-readable trail CI collects (this bench gates the build,
  // so its trajectory must accumulate like the throughput benches').
  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("scale", net::JsonValue::Double(scale));
  results.Set("rows", net::JsonValue::Int(eq_options.num_rows));
  results.Set("tests",
              net::JsonValue::Int(static_cast<int64_t>(p_scan.size())));
  results.Set("scans_bare", net::JsonValue::Int(scans_bare));
  results.Set("scans_caching", net::JsonValue::Int(cached_stats.scans));
  results.Set("cache_hits", net::JsonValue::Int(cached_stats.cache_hits));
  results.Set("marginalizations",
              net::JsonValue::Int(cached_stats.marginalizations));
  results.Set("max_p_delta", net::JsonValue::Double(max_dp));
  results.Set("identical", net::JsonValue::Bool(same_p));
  WriteBenchJson("fig6c_caching", std::move(results));

  std::printf("%s: caching engine %s scans and %s p-values\n",
              fewer_scans && same_p ? "PASS" : "FAIL",
              fewer_scans ? "reduces" : "DOES NOT reduce",
              same_p ? "preserves" : "CHANGES");
  return fewer_scans && same_p ? 0 : 1;
}
