// E2 — Table 1: runtime (seconds) of detection, explanation and
// resolution on the five evaluation datasets, at the paper's sizes.
// Discovery (the CD algorithm, reported inside "Det." by the paper) is
// shown separately for transparency.

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/adult_data.h"
#include "datagen/berkeley_data.h"
#include "datagen/cancer_data.h"
#include "datagen/flight_data.h"
#include "datagen/staples_data.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

void Report(const char* name, const StatusOr<Table>& table,
            const std::string& sql) {
  if (!table.ok()) {
    std::printf("%-14s generation failed: %s\n", name,
                table.status().ToString().c_str());
    return;
  }
  TablePtr data = std::make_shared<const Table>(*table);
  HypDb db(data, HypDbOptions{});
  auto report = db.AnalyzeSql(sql);
  if (!report.ok()) {
    std::printf("%-14s analysis failed: %s\n", name,
                report.status().ToString().c_str());
    return;
  }
  Row({name, std::to_string(data->NumColumns()),
       std::to_string(data->NumRows()),
       Fmt("%.2f", report->discovery.seconds),
       Fmt("%.2f", report->detect_seconds),
       Fmt("%.2f", report->explain_seconds),
       Fmt("%.2f", report->resolve_seconds)},
      13);
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_table1_runtime",
         "Table 1 — Det./Exp./Res. runtimes on the five datasets");
  std::printf("(paper's 'Det.' column includes covariate discovery,\n"
              " shown here as its own 'Disc.' column; scale=%g)\n\n",
              scale);
  Row({"Dataset", "Cols", "Rows", "Disc[s]", "Det[s]", "Exp[s]", "Res[s]"},
      13);

  Report("AdultData",
         GenerateAdultData({.num_rows = static_cast<int64_t>(48842 * scale)}),
         "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender");
  Report("StaplesData",
         GenerateStaplesData(
             {.num_rows = static_cast<int64_t>(988871 * scale)}),
         "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income");
  Report("BerkeleyData", GenerateBerkeleyData(),
         "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender");
  Report("CancerData",
         GenerateCancerData({.num_rows = static_cast<int64_t>(2000 * scale)}),
         "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData "
         "GROUP BY Lung_Cancer");
  Report("FlightData",
         GenerateFlightData(
             {.num_rows = static_cast<int64_t>(43853 * scale)}),
         "SELECT Carrier, avg(Delayed) FROM FlightData "
         "WHERE Carrier IN ('AA','UA') AND "
         "Airport IN ('COS','MFE','MTJ','ROC') GROUP BY Carrier");
  return 0;
}
