// Microbenchmarks (google-benchmark) for the primitives every HypDB
// component sits on: group-by counting, entropy estimation, stratified
// summarization, Patefield sampling, cached CMI.

#include <benchmark/benchmark.h>

#include "dataframe/group_by.h"
#include "datagen/random_data.h"
#include "stats/ci_test.h"
#include "stats/contingency.h"
#include "stats/mi_engine.h"
#include "stats/patefield.h"
#include "util/rng.h"

namespace hypdb {
namespace {

TablePtr BenchTable(int64_t rows) {
  static std::map<int64_t, TablePtr> cache;
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;
  Rng rng(42);
  RandomDataOptions options;
  options.num_nodes = 8;
  options.min_categories = 4;
  options.max_categories = 8;
  options.num_rows = rows;
  auto ds = GenerateRandomDataset(options, rng);
  TablePtr table = MakeTable(std::move(ds->table));
  cache[rows] = table;
  return table;
}

void BM_CountBy(benchmark::State& state) {
  TablePtr table = BenchTable(state.range(0));
  TableView view(table);
  for (auto _ : state) {
    auto counts = CountBy(view, {0, 1, 2});
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CountBy)->Arg(10000)->Arg(100000);

void BM_EntropyCachedCmi(benchmark::State& state) {
  TablePtr table = BenchTable(state.range(0));
  MiEngine engine{TableView(table)};
  for (auto _ : state) {
    auto mi = engine.Mi(0, 1, {2, 3});
    benchmark::DoNotOptimize(mi);
  }
}
BENCHMARK(BM_EntropyCachedCmi)->Arg(100000);

void BM_BuildStratified(benchmark::State& state) {
  TablePtr table = BenchTable(state.range(0));
  TableView view(table);
  for (auto _ : state) {
    auto st = BuildStratified(view, 0, 1, {2, 3});
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildStratified)->Arg(10000)->Arg(100000);

void BM_PatefieldSample(benchmark::State& state) {
  // A 4x4 table with total = range(0).
  int64_t total = state.range(0);
  std::vector<int64_t> rows(4, total / 4);
  std::vector<int64_t> cols(4, total / 4);
  auto sampler = PatefieldSampler::Create(rows, cols);
  Rng rng(7);
  Table2D out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Sample(rng, &out));
  }
}
BENCHMARK(BM_PatefieldSample)->Arg(1000)->Arg(100000);

void BM_MitTest(benchmark::State& state) {
  TablePtr table = BenchTable(50000);
  MiEngine engine{TableView(table)};
  CiOptions options;
  options.method = CiMethod::kMitSampled;
  options.permutations = static_cast<int>(state.range(0));
  CiTester tester(&engine, options, 1);
  for (auto _ : state) {
    auto r = tester.Test(0, 1, {2});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MitTest)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace hypdb

BENCHMARK_MAIN();
