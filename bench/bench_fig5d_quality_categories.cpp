// E10 — Fig. 5(d): quality as the number of attribute categories grows
// (fixed sample): larger domains = sparser contingency tables, where the
// χ² approximation degrades and the permutation-based tests keep their
// accuracy. Restricted to nodes with >= 2 parents as in Fig. 5(c)/(d).

#include "bench_util.h"
#include "quality_common.h"

using namespace hypdb;
using namespace hypdb::bench;

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig5d_quality_categories",
         "Fig. 5(d) — F1 vs number of categories (sparse regime)");

  const std::vector<Learner> learners = {
      Learner::kCdHyMit, Learner::kCdMit,  Learner::kCdChi2,
      Learner::kIambChi2, Learner::kFgsChi2, Learner::kHcBde,
      Learner::kHcAic,   Learner::kHcBic};

  std::vector<std::string> header = {"categories"};
  for (Learner l : learners) header.push_back(LearnerName(l));
  Row(header, 12);

  for (int categories : {4, 8, 12, 16, 20}) {
    QualitySetup setup;
    setup.data.num_nodes = 8;
    setup.data.expected_degree = 2.5;
    setup.data.num_rows = static_cast<int64_t>(20000 * scale);
    setup.data.min_categories = categories;
    setup.data.max_categories = categories;
    setup.reps = 2;
    setup.min_parents = 2;
    setup.seed = 5152 + categories;
    auto results = RunQualityComparison(setup, learners);
    std::vector<std::string> row = {std::to_string(categories)};
    for (const auto& r : results) row.push_back(Fmt("%.3f", r.f1));
    Row(row, 12);
  }
  std::printf("\n(expected shape: permutation-based CD degrades slowest as\n"
              " categories grow; χ²-based columns fall off)\n");
  return 0;
}
