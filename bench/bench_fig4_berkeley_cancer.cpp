// E6/E7 — Fig. 4: the BerkeleyData (gender → admission) and CancerData
// (lung cancer → car accidents) reports.

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/berkeley_data.h"
#include "datagen/cancer_data.h"

using namespace hypdb;
using namespace hypdb::bench;

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig4_berkeley_cancer",
         "Fig. 4 — BerkeleyData (top) and CancerData (bottom) reports");

  {
    std::printf("\n--- Fig. 4 top: the effect of Gender on admission ---\n");
    auto table = GenerateBerkeleyData();
    if (!table.ok()) return 1;
    HypDb db(MakeTable(std::move(*table)), HypDbOptions{});
    auto report = db.AnalyzeSql(
        "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender");
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", RenderReport(*report).c_str());
    std::printf("[paper: plain 0.30/0.46 favoring men; conditioning on\n"
                " Department shrinks and slightly reverses the gap]\n");
  }

  {
    std::printf(
        "\n--- Fig. 4 bottom: lung cancer's effect on car accidents ---\n");
    auto table = GenerateCancerData(
        {.num_rows = static_cast<int64_t>(2000 * scale)});
    if (!table.ok()) return 1;
    HypDb db(MakeTable(std::move(*table)), HypDbOptions{});
    auto report = db.AnalyzeSql(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData "
        "GROUP BY Lung_Cancer");
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", RenderReport(*report).c_str());
    std::printf("[paper/ground truth: plain 0.60/0.77; significant total\n"
                " effect via Fatigue; no direct effect (no LC->CA edge)]\n");
  }
  return 0;
}
