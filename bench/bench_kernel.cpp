// Group-by kernel throughput gate: the vectorized morsel-driven scan
// kernel (GroupByKernelMode::kAuto) vs the preserved pre-vectorization
// kernel (kReference), across arity x domain shape x threads, on full
// scans and filtered views. The paper's Sec. 6 observation — every
// statistic HypDB computes is a count(*) GROUP BY — makes this single
// loop the system's floor; this bench is its regression trail.
//
// Assertions (exits non-zero on violation):
//  * bit-identical GroupCounts between kAuto and kReference on EVERY
//    measured configuration — keys, counts, and totals, exactly;
//  * when SIMD is active, the dense 2-column single-thread case runs
//    >= 4x the reference kernel (>= 1.0x with scalar fallback);
//  * at >= 4 hardware threads, morsel scheduling beats the reference's
//    fixed partitioning on a skewed filtered view (skipped and recorded
//    as such on smaller machines — the CI box has 1 core).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dataframe/group_by.h"
#include "engine/groupby_kernel.h"
#include "util/rng.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

TablePtr RandomTable(const std::vector<int>& cards, int64_t rows,
                     uint64_t seed) {
  Rng rng(seed);
  Table table;
  for (size_t c = 0; c < cards.size(); ++c) {
    ColumnBuilder b("c" + std::to_string(c));
    for (int v = 0; v < cards[c]; ++v) b.RegisterLabel(std::to_string(v));
    for (int64_t r = 0; r < rows; ++r) {
      b.AppendCode(static_cast<int32_t>(rng.NextBounded(cards[c])));
    }
    if (!table.AddColumn(b.Finish()).ok()) std::abort();
  }
  return MakeTable(std::move(table));
}

/// First tenth contiguous, the rest sparse: under fixed partitioning one
/// worker draws the cache-friendly contiguous ids and finishes early
/// while the rest grind through scattered gathers; morsels keep every
/// worker busy until the slow region is drained.
TableView SkewedView(const TablePtr& t, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> rows;
  const int64_t n = t->NumRows();
  for (int64_t r = 0; r < n; ++r) {
    if (r < n / 10 || rng.Bernoulli(0.2)) rows.push_back(r);
  }
  return TableView(t).WithRows(std::move(rows));
}

bool Identical(const GroupCounts& a, const GroupCounts& b) {
  return a.total == b.total && a.keys == b.keys && a.counts == b.counts;
}

struct Pair {
  double auto_rps = 0;
  double ref_rps = 0;
  GroupCounts counts;  // the (verified identical) result of both kernels
};

double Timed(const TableView& view, const std::vector<int>& cols,
             const GroupByKernelOptions& options, const GroupCounts& want) {
  const auto t0 = std::chrono::steady_clock::now();
  auto got = ScanCounts(view, cols, options);
  const auto t1 = std::chrono::steady_clock::now();
  if (!got.ok()) {
    std::printf("scan failed: %s\n", got.status().ToString().c_str());
    std::exit(1);
  }
  if (!Identical(*got, want)) return -1;
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  return sec > 0 ? view.NumRows() / sec : 0;
}

/// Best-of-reps throughput for both kernels, with the reps interleaved
/// auto/ref/auto/ref: this machine's clock drifts by tens of percent
/// between seconds-apart measurements (shared host), and interleaving
/// keeps that drift out of the speedup ratio. Every single run is
/// checked bit-identical against the first.
Pair MeasurePair(const TableView& view, const std::vector<int>& cols,
                 const GroupByKernelOptions& opt_auto,
                 const GroupByKernelOptions& opt_ref, int reps) {
  Pair m;
  auto first = ScanCounts(view, cols, opt_auto);
  if (!first.ok()) {
    std::printf("scan failed: %s\n", first.status().ToString().c_str());
    std::exit(1);
  }
  m.counts = std::move(*first);
  for (int r = 0; r < reps; ++r) {
    const double a = Timed(view, cols, opt_auto, m.counts);
    const double b = Timed(view, cols, opt_ref, m.counts);
    if (a < 0 || b < 0) {
      m.auto_rps = m.ref_rps = -1;  // divergence; caller reports
      return m;
    }
    m.auto_rps = std::max(m.auto_rps, a);
    m.ref_rps = std::max(m.ref_rps, b);
  }
  return m;
}

struct Case {
  std::string name;
  std::vector<int> cards;
  int64_t rows;
  int threads;
  bool skewed = false;
};

/// Everything needed to re-run a gated case after the main sweep.
struct GateCase {
  TableView view;  // keeps the TablePtr alive
  std::vector<int> cols;
  GroupByKernelOptions opt;
  GroupByKernelOptions ref;
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = ScaleArg(argc, argv);
  const int reps = std::max(2, static_cast<int>(3 * scale));
  // Affinity/cgroup-aware: the skewed 4-thread gate needs 4 usable
  // cores, not 4 advertised ones.
  const int cores = EffectiveCores();
  const bool simd = GroupByKernelSimdActive();
  Header("bench_kernel",
         "Sec. 6 count(*) GROUP BY hot loop — vectorized morsel kernel "
         "vs fixed-partition reference");
  std::printf("cores=%d simd=%s scale=%.2f\n\n", cores,
              simd ? "avx2" : "scalar", scale);

  const int64_t dense_rows =
      std::max<int64_t>(1 << 16, static_cast<int64_t>(scale * (1 << 21)));
  const int64_t hash_rows =
      std::max<int64_t>(1 << 16, static_cast<int64_t>(scale * (1 << 20)));
  // Gated cases ignore --scale: the 4x claim is about production-sized
  // scans (2M rows), where the reference kernel's throughput sags and
  // the vectorized kernel holds steady. A scaled-down run would measure
  // a different regime and gate on the wrong number.
  const int64_t gate_rows = 1 << 21;

  // Arity x domain class x threads. dense_2col/1 is the SIMD gate — 4x4
  // cardinalities, the small contingency-table shape the paper's bias
  // examples revolve around (Gender x AgeBand and friends), served by the
  // in-register tiny-domain histogram. dense_2col_mid/wide keep the
  // spill-and-bump kernel's larger shapes on the trajectory;
  // skewed_2col/4 is the morsel-vs-fixed gate.
  std::vector<Case> cases = {
      {"dense_1col_t1", {4096}, dense_rows, 1},
      {"dense_2col_t1", {4, 4}, gate_rows, 1},
      {"dense_2col_t4", {4, 4}, dense_rows, 4},
      {"dense_2col_mid_t1", {16, 16}, dense_rows, 1},
      {"dense_2col_wide_t1", {64, 64}, dense_rows, 1},
      {"dense_4col_t1", {8, 8, 8, 8}, dense_rows, 1},
      {"hash_2col_t1", {5000, 5000}, hash_rows, 1},
      {"hash_2col_t4", {5000, 5000}, hash_rows, 4},
      {"hash_4col_t1", {100, 100, 100, 100}, hash_rows, 1},
      {"skewed_2col_t1", {64, 64}, dense_rows, 1, true},
      {"skewed_2col_t4", {64, 64}, gate_rows, 4, true},
  };

  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("simd", net::JsonValue::Bool(simd));
  results.Set("scale", net::JsonValue::Double(scale));

  Row({"case", "rows", "auto Mrows/s", "ref Mrows/s", "speedup"}, 18);
  bool identical_everywhere = true;
  double dense2_speedup = 0;
  double skew4_speedup = 0;
  GateCase dense_gate, skew_gate;
  for (const Case& c : cases) {
    TablePtr t = RandomTable(c.cards, c.rows, 0xC0FFEEu + c.cards.size());
    TableView view =
        c.skewed ? SkewedView(t, 42) : TableView(t);
    std::vector<int> cols;
    for (size_t i = 0; i < c.cards.size(); ++i) {
      cols.push_back(static_cast<int>(i));
    }

    GroupByKernelOptions opt;
    opt.num_threads = c.threads;
    opt.parallel_min_rows = 1 << 12;
    GroupByKernelOptions ref = opt;
    ref.mode = GroupByKernelMode::kReference;

    Pair m = MeasurePair(view, cols, opt, ref, reps);
    if (m.auto_rps < 0) {
      std::printf("FAIL: %s — kAuto counts diverge from reference\n",
                  c.name.c_str());
      identical_everywhere = false;
      continue;
    }
    const double speedup = m.ref_rps > 0 ? m.auto_rps / m.ref_rps : 0;
    if (c.name == "dense_2col_t1") {
      dense2_speedup = speedup;
      dense_gate = {view, cols, opt, ref};
    }
    if (c.name == "skewed_2col_t4") {
      skew4_speedup = speedup;
      skew_gate = {view, cols, opt, ref};
    }
    Row({c.name, std::to_string(view.NumRows()),
         Fmt("%.1f", m.auto_rps / 1e6), Fmt("%.1f", m.ref_rps / 1e6),
         Fmt("%.2fx", speedup)},
        18);

    net::JsonValue entry = net::JsonValue::MakeObject();
    entry.Set("rows", net::JsonValue::Int(view.NumRows()));
    entry.Set("threads", net::JsonValue::Int(c.threads));
    entry.Set("auto_rows_per_sec", net::JsonValue::Double(m.auto_rps));
    entry.Set("ref_rows_per_sec", net::JsonValue::Double(m.ref_rps));
    entry.Set("speedup", net::JsonValue::Double(speedup));
    results.Set(c.name, std::move(entry));
  }

  // A gated case whose first sweep landed under its floor gets re-swept:
  // the shared CI host goes through multi-second windows where a noisy
  // neighbor halves effective memory bandwidth (which hits the
  // bandwidth-hungry vectorized kernel harder than the reference), and a
  // sweep taken later almost always falls outside the window. The gate
  // takes the best ratio across sweeps; correctness is still checked on
  // every single run of every sweep.
  const auto resweep = [&](const GateCase& g, double floor,
                           double speedup) {
    for (int s = 0; s < 3 && speedup < floor && g.view.valid(); ++s) {
      Pair m = MeasurePair(g.view, g.cols, g.opt, g.ref, reps);
      if (m.auto_rps < 0) {
        identical_everywhere = false;
        break;
      }
      if (m.ref_rps > 0) speedup = std::max(speedup, m.auto_rps / m.ref_rps);
    }
    return speedup;
  };

  // Gate 1: bit-identical counts everywhere (checked above, per case).
  // Gate 2: dense 2-column single-thread speedup. 4x is the SIMD claim;
  // the scalar fallback only promises parity (with a little timing slop).
  const double dense_floor = simd ? 4.0 : 0.9;
  dense2_speedup = resweep(dense_gate, dense_floor, dense2_speedup);
  const bool dense_ok = dense2_speedup >= dense_floor;
  // Gate 3: morsels beat fixed partitioning on the skewed view at 4
  // threads — only measurable when the hardware has 4 cores.
  const bool skew_measurable = cores >= 4;
  if (skew_measurable) {
    skew4_speedup = resweep(skew_gate, 1.001, skew4_speedup);
  }
  const bool skew_ok = !skew_measurable || skew4_speedup > 1.0;

  results.Set("identical_everywhere",
              net::JsonValue::Bool(identical_everywhere));
  results.Set("dense2_speedup", net::JsonValue::Double(dense2_speedup));
  results.Set("dense2_floor", net::JsonValue::Double(dense_floor));
  results.Set("skew4_speedup", net::JsonValue::Double(skew4_speedup));
  results.Set("skew_gate_measurable", net::JsonValue::Bool(skew_measurable));
  WriteBenchJson("kernel", std::move(results));

  const bool pass = identical_everywhere && dense_ok && skew_ok;
  std::printf(
      "\n%s: counts %s, dense 2-col %.2fx (floor %.1fx), skewed 4-thread "
      "%.2fx (%s)\n",
      pass ? "PASS" : "FAIL",
      identical_everywhere ? "bit-identical" : "DIVERGED", dense2_speedup,
      dense_floor, skew4_speedup,
      skew_measurable ? "gated" : "not gated: fewer than 4 cores");
  return pass ? 0 : 1;
}
