// Tracing overhead gate: queries/sec of HypDbService with engine-deep
// tracing at level 1 (the default: stage/kernel/cache/slice/discovery
// events) versus level 0 (compiled in, every record call early-returns).
//
// The tracer's contract is "cheap enough to leave on": per event it does
// one thread-local read, one steady_clock read, and ~2 cache-line writes
// into a per-thread ring, with no locks and no allocation. This harness
// holds it to that contract:
//  * every report at both levels must digest bit-identical to a cold
//    serial reference (tracing is observational by construction — this
//    catches any future feedback path), and
//  * level-1 throughput must stay within 3% of level-0 throughput
//    (best ratio over interleaved rounds, so shared-host drift between
//    rounds does not fail the gate spuriously).
//
// Usage: bench_trace_overhead [scale]
//   scale  multiplies rows and request count (default 1)

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/flight_data.h"
#include "service/hypdb_service.h"
#include "service/report_digest.h"
#include "util/stopwatch.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

constexpr double kMaxRegression = 0.03;  // level 1 may cost at most 3%

struct Workload {
  std::string sql;
  std::string expected_digest;
};

std::vector<Workload> MakeWorkloads() {
  return {
      {"SELECT Carrier, avg(Delayed) FROM flights "
       "WHERE Airport IN ('COS','MFE','MTJ','ROC') GROUP BY Carrier",
       ""},
      {"SELECT Carrier, avg(Delayed) FROM flights GROUP BY Carrier", ""},
  };
}

struct RunResult {
  double qps = 0.0;
  int64_t events = 0;  // harvested trace events across all requests
  int64_t digest_mismatches = 0;
  int64_t errors = 0;
};

RunResult RunService(const TablePtr& table,
                     const std::vector<Workload>& workloads,
                     int trace_level, int requests) {
  HypDbServiceOptions options;
  options.num_workers = 2;
  options.trace_level = trace_level;
  HypDbService service(options);
  service.RegisterTable("flights", table);

  RunResult result;
  Stopwatch timer;
  std::vector<uint64_t> tickets;
  std::vector<int> which;
  tickets.reserve(requests);
  for (int r = 0; r < requests; ++r) {
    const int w = r % static_cast<int>(workloads.size());
    which.push_back(w);
    AnalyzeRequest request;
    request.dataset = "flights";
    request.sql = workloads[w].sql;
    tickets.push_back(service.Submit(std::move(request)));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto report = service.Wait(tickets[i]);
    if (!report.ok()) {
      ++result.errors;
      continue;
    }
    result.events += static_cast<int64_t>(report->stats.events.size());
    if (CanonicalReportDigest(report->report) !=
        workloads[which[i]].expected_digest) {
      ++result.digest_mismatches;
    }
  }
  result.qps = requests / timer.ElapsedSeconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = ScaleArg(argc, argv);
  Header("bench_trace_overhead",
         "engine-deep tracing — level 1 qps within 3% of level 0, "
         "reports bit-identical");

  FlightDataOptions data;
  data.num_rows = static_cast<int64_t>(10000 * scale);
  data.num_noise_columns = 2;
  auto generated = GenerateFlightData(data);
  if (!generated.ok()) {
    std::printf("datagen failed: %s\n",
                generated.status().ToString().c_str());
    return 1;
  }
  TablePtr table = MakeTable(std::move(*generated));

  // Serial cold reference digests — the bit-identity anchor.
  std::vector<Workload> workloads = MakeWorkloads();
  for (Workload& w : workloads) {
    HypDb db(table, HypDbOptions{});
    auto report = db.AnalyzeSql(w.sql);
    if (!report.ok()) {
      std::printf("serial analyze failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    w.expected_digest = CanonicalReportDigest(*report);
  }

  const int requests = static_cast<int>(24 * scale);
  const int rounds = 5;
  std::printf("dataset: %lld rows; %d requests/round, %d interleaved "
              "rounds\n\n",
              static_cast<long long>(table->NumRows()), requests, rounds);
  Row({"round", "qps off", "qps on", "ratio", "events", "identical"}, 12);

  // Interleave off/on within each round: host-load drift moves both
  // sides of a ratio together, so the ratio stays meaningful even when
  // absolute qps wanders between rounds.
  double best_ratio = 0.0;
  std::vector<double> ratios;
  int64_t total_events = 0;
  bool all_identical = true;
  net::JsonValue round_rows = net::JsonValue::MakeArray();
  for (int round = 0; round < rounds; ++round) {
    const RunResult off = RunService(table, workloads, 0, requests);
    const RunResult on = RunService(table, workloads, 1, requests);
    const bool identical =
        off.digest_mismatches == 0 && on.digest_mismatches == 0 &&
        off.errors == 0 && on.errors == 0 && off.events == 0;
    all_identical = all_identical && identical;
    const double ratio = off.qps > 0 ? on.qps / off.qps : 0.0;
    ratios.push_back(ratio);
    best_ratio = std::max(best_ratio, ratio);
    total_events += on.events;
    Row({std::to_string(round + 1), Fmt("%.2f", off.qps),
         Fmt("%.2f", on.qps), Fmt("%.3f", ratio),
         std::to_string(on.events), identical ? "yes" : "NO"},
        12);
    net::JsonValue row = net::JsonValue::MakeObject();
    row.Set("qps_off", net::JsonValue::Double(off.qps));
    row.Set("qps_on", net::JsonValue::Double(on.qps));
    row.Set("ratio", net::JsonValue::Double(ratio));
    row.Set("events_on", net::JsonValue::Int(on.events));
    row.Set("identical", net::JsonValue::Bool(identical));
    round_rows.Append(std::move(row));
  }

  std::sort(ratios.begin(), ratios.end());
  const double median_ratio = ratios[ratios.size() / 2];
  std::printf("\nmedian ratio %.3f, best ratio %.3f (gate: best >= %.2f); "
              "%lld events harvested at level 1\n",
              median_ratio, best_ratio, 1.0 - kMaxRegression,
              static_cast<long long>(total_events));

  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("scale", net::JsonValue::Double(scale));
  results.Set("rows", net::JsonValue::Int(table->NumRows()));
  results.Set("requests_per_round", net::JsonValue::Int(requests));
  results.Set("rounds", std::move(round_rows));
  results.Set("median_ratio", net::JsonValue::Double(median_ratio));
  results.Set("best_ratio", net::JsonValue::Double(best_ratio));
  results.Set("events_level1", net::JsonValue::Int(total_events));
  results.Set("identical", net::JsonValue::Bool(all_identical));
  WriteBenchJson("trace_overhead", std::move(results));

  if (!all_identical) {
    std::printf("FAIL: digests diverged, errors occurred, or level 0 "
                "recorded events\n");
    return 1;
  }
  if (total_events <= 0) {
    std::printf("FAIL: level 1 harvested no events — the tracer is not "
                "actually on\n");
    return 1;
  }
  if (best_ratio < 1.0 - kMaxRegression) {
    std::printf("FAIL: tracing cost more than %.0f%% of throughput in "
                "every round\n",
                kMaxRegression * 100);
    return 1;
  }
  std::printf("PASS: default-level tracing within the %.0f%% budget, "
              "reports bit-identical\n",
              kMaxRegression * 100);
  return 0;
}
