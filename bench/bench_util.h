// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every binary in bench/ regenerates one table or figure of the paper's
// evaluation (see DESIGN.md Sec. 3 for the index) and prints the same
// rows/series the paper plots. Sizes are scaled to finish in seconds;
// pass a scale factor as argv[1] to enlarge (e.g. `bench_fig5b_quality 4`).

#ifndef HYPDB_BENCH_BENCH_UTIL_H_
#define HYPDB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "net/json.h"
#include "util/build_info.h"

namespace hypdb::bench {

/// Cores this process can actually use: hardware_concurrency clipped by
/// the CPU affinity mask and the cgroup v2 quota (both routinely smaller
/// on CI runners, where hardware_concurrency alone misleads scaling
/// gates into demanding parallel speedups the host cannot deliver).
inline int EffectiveCores() {
  int cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores < 1) cores = 1;
#ifdef __linux__
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int allowed = CPU_COUNT(&mask);
    if (allowed >= 1 && allowed < cores) cores = allowed;
  }
  // cgroup v2: "cpu.max" is "<quota> <period>" or "max <period>".
  if (FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "r")) {
    long long quota = 0;
    long long period = 0;
    if (std::fscanf(f, "%lld %lld", &quota, &period) == 2 && quota > 0 &&
        period > 0) {
      const int limit = static_cast<int>((quota + period - 1) / period);
      if (limit >= 1 && limit < cores) cores = limit;
    }
    std::fclose(f);
  }
#endif
  return cores;
}

/// Parses the optional scale factor (argv[1], default 1).
inline double ScaleArg(int argc, char** argv, double fallback = 1.0) {
  if (argc > 1) {
    double s = std::atof(argv[1]);
    if (s > 0) return s;
  }
  return fallback;
}

inline void Header(const std::string& title, const std::string& paper_ref) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==================================================\n");
}

inline void Row(const std::vector<std::string>& cells, int width = 16) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Writes `results` (plus a "bench" name member) to BENCH_<name>.json in
/// the working directory — the machine-readable trail CI collects so the
/// perf trajectory of every bench is comparable across commits.
inline void WriteBenchJson(const std::string& name, net::JsonValue results) {
  results.Set("bench", net::JsonValue::Str(name));
  // Every trail records the host it ran on: scaling numbers are
  // meaningless without the core budget that produced them.
  results.Set("cores", net::JsonValue::Int(EffectiveCores()));
  results.Set("hardware_concurrency",
              net::JsonValue::Int(static_cast<int64_t>(
                  std::max(1u, std::thread::hardware_concurrency()))));
  // ... and which binary produced it: a trail from a Debug or stale
  // build is not comparable to a RelWithDebInfo one.
  results.Set("version", net::JsonValue::Str(BuildVersion()));
  results.Set("compiler", net::JsonValue::Str(BuildCompiler()));
  results.Set("build_type", net::JsonValue::Str(BuildType()));
  const std::string path = "BENCH_" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("warning: could not write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "%s\n", net::SerializeJson(results).c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace hypdb::bench

#endif  // HYPDB_BENCH_BENCH_UTIL_H_
