// E9 — Fig. 5(c): the same comparison restricted to nodes with at least
// two parents — the regime the CD algorithm is designed for (its
// identifiability assumption needs co-parents).

#include "bench_util.h"
#include "quality_common.h"

using namespace hypdb;
using namespace hypdb::bench;

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig5c_quality_2parents",
         "Fig. 5(c) — F1 restricted to nodes with >= 2 parents");

  const std::vector<Learner> learners = {
      Learner::kCdHyMit, Learner::kCdMit,  Learner::kCdChi2,
      Learner::kIambChi2, Learner::kFgsChi2, Learner::kHcBde,
      Learner::kHcAic,   Learner::kHcBic};

  std::vector<std::string> header = {"rows"};
  for (Learner l : learners) header.push_back(LearnerName(l));
  Row(header, 12);

  for (int64_t rows : {2000, 10000, 50000}) {
    QualitySetup setup;
    setup.data.num_nodes = 12;
    setup.data.expected_degree = 3.0;
    setup.data.num_rows = static_cast<int64_t>(rows * scale);
    setup.reps = 2;
    setup.min_parents = 2;  // the Fig. 5(c) restriction
    setup.seed = 5151 + rows;
    auto results = RunQualityComparison(setup, learners);
    std::vector<std::string> row = {std::to_string(setup.data.num_rows)};
    for (const auto& r : results) row.push_back(Fmt("%.3f", r.f1));
    Row(row, 12);
  }
  std::printf("\n(expected shape: CD(HyMIT) best-or-tied in every row)\n");
  return 0;
}
