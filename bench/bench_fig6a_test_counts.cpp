// E11 — Fig. 6(a): number of independence tests. FGS learns the whole
// structure; CD only the parents of one target — so CD's per-node test
// count must sit far below FGS's total and below FGS's per-node average.

#include "bench_util.h"
#include "causal/cd_algorithm.h"
#include "causal/ci_oracle.h"
#include "causal/gs_structure.h"
#include "datagen/random_data.h"

using namespace hypdb;
using namespace hypdb::bench;

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig6a_test_counts",
         "Fig. 6(a) — independence tests: FGS total / per node vs CD per "
         "node");
  Row({"rows", "FGS total", "FGS/node", "CD/node"}, 14);

  Rng rng(616);
  for (int64_t rows : {10000, 30000, 50000, 100000}) {
    RandomDataOptions data_options;
    data_options.num_nodes = 10;
    data_options.expected_degree = 3.0;
    data_options.num_rows = static_cast<int64_t>(rows * scale);
    auto ds = GenerateRandomDataset(data_options, rng);
    if (!ds.ok()) return 1;
    TablePtr table = std::make_shared<const Table>(std::move(ds->table));
    const int n = ds->dag.NumNodes();
    std::vector<int> vars;
    for (int v = 0; v < n; ++v) vars.push_back(v);

    // FGS (χ² tests, as the paper's comparison).
    MiEngine fgs_engine{TableView(table)};
    CiOptions chi2;
    chi2.method = CiMethod::kGTest;
    CiTester fgs_tester(&fgs_engine, chi2, 1);
    DataCiOracle fgs_oracle(&fgs_tester, 0.01);
    auto fgs = LearnStructureGs(fgs_oracle, vars);
    if (!fgs.ok()) return 1;
    double fgs_total = static_cast<double>(fgs->tests_used);

    // CD per node (χ² tests for apples-to-apples).
    MiEngine cd_engine{TableView(table)};
    CiTester cd_tester(&cd_engine, chi2, 2);
    DataCiOracle cd_oracle(&cd_tester, 0.01);
    double cd_total = 0;
    for (int v = 0; v < n; ++v) {
      std::vector<int> candidates;
      for (int u = 0; u < n; ++u) {
        if (u != v) candidates.push_back(u);
      }
      auto r = DiscoverParents(cd_oracle, v, candidates);
      if (r.ok()) cd_total += static_cast<double>(r->tests_used);
    }

    Row({std::to_string(data_options.num_rows),
         Fmt("%.0f", fgs_total), Fmt("%.1f", fgs_total / n),
         Fmt("%.1f", cd_total / n)},
        14);
  }
  std::printf("\n(expected shape: CD/node well below FGS total; learning\n"
              " one node's parents needs far fewer tests than the DAG)\n");
  return 0;
}
