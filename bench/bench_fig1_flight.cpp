// E1 — Fig. 1: the flight-delay example end to end.
// Regenerates every panel: (query answers), (a) carrier delay by airport,
// (b) airport by carrier, (c) delay by airport, (d) explanations,
// (e) refined answers — plus the Listing-3 rewritten SQL.

#include <map>

#include "bench_util.h"
#include "core/hypdb.h"
#include "dataframe/group_by.h"
#include "dataframe/predicate.h"
#include "datagen/flight_data.h"

using namespace hypdb;
using namespace hypdb::bench;

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig1_flight", "Fig. 1 (a)-(e), Ex. 1.1, Listing 3");

  auto table = GenerateFlightData(
      {.num_rows = static_cast<int64_t>(50000 * scale)});
  if (!table.ok()) return 1;
  TablePtr data = MakeTable(std::move(*table));

  auto pred = Predicate::FromInLists(
      *data, {{"Carrier", {"AA", "UA"}},
              {"Airport", {"COS", "MFE", "MTJ", "ROC"}}});
  TableView view = TableView(data).Filter(*pred);
  int carrier = *data->ColumnIndex("Carrier");
  int airport = *data->ColumnIndex("Airport");
  int delayed = *data->ColumnIndex("Delayed");

  // (a) Carrier delay by airport.
  std::printf("\n(a) carriers' delay by airport (Simpson's paradox):\n");
  auto by_airport = AverageBy(view, {airport, carrier}, {delayed});
  Row({"Airport", "Carrier", "avg(Delayed)"});
  for (int g = 0; g < by_airport->NumGroups(); ++g) {
    Row({data->column(airport).dict().Label(
             by_airport->codec.DecodeAt(by_airport->keys[g], 0)),
         data->column(carrier).dict().Label(
             by_airport->codec.DecodeAt(by_airport->keys[g], 1)),
         Fmt("%.3f", by_airport->means[g][0])});
  }

  // (b) Airport distribution per carrier (the covariate imbalance).
  std::printf("\n(b) airport by carrier  Pr(Airport | Carrier):\n");
  auto counts = CountBy(view, {carrier, airport});
  std::map<int32_t, int64_t> per_carrier;
  for (int g = 0; g < counts->NumGroups(); ++g) {
    per_carrier[counts->codec.DecodeAt(counts->keys[g], 0)] +=
        counts->counts[g];
  }
  Row({"Carrier", "Airport", "share"});
  for (int g = 0; g < counts->NumGroups(); ++g) {
    int32_t c = counts->codec.DecodeAt(counts->keys[g], 0);
    Row({data->column(carrier).dict().Label(c),
         data->column(airport).dict().Label(
             counts->codec.DecodeAt(counts->keys[g], 1)),
         Fmt("%.3f", static_cast<double>(counts->counts[g]) /
                         static_cast<double>(per_carrier[c]))});
  }

  // (c) Delay by airport.
  std::printf("\n(c) delay by airport:\n");
  auto delay_by_airport = AverageBy(view, {airport}, {delayed});
  Row({"Airport", "avg(Delayed)"});
  for (int g = 0; g < delay_by_airport->NumGroups(); ++g) {
    Row({data->column(airport).dict().Label(
             delay_by_airport->codec.DecodeAt(delay_by_airport->keys[g], 0)),
         Fmt("%.3f", delay_by_airport->means[g][0])});
  }

  // HypDB: detection, (d) explanations, (e) refined answers.
  HypDb db(data, HypDbOptions{});
  auto report = db.AnalyzeSql(
      "SELECT Carrier, avg(Delayed) FROM FlightData "
      "WHERE Carrier IN ('AA','UA') AND "
      "Airport IN ('COS','MFE','MTJ','ROC') GROUP BY Carrier");
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n(d)+(e) HypDB verdict, explanations, refined answers:\n\n");
  std::printf("%s\n", RenderReport(*report).c_str());
  return 0;
}
