// Incremental ingest gate: appending 10x the initial rows in batches
// and re-analyzing after every batch must (a) keep every report
// bit-identical to a cold full rebuild on the grown table, (b) never
// bump the dataset epoch, and (c) do strictly less scan work than the
// rebuild strategy — cached contingency summaries are delta-patched by
// scanning only the appended chunks (Sec. 6's additive-counts argument
// applied over time instead of across queries).
//
// Assertions (exits non-zero on violation):
//  * every post-append report digest == cold serial HypDb on the same
//    prefix of the data, including the final table;
//  * the epoch after all appends equals the registration epoch;
//  * delta patches happened (delta_patches > 0) and skipped already-
//    summarized chunks (chunks_skipped grows);
//  * rows scanned across all post-append analyses < rows the measured
//    rebuild-per-batch baseline scanned (a second service that
//    re-registers the grown table each batch, cold-dropping its
//    caches), strictly.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hypdb.h"
#include "service/hypdb_service.h"
#include "service/report_digest.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

using Rows = std::vector<std::vector<std::string>>;

// Correlated T/O/C binary workload — detection has something to find
// and appended batches shift the distribution, so a stale summary would
// change the report (the digest check has teeth).
Rows SyntheticRows(int64_t n, Rng* rng) {
  Rows rows;
  rows.reserve(n);
  for (int64_t r = 0; r < n; ++r) {
    const int c = static_cast<int>(rng->NextBounded(2));
    const int t = rng->Bernoulli(0.3) ? 1 - c : c;
    const int o = rng->Bernoulli(0.3) ? c : t;
    rows.push_back(
        {std::to_string(t), std::to_string(o), std::to_string(c)});
  }
  return rows;
}

TablePtr TableFromRows(const Rows& rows) {
  const std::vector<std::string> names = {"T", "O", "C"};
  Table table;
  for (size_t c = 0; c < names.size(); ++c) {
    ColumnBuilder b(names[c]);
    for (const auto& row : rows) b.Append(row[c]);
    auto added = table.AddColumn(b.Finish());
    if (!added.ok()) std::abort();
  }
  return MakeTable(std::move(table));
}

const char kSql[] = "SELECT T, avg(O) FROM d GROUP BY T";

std::string ColdDigest(const Rows& rows) {
  HypDb db(TableFromRows(rows), HypDbOptions{});
  auto report = db.AnalyzeSql(kSql);
  if (!report.ok()) {
    std::printf("cold analyze failed: %s\n",
                report.status().ToString().c_str());
    std::exit(1);
  }
  return CanonicalReportDigest(*report);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = ScaleArg(argc, argv);
  const int64_t initial_rows = static_cast<int64_t>(1000 * scale);
  const int kBatches = 10;  // 10x the initial rows, one initial-size each
  Header("bench_incremental_ingest",
         "Sec. 6 delta-maintained contingency counts under append-only "
         "ingest — patch cached summaries, never rebuild");

  Rng rng(20260808);
  Rows data = SyntheticRows(initial_rows, &rng);
  std::vector<Rows> batches;
  for (int b = 0; b < kBatches; ++b) {
    batches.push_back(SyntheticRows(initial_rows, &rng));
  }

  HypDbServiceOptions options;
  options.num_workers = 1;  // deterministic scan accounting
  options.chunk_rows = std::max<int64_t>(64, initial_rows / 4);
  HypDbService service(options);
  const int64_t epoch =
      service.RegisterTable("d", TableFromRows(data));

  // Warm pass on the seed (cold by definition; not part of the gate).
  bool digests_ok = true;
  auto warm = service.AnalyzeSql("d", kSql);
  if (!warm.ok()) {
    std::printf("warm analyze failed: %s\n",
                warm.status().ToString().c_str());
    return 1;
  }
  digests_ok &= CanonicalReportDigest(warm->report) == ColdDigest(data);
  CountEngineStats baseline;
  if (auto s = service.engine_stats("d"); s.ok()) baseline = *s;

  // Append 10x the initial rows in batches, analyzing after each.
  double append_seconds = 0.0;
  double analyze_seconds = 0.0;
  for (int b = 0; b < kBatches; ++b) {
    const Rows& batch = batches[b];
    data.insert(data.end(), batch.begin(), batch.end());
    Stopwatch append_watch;
    auto watermark = service.AppendRows("d", batch);
    append_seconds += append_watch.ElapsedSeconds();
    if (!watermark.ok() ||
        *watermark != static_cast<int64_t>(data.size())) {
      std::printf("append %d failed\n", b);
      return 1;
    }
    Stopwatch analyze_watch;
    auto report = service.AnalyzeSql("d", kSql);
    analyze_seconds += analyze_watch.ElapsedSeconds();
    if (!report.ok()) {
      std::printf("analyze after batch %d failed: %s\n", b,
                  report.status().ToString().c_str());
      return 1;
    }
    digests_ok &=
        CanonicalReportDigest(report->report) == ColdDigest(data);
  }

  bool epoch_stable = true;
  for (const DatasetInfo& info : service.Datasets()) {
    epoch_stable &= info.epoch == epoch;
  }

  CountEngineStats stats;
  if (auto s = service.engine_stats("d"); s.ok()) stats = *s;
  const int64_t delta_patches = stats.delta_patches - baseline.delta_patches;
  const int64_t chunk_scans = stats.chunk_scans - baseline.chunk_scans;
  const int64_t chunks_skipped =
      stats.chunks_skipped - baseline.chunks_skipped;
  const int64_t rows_scanned = stats.rows_scanned - baseline.rows_scanned;

  // Measured rebuild baseline: the pre-ingest strategy — re-register
  // the grown table each batch (epoch bump, cold caches) and analyze.
  // Registration resets the dataset's engines, so each epoch's stats
  // are read right after its analyze and summed here.
  int64_t rows_cold_equivalent = 0;
  double rebuild_seconds = 0.0;
  {
    HypDbService rebuild(options);
    Rows prefix(data.begin(), data.begin() + initial_rows);
    rebuild.RegisterTable("d", TableFromRows(prefix));
    if (!rebuild.AnalyzeSql("d", kSql).ok()) {
      std::printf("rebuild warm analyze failed\n");
      return 1;
    }
    for (int b = 0; b < kBatches; ++b) {
      const Rows& batch = batches[b];
      prefix.insert(prefix.end(), batch.begin(), batch.end());
      rebuild.RegisterTable("d", TableFromRows(prefix));
      Stopwatch watch;
      auto report = rebuild.AnalyzeSql("d", kSql);
      rebuild_seconds += watch.ElapsedSeconds();
      if (!report.ok()) {
        std::printf("rebuild analyze after batch %d failed: %s\n", b,
                    report.status().ToString().c_str());
        return 1;
      }
      if (auto s = rebuild.engine_stats("d"); s.ok()) {
        rows_cold_equivalent += s->rows_scanned;
      }
    }
  }

  Row({"metric", "value"}, 24);
  Row({"initial_rows", std::to_string(initial_rows)}, 24);
  Row({"appended_rows", std::to_string(initial_rows * kBatches)}, 24);
  Row({"delta_patches", std::to_string(delta_patches)}, 24);
  Row({"chunk_scans", std::to_string(chunk_scans)}, 24);
  Row({"chunks_skipped", std::to_string(chunks_skipped)}, 24);
  Row({"rows_scanned", std::to_string(rows_scanned)}, 24);
  Row({"rows_cold_equivalent", std::to_string(rows_cold_equivalent)}, 24);
  Row({"append_seconds", Fmt("%.4f", append_seconds)}, 24);
  Row({"analyze_seconds", Fmt("%.4f", analyze_seconds)}, 24);
  Row({"rebuild_seconds", Fmt("%.4f", rebuild_seconds)}, 24);

  const bool patched = delta_patches > 0;
  const bool skipped = chunks_skipped > 0;
  const bool fewer_rows = rows_scanned < rows_cold_equivalent;
  std::printf("digests bit-identical to cold rebuild: %s\n",
              digests_ok ? "yes" : "NO");
  std::printf("epoch stable across appends:           %s\n",
              epoch_stable ? "yes" : "NO");
  std::printf("summaries delta-patched:               %s\n",
              patched ? "yes" : "NO");
  std::printf("sealed chunks skipped by delta scans:  %s\n",
              skipped ? "yes" : "NO");
  std::printf("scan work < cold rebuild per batch:    %s (%lld < %lld)\n",
              fewer_rows ? "yes" : "NO",
              static_cast<long long>(rows_scanned),
              static_cast<long long>(rows_cold_equivalent));

  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("initial_rows", net::JsonValue::Int(initial_rows));
  results.Set("appended_rows",
              net::JsonValue::Int(initial_rows * kBatches));
  results.Set("batches", net::JsonValue::Int(kBatches));
  results.Set("delta_patches", net::JsonValue::Int(delta_patches));
  results.Set("chunk_scans", net::JsonValue::Int(chunk_scans));
  results.Set("chunks_skipped", net::JsonValue::Int(chunks_skipped));
  results.Set("rows_scanned", net::JsonValue::Int(rows_scanned));
  results.Set("rows_cold_equivalent",
              net::JsonValue::Int(rows_cold_equivalent));
  results.Set("append_seconds", net::JsonValue::Double(append_seconds));
  results.Set("analyze_seconds", net::JsonValue::Double(analyze_seconds));
  results.Set("rebuild_seconds", net::JsonValue::Double(rebuild_seconds));
  results.Set("digests_ok", net::JsonValue::Bool(digests_ok));
  results.Set("epoch_stable", net::JsonValue::Bool(epoch_stable));
  WriteBenchJson("incremental_ingest", std::move(results));

  if (!digests_ok || !epoch_stable || !patched || !skipped ||
      !fewer_rows) {
    std::printf("GATE FAILED\n");
    return 1;
  }
  std::printf("gate passed\n");
  return 0;
}
