// Cross-shard count reuse gate: a multi-subpopulation workload through
// the predicate-slicing shard pool must perform strictly fewer data
// scans than the sharded-but-isolated baseline — with bit-identical
// report digests and p-values. The paper's Sec. 6 argument ("every
// statistic is a count(*) GROUP BY, so share the counts") applied
// *across* WHERE clauses: counts over S for a subpopulation P = v are a
// slice of the full-table S ∪ P summary, so one parent materialization
// serves every department instead of one scan per (department, column
// set).
//
// Workload: one dataset (Berkeley admissions), >= 4 equality
// subpopulations (one per department), analyzed twice through
// HypDbService — cross_shard_slicing off (the isolated baseline) and on.
// Assertions (exits non-zero on violation):
//  * every report digests identical to a cold serial HypDb::Analyze;
//  * per-query p-values agree to 1e-9 between the two modes;
//  * shared-mode total scans < isolated-mode total scans, strictly;
//  * shared mode actually sliced (predicate_slices > 0; 0 when isolated).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/berkeley_data.h"
#include "service/hypdb_service.h"
#include "service/report_digest.h"

using namespace hypdb;
using namespace hypdb::bench;

namespace {

std::vector<double> PValuesOf(const HypDbReport& report) {
  std::vector<double> out;
  for (const auto& b : report.bias) {
    out.push_back(b.total.ci.p_value);
    if (b.has_direct) out.push_back(b.direct.ci.p_value);
  }
  return out;
}

struct ModeResult {
  std::vector<std::string> digests;
  std::vector<std::vector<double>> p_values;  // per query
  CountEngineStats stats;
  int64_t errors = 0;
};

ModeResult RunMode(const TablePtr& table,
                   const std::vector<std::string>& queries,
                   bool cross_shard_slicing, int reps) {
  HypDbServiceOptions options;
  options.num_workers = 1;  // deterministic scan accounting
  options.cross_shard_slicing = cross_shard_slicing;
  HypDbService service(options);
  service.RegisterTable("b", table);
  ModeResult result;
  for (int rep = 0; rep < reps; ++rep) {
    for (const std::string& sql : queries) {
      auto report = service.AnalyzeSql("b", sql);
      if (!report.ok()) {
        std::printf("analyze failed: %s\n",
                    report.status().ToString().c_str());
        ++result.errors;
        continue;
      }
      if (rep == 0) {
        result.digests.push_back(CanonicalReportDigest(report->report));
        result.p_values.push_back(PValuesOf(report->report));
      }
    }
  }
  auto stats = service.engine_stats("b");
  if (stats.ok()) result.stats = *stats;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = ScaleArg(argc, argv);
  const int reps = std::max(1, static_cast<int>(scale));
  Header("bench_cross_shard_reuse",
         "Sec. 6 contingency-table sharing across WHERE clauses — "
         "predicate-sliced shards vs isolated shards");

  auto generated = GenerateBerkeleyData();
  if (!generated.ok()) {
    std::printf("datagen failed: %s\n",
                generated.status().ToString().c_str());
    return 1;
  }
  TablePtr table = MakeTable(std::move(*generated));

  // One subpopulation per department — six, comfortably >= the gate's 4.
  std::vector<std::string> queries;
  for (const std::string dept : {"A", "B", "C", "D", "E", "F"}) {
    queries.push_back(
        "SELECT Gender, avg(Accepted) FROM b WHERE Department IN ('" +
        dept + "') GROUP BY Gender");
  }

  // Cold serial ground truth: the digests both modes must reproduce.
  std::vector<std::string> serial_digests;
  for (const std::string& sql : queries) {
    HypDb db(table, HypDbOptions{});
    auto report = db.AnalyzeSql(sql);
    if (!report.ok()) {
      std::printf("serial analyze failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    serial_digests.push_back(CanonicalReportDigest(*report));
  }

  ModeResult isolated = RunMode(table, queries, false, reps);
  ModeResult shared = RunMode(table, queries, true, reps);

  const bool digests_ok = isolated.errors == 0 && shared.errors == 0 &&
                          isolated.digests == serial_digests &&
                          shared.digests == serial_digests;
  // Shape divergence (different p-value counts per query) is its own
  // failure, reported as such — not folded into the digest verdict.
  bool shapes_ok = true;
  double max_dp = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (q >= isolated.p_values.size() || q >= shared.p_values.size() ||
        isolated.p_values[q].size() != shared.p_values[q].size()) {
      shapes_ok = false;
      break;
    }
    for (size_t i = 0; i < isolated.p_values[q].size(); ++i) {
      max_dp = std::max(max_dp, std::fabs(isolated.p_values[q][i] -
                                          shared.p_values[q][i]));
    }
  }

  Row({"mode", "queries", "scans", "slices", "cache_hits", "marginal"},
      12);
  Row({"isolated", std::to_string(queries.size() * reps),
       std::to_string(isolated.stats.scans),
       std::to_string(isolated.stats.predicate_slices),
       std::to_string(isolated.stats.cache_hits),
       std::to_string(isolated.stats.marginalizations)},
      12);
  Row({"shared", std::to_string(queries.size() * reps),
       std::to_string(shared.stats.scans),
       std::to_string(shared.stats.predicate_slices),
       std::to_string(shared.stats.cache_hits),
       std::to_string(shared.stats.marginalizations)},
      12);
  std::printf("max |Δp| = %.3g\n", max_dp);

  const bool fewer_scans = shared.stats.scans < isolated.stats.scans;
  const bool sliced = shared.stats.predicate_slices > 0 &&
                      isolated.stats.predicate_slices == 0;
  const bool same_p = shapes_ok && max_dp <= 1e-9;

  net::JsonValue results = net::JsonValue::MakeObject();
  results.Set("scale", net::JsonValue::Double(scale));
  results.Set("rows", net::JsonValue::Int(table->NumRows()));
  results.Set("subpopulations",
              net::JsonValue::Int(static_cast<int64_t>(queries.size())));
  results.Set("reps", net::JsonValue::Int(reps));
  results.Set("isolated_scans", net::JsonValue::Int(isolated.stats.scans));
  results.Set("shared_scans", net::JsonValue::Int(shared.stats.scans));
  results.Set("predicate_slices",
              net::JsonValue::Int(shared.stats.predicate_slices));
  results.Set("max_p_delta", net::JsonValue::Double(max_dp));
  results.Set("p_shapes_identical", net::JsonValue::Bool(shapes_ok));
  results.Set("digests_identical", net::JsonValue::Bool(digests_ok));
  WriteBenchJson("cross_shard_reuse", std::move(results));

  const bool pass = digests_ok && same_p && fewer_scans && sliced;
  std::printf(
      "%s: shared shards %s scans (%lld vs %lld isolated), digests %s, "
      "p-values %s\n",
      pass ? "PASS" : "FAIL",
      fewer_scans ? "reduce" : "DO NOT reduce",
      static_cast<long long>(shared.stats.scans),
      static_cast<long long>(isolated.stats.scans),
      digests_ok ? "bit-identical" : "DIVERGED",
      same_p ? "identical to 1e-9" : "DIVERGED");
  return pass ? 0 : 1;
}
