// E4/E5 — Fig. 3: the AdultData (gender → income) and StaplesData
// (income → price) reports — plain answers, bias verdicts, coarse and
// fine explanations, total and direct effects with significance.

#include "bench_util.h"
#include "core/hypdb.h"
#include "datagen/adult_data.h"
#include "datagen/staples_data.h"

using namespace hypdb;
using namespace hypdb::bench;

int main(int argc, char** argv) {
  double scale = ScaleArg(argc, argv);
  Header("bench_fig3_adult_staples",
         "Fig. 3 — AdultData (top) and StaplesData (bottom) reports");

  {
    std::printf("\n--- Fig. 3 top: the effect of Gender on Income ---\n");
    auto table = GenerateAdultData(
        {.num_rows = static_cast<int64_t>(48842 * scale)});
    if (!table.ok()) return 1;
    HypDb db(MakeTable(std::move(*table)), HypDbOptions{});
    auto report = db.AnalyzeSql(
        "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender");
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", RenderReport(*report).c_str());
    std::printf("[paper: plain 0.11/0.30; total ~0.23/0.25; direct "
                "~0.10/0.11; MaritalStatus top responsibility]\n");
  }

  {
    std::printf("\n--- Fig. 3 bottom: the effect of Income on Price ---\n");
    auto table = GenerateStaplesData(
        {.num_rows = static_cast<int64_t>(988871 * scale)});
    if (!table.ok()) return 1;
    HypDb db(MakeTable(std::move(*table)), HypDbOptions{});
    auto report = db.AnalyzeSql(
        "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income");
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", RenderReport(*report).c_str());
    std::printf("[paper: small but significant total effect; direct "
                "effect null (diff 0, p = 1); Distance responsibility 1]\n");
  }
  return 0;
}
